// Closed-loop transport under hotspot incast: open loop vs closed loop.
//
// The same incast scenario (torus 4x4 hotspot, shallow 16-packet
// queues, 400 Mbps sources piling onto one hot destination) runs three
// ways through SimRunner:
//
//   open     the PR 6 schedule replayed verbatim -- overload sheds load
//            as raw tail drops and incomplete flows;
//   closed   SimOptions::transport on -- AIMD windows back off on ECN
//            marks and drop notifications, losses retransmit, and every
//            flow either delivers all its bytes or is abandoned after
//            max_retries;
//   closed+flap  the same closed loop with a flapping-link failure
//            schedule -- retransmissions recover the failover losses
//            (packets that died on a dead wire), not just the
//            congestion drops.
//
// The self-check enforces the PR's acceptance bar: the closed loop
// completes 100% of non-abandoned flows (open leaves flows incomplete),
// cuts the drop rate, forwards with zero wrong egress, and with the
// flap schedule active still delivers every non-abandoned flow's bytes
// even though links kept dying mid-run.

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "sim/runner.hpp"

namespace {

hp::scenario::ScenarioSpec incast_spec() {
  const hp::scenario::ScenarioSpec* base =
      hp::scenario::find_scenario("torus4x4/hotspot");
  if (base == nullptr) {
    throw std::runtime_error("registry lost torus4x4/hotspot");
  }
  hp::scenario::ScenarioSpec spec = *base;
  spec.traffic.pattern = hp::scenario::TrafficPattern::kHotspot;
  spec.traffic.packets = 1 << 12;
  spec.traffic.max_pairs = 64;
  spec.traffic.seed = 5;
  return spec;
}

hp::sim::SimOptions incast_options(bool closed_loop) {
  hp::sim::SimOptions options;
  options.source_rate_mbps = 400.0;
  options.flow_gap_ns = 10'000;
  options.queue_capacity = 16;
  options.ecn_threshold = 12;
  options.transport.enabled = closed_loop;
  options.transport.init_cwnd = 4;
  options.transport.max_cwnd = 32;
  // RTT under incast is queueing-dominated (16 deep x 120 us serialize
  // ~= 2 ms); an RTO floor below that fires spuriously and melts the
  // loop into a retransmit storm.
  options.transport.rto_min_ns = 4'000'000;
  options.transport.rto_max_ns = 50'000'000;
  options.transport.max_retries = 8;
  return options;
}

void add_flap_schedule(const hp::scenario::ScenarioSpec& spec,
                       hp::sim::SimOptions& options) {
  hp::scenario::FailureInjectorParams inject;
  inject.preset = hp::scenario::FailurePreset::kFlap;
  inject.seed = 17;
  inject.count = 2;
  inject.mean_up_fraction = 0.15;
  inject.mean_down_fraction = 0.05;
  options.failures = hp::scenario::make_failure_schedule(
      hp::scenario::build_topology(spec), inject);
  options.protection_k = 1;
}

double goodput_mbps(const hp::sim::SimReport& report) {
  if (report.duration_ns == 0) return 0.0;
  const double bits =
      static_cast<double>(report.transport.goodput_bytes) * 8.0;
  return bits * 1000.0 / static_cast<double>(report.duration_ns);
}

void emit(hp::obs::BenchReport& report, const char* mode,
          const hp::sim::SimReport& out) {
  auto& result = report.add(std::string("torus4x4/hotspot/") + mode,
                            out.drop_rate(), "drop_fraction", mode);
  result.counters.emplace_back("flows", static_cast<double>(out.flows));
  result.counters.emplace_back("completed_flows",
                               static_cast<double>(out.completed_flows));
  result.counters.emplace_back(
      "abandoned_flows",
      static_cast<double>(out.transport.abandoned_flows));
  result.counters.emplace_back(
      "retransmits", static_cast<double>(out.transport.retransmits));
  result.counters.emplace_back("timeouts",
                               static_cast<double>(out.transport.timeouts));
  result.counters.emplace_back(
      "ecn_cwnd_cuts", static_cast<double>(out.transport.ecn_cwnd_cuts));
  result.counters.emplace_back(
      "failover_packets_lost",
      static_cast<double>(out.forwarding.failover_packets_lost));
  result.counters.emplace_back(
      "offered_bytes", static_cast<double>(out.transport.offered_bytes));
  result.counters.emplace_back(
      "goodput_bytes", static_cast<double>(out.transport.goodput_bytes));
  result.counters.emplace_back("goodput_fraction", out.goodput_fraction());
  result.counters.emplace_back("goodput_mbps", goodput_mbps(out));
  result.counters.emplace_back("fct_p50_ns",
                               static_cast<double>(out.fct_p50_ns()));
  result.counters.emplace_back("fct_p95_ns",
                               static_cast<double>(out.fct_p95_ns()));
}

void print_mode(const char* mode, const hp::sim::SimReport& out) {
  std::printf(
      "%-12s flows=%zu completed=%zu abandoned=%llu  drop_rate=%.3f  "
      "retransmits=%llu  fct p50/p95=%llu/%llu ns  goodput=%.1f Mbps\n",
      mode, out.flows, out.completed_flows,
      static_cast<unsigned long long>(out.transport.abandoned_flows),
      out.drop_rate(),
      static_cast<unsigned long long>(out.transport.retransmits),
      static_cast<unsigned long long>(out.fct_p50_ns()),
      static_cast<unsigned long long>(out.fct_p95_ns()), goodput_mbps(out));
}

}  // namespace

int main() {
  std::cout << "=== Closed-loop transport under hotspot incast ===\n\n";

  const hp::scenario::ScenarioSpec spec = incast_spec();
  const hp::sim::SimReport open =
      hp::sim::run_sim_scenario(spec, incast_options(false));
  const hp::sim::SimReport closed =
      hp::sim::run_sim_scenario(spec, incast_options(true));
  hp::sim::SimOptions flap_options = incast_options(true);
  add_flap_schedule(spec, flap_options);
  const hp::sim::SimReport flapped =
      hp::sim::run_sim_scenario(spec, flap_options);

  hp::obs::BenchReport report("sim_transport");
  emit(report, "open", open);
  emit(report, "closed", closed);
  emit(report, "closed_flap", flapped);
  print_mode("open", open);
  print_mode("closed", closed);
  print_mode("closed_flap", flapped);

  bool ok = true;
  // The incast must actually overload the fabric in the open loop,
  // otherwise the comparison proves nothing.
  if (open.drop_rate() <= 0.0) {
    std::cerr << "open loop shed no load; incast knobs too gentle\n";
    ok = false;
  }
  if (open.completed_flows >= open.flows) {
    std::cerr << "open loop completed every flow; incast knobs too gentle\n";
    ok = false;
  }
  // Closed loop: 100% of non-abandoned flows complete (the liveness
  // invariant: nothing hangs in between), and the windows must have
  // reacted rather than blasted.
  for (const auto* run : {&closed, &flapped}) {
    if (run->completed_flows + run->transport.abandoned_flows != run->flows) {
      std::cerr << "closed loop left flows incomplete without abandoning\n";
      ok = false;
    }
    if (run->completed_flows == 0) {
      std::cerr << "closed loop completed nothing\n";
      ok = false;
    }
    if (run->forwarding.wrong_egress != 0) {
      std::cerr << "wrong egress in a closed-loop run\n";
      ok = false;
    }
  }
  if (closed.drop_rate() >= open.drop_rate()) {
    std::cerr << "closed loop did not cut the drop rate ("
              << closed.drop_rate() << " vs " << open.drop_rate() << ")\n";
    ok = false;
  }
  if (open.forwarding.wrong_egress != 0) {
    std::cerr << "wrong egress in the open-loop run\n";
    ok = false;
  }
  // The flap run must have lost packets to dead wires AND recovered
  // them: losses show up in failover_packets_lost, recovery as the
  // completed flows' full byte delivery.
  if (flapped.forwarding.failover_packets_lost == 0) {
    std::cerr << "flap schedule killed no packet; nothing was recovered\n";
    ok = false;
  }
  if (flapped.transport.retransmits == 0) {
    std::cerr << "flap run never retransmitted\n";
    ok = false;
  }

  std::cout << "\nwrote " << report.write_default() << '\n';
  if (!ok) {
    std::cerr << "self-check FAILED\n";
    return 1;
  }
  std::cout << "self-check passed: closed loop completes every "
               "non-abandoned flow, cuts drop rate, and recovers "
               "failover losses under flapping links\n";
  return 0;
}
