// Extension: flow-completion time under an elephants-and-mice science
// workload (the DeepRoute / Hecate motivation of Section II-A:
// "minimize flow completion time").
//
// The same Poisson workload is replayed under three allocation
// policies on the Fig 9 testbed:
//   pinned     - every flow on tunnel 1 (no TE at all),
//   round-robin - arrival-order rotation over the three tunnels,
//   best-available - each arrival placed on the tunnel with the most
//                    available bandwidth at that instant (the
//                    framework's reactive placement).
// Reported: mean/p95/max FCT and unfinished counts.

#include <iomanip>
#include <iostream>
#include <string>

#include "netsim/workload.hpp"
#include "obs/export.hpp"
#include "telemetry/agent.hpp"

namespace {

using namespace hp::netsim;

struct RunResult {
  FctStats stats;
  double makespan = 0.0;
};

enum class Policy { kPinned, kRoundRobin, kBestAvailable };

RunResult run_policy(Policy policy) {
  Topology topo = make_global_p4_lab();
  const std::vector<Path> tunnels{
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"}),
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"}),
      topo.path_through({"host1", "MIA", "CAL", "CHI", "AMS", "host2"})};

  WorkloadParams params;
  params.duration_s = 300.0;
  params.arrival_rate_per_s = 0.4;
  params.elephant_fraction = 0.08;
  params.elephant_max_mb = 600.0;
  const auto workload = generate_workload({tunnels[0]}, params);

  Simulator sim(std::move(topo));
  std::vector<FlowId> ids;
  std::size_t rr = 0;
  for (const auto& arrival : workload) {
    FlowSpec spec = arrival.spec;
    switch (policy) {
      case Policy::kPinned:
        spec.path = tunnels[0];
        break;
      case Policy::kRoundRobin:
        spec.path = tunnels[rr++ % tunnels.size()];
        break;
      case Policy::kBestAvailable:
        // Decide at arrival time with a callback reading live state.
        break;
    }
    if (policy == Policy::kBestAvailable) {
      // Placement deferred to arrival: pick the emptiest tunnel then.
      const FlowId id = sim.add_flow(arrival.at_s, spec);
      ids.push_back(id);
      sim.schedule_callback(arrival.at_s, [id, &tunnels](Simulator& s) {
        double best_avail = -1.0;
        const Path* best = &tunnels[0];
        for (const Path& tunnel : tunnels) {
          const double avail =
              hp::telemetry::PathAgent::available_mbps(s, tunnel);
          if (avail > best_avail) {
            best_avail = avail;
            best = &tunnel;
          }
        }
        s.migrate_flow(s.now(), id, *best);
      });
    } else {
      ids.push_back(sim.add_flow(arrival.at_s, spec));
    }
  }
  sim.run_until(3000.0);  // generous drain window
  RunResult result;
  result.stats = collect_fct(sim, ids);
  double last = 0.0;
  for (const FlowId id : ids) {
    if (const auto t = sim.completion_time(id)) last = std::max(last, *t);
  }
  result.makespan = last;
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Extension: FCT under an elephants-and-mice workload "
               "===\n\n";
  std::cout << "workload: Poisson arrivals (0.4/s for 300 s), ~8% "
               "elephants (bounded Pareto\n100-600 MB), log-normal mice; "
               "identical across policies.\n\n";
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "policy           done  unfin   mean FCT   p95 FCT   max "
               "FCT   makespan\n";
  const std::pair<const char*, Policy> policies[] = {
      {"pinned-t1     ", Policy::kPinned},
      {"round-robin   ", Policy::kRoundRobin},
      {"best-available", Policy::kBestAvailable},
  };
  hp::obs::BenchReport report("ext_fct_workload");
  for (const auto& [label, policy] : policies) {
    const RunResult r = run_policy(policy);
    std::cout << label << "  " << std::setw(5) << r.stats.completed
              << std::setw(7) << r.stats.unfinished << std::setw(10)
              << r.stats.mean_fct_s << "s" << std::setw(9)
              << r.stats.p95_fct_s << "s" << std::setw(9) << r.stats.max_fct_s
              << "s" << std::setw(10) << r.makespan << "s\n";
    std::string key(label);
    while (!key.empty() && key.back() == ' ') key.pop_back();
    hp::obs::BenchResult& res =
        report.add("mean_fct_s/" + key, r.stats.mean_fct_s, "s");
    res.counters.emplace_back("p95_fct_s", r.stats.p95_fct_s);
    res.counters.emplace_back("max_fct_s", r.stats.max_fct_s);
    res.counters.emplace_back("completed",
                              static_cast<double>(r.stats.completed));
    res.counters.emplace_back("unfinished",
                              static_cast<double>(r.stats.unfinished));
    res.counters.emplace_back("makespan_s", r.makespan);
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nshape check: load-aware placement cuts mean and tail "
               "FCT versus pinning\neverything behind tunnel 1's 20 Mbps "
               "bottleneck; round-robin helps but\nwastes the asymmetric "
               "capacities (20/10/5).\n";
  return 0;
}
