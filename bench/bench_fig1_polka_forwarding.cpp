// Fig 1: PolKA forwarding -- routeID computation (control plane) and
// per-hop mod operation (data plane) microbenchmarks, plus the paper's
// worked example printed for verification.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <chrono>
#include <iostream>
#include <random>
#include <span>

#include "gf2/irreducible.hpp"
#include "polka/crc.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"
#include "polka/route.hpp"

namespace {

using hp::gf2::Poly;
namespace polka = hp::polka;

/// Build a random path of `hops` nodes with 8 ports each.
std::vector<polka::Hop> make_path(std::size_t hops, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  polka::NodeIdAllocator alloc;
  std::vector<polka::Hop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    auto node = alloc.allocate("n" + std::to_string(i), 8);
    path.push_back(polka::Hop{std::move(node), static_cast<unsigned>(rng() % 8)});
  }
  return path;
}

void BM_RouteIdComputation(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(polka::compute_route_id(path));
  }
  state.SetLabel(std::to_string(state.range(0)) + " hops (CRT, control plane)");
}
BENCHMARK(BM_RouteIdComputation)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

void BM_PerHopMod_BitSerial(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 7);
  const auto route = polka::compute_route_id(path);
  const polka::BitSerialCrc crc(path[path.size() / 2].node.poly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder(route.value));
  }
  state.SetLabel("data-plane mod, LFSR engine");
}
BENCHMARK(BM_PerHopMod_BitSerial)->Arg(5)->Arg(16);

void BM_PerHopMod_Table(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 7);
  const auto route = polka::compute_route_id(path);
  const polka::TableCrc crc(path[path.size() / 2].node.poly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder_bits(route.value));
  }
  state.SetLabel("data-plane mod, table CRC engine");
}
BENCHMARK(BM_PerHopMod_Table)->Arg(5)->Arg(16);

void BM_PerHopMod_LabelFold(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 7);
  const auto route = polka::compute_route_id(path);
  const polka::LabelFoldEngine fold(path[path.size() / 2].node.poly);
  // Long routes exceed 64 bits; the fold engine works on the wire
  // label, so benchmark it on the route's low 64 coefficient bits.
  const std::uint64_t label =
      (route.value % hp::gf2::Poly::monomial(64)).to_uint64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold.remainder(label));
  }
  state.SetLabel("data-plane mod, uint64 fold engine");
}
BENCHMARK(BM_PerHopMod_LabelFold)->Arg(5)->Arg(16);

/// Shared 10-router chain used by the end-to-end walks.
polka::PolkaFabric make_chain_fabric(
    std::size_t n, polka::ModEngine engine = polka::ModEngine::kTable) {
  polka::PolkaFabric fabric(engine);
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    fabric.connect(i, 1, i + 1);
  }
  return fabric;
}

void BM_FabricEndToEnd(benchmark::State& state) {
  const auto fabric = make_chain_fabric(10);
  std::vector<std::size_t> nodes(10);
  for (std::size_t i = 0; i < 10; ++i) nodes[i] = i;
  const auto route = fabric.route_for_path(nodes, 0U);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.forward(route, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("10-hop packet walk, table engine (items = packets)");
}
BENCHMARK(BM_FabricEndToEnd);

void BM_FabricScalar_Engine(benchmark::State& state) {
  const auto engine = static_cast<polka::ModEngine>(state.range(0));
  const polka::PolkaFabric fabric = make_chain_fabric(10, engine);
  std::vector<std::size_t> nodes(10);
  for (std::size_t i = 0; i < 10; ++i) nodes[i] = i;
  const auto route = fabric.route_for_path(nodes, 0U);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.forward(route, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  switch (engine) {
    case polka::ModEngine::kBitSerial: state.SetLabel("scalar, LFSR"); break;
    case polka::ModEngine::kTable: state.SetLabel("scalar, table CRC"); break;
    case polka::ModEngine::kDirect: state.SetLabel("scalar, gf2 divide"); break;
  }
}
BENCHMARK(BM_FabricScalar_Engine)
    ->Arg(static_cast<int>(polka::ModEngine::kBitSerial))
    ->Arg(static_cast<int>(polka::ModEngine::kTable))
    ->Arg(static_cast<int>(polka::ModEngine::kDirect));

void BM_FabricBatch_Uint64(benchmark::State& state) {
  const auto fabric = make_chain_fabric(10);
  std::vector<std::size_t> nodes(10);
  for (std::size_t i = 0; i < 10; ++i) nodes[i] = i;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<polka::RouteLabel> labels(batch);
  for (unsigned egress = 0; egress < 4; ++egress) {
    const auto route = fabric.route_for_path(nodes, egress);
    for (std::size_t i = egress; i < batch; i += 4) {
      labels[i] = polka::pack_label_checked(route);
    }
  }
  const auto& fast = fabric.compiled();
  std::vector<polka::PacketResult> results(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast.forward_batch(
        labels, 0, std::span<polka::PacketResult>(results)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
  state.SetLabel("batched uint64 fast path (items = packets)");
}
BENCHMARK(BM_FabricBatch_Uint64)->Arg(16)->Arg(256)->Arg(4096);

/// Headline comparison printed before the benchmark table: packets/sec
/// for the bit-serial scalar baseline vs the batched uint64 engine on
/// the same 10-hop walk (the ISSUE acceptance asks for >= 5x).
void print_packets_per_sec_summary() {
  const std::size_t n = 10;
  const polka::PolkaFabric bit_fabric =
      make_chain_fabric(n, polka::ModEngine::kBitSerial);
  std::vector<std::size_t> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = i;
  const auto route = bit_fabric.route_for_path(nodes, 0U);

  const std::size_t packets = 20000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < packets; ++i) {
    benchmark::DoNotOptimize(bit_fabric.forward(route, 0));
  }
  const auto t1 = std::chrono::steady_clock::now();

  const auto& fast = bit_fabric.compiled();
  std::vector<polka::RouteLabel> labels(packets,
                                        polka::pack_label_checked(route));
  std::vector<polka::PacketResult> results(packets);
  const auto t2 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(
      fast.forward_batch(labels, 0, std::span<polka::PacketResult>(results)));
  const auto t3 = std::chrono::steady_clock::now();

  const double scalar_s = std::chrono::duration<double>(t1 - t0).count();
  const double batch_s = std::chrono::duration<double>(t3 - t2).count();
  const double scalar_pps = static_cast<double>(packets) / scalar_s;
  const double batch_pps = static_cast<double>(packets) / batch_s;
  std::cout << "packets/sec, 10-hop walk: bit-serial scalar " << scalar_pps
            << ", batched uint64 " << batch_pps << " (speedup "
            << batch_pps / scalar_pps << "x)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 1: PolKA polynomial source routing ===\n";
  // The paper's worked example: routeID 10000 at s2 = t^2+t+1 -> port 2.
  const polka::NodeId s1{"s1", Poly(0b11), 2};
  const polka::NodeId s2{"s2", Poly(0b111), 4};
  const polka::NodeId s3{"s3", Poly(0b1011), 8};
  const auto route = polka::compute_route_id({{s1, 1}, {s2, 2}, {s3, 6}});
  std::cout << "paper example routeID = " << route.value.to_binary_string()
            << " (paper: 10000); s2 recovers port "
            << polka::output_port(route, s2) << " (paper: 2)\n\n";

  print_packets_per_sec_summary();

  return hp::benchjson::run_and_export(argc, argv, "fig1_polka_forwarding");
}
