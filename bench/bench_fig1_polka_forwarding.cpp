// Fig 1: PolKA forwarding -- routeID computation (control plane) and
// per-hop mod operation (data plane) microbenchmarks, plus the paper's
// worked example printed for verification.

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "gf2/irreducible.hpp"
#include "polka/crc.hpp"
#include "polka/forwarding.hpp"
#include "polka/route.hpp"

namespace {

using hp::gf2::Poly;
namespace polka = hp::polka;

/// Build a random path of `hops` nodes with 8 ports each.
std::vector<polka::Hop> make_path(std::size_t hops, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  polka::NodeIdAllocator alloc;
  std::vector<polka::Hop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    auto node = alloc.allocate("n" + std::to_string(i), 8);
    path.push_back(polka::Hop{std::move(node), static_cast<unsigned>(rng() % 8)});
  }
  return path;
}

void BM_RouteIdComputation(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(polka::compute_route_id(path));
  }
  state.SetLabel(std::to_string(state.range(0)) + " hops (CRT, control plane)");
}
BENCHMARK(BM_RouteIdComputation)->Arg(3)->Arg(5)->Arg(8)->Arg(16);

void BM_PerHopMod_BitSerial(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 7);
  const auto route = polka::compute_route_id(path);
  const polka::BitSerialCrc crc(path[path.size() / 2].node.poly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder(route.value));
  }
  state.SetLabel("data-plane mod, LFSR engine");
}
BENCHMARK(BM_PerHopMod_BitSerial)->Arg(5)->Arg(16);

void BM_PerHopMod_Table(benchmark::State& state) {
  const auto path = make_path(static_cast<std::size_t>(state.range(0)), 7);
  const auto route = polka::compute_route_id(path);
  const polka::TableCrc crc(path[path.size() / 2].node.poly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder_bits(route.value));
  }
  state.SetLabel("data-plane mod, table CRC engine");
}
BENCHMARK(BM_PerHopMod_Table)->Arg(5)->Arg(16);

void BM_FabricEndToEnd(benchmark::State& state) {
  polka::PolkaFabric fabric(polka::ModEngine::kTable);
  const std::size_t n = 10;
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    fabric.connect(i, 1, i + 1);
  }
  std::vector<std::size_t> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = i;
  const auto route = fabric.route_for_path(nodes, 0U);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.forward(route, 0));
  }
  state.SetLabel("10-hop packet walk, table engine");
}
BENCHMARK(BM_FabricEndToEnd);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 1: PolKA polynomial source routing ===\n";
  // The paper's worked example: routeID 10000 at s2 = t^2+t+1 -> port 2.
  const polka::NodeId s1{"s1", Poly(0b11), 2};
  const polka::NodeId s2{"s2", Poly(0b111), 4};
  const polka::NodeId s3{"s3", Poly(0b1011), 8};
  const auto route = polka::compute_route_id({{s1, 1}, {s2, 2}, {s3, 6}});
  std::cout << "paper example routeID = " << route.value.to_binary_string()
            << " (paper: 10000); s2 recovers port "
            << polka::output_port(route, s2) << " (paper: 2)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
