// Fig 10: freeRtr PolKA configuration -- prints the reconstructed
// command subset, round-trips it through the parser, and benchmarks
// parse + message-queue reconfiguration throughput (the control-plane
// cost of one PBR migration).

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <iostream>

#include "freertr/parser.hpp"
#include "freertr/router_service.hpp"

namespace {

const char* kFig10Config =
    "access-list flow3 permit 6 40.40.1.0/24 40.40.2.2/32 tos 3\n"
    "interface tunnel3\n"
    " tunnel destination 20.20.0.7\n"
    " tunnel domain-name MIA SAO AMS\n"
    " tunnel mode polka\n"
    "exit\n"
    "pbr flow3 tunnel 3 nexthop 30.30.3.2\n";

void BM_ParseFig10(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::freertr::parse_config(kFig10Config));
  }
  state.SetLabel("full Fig 10 block");
}
BENCHMARK(BM_ParseFig10);

void BM_PbrRewriteViaQueue(benchmark::State& state) {
  hp::freertr::RouterConfigService service("MIA");
  service.queue().push(hp::freertr::ConfigMessage{0, kFig10Config});
  service.process_pending();
  std::uint64_t id = 1;
  for (auto _ : state) {
    service.queue().push(hp::freertr::ConfigMessage{
        id++, "pbr flow3 tunnel 3 nexthop 30.30.3.2\n"});
    benchmark::DoNotOptimize(service.process_pending());
  }
  state.SetLabel("single-PBR migration message");
}
BENCHMARK(BM_PbrRewriteViaQueue);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 10: PolKA configuration on freeRtr ===\n";
  std::cout << "(command grammar reconstructed from the paper's "
               "description; see DESIGN.md)\n\n";
  std::cout << kFig10Config << '\n';

  const auto config = hp::freertr::parse_config(kFig10Config);
  std::cout << "parsed: " << config.access_lists().size() << " ACL, "
            << config.tunnels().size() << " tunnel, "
            << config.pbr_entries().size() << " PBR entry\n";
  std::cout << "route_lookup(40.40.1.5 -> 40.40.2.2, TCP, ToS 3) -> tunnel "
            << *config.route_lookup(hp::freertr::parse_ipv4("40.40.1.5"),
                                    hp::freertr::parse_ipv4("40.40.2.2"), 6,
                                    3)
            << '\n';
  const bool round_trip =
      hp::freertr::parse_config(config.to_text()).to_text() ==
      config.to_text();
  std::cout << "to_text round trip: " << (round_trip ? "exact" : "DIVERGES")
            << "\n\n";

  return hp::benchjson::run_and_export(argc, argv, "fig10_config_parse");
}
