// Extension (paper Section VII / PolKA capability): failure recovery.
//
// A transatlantic flow runs on tunnel 1 (MIA-SAO-AMS).  At t = 60 s the
// MIA-SAO fibre is cut; the Controller detects the unhealthy tunnel and
// re-binds the flow to the best healthy candidate with a single PBR
// rewrite -- stateless PolKA cores need no updates at all.  Prints the
// throughput timeline around the failure and the recovery cost.

#include <iomanip>
#include <iostream>

#include "core/runtime.hpp"
#include "obs/export.hpp"

int main() {
  using namespace hp::core;
  std::cout << "=== Extension: link-failure recovery ===\n\n";
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();
  sim.set_sample_interval(1.0);

  FlowRequest request;
  request.name = "transfer";
  request.acl_name = "transfer";
  request.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
  request.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
  request.tos = 1;
  const auto index =
      controller.handle_new_flow(request, 0.0, Objective::kFirstConfigured);
  const auto flow = controller.managed(index).sim_flow;

  const auto& topo = sim.topology();
  const auto mia_sao =
      *topo.link_between(topo.index_of("MIA"), topo.index_of("SAO"));
  sim.fail_link(60.0, mia_sao);
  sim.run_until(62.0);  // detection delay: two telemetry periods

  const std::uint64_t revision_before = runtime.edge().config().revision();
  const std::size_t migrated =
      controller.recover_from_failures(62.0, Objective::kCurrentBandwidth);
  const std::uint64_t revision_after = runtime.edge().config().revision();
  sim.run_until(120.0);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "t(s)    rate(Mbps)   (MIA-SAO cut at t=60, recovery at "
               "t=62)\n";
  for (const auto& sample : sim.flow_rate_series(flow)) {
    const int t = static_cast<int>(sample.t_s);
    if (t % 10 != 0 && t != 61 && t != 62) continue;
    if (sample.t_s != t) continue;
    std::cout << std::setw(4) << t << std::setw(12) << sample.value << "  ";
    for (int i = 0; i < static_cast<int>(sample.value); ++i) std::cout << '#';
    std::cout << '\n';
  }

  std::cout << "\nflows migrated: " << migrated << "; tunnel now "
            << controller.managed(index).tunnel_id
            << "; edge config changes: " << revision_after - revision_before
            << " (one PBR rewrite)\n";
  std::cout << "core router updates required: 0 (stateless PolKA "
               "forwarding)\n";

  // Phase means straddling the cut: steady, outage, recovered.
  double steady = 0.0, recovered = 0.0;
  int ns = 0, nr = 0;
  for (const auto& sample : sim.flow_rate_series(flow)) {
    if (sample.t_s >= 10.0 && sample.t_s < 60.0) {
      steady += sample.value;
      ++ns;
    } else if (sample.t_s >= 70.0) {
      recovered += sample.value;
      ++nr;
    }
  }
  hp::obs::BenchReport report("ext_failure_recovery");
  report.add("steady_mbps", ns != 0 ? steady / ns : 0.0, "Mbps");
  report.add("recovered_mbps", nr != 0 ? recovered / nr : 0.0, "Mbps");
  report.add("flows_migrated", static_cast<double>(migrated), "flows");
  report.add("edge_config_changes",
             static_cast<double>(revision_after - revision_before), "rewrites");
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nshape check: throughput 20 -> 0 at the cut, restored to "
               "the best healthy\ntunnel's bottleneck (10 Mbps on "
               "MIA-CHI-AMS) after one control action.\n";
  return 0;
}
