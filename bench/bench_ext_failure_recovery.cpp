// Extension (paper Section VII / PolKA capability): failure recovery,
// measured on the compiled-label data plane.
//
// Two fabrics -- a 256-node ring (the worst case for reconvergence:
// every detour is long) and a fat-tree k=4 -- replay the same stream
// twice against an injector-generated single-link failure:
//
//   unprotected  the failure eagerly recompiles every crossing route
//                inside the event; each recompiled pair loses its next
//                `kLossWindow` packets (the convergence-loss model);
//   protected    enable_protection(1) pre-installs link-disjoint
//                backups, so the failure is an O(1) label swap per
//                pair -- zero recompiles in the window, zero window
//                loss.
//
// The headline numbers are packets lost per failure and the switchover
// wall clock (replay.failover.switchover_ns); the self-check enforces
// the PR's acceptance bar: protected runs must perform zero window
// recompiles and lose strictly fewer packets than unprotected ones.

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/traffic.hpp"

namespace {

constexpr std::size_t kLossWindow = 8;  // packets lost per recompiled pair

struct ModeOutcome {
  hp::scenario::ScenarioReport report;
  double switchover_ns_mean = 0.0;
  double stretch_pct_mean = 0.0;
  std::size_t backup_routes = 0;
  std::size_t backup_swaps = 0;
};

ModeOutcome run_mode(const hp::scenario::ScenarioSpec& spec, unsigned k) {
  hp::scenario::BuiltFabric fabric(hp::scenario::build_topology(spec));
  hp::scenario::PacketStream stream =
      hp::scenario::generate_traffic(fabric, spec.traffic);

  hp::scenario::FailureInjectorParams inject;
  inject.preset = hp::scenario::FailurePreset::kSingle;
  inject.seed = 42;
  inject.count = 1;
  inject.start_fraction = 0.40;
  inject.end_fraction = 0.60;

  hp::obs::MetricRegistry registry;
  hp::scenario::RunnerOptions options;
  options.threads = 2;
  options.failures = hp::scenario::make_failure_schedule(fabric.topology(),
                                                         inject);
  options.protection_k = k;
  options.loss_window_per_recompile = kLossWindow;
  options.metrics = &registry;

  ModeOutcome out;
  out.report = hp::scenario::ScenarioRunner(options).run(fabric, stream);
  out.backup_routes = fabric.compile_stats().backup_routes;
  out.backup_swaps = fabric.compile_stats().backup_swaps;
  const hp::obs::MetricsSnapshot snap = registry.snapshot();
  if (const auto* h = snap.find("replay.failover.switchover_ns")) {
    out.switchover_ns_mean = h->histogram.mean();
  }
  if (const auto* h = snap.find("replay.failover.stretch_pct")) {
    out.stretch_pct_mean = h->histogram.mean();
  }
  return out;
}

void emit(hp::obs::BenchReport& report, const std::string& scenario,
          const char* mode, const ModeOutcome& out) {
  auto& result = report.add(
      scenario + "/" + mode,
      static_cast<double>(out.report.failover_packets_lost), "packets", mode);
  result.counters.emplace_back(
      "window_recompiles",
      static_cast<double>(out.report.window_recompiles));
  result.counters.emplace_back(
      "backup_swapped_pairs",
      static_cast<double>(out.report.backup_swapped_pairs));
  result.counters.emplace_back(
      "lazy_repaired_pairs",
      static_cast<double>(out.report.lazy_repaired_pairs));
  result.counters.emplace_back(
      "unroutable_pairs", static_cast<double>(out.report.unroutable_pairs));
  result.counters.emplace_back(
      "rerouted_pairs", static_cast<double>(out.report.rerouted_pairs));
  result.counters.emplace_back("backup_routes",
                               static_cast<double>(out.backup_routes));
  result.counters.emplace_back("backup_swaps",
                               static_cast<double>(out.backup_swaps));
  result.counters.emplace_back("switchover_ns_mean", out.switchover_ns_mean);
  result.counters.emplace_back("stretch_pct_mean", out.stretch_pct_mean);
}

}  // namespace

int main() {
  std::cout << "=== Extension: hitless failure recovery ===\n\n";

  // The worst reconvergence case (ring detours are long) plus a real
  // Clos fabric from the registry.
  hp::scenario::ScenarioSpec ring;
  ring.name = "ring256/uniform";
  ring.family = hp::scenario::TopologyFamily::kRing;
  ring.a = 256;
  ring.traffic.pattern = hp::scenario::TrafficPattern::kUniformRandom;
  ring.traffic.packets = 1 << 15;
  ring.traffic.seed = 11;
  ring.traffic.max_pairs = 512;

  const hp::scenario::ScenarioSpec* fat_tree =
      hp::scenario::find_scenario("fat_tree_k4/uniform");
  if (fat_tree == nullptr) {
    std::cerr << "registry lost fat_tree_k4/uniform\n";
    return 1;
  }

  hp::obs::BenchReport report("ext_failure_recovery");
  bool ok = true;
  for (const hp::scenario::ScenarioSpec* spec :
       {static_cast<const hp::scenario::ScenarioSpec*>(&ring), fat_tree}) {
    const ModeOutcome unprotected = run_mode(*spec, 0);
    const ModeOutcome protected_ = run_mode(*spec, 1);
    emit(report, spec->name, "unprotected", unprotected);
    emit(report, spec->name, "protected", protected_);

    const std::size_t affected = protected_.report.backup_swapped_pairs +
                                 protected_.report.lazy_repaired_pairs +
                                 protected_.report.unroutable_pairs;
    std::printf(
        "%-22s affected=%zu  lost: unprotected=%zu protected=%zu  "
        "window recompiles: %zu -> %zu  switchover: %.0f -> %.0f ns\n",
        spec->name.c_str(), affected,
        unprotected.report.failover_packets_lost,
        protected_.report.failover_packets_lost,
        unprotected.report.window_recompiles,
        protected_.report.window_recompiles,
        unprotected.switchover_ns_mean, protected_.switchover_ns_mean);

    // The acceptance bar: the failure must actually bite, protection
    // must compile nothing in the window, and it must lose strictly
    // fewer packets than the eager recompile path.
    if (affected == 0) {
      std::cerr << spec->name << ": failure touched no route\n";
      ok = false;
    }
    if (protected_.report.window_recompiles != 0) {
      std::cerr << spec->name << ": protected run recompiled in-window\n";
      ok = false;
    }
    if (protected_.report.failover_packets_lost >=
        unprotected.report.failover_packets_lost) {
      std::cerr << spec->name
                << ": protection did not reduce packets lost\n";
      ok = false;
    }
    if (unprotected.report.wrong_egress != 0 ||
        protected_.report.wrong_egress != 0) {
      std::cerr << spec->name << ": wrong egress after failover\n";
      ok = false;
    }
  }

  std::cout << "\nwrote " << report.write_default() << '\n';
  if (!ok) {
    std::cerr << "self-check FAILED\n";
    return 1;
  }
  std::cout << "self-check passed: zero in-window recompiles with "
               "protection, strictly fewer packets lost\n";
  return 0;
}
