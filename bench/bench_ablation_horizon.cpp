// Ablation: multi-step forecast decay.  Hecate "computes the predicted
// values for the next 10 steps" by recursive one-step prediction; this
// measures how the error grows with the forecast horizon on both paths.

#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "obs/export.hpp"

namespace {

/// RMSE of the h-step-ahead recursive forecast evaluated by rolling the
/// trained service over the tail of the series.
double horizon_rmse(const std::vector<double>& series, std::size_t horizon) {
  hp::core::HecateConfig config;
  config.model = "RFR";
  config.history = 10;
  config.horizon = horizon;
  // Train on the first 75%, roll forecasts over the rest.
  const std::size_t split = series.size() * 3 / 4;
  hp::core::HecateService hecate(config);
  hecate.load_series("p",
                     std::vector<double>(series.begin(),
                                         series.begin() +
                                             static_cast<std::ptrdiff_t>(split)));
  hecate.fit("p");

  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t t = split; t + horizon < series.size(); t += horizon) {
    const auto forecast = hecate.forecast("p", horizon);
    const double actual = series[t + horizon - 1];
    const double err = forecast.back() - actual;
    acc += err * err;
    ++count;
    // Feed the *actual* observations in before the next forecast (the
    // model itself stays frozen; only the window advances).
    for (std::size_t k = 0; k < horizon; ++k) {
      hecate.observe("p", static_cast<double>(t + k), series[t + k]);
    }
  }
  return std::sqrt(acc / static_cast<double>(count));
}

}  // namespace

int main() {
  std::cout << "=== Ablation: forecast horizon (Hecate predicts 10 steps) "
               "===\n\n";
  const auto trace = hp::dataset::generate_uq_trace();
  hp::obs::BenchReport report("ablation_horizon");
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "horizon   RMSE(WiFi)  RMSE(LTE)\n";
  for (const std::size_t h : {1U, 2U, 3U, 5U, 10U}) {
    const double wifi = horizon_rmse(trace.wifi, h);
    const double lte = horizon_rmse(trace.lte, h);
    std::cout << std::setw(7) << h << std::setw(12) << wifi << std::setw(11)
              << lte << '\n';
    report.add("rmse/wifi/horizon" + std::to_string(h), wifi, "rmse");
    report.add("rmse/lte/horizon" + std::to_string(h), lte, "rmse");
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nreading: recursive feedback compounds the one-step error; "
               "the 10-step\nrecommendation horizon trades accuracy for "
               "look-ahead, which is fine for\npath *ranking* (relative "
               "order is preserved far longer than magnitude).\n";
  return 0;
}
