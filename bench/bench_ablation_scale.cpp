// Ablation: scaling from 10s to 100s of routers (the Section II-A
// concern: TE "has limitations in dynamic large network topology as
// networks grow from 10s to 100s of routers").
//
// Random ring-plus-chords WANs of growing size; for each size we
// measure what actually grows in this architecture:
//   * routeID bit length (the PolKA header cost) for k-shortest paths,
//   * CRT routeID computation time (control plane),
//   * per-hop mod time (data plane -- should stay flat),
//   * the k-path min-max LP solve time (optimizer),
//   * batched uint64 fast-path throughput across batch sizes.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <random>
#include <span>
#include <string>

#include "core/objective.hpp"
#include "obs/export.hpp"
#include "netsim/paths.hpp"
#include "polka/crc.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"

namespace {

using namespace hp::netsim;

/// Connected random WAN: a ring of `n` routers plus n/2 random chords.
Topology make_wan(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cap(5.0, 100.0);
  std::uniform_real_distribution<double> delay(1.0, 30.0);
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node("r" + std::to_string(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_duplex_link(i, (i + 1) % n, cap(rng), delay(rng));
  }
  for (std::size_t c = 0; c < n / 2; ++c) {
    const NodeIndex a = rng() % n;
    const NodeIndex b = rng() % n;
    if (a == b || topo.link_between(a, b)) continue;
    topo.add_duplex_link(a, b, cap(rng), delay(rng));
  }
  return topo;
}

template <typename F>
double time_us(F&& fn, int repeats = 50) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         repeats;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: topology scale (10s to 100s of routers) "
               "===\n\n";
  std::cout << "routers  hops  routeID(bits)  CRT(us)  per-hop mod(ns)  "
               "3-path LP(us)\n";
  std::cout << std::fixed << std::setprecision(1);
  hp::obs::BenchReport report("ablation_scale");

  for (const std::size_t n : {10U, 20U, 40U, 80U, 160U}) {
    const Topology topo = make_wan(n, n * 31 + 7);
    // Mirror into a PolKA fabric.
    hp::polka::PolkaFabric fabric(hp::polka::ModEngine::kTable);
    for (NodeIndex i = 0; i < topo.node_count(); ++i) {
      fabric.add_node(topo.node(i).name,
                      static_cast<unsigned>(topo.outgoing(i).size()) + 1);
    }
    for (NodeIndex i = 0; i < topo.node_count(); ++i) {
      const auto& out = topo.outgoing(i);
      for (unsigned p = 0; p < out.size(); ++p) {
        fabric.connect(i, p, topo.link(out[p]).to);
      }
    }

    // Longest of the 3 shortest paths across the diameter-ish pair.
    const auto paths = k_shortest_paths(topo, 0, n / 2, 3);
    const Path& longest = paths.back();
    const auto nodes = path_nodes(topo, longest);
    std::vector<std::size_t> fabric_path(nodes.begin(), nodes.end());
    const unsigned egress =
        static_cast<unsigned>(topo.outgoing(nodes.back()).size());

    const auto route = fabric.route_for_path(fabric_path, egress);
    const double crt_us = time_us(
        [&] { (void)fabric.route_for_path(fabric_path, egress); }, 20);

    const hp::polka::TableCrc crc(fabric.node(fabric_path[1]).poly);
    const double mod_ns =
        time_us([&] { (void)crc.remainder_bits(route.value); }, 2000) * 1e3;

    std::vector<double> capacities;
    for (const auto& p : paths) {
      capacities.push_back(topo.path_bottleneck_mbps(p));
    }
    double demand = 0.0;
    for (const double c : capacities) demand += 0.6 * c;
    const double lp_us = time_us(
        [&] { (void)hp::core::solve_k_path_min_max(demand, capacities); },
        200);

    std::cout << std::setw(7) << n << std::setw(6) << nodes.size() - 1
              << std::setw(14) << route.bit_length() << std::setw(9)
              << crt_us << std::setw(17) << mod_ns << std::setw(14) << lp_us
              << '\n';
    hp::obs::BenchResult& r = report.add(
        "per_hop_mod_ns/n" + std::to_string(n), mod_ns, "ns");
    r.counters.emplace_back("routeid_bits",
                            static_cast<double>(route.bit_length()));
    r.counters.emplace_back("crt_us", crt_us);
    r.counters.emplace_back("lp_us", lp_us);
  }

  // --- batched fast-path throughput vs batch size --------------------
  // Fixed 40-router WAN; the shortest route packs into a uint64 label.
  // Sweep the batch size to show where the flat arrays start paying
  // (amortized dispatch + hot fold tables).
  std::cout << "\nbatched uint64 fast path, 40-router WAN "
               "(packets/sec by batch size):\n";
  std::cout << "  batch      Mpkts/s    ns/pkt\n";
  {
    const std::size_t n = 40;
    const Topology topo = make_wan(n, 40 * 31 + 7);
    hp::polka::PolkaFabric fabric(hp::polka::ModEngine::kBitSerial);
    for (NodeIndex i = 0; i < topo.node_count(); ++i) {
      fabric.add_node(topo.node(i).name,
                      static_cast<unsigned>(topo.outgoing(i).size()) + 1);
    }
    for (NodeIndex i = 0; i < topo.node_count(); ++i) {
      const auto& out = topo.outgoing(i);
      for (unsigned p = 0; p < out.size(); ++p) {
        fabric.connect(i, p, topo.link(out[p]).to);
      }
    }
    const auto paths = k_shortest_paths(topo, 0, n / 2, 3);
    const auto nodes = path_nodes(topo, paths.front());
    std::vector<std::size_t> fabric_path(nodes.begin(), nodes.end());
    const unsigned egress =
        static_cast<unsigned>(topo.outgoing(nodes.back()).size());
    const auto route = fabric.route_for_path(fabric_path, egress);
    const auto label = hp::polka::pack_label(route);
    if (!label) {
      std::cout << "  (route does not fit a 64-bit label; skipped)\n";
    } else {
      const auto& fast = fabric.compiled();
      for (const std::size_t batch : {1U, 16U, 256U, 4096U, 65536U}) {
        std::vector<hp::polka::RouteLabel> labels(batch, *label);
        std::vector<hp::polka::PacketResult> results(batch);
        // Keep total work roughly constant across batch sizes.
        const int repeats = static_cast<int>(std::max<std::size_t>(
            1, (1u << 18) / batch));
        const double us = time_us(
            [&] {
              (void)fast.forward_batch(
                  labels, 0, std::span<hp::polka::PacketResult>(results));
            },
            repeats);
        const double ns_per_pkt = us * 1e3 / static_cast<double>(batch);
        std::cout << "  " << std::setw(5) << batch << std::setw(13)
                  << 1e3 / ns_per_pkt << std::setw(10) << ns_per_pkt << '\n';
        report.add("fastpath_ns_per_pkt/batch" + std::to_string(batch),
                   ns_per_pkt, "ns");
      }
    }
  }
  std::cout << "wrote " << report.write_default() << '\n';

  std::cout << "\nreading: the per-hop data-plane cost is *flat* in network "
               "size (it depends\nonly on the local nodeID degree and the "
               "routeID length), which is PolKA's\nscaling argument; header "
               "bits and control-plane CRT grow with path length,\nnot with "
               "the router population.\n";
  return 0;
}
