#pragma once
// Shared Google-Benchmark JSON export for the bench/ binaries.
//
// Every bench emits one machine-readable BENCH_<name>.json artifact
// (the hp-bench-v1 schema from obs/export.hpp) next to its console
// output, so CI can diff runs instead of scraping stdout.  The
// JsonExportReporter rides along the normal ConsoleReporter: it
// captures each finished Run's adjusted real time, unit, label and
// user counters, then delegates to the console printer, so the human
// output is untouched.
//
// Intentionally version-portable across Google Benchmark 1.6 .. 1.8:
// it touches only Run members that exist in both (benchmark_name(),
// GetAdjustedRealTime(), time_unit, report_label, iterations,
// counters) -- neither `error_occurred` (gone in 1.8) nor `skipped`
// (absent in 1.6).
//
// Plain (non-gbench) benches must NOT include this header (the build
// links Google Benchmark only into sources mentioning its include
// path); they write obs::BenchReport directly.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"

namespace hp::benchjson {

/// Console reporter that also accumulates an obs::BenchReport.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(std::string bench_name)
      : report_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      obs::BenchResult& r = report_.add(
          run.benchmark_name(), run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit), run.report_label);
      r.counters.emplace_back("iterations",
                              static_cast<double>(run.iterations));
      for (const auto& [name, counter] : run.counters) {
        r.counters.emplace_back(name, static_cast<double>(counter.value));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const obs::BenchReport& report() const noexcept {
    return report_;
  }

  /// Write BENCH_<bench>.json into $HP_BENCH_JSON_DIR (default ".");
  /// returns the written path.
  std::string write() const { return report_.write_default(); }

 private:
  obs::BenchReport report_;
};

/// The whole gbench main tail in one call: initialize, run every
/// registered benchmark through a JsonExportReporter, write
/// BENCH_<bench_name>.json, shut down.
inline int run_and_export(int argc, char** argv, std::string bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter(std::move(bench_name));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write();
  benchmark::Shutdown();
  return 0;
}

}  // namespace hp::benchjson
