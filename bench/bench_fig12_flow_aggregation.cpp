// Fig 12: flow aggregation with multiple paths.
//
// Regenerates the experiment-2 series: three ToS-tagged TCP flows all
// start on tunnel 1 (total limited to 20 Mbps); the optimizer with a
// bandwidth metric moves one flow to tunnel 2 and one to tunnel 3, and
// the aggregate throughput rises (paper: ~30 Mbps measured; fluid
// model: 35 Mbps = 20 + 10 + 5).

#include <iomanip>
#include <iostream>
#include <string>

#include "core/runtime.hpp"
#include "obs/export.hpp"

int main() {
  using namespace hp::core;
  std::cout << "=== Fig 12: flow aggregation over multiple paths ===\n\n";
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();
  sim.set_sample_interval(1.0);

  std::vector<std::size_t> flows;
  for (unsigned tos = 1; tos <= 3; ++tos) {
    FlowRequest request;
    request.name = "flow" + std::to_string(tos);
    request.acl_name = request.name;
    request.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
    request.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
    request.tos = tos;
    flows.push_back(
        controller.handle_new_flow(request, 0.0, Objective::kFirstConfigured));
  }
  sim.run_until(60.0);
  controller.reoptimize(flows[1], 60.0, Objective::kCurrentBandwidth);
  sim.run_until(65.0);
  controller.reoptimize(flows[2], 65.0, Objective::kCurrentBandwidth);
  sim.run_until(120.0);

  // Average throughput per flow in each phase (the Fig 12 bars).
  auto phase_mean = [&](std::size_t f, double t0, double t1) {
    const auto& series =
        sim.flow_rate_series(controller.managed(f).sim_flow);
    double acc = 0.0;
    int n = 0;
    for (const auto& s : series) {
      if (s.t_s >= t0 && s.t_s <= t1) {
        acc += s.value;
        ++n;
      }
    }
    return n > 0 ? acc / n : 0.0;
  };

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "             phase (i) 0-60s        phase (ii) 70-120s\n";
  std::cout << "flow   ToS   tunnel  Mbps           tunnel  Mbps\n";
  double total_before = 0.0, total_after = 0.0;
  const unsigned phase1_tunnels[3] = {1, 1, 1};
  hp::obs::BenchReport report("fig12_flow_aggregation");
  for (std::size_t k = 0; k < flows.size(); ++k) {
    const auto& managed = controller.managed(flows[k]);
    const double before = phase_mean(flows[k], 1.0, 59.0);
    const double after = phase_mean(flows[k], 70.0, 120.0);
    total_before += before;
    total_after += after;
    std::cout << "flow" << k + 1 << "    " << *managed.request.tos
              << "      " << phase1_tunnels[k] << "    " << std::setw(6)
              << before << "              " << managed.tunnel_id << "    "
              << std::setw(6) << after << '\n';
    hp::obs::BenchResult& r = report.add(
        "flow" + std::to_string(k + 1) + "_mbps_after", after, "Mbps");
    r.counters.emplace_back("mbps_before", before);
    r.counters.emplace_back("tunnel_after",
                            static_cast<double>(managed.tunnel_id));
  }
  std::cout << "total            " << std::setw(11) << total_before
            << "                   " << std::setw(6) << total_after << '\n';
  report.add("total_mbps_before", total_before, "Mbps");
  report.add("total_mbps_after", total_after, "Mbps");
  std::cout << "wrote " << report.write_default() << '\n';

  std::cout << '\n' << runtime.dashboard().link_occupation_report() << '\n';
  std::cout << "shape check vs paper: total rises from <=20 Mbps to ~"
            << total_after
            << " Mbps once flows spread over tunnels 1/2/3\n(paper measured "
               "~30 Mbps with real TCP; the fluid model reaches the full "
               "35).\n";
  return 0;
}
