// Segment-routing throughput: deep ring/torus streams whose routes
// outgrow one 64-bit label, replayed three ways:
//
//   segmented_replay  -- multi-segment routes on the uint64 fold fast
//                        path (waypoint re-labels, zero Poly work).
//                        ring-1024 and torus-32x32: the exact regime
//                        where the seed code left the fast path.
//   single_label      -- a shallow torus whose routes all fit one
//                        label, through the same replay primitive: the
//                        throughput class segmented replay must match.
//   seed_poly_fallback -- what the seed did with oversized routes: the
//                        full-path polynomial routeID walked hop by hop
//                        through the heap-allocating scalar engines.
//
// Items processed == packets forwarded, so compare items_per_second
// across variants.  Every stream is validated (no unpackable pairs, no
// wrong egress, no hop-cap kills) and the bench aborts loudly on any
// violation instead of publishing a number for a broken replay.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "polka/forwarding.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace {

using hp::scenario::BuiltFabric;
using hp::scenario::PacketStream;

constexpr std::size_t kMaxHops = 2048;

struct Workbench {
  std::unique_ptr<BuiltFabric> built;
  PacketStream stream;
  std::vector<hp::polka::PacketResult> expected;
  std::size_t multi_segment_pairs = 0;
};

hp::netsim::Topology make_topology(const std::string& which) {
  if (which == "ring1024") return hp::scenario::make_ring(1024);
  if (which == "torus32x32") return hp::scenario::make_torus(32, 32);
  if (which == "torus8x8") return hp::scenario::make_torus(8, 8);
  throw std::invalid_argument("unknown topology " + which);
}

/// Build (once per topology) the fabric plus a uniform 16k-packet
/// stream over 64 sampled pairs.
Workbench& cached_workbench(const std::string& which) {
  static std::map<std::string, Workbench> cache;
  const auto it = cache.find(which);
  if (it != cache.end()) return it->second;

  Workbench wb;
  wb.built = std::make_unique<BuiltFabric>(make_topology(which));
  hp::scenario::TrafficParams params;
  params.pattern = hp::scenario::TrafficPattern::kUniformRandom;
  params.packets = 1 << 14;
  params.max_pairs = 64;
  params.seed = 99;
  wb.stream = hp::scenario::generate_traffic(*wb.built, params);
  if (wb.stream.unpackable_pairs != 0 || wb.stream.unreachable_pairs != 0) {
    throw std::runtime_error(which + ": stream skipped pairs");
  }
  wb.expected.resize(wb.stream.pairs.size());
  for (std::size_t i = 0; i < wb.stream.pairs.size(); ++i) {
    wb.expected[i] = wb.stream.pairs[i].expected;
  }
  for (const hp::polka::SegmentRef& ref : wb.stream.seg_refs) {
    wb.multi_segment_pairs += ref.label_count > 1;
  }
  return cache.emplace(which, std::move(wb)).first->second;
}

/// Replay the cached stream through replay_shards (the ScenarioRunner
/// primitive) and publish packets/sec.  `expect_segments` asserts the
/// topology actually exercises multi-segment routes.
void run_replay(benchmark::State& state, const std::string& which,
                bool expect_segments) {
  const Workbench& wb = cached_workbench(which);
  if (expect_segments && wb.multi_segment_pairs == 0) {
    state.SkipWithError((which + ": no multi-segment pairs").c_str());
    return;
  }
  const auto& fast = wb.built->compiled();
  const hp::scenario::SegmentTable table{
      wb.stream.seg_labels, wb.stream.seg_waypoints, wb.stream.seg_refs};
  std::size_t packets = 0;
  std::size_t mods = 0;
  for (auto _ : state) {
    const hp::scenario::ScenarioReport report = hp::scenario::replay_shards(
        fast, wb.stream.labels, wb.stream.ingress, wb.stream.pair,
        wb.expected, {}, table, /*threads=*/1, /*batch_size=*/1024, kMaxHops);
    if (report.wrong_egress != 0 || report.ttl_expired != 0) {
      state.SkipWithError((which + ": replay diverged").c_str());
      return;
    }
    packets = report.packets;
    mods += report.mod_operations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          static_cast<std::int64_t>(state.iterations()));
  // Deep routes do hundreds of mods per packet; mods/sec is the number
  // comparable across topologies of different depth.
  state.counters["mods_per_second"] = benchmark::Counter(
      static_cast<double>(mods), benchmark::Counter::kIsRate);
  state.counters["pairs"] = static_cast<double>(wb.stream.pairs.size());
  state.counters["segmented_pairs"] =
      static_cast<double>(wb.multi_segment_pairs);
}

/// The seed's oversized-route behaviour, reconstructed: materialize the
/// full-path polynomial routeID of each multi-segment pair and walk
/// packets through PolkaFabric::forward (per-hop Poly remainders).
void run_seed_poly_fallback(benchmark::State& state, const std::string& which,
                            std::size_t packets_per_pair) {
  Workbench& wb = cached_workbench(which);
  BuiltFabric& built = *wb.built;

  std::vector<hp::polka::RouteId> routes;
  std::vector<std::size_t> firsts;
  for (std::size_t lane = 0;
       lane < wb.stream.pairs.size() && routes.size() < 8; ++lane) {
    if (wb.stream.seg_refs[lane].label_count <= 1) continue;
    const auto* route = built.route(wb.stream.pairs[lane].src,
                                    wb.stream.pairs[lane].dst);
    std::vector<std::size_t> fabric_path;
    fabric_path.push_back(route->ingress);
    for (const auto l : route->path) {
      fabric_path.push_back(
          built.fabric_index(built.topology().link(l).to));
    }
    routes.push_back(built.fabric().route_for_path(
        fabric_path, built.egress_port(fabric_path.back())));
    firsts.push_back(fabric_path.front());
  }
  if (routes.empty()) {
    state.SkipWithError((which + ": no multi-segment pairs").c_str());
    return;
  }

  std::size_t packets = 0;
  for (auto _ : state) {
    packets = 0;
    for (std::size_t r = 0; r < routes.size(); ++r) {
      for (std::size_t p = 0; p < packets_per_pair; ++p) {
        const auto trace =
            built.fabric().forward(routes[r], firsts[r], kMaxHops);
        benchmark::DoNotOptimize(trace.mod_operations);
        ++packets;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["pairs"] = static_cast<double>(routes.size());
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string which : {"ring1024", "torus32x32"}) {
    benchmark::RegisterBenchmark(
        ("segmented_replay/" + which).c_str(),
        [which](benchmark::State& s) { run_replay(s, which, true); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("seed_poly_fallback/" + which).c_str(),
        [which](benchmark::State& s) { run_seed_poly_fallback(s, which, 64); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "single_label/torus8x8",
      [](benchmark::State& s) { run_replay(s, "torus8x8", false); })
      ->Unit(benchmark::kMillisecond);
  return hp::benchjson::run_and_export(argc, argv, "segment_routes");
}
