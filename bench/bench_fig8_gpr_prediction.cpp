// Fig 8: observed vs predicted bandwidth with the *worst* model
// (Gaussian Process with the default RBF(1.0) kernel and no target
// normalization).  The paper shows "a big variation between the
// observed and predicted bandwidth"; the mechanism is the collapse to
// the prior mean, which this bench quantifies.

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "obs/export.hpp"

int main() {
  std::cout << "=== Fig 8: Gaussian Process observed vs predicted ===\n\n";
  const auto trace = hp::dataset::generate_uq_trace();
  std::cout << std::fixed << std::setprecision(2);
  hp::obs::BenchReport report("fig8_gpr_prediction");

  for (const auto& [path_name, series] :
       {std::pair{"WiFi (Path 1)", &trace.wifi},
        std::pair{"LTE (Path 2)", &trace.lte}}) {
    auto gpr = hp::ml::make_regressor("GPR");
    const auto gpr_result = hp::core::run_pipeline(*gpr, *series);
    auto rfr = hp::ml::make_regressor("RFR");
    const auto rfr_result = hp::core::run_pipeline(*rfr, *series);

    // How far the GPR predictions stray from the test-series mean: the
    // collapse-to-prior signature is a near-constant prediction.
    const double obs_mean = hp::ml::mean(gpr_result.observed);
    double pred_spread = 0.0;
    const double pred_mean = hp::ml::mean(gpr_result.predicted);
    for (const double p : gpr_result.predicted) {
      pred_spread += (p - pred_mean) * (p - pred_mean);
    }
    pred_spread =
        std::sqrt(pred_spread / static_cast<double>(gpr_result.predicted.size()));
    double obs_spread = 0.0;
    for (const double o : gpr_result.observed) {
      obs_spread += (o - obs_mean) * (o - obs_mean);
    }
    obs_spread =
        std::sqrt(obs_spread / static_cast<double>(gpr_result.observed.size()));

    std::cout << path_name << ":\n";
    std::cout << "  GPR RMSE " << gpr_result.rmse << "  vs RFR RMSE "
              << rfr_result.rmse << "  (ratio "
              << gpr_result.rmse / rfr_result.rmse << "x worse)\n";
    std::cout << "  GPR R^2 "
              << hp::ml::r2(gpr_result.observed, gpr_result.predicted)
              << " (paper shape: grossly off)\n";
    std::cout << "  prediction spread " << pred_spread
              << " vs observed spread " << obs_spread
              << "  -> collapse toward the prior mean\n\n";
    hp::obs::BenchResult& r = report.add(
        std::string("gpr_rmse/") + path_name, gpr_result.rmse, "rmse");
    r.counters.emplace_back("rfr_rmse", rfr_result.rmse);
    r.counters.emplace_back(
        "gpr_r2", hp::ml::r2(gpr_result.observed, gpr_result.predicted));
    r.counters.emplace_back("pred_spread", pred_spread);
    r.counters.emplace_back("obs_spread", obs_spread);
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "shape check: GPR is several times worse than RFR on both "
               "paths,\nas in the paper (34.75/14.23 and 52.43/6.73).\n";
  return 0;
}
