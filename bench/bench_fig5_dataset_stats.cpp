// Fig 5b: the UQ wireless bandwidth trace.  Prints the per-regime
// statistics and text strip charts of the two series so the documented
// shape (WiFi strong indoors, LTE strong outdoors) is verifiable.

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "dataset/uq_wireless.hpp"
#include "obs/export.hpp"

namespace {

struct Stats {
  double mean = 0.0;
  double sd = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Stats stats_between(const std::vector<double>& v, std::size_t a,
                    std::size_t b) {
  Stats s;
  s.min = v[a];
  s.max = v[a];
  for (std::size_t i = a; i < b; ++i) {
    s.mean += v[i];
    s.min = std::min(s.min, v[i]);
    s.max = std::max(s.max, v[i]);
  }
  s.mean /= static_cast<double>(b - a);
  for (std::size_t i = a; i < b; ++i) {
    s.sd += (v[i] - s.mean) * (v[i] - s.mean);
  }
  s.sd = std::sqrt(s.sd / static_cast<double>(b - a));
  return s;
}

std::string strip(const std::vector<double>& v, std::size_t width = 64) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string out;
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t i0 = b * v.size() / width;
    const std::size_t i1 = std::max(i0 + 1, (b + 1) * v.size() / width);
    double acc = 0.0;
    for (std::size_t i = i0; i < i1; ++i) acc += v[i];
    const double mean = acc / static_cast<double>(i1 - i0);
    const double norm = hi > lo ? (mean - lo) / (hi - lo) : 0.5;
    out.push_back(kLevels[static_cast<std::size_t>(
        std::round(norm * (sizeof(kLevels) - 2)))]);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Fig 5b: WiFi (Path 1) vs LTE (Path 2) bandwidth ===\n";
  std::cout << "(synthetic stand-in for the UQ June-2017 trace; seeded,\n"
               " same regime structure: indoor 0-100 s, walk, outdoor)\n\n";
  const auto trace = hp::dataset::generate_uq_trace();

  std::cout << "WiFi  0-500s [" << strip(trace.wifi) << "]\n";
  std::cout << "LTE   0-500s [" << strip(trace.lte) << "]\n\n";

  std::cout << std::fixed << std::setprecision(1);
  hp::obs::BenchReport report("fig5_dataset_stats");
  std::cout << "regime        series   mean    sd     min    max (Mbps)\n";
  const std::pair<const char*, std::pair<std::size_t, std::size_t>> regimes[] =
      {{"indoor ", {0, 100}}, {"walking", {100, 180}}, {"outdoor", {180, 500}}};
  for (const auto& [label, span] : regimes) {
    for (const auto& [series_name, series] :
         {std::pair{"WiFi", &trace.wifi}, std::pair{"LTE ", &trace.lte}}) {
      const Stats s = stats_between(*series, span.first, span.second);
      std::cout << label << "       " << series_name << "   " << std::setw(6)
                << s.mean << ' ' << std::setw(6) << s.sd << ' ' << std::setw(6)
                << s.min << ' ' << std::setw(6) << s.max << '\n';
      std::string regime(label);
      while (!regime.empty() && regime.back() == ' ') regime.pop_back();
      std::string name(series == &trace.wifi ? "wifi" : "lte");
      hp::obs::BenchResult& r = report.add(
          "mean_mbps/" + regime + "/" + name, s.mean, "Mbps");
      r.counters.emplace_back("sd", s.sd);
      r.counters.emplace_back("min", s.min);
      r.counters.emplace_back("max", s.max);
    }
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nshape check (as in the paper): WiFi >> LTE indoors; "
               "LTE >> WiFi outdoors.\n";
  return 0;
}
