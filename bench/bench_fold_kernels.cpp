// Fold-kernel shootout: the slice-by-8 table fold vs the PCLMUL
// Barrett fold, on the same streams over the same fabrics.
//
//   replay/<topo>/<kernel>  -- replay_shards over a uniform stream with
//                              the CompiledFabric forced onto one
//                              kernel.  items_per_second = packets/sec;
//                              the state_bytes counter is the
//                              forwarding state the kernel's hot path
//                              drags through cache (table: 16 KB/node,
//                              so ring-1024 carries a ~16 MB table set
//                              that blows L2; clmul-barrett: 32 B/node).
//   fold_one/<kernel>       -- a single node's raw fold, back to back
//                              (latency-bound upper bound on mods/sec).
//
// Every replay is validated (no wrong egress, no hop-cap kills) and
// aborts loudly instead of publishing a number for a broken run.  The
// clmul variants register only when the CPU supports PCLMUL.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gf2/barrett.hpp"
#include "gf2/irreducible.hpp"
#include "polka/fastpath.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace {

using hp::polka::CompiledFabric;
using hp::polka::FoldKernel;
using hp::scenario::BuiltFabric;
using hp::scenario::PacketStream;

constexpr std::size_t kMaxHops = 2048;

struct Workbench {
  std::unique_ptr<BuiltFabric> built;
  PacketStream stream;
  std::vector<hp::polka::PacketResult> expected;
  // One compiled fabric per kernel, so toggling costs nothing per
  // iteration and each variant reports its own state footprint.
  std::map<FoldKernel, std::unique_ptr<CompiledFabric>> compiled;
};

hp::netsim::Topology make_topology(const std::string& which) {
  if (which == "ring1024") return hp::scenario::make_ring(1024);
  if (which == "torus32x32") return hp::scenario::make_torus(32, 32);
  if (which == "fat_tree8") return hp::scenario::make_fat_tree(8);
  if (which == "leaf_spine16x32") return hp::scenario::make_leaf_spine(16, 32);
  if (which == "rr256d4") return hp::scenario::make_random_regular(256, 4, 7);
  throw std::invalid_argument("unknown topology " + which);
}

Workbench& cached_workbench(const std::string& which) {
  static std::map<std::string, Workbench> cache;
  const auto it = cache.find(which);
  if (it != cache.end()) return it->second;

  Workbench wb;
  wb.built = std::make_unique<BuiltFabric>(make_topology(which));
  hp::scenario::TrafficParams params;
  params.pattern = hp::scenario::TrafficPattern::kUniformRandom;
  params.packets = 1 << 14;
  params.max_pairs = 64;
  params.seed = 99;
  wb.stream = hp::scenario::generate_traffic(*wb.built, params);
  if (wb.stream.unpackable_pairs != 0 || wb.stream.unreachable_pairs != 0) {
    throw std::runtime_error(which + ": stream skipped pairs");
  }
  wb.expected.resize(wb.stream.pairs.size());
  for (std::size_t i = 0; i < wb.stream.pairs.size(); ++i) {
    wb.expected[i] = wb.stream.pairs[i].expected;
  }
  wb.compiled.emplace(FoldKernel::kTable,
                      std::make_unique<CompiledFabric>(wb.built->fabric(),
                                                       FoldKernel::kTable));
  if (hp::polka::clmul_fold_supported()) {
    wb.compiled.emplace(
        FoldKernel::kClmulBarrett,
        std::make_unique<CompiledFabric>(wb.built->fabric(),
                                         FoldKernel::kClmulBarrett));
  }
  return cache.emplace(which, std::move(wb)).first->second;
}

void run_replay(benchmark::State& state, const std::string& which,
                FoldKernel kernel) {
  const Workbench& wb = cached_workbench(which);
  const CompiledFabric& fast = *wb.compiled.at(kernel);
  const hp::scenario::SegmentTable table{
      wb.stream.seg_labels, wb.stream.seg_waypoints, wb.stream.seg_refs};
  std::size_t packets = 0;
  std::size_t mods = 0;
  for (auto _ : state) {
    const hp::scenario::ScenarioReport report = hp::scenario::replay_shards(
        fast, wb.stream.labels, wb.stream.ingress, wb.stream.pair,
        wb.expected, {}, table, /*threads=*/1, /*batch_size=*/1024, kMaxHops);
    if (report.wrong_egress != 0 || report.ttl_expired != 0) {
      state.SkipWithError((which + ": replay diverged").c_str());
      return;
    }
    packets = report.packets;
    mods += report.mod_operations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["mods_per_second"] = benchmark::Counter(
      static_cast<double>(mods), benchmark::Counter::kIsRate);
  state.counters["state_bytes"] =
      static_cast<double>(fast.forwarding_state_bytes());
  state.counters["state_bytes_per_node"] =
      static_cast<double>(fast.forwarding_state_bytes()) /
      static_cast<double>(fast.node_count());
}

void run_fold_one(benchmark::State& state, FoldKernel kernel) {
  // A degree-16 generator: representative of mid-sized fabric nodes.
  const hp::gf2::Poly g = hp::gf2::irreducible_of_degree(16).front();
  const hp::polka::LabelFoldEngine table(g);
  const hp::gf2::fixed::Barrett64 constants =
      hp::gf2::fixed::make_barrett(g.to_uint64());
  std::uint64_t label = 0x9E3779B97F4A7C15ull;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    // Feed each fold's output into the next label so the chain is
    // latency-bound like a real walk.
    if (kernel == FoldKernel::kTable) {
      acc = table.remainder(label);
    } else {
      acc = hp::polka::clmul_barrett_remainder(constants, label);
    }
    label = (label << 1) ^ acc ^ 1;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<FoldKernel> kernels{FoldKernel::kTable};
  if (hp::polka::clmul_fold_supported()) {
    kernels.push_back(FoldKernel::kClmulBarrett);
  }
  for (const std::string which : {"ring1024", "torus32x32", "fat_tree8",
                                  "leaf_spine16x32", "rr256d4"}) {
    for (const FoldKernel kernel : kernels) {
      benchmark::RegisterBenchmark(
          ("replay/" + which + "/" + hp::polka::to_string(kernel)).c_str(),
          [which, kernel](benchmark::State& s) { run_replay(s, which, kernel); })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const FoldKernel kernel : kernels) {
    benchmark::RegisterBenchmark(
        (std::string("fold_one/") + hp::polka::to_string(kernel)).c_str(),
        [kernel](benchmark::State& s) { run_fold_one(s, kernel); });
  }
  return hp::benchjson::run_and_export(argc, argv, "fold_kernels");
}
