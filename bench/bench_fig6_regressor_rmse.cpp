// Fig 6: RMSE of the eighteen regression models on WiFi (Path 1) and
// LTE (Path 2), i.e. the scatter-plot coordinates of the paper.
//
// Pipeline per the paper's Section V-B: 10-sample history windows,
// chronological 75/25 split, StandardScaler fit on the training set,
// sklearn-default hyperparameters, RMSE on the inverse-transformed test
// predictions.  Absolute numbers differ from the paper (synthetic
// trace), but the ranking shape must hold: RFR/GBR in the best cluster,
// GPR worst by a wide margin, Lasso/ElasticNet weak.

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <map>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "obs/export.hpp"

int main() {
  std::cout << "=== Fig 6: regressor RMSE scatter (WiFi, LTE) ===\n\n";
  const auto trace = hp::dataset::generate_uq_trace();

  const auto wifi_scores = hp::core::evaluate_catalog(trace.wifi, 10, 0.75);
  const auto lte_scores = hp::core::evaluate_catalog(trace.lte, 10, 0.75);

  // The paper's reported (WiFi, LTE) coordinates for reference.
  const std::map<std::string, std::pair<double, double>> paper{
      {"AdaBoostR", {19.29, 6.60}}, {"ARDR", {18.28, 6.62}},
      {"Bagging", {18.30, 6.37}},   {"DTR", {17.54, 8.25}},
      {"ElasticNet", {22.39, 6.60}}, {"GBR", {13.96, 6.96}},
      {"GPR", {34.75, 52.43}},      {"HGBR", {15.75, 7.32}},
      {"HuberR", {19.00, 6.35}},    {"Lasso", {23.46, 7.36}},
      {"LR", {18.36, 6.50}},        {"RANSACR", {19.57, 6.78}},
      {"RFR", {14.23, 6.73}},       {"Ridge", {18.23, 6.49}},
      {"SGDR", {17.51, 6.29}},      {"SVM_Linear", {18.82, 6.36}},
      {"SVM_RBF", {18.95, 6.36}},   {"TheilSenR", {16.97, 6.45}},
  };

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "label            ours(WiFi)  ours(LTE) | paper(WiFi) "
               "paper(LTE)\n";
  std::cout << "--------------------------------------------------------"
               "-----\n";
  hp::obs::BenchReport report("fig6_regressor_rmse");
  for (std::size_t i = 0; i < wifi_scores.size(); ++i) {
    const auto& w = wifi_scores[i];
    const auto& l = lte_scores[i];
    const auto ref = paper.at(w.short_name);
    std::cout << std::left << std::setw(16) << w.label << std::right
              << std::setw(10) << w.rmse << ' ' << std::setw(10) << l.rmse
              << " | " << std::setw(10) << ref.first << ' ' << std::setw(10)
              << ref.second << '\n';
    hp::obs::BenchResult& r =
        report.add("rmse/wifi/" + w.short_name, w.rmse, "rmse");
    r.counters.emplace_back("paper_wifi", ref.first);
    hp::obs::BenchResult& r2 =
        report.add("rmse/lte/" + w.short_name, l.rmse, "rmse");
    r2.counters.emplace_back("paper_lte", ref.second);
  }
  std::cout << "wrote " << report.write_default() << '\n';

  // Shape checks the paper draws from this figure.
  auto rank_of = [&](const std::vector<hp::core::ModelScore>& scores,
                     const std::string& name) {
    std::vector<double> rmses;
    double target = 0.0;
    for (const auto& s : scores) {
      rmses.push_back(s.rmse);
      if (s.short_name == name) target = s.rmse;
    }
    std::sort(rmses.begin(), rmses.end());
    return static_cast<std::size_t>(
               std::lower_bound(rmses.begin(), rmses.end(), target) -
               rmses.begin()) +
           1;
  };
  std::cout << "\nshape checks (rank of 18, 1 = best):\n";
  std::cout << "  RFR  rank: WiFi " << rank_of(wifi_scores, "RFR") << ", LTE "
            << rank_of(lte_scores, "RFR") << "  (paper: best cluster)\n";
  std::cout << "  GBR  rank: WiFi " << rank_of(wifi_scores, "GBR") << ", LTE "
            << rank_of(lte_scores, "GBR") << "  (paper: best cluster)\n";
  std::cout << "  GPR  rank: WiFi " << rank_of(wifi_scores, "GPR") << ", LTE "
            << rank_of(lte_scores, "GPR")
            << "  (paper: excluded from plot, worst by far)\n";
  std::cout << "  Lasso rank: WiFi " << rank_of(wifi_scores, "Lasso")
            << ", LTE " << rank_of(lte_scores, "Lasso")
            << "  (paper: weak tail)\n";
  return 0;
}
