// Fig 11: agile migration to a lower-latency path.
//
// Regenerates the experiment-1 series: ping RTT host1 <-> host2 on
// tunnel 1 (MIA-SAO-AMS, 20 ms transatlantic hop) for 60 s, then the
// optimizer's latency-minimizing answer (tunnel 2, MIA-CHI-AMS) is
// installed with a single PBR rewrite and the RTT steps down.

#include <iomanip>
#include <iostream>

#include "core/runtime.hpp"
#include "obs/export.hpp"

int main() {
  using namespace hp::core;
  std::cout << "=== Fig 11: agile migration to a lower-latency path ===\n\n";
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();

  FlowRequest ping;
  ping.name = "icmp";
  ping.acl_name = "icmp";
  ping.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
  ping.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
  ping.protocol = 1;
  ping.demand_mbps = 0.5;
  const auto index =
      runtime.controller().handle_new_flow(ping, 0.0, Objective::kFirstConfigured);
  const auto flow = runtime.controller().managed(index).sim_flow;

  // Ping samples follow the flow's current path: record both phases.
  std::vector<std::pair<double, double>> rtt_series;
  for (int t = 0; t <= 120; ++t) {
    sim.schedule_callback(static_cast<double>(t),
                          [&rtt_series, flow](hp::netsim::Simulator& s) {
                            rtt_series.emplace_back(
                                s.now(), s.path_rtt_ms(s.flow_path(flow)));
                          });
  }
  sim.run_until(60.0);
  const unsigned chosen =
      runtime.controller().reoptimize(index, 60.0, Objective::kMinLatency);
  sim.run_until(120.0);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "t(s)   RTT(ms)   (migration to tunnel " << chosen
            << " at t=60)\n";
  for (const auto& [t, rtt] : rtt_series) {
    if (static_cast<int>(t) % 10 != 0) continue;
    std::cout << std::setw(5) << t << std::setw(9) << rtt << "  ";
    const int bars = static_cast<int>(rtt / 2.0);
    for (int i = 0; i < bars; ++i) std::cout << '#';
    std::cout << '\n';
  }

  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (const auto& [t, rtt] : rtt_series) {
    if (t < 60.0) {
      before += rtt;
      ++nb;
    } else if (t > 60.0) {
      after += rtt;
      ++na;
    }
  }
  before /= nb != 0 ? nb : 1;
  after /= na != 0 ? na : 1;
  std::cout << "\nmean RTT: " << before << " ms -> " << after
            << " ms (improvement " << before - after << " ms, "
            << std::setprecision(0)
            << (before > 0.0 ? 100.0 * (before - after) / before : 0.0)
            << "%)\n";
  std::cout << "edge PBR rewrites required: 1 (tunnel "
            << runtime.edge().config().find_pbr("icmp")->tunnel_id << ")\n";
  hp::obs::BenchReport report("fig11_latency_migration");
  hp::obs::BenchResult& r = report.add("mean_rtt_before_ms", before, "ms");
  r.counters.emplace_back("samples", static_cast<double>(nb));
  hp::obs::BenchResult& r2 = report.add("mean_rtt_after_ms", after, "ms");
  r2.counters.emplace_back("samples", static_cast<double>(na));
  report.add("rtt_improvement_ms", before - after, "ms");
  report.add("migration_tunnel", static_cast<double>(chosen), "id");
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nshape check vs paper: RTT steps down at the migration "
               "instant;\ncore routers untouched (stateless PolKA "
               "forwarding).\n";
  return 0;
}
