// Fig 2 + Eqs 1-3: the two-path demand-split objectives of Section III,
// solved exactly, plus LP-solver microbenchmarks as the path count grows.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <iomanip>
#include <iostream>

#include "core/objective.hpp"

namespace {

using namespace hp::core;

void BM_TwoPathDelayObjective(benchmark::State& state) {
  const TwoPathProblem p{6.0, 8.0, 8.0, 1.0, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_delay_objective(p));
  }
  state.SetLabel("Eq 3 golden-section");
}
BENCHMARK(BM_TwoPathDelayObjective);

void BM_KPathMinMaxLp(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<double> capacities(k);
  for (std::size_t i = 0; i < k; ++i) {
    capacities[i] = 5.0 + static_cast<double>(i % 7) * 3.0;
  }
  double demand = 0.0;
  for (const double c : capacities) demand += 0.7 * c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_k_path_min_max(demand, capacities));
  }
  state.SetLabel(std::to_string(k) + "-path min-max LP (simplex)");
}
BENCHMARK(BM_KPathMinMaxLp)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 2 / Eqs 1-3: optimal demand splitting ===\n";
  std::cout << std::fixed << std::setprecision(3);
  // The Fig 2 style instance: h = 8 over two c = 6 paths.
  const TwoPathProblem p{8.0, 6.0, 6.0, 1.0, 2.0};

  const DemandSplit lin = solve_linear_cost(p);
  std::cout << "Eq 2 (linear cost, xi = 1 vs 2):  x_sd = " << lin.x1
            << ", x_sid = " << lin.x2 << ", F = " << lin.objective << '\n';

  const DemandSplit util = solve_min_max_utilization(p);
  std::cout << "min-max utilization:              x_sd = " << util.x1
            << ", x_sid = " << util.x2 << ", max util = " << util.objective
            << '\n';

  const DemandSplit delay = solve_delay_objective({6.0, 6.0, 6.0, 1.0, 1.0});
  std::cout << "Eq 3 (delay, h = 6):              x_sd = " << delay.x1
            << ", x_sid = " << delay.x2 << ", F = " << delay.objective
            << "  (direct path favoured: via path pays twice)\n";

  const auto k3 = solve_k_path_min_max(28.0, {20.0, 10.0, 5.0});
  std::cout << "3-tunnel LP (Fig 12 capacities, h = 28): x = {" << k3[0]
            << ", " << k3[1] << ", " << k3[2]
            << "}  (equal 0.8 utilization)\n\n";

  return hp::benchjson::run_and_export(argc, argv, "fig2_minmax_lp");
}
