// Observability-overhead pin: the same ring-1024 replay with the
// metric registry detached vs attached.
//
//   replay/ring1024/metrics_off  -- replay_shards with metrics = nullptr
//   replay/ring1024/metrics_on   -- same stream, a MetricRegistry wired
//
// Both report items_per_second = packets/sec, so the CI artifact
// (BENCH_obs_overhead.json) carries the two pps numbers side by side
// and a diff can assert the budget: metrics on must stay within 2% of
// metrics off.  The registry cost is one sharded relaxed-atomic add per
// 1024-packet flush plus per-slice bookkeeping, so the expected gap is
// well under the budget -- this bench exists to catch regressions that
// move metric updates into the per-packet loop.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace {

using hp::scenario::BuiltFabric;
using hp::scenario::PacketStream;

constexpr std::size_t kMaxHops = 2048;

struct Workbench {
  std::unique_ptr<BuiltFabric> built;
  PacketStream stream;
  std::vector<hp::polka::PacketResult> expected;
};

Workbench& cached_workbench() {
  static Workbench* wb = [] {
    auto* w = new Workbench;
    w->built = std::make_unique<BuiltFabric>(hp::scenario::make_ring(1024));
    hp::scenario::TrafficParams params;
    params.pattern = hp::scenario::TrafficPattern::kUniformRandom;
    params.packets = 1 << 14;
    params.max_pairs = 64;
    params.seed = 99;
    w->stream = hp::scenario::generate_traffic(*w->built, params);
    if (w->stream.unpackable_pairs != 0 || w->stream.unreachable_pairs != 0) {
      throw std::runtime_error("ring1024: stream skipped pairs");
    }
    w->expected.resize(w->stream.pairs.size());
    for (std::size_t i = 0; i < w->stream.pairs.size(); ++i) {
      w->expected[i] = w->stream.pairs[i].expected;
    }
    return w;
  }();
  return *wb;
}

void run_replay(benchmark::State& state, bool with_metrics) {
  const Workbench& wb = cached_workbench();
  const hp::polka::CompiledFabric fast(wb.built->fabric());
  const hp::scenario::SegmentTable table{
      wb.stream.seg_labels, wb.stream.seg_waypoints, wb.stream.seg_refs};
  hp::obs::MetricRegistry registry;
  hp::obs::MetricRegistry* metrics = with_metrics ? &registry : nullptr;
  std::size_t packets = 0;
  for (auto _ : state) {
    const hp::scenario::ScenarioReport report = hp::scenario::replay_shards(
        fast, wb.stream.labels, wb.stream.ingress, wb.stream.pair,
        wb.expected, {}, table, /*threads=*/1, /*batch_size=*/1024, kMaxHops,
        metrics);
    if (report.wrong_egress != 0 || report.ttl_expired != 0) {
      state.SkipWithError("ring1024: replay diverged");
      return;
    }
    packets = report.packets;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets) *
                          static_cast<std::int64_t>(state.iterations()));
  if (with_metrics) {
    state.counters["replay_packets_counted"] = static_cast<double>(
        registry.snapshot().counter_or("replay.packets"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark(
      "replay/ring1024/metrics_off",
      [](benchmark::State& s) { run_replay(s, false); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "replay/ring1024/metrics_on",
      [](benchmark::State& s) { run_replay(s, true); })
      ->Unit(benchmark::kMillisecond);
  return hp::benchjson::run_and_export(argc, argv, "obs_overhead");
}
