// Ablation: data-plane mod engines.  PolKA's claim is that the mod is
// CRC-hardware-friendly; in software the staged table engine should beat
// the bit-serial LFSR by roughly the 8x staging factor, with the exact
// Euclidean division as the reference.  Sweeps generator degree and
// routeID length.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_json.hpp"
#include "gf2/irreducible.hpp"
#include "polka/crc.hpp"

namespace {

using hp::gf2::Poly;

Poly random_route(int bits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Poly p;
  for (int i = 0; i < bits - 1; ++i) {
    if (rng() & 1) p.set_coeff(static_cast<unsigned>(i), true);
  }
  p.set_coeff(static_cast<unsigned>(bits - 1), true);
  return p;
}

Poly generator_of_degree(unsigned degree) {
  return hp::gf2::irreducible_of_degree(degree).front();
}

void BM_Mod_BitSerial(benchmark::State& state) {
  const hp::polka::BitSerialCrc crc(
      generator_of_degree(static_cast<unsigned>(state.range(0))));
  const Poly route = random_route(static_cast<int>(state.range(1)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder(route));
  }
  state.SetLabel("deg=" + std::to_string(state.range(0)) +
                 " routeID=" + std::to_string(state.range(1)) + "b");
}
BENCHMARK(BM_Mod_BitSerial)
    ->Args({4, 32})->Args({8, 32})->Args({16, 32})
    ->Args({8, 64})->Args({8, 128})->Args({8, 256});

void BM_Mod_Table(benchmark::State& state) {
  const hp::polka::TableCrc crc(
      generator_of_degree(static_cast<unsigned>(state.range(0))));
  const Poly route = random_route(static_cast<int>(state.range(1)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.remainder_bits(route));
  }
  state.SetLabel("deg=" + std::to_string(state.range(0)) +
                 " routeID=" + std::to_string(state.range(1)) + "b");
}
BENCHMARK(BM_Mod_Table)
    ->Args({4, 32})->Args({8, 32})->Args({16, 32})
    ->Args({8, 64})->Args({8, 128})->Args({8, 256});

void BM_Mod_EuclideanReference(benchmark::State& state) {
  const Poly g = generator_of_degree(static_cast<unsigned>(state.range(0)));
  const Poly route = random_route(static_cast<int>(state.range(1)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route % g);
  }
  state.SetLabel("deg=" + std::to_string(state.range(0)) +
                 " routeID=" + std::to_string(state.range(1)) + "b");
}
BENCHMARK(BM_Mod_EuclideanReference)->Args({8, 32})->Args({8, 256});

void BM_TableConstruction(benchmark::State& state) {
  const Poly g = generator_of_degree(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::polka::TableCrc(g));
  }
  state.SetLabel("one-time per-node setup");
}
BENCHMARK(BM_TableConstruction)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  return hp::benchjson::run_and_export(argc, argv, "ablation_crc");
}
