// Event-driven FCT bench: per-family flow-completion-time percentiles
// and drop rate through the packet-level simulator (src/sim).
//
// Where bench_scenario_sweep measures raw forwarding packets/sec, this
// bench runs the same registry scenarios on timed links -- finite
// egress queues, serialization + propagation delay -- and reports what
// the congestion actually does to flows: nearest-rank p50/p95 FCT
// (microseconds), drop rate and the deepest queue seen.  items/sec is
// simulated packets processed per wall second (the engine's event
// throughput), so a perf regression in the simulator itself also shows
// up in CI's bench-smoke artifact.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/traffic.hpp"
#include "sim/runner.hpp"

namespace {

namespace scenario = hp::scenario;
namespace sim = hp::sim;

scenario::ScenarioSpec bench_spec(const scenario::ScenarioSpec& base,
                                  scenario::TrafficPattern pattern) {
  scenario::ScenarioSpec spec = base;
  spec.traffic.pattern = pattern;
  spec.traffic.packets = 1 << 13;
  spec.traffic.max_pairs = 128;
  spec.traffic.seed = 5;
  return spec;
}

void BM_SimFct(benchmark::State& state, const scenario::ScenarioSpec spec) {
  sim::SimReport last;
  for (auto _ : state) {
    last = sim::run_sim_scenario(spec);
    benchmark::DoNotOptimize(last.duration_ns);
  }
  if (last.forwarding.wrong_egress != 0) {
    state.SkipWithError("egress mismatches");
    return;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.traffic.packets));
  state.counters["fct_p50_us"] =
      static_cast<double>(last.fct_p50_ns()) / 1e3;
  state.counters["fct_p95_us"] =
      static_cast<double>(last.fct_p95_ns()) / 1e3;
  state.counters["drop_rate"] = last.drop_rate();
  state.counters["max_queue"] = static_cast<double>(last.max_queue_depth);
  state.counters["completed_flows"] =
      static_cast<double>(last.completed_flows);
  state.SetLabel(std::string(last.forwarding.fold_kernel_name()) + ", " +
                 std::to_string(last.flows) + " flows");
}

}  // namespace

int main(int argc, char** argv) {
  // One spec per topology family x {uniform, hotspot}: uniform shows
  // baseline queueing, hotspot shows incast on the hot destination.
  std::vector<scenario::TopologyFamily> seen;
  for (const scenario::ScenarioSpec& base : scenario::builtin_scenarios()) {
    if (std::find(seen.begin(), seen.end(), base.family) != seen.end()) {
      continue;
    }
    seen.push_back(base.family);
    for (const auto pattern : {scenario::TrafficPattern::kUniformRandom,
                               scenario::TrafficPattern::kHotspot}) {
      const scenario::ScenarioSpec spec = bench_spec(base, pattern);
      benchmark::RegisterBenchmark(
          ("BM_SimFct/" + std::string(scenario::to_string(base.family)) +
           "/" + scenario::to_string(pattern))
              .c_str(),
          [spec](benchmark::State& state) { BM_SimFct(state, spec); })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  return hp::benchjson::run_and_export(argc, argv, "sim_fct");
}
