// Ablation: prediction-window (history) length.  The paper fixes the
// history to 10 samples; this sweep shows RMSE vs history for the best
// model (RFR) and a linear baseline on both paths, locating the paper's
// choice on the curve.

#include <iomanip>
#include <iostream>
#include <string>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "ml/registry.hpp"
#include "obs/export.hpp"

int main() {
  std::cout << "=== Ablation: history length (paper uses 10) ===\n\n";
  const auto trace = hp::dataset::generate_uq_trace();
  hp::obs::BenchReport report("ablation_history");

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "history   RFR(WiFi)  RFR(LTE)   LR(WiFi)   LR(LTE)\n";
  for (const std::size_t history : {1U, 2U, 5U, 10U, 20U, 40U}) {
    std::cout << std::setw(7) << history;
    for (const char* model_name : {"RFR", "LR"}) {
      for (const auto& [series_name, series] :
           {std::pair{"wifi", &trace.wifi}, std::pair{"lte", &trace.lte}}) {
        auto model = hp::ml::make_regressor(model_name);
        const auto result =
            hp::core::run_pipeline(*model, *series, history, 0.75);
        std::cout << std::setw(11) << result.rmse;
        report.add("rmse/" + std::string(model_name) + "/" + series_name +
                       "/h" + std::to_string(history),
                   result.rmse, "rmse");
      }
    }
    std::cout << '\n';
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nreading: very short histories lose the temporal "
               "correlation; very long\nones shrink the training set and "
               "add noise dimensions -- the paper's 10\nsits on the flat "
               "part of the curve.\n";
  return 0;
}
