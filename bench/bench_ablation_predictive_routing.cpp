// Ablation: predictive vs reactive path selection.
//
// Section III's "Real-time Decision Making" argument: "allocating the
// network traffic based on the current QoS status of the route may
// affect the allocated flows due to unexpected network impairment
// factors", so Hecate feeds PolKA *forecast* QoS instead of the last
// sample.  The scenario where that matters is recurring background
// load: tunnel A carries a periodic bulk transfer (e.g. a cron-driven
// replication job) that knocks its available bandwidth down for 15 s
// out of every 30; tunnel B is steady but mediocre.  A reactive policy
// keeps getting caught by the burst edges; a windowed forecast learns
// the rhythm.
//
// Policies re-decide every 10 s for the next 10 s window:
//   oracle     - knows the true future mean of each path,
//   predictive - Hecate RFR 10-step recursive forecast (paper policy),
//   reactive   - latest telemetry sample only.

#include <cmath>
#include <iomanip>
#include <iostream>
#include <random>

#include "core/hecate.hpp"
#include "obs/export.hpp"

namespace {

/// Tunnel A: 22 Mbps free, minus a 15 s-on/15 s-off 16 Mbps burst
/// (offset so decision windows straddle the toggles); tunnel B: steady
/// 11 Mbps.  Mild AR noise on both.  The 20-sample history window always
/// contains a burst edge, so the cycle phase is identifiable.
std::vector<double> make_path_a(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> s(n);
  double ar = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    ar = 0.6 * ar + 0.8 * gauss(rng);
    const std::size_t phase = (t + 8) % 30;
    const bool burst_on = phase < 15;
    s[t] = std::max(0.0, (burst_on ? 6.0 : 22.0) + ar);
  }
  return s;
}

std::vector<double> make_path_b(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> s(n);
  double ar = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    ar = 0.6 * ar + 0.6 * gauss(rng);
    s[t] = std::max(0.0, 11.0 + ar);
  }
  return s;
}

double future_mean(const std::vector<double>& s, std::size_t t,
                   std::size_t period) {
  double acc = 0.0;
  for (std::size_t k = 0; k < period; ++k) acc += s[t + k];
  return acc / static_cast<double>(period);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: predictive (Hecate) vs reactive routing ===\n\n";
  constexpr std::size_t kDuration = 900;
  constexpr std::size_t kWarmup = 180;  // six full burst cycles
  constexpr std::size_t kPeriod = 10;
  const auto path_a = make_path_a(kDuration, 11);
  const auto path_b = make_path_b(kDuration, 12);

  hp::core::HecateConfig config;
  config.model = "RFR";
  config.history = 20;  // > half the burst cycle: phase is observable
  config.horizon = kPeriod;
  hp::core::HecateService hecate(config);
  hecate.load_series("A", {path_a.begin(), path_a.begin() + kWarmup});
  hecate.load_series("B", {path_b.begin(), path_b.begin() + kWarmup});
  hecate.fit("A");
  hecate.fit("B");

  double got_oracle = 0.0, got_pred = 0.0, got_react = 0.0;
  std::size_t decisions = 0, pred_hits = 0, react_hits = 0;
  for (std::size_t t = kWarmup; t + kPeriod <= kDuration; t += kPeriod) {
    const double a_future = future_mean(path_a, t, kPeriod);
    const double b_future = future_mean(path_b, t, kPeriod);
    const bool oracle_a = a_future >= b_future;

    const auto recommended = hecate.recommend({"A", "B"});
    const bool pred_a = recommended && *recommended == "A";
    const bool react_a = path_a[t - 1] >= path_b[t - 1];

    got_oracle += oracle_a ? a_future : b_future;
    got_pred += pred_a ? a_future : b_future;
    got_react += react_a ? a_future : b_future;
    pred_hits += pred_a == oracle_a;
    react_hits += react_a == oracle_a;
    ++decisions;

    for (std::size_t k = 0; k < kPeriod; ++k) {
      hecate.observe("A", static_cast<double>(t + k), path_a[t + k]);
      hecate.observe("B", static_cast<double>(t + k), path_b[t + k]);
    }
    hecate.fit("A");  // periodic retraining from telemetry
    hecate.fit("B");
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "scenario: tunnel A = 22 Mbps with a 16 Mbps burst 15s "
               "on/off; tunnel B = steady 11 Mbps\n";
  std::cout << "decisions every 10 s over " << decisions << " windows\n\n";
  const double denom = decisions != 0 ? static_cast<double>(decisions) : 1.0;
  std::cout << "policy       mean obtained Mbps   oracle-agreement\n";
  std::cout << "oracle       " << std::setw(12) << got_oracle / denom
            << "           " << std::setw(5) << 100.0 << "%\n";
  std::cout << "predictive   " << std::setw(12) << got_pred / denom
            << "           " << std::setw(5) << 100.0 * pred_hits / denom
            << "%\n";
  std::cout << "reactive     " << std::setw(12) << got_react / denom
            << "           " << std::setw(5) << 100.0 * react_hits / denom
            << "%\n";
  hp::obs::BenchReport report("ablation_predictive_routing");
  report.add("mean_mbps/oracle", got_oracle / denom, "Mbps");
  hp::obs::BenchResult& rp =
      report.add("mean_mbps/predictive", got_pred / denom, "Mbps");
  rp.counters.emplace_back("oracle_agreement_pct", 100.0 * pred_hits / denom);
  hp::obs::BenchResult& rr =
      report.add("mean_mbps/reactive", got_react / denom, "Mbps");
  rr.counters.emplace_back("oracle_agreement_pct", 100.0 * react_hits / denom);
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nshape check: predictive > reactive -- the windowed "
               "forecast anticipates the\nrecurring burst that the "
               "last-sample policy keeps walking into.\n";
  return 0;
}
