// Route-compilation throughput, per topology family and size, across
// the compiler's evolution:
//
//   per_path_poly  -- the retained pre-tentpole baseline: one route per
//                     ordered pair, one heap-allocating Poly
//                     extended-GCD CRT fold per hop (the exact
//                     algorithm BuiltFabric::route() shipped with the
//                     scenario engine).
//   per_path       -- today's BuiltFabric::route(): same O(n * depth)
//                     per-source algorithm, folds running on the
//                     fixed-width gf2 kernels.
//   tree           -- BuiltFabric::compile_all_pairs(1): one
//                     shortest-path-tree walk per source, O(n) CRT
//                     steps per source.
//   tree_parallel  -- compile_all_pairs(hardware threads).
//
// Items processed == routes compiled, so compare `items_per_second`
// across variants.  On deep families (ring/torus at >= 256 nodes) the
// quadratic per-path variants would run for minutes, so they compile
// all destinations from a capped number of sources; routes/sec stays
// comparable because these families are vertex-symmetric.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gf2/poly.hpp"
#include "netsim/paths.hpp"
#include "netsim/topology.hpp"
#include "polka/route.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/topologies.hpp"

namespace {

using hp::netsim::NodeIndex;
using hp::netsim::Topology;
using hp::scenario::BuiltFabric;

/// Sources the per-path variants compile from before extrapolating
/// (capped so big rings finish in CI; small fabrics run the full
/// quadratic).
constexpr std::size_t kPerPathSourceCap = 8;

/// The PR-2 per-path CRT fold, retained verbatim as the baseline: plain
/// Poly arithmetic, one extended-GCD (inverse_mod) per hop.
hp::gf2::Poly poly_crt(const std::vector<hp::gf2::Congruence>& system) {
  hp::gf2::Poly solution{};
  hp::gf2::Poly modulus{1};
  for (const auto& c : system) {
    const hp::gf2::Poly diff = (c.residue + solution) % c.modulus;
    const hp::gf2::Poly inv = hp::gf2::inverse_mod(modulus, c.modulus);
    const hp::gf2::Poly k = (diff * inv) % c.modulus;
    solution = solution + modulus * k;
    modulus = modulus * c.modulus;
    solution = solution % modulus;
  }
  return solution;
}

void run_per_path_poly(benchmark::State& state, const Topology& topo) {
  const BuiltFabric built(topo);
  const auto& routers = built.routers();
  const std::size_t sources =
      std::min<std::size_t>(routers.size(), kPerPathSourceCap);
  std::size_t routes = 0;
  for (auto _ : state) {
    routes = 0;
    for (std::size_t i = 0; i < sources; ++i) {
      const auto tree = hp::netsim::shortest_path_tree(
          topo, routers[i], hp::netsim::PathMetric::kHopCount);
      for (const NodeIndex dst : routers) {
        if (dst == routers[i]) continue;
        const auto path = hp::netsim::tree_path(tree, topo, dst);
        if (!path) continue;
        std::vector<hp::gf2::Congruence> system;
        const auto nodes = hp::netsim::path_nodes(topo, *path);
        for (std::size_t h = 0; h + 1 < nodes.size(); ++h) {
          const auto fv = built.fabric_index(nodes[h]);
          const auto port = built.fabric().port_between(
              fv, built.fabric_index(nodes[h + 1]));
          system.push_back({hp::polka::port_polynomial(*port),
                            built.fabric().node(fv).poly});
        }
        const auto fd = built.fabric_index(nodes.back());
        system.push_back(
            {hp::polka::port_polynomial(built.egress_port(fd)),
             built.fabric().node(fd).poly});
        const auto id = poly_crt(system);
        benchmark::DoNotOptimize(id);
        ++routes;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(routes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["sources"] = static_cast<double>(sources);
}

void run_per_path(benchmark::State& state, const Topology& topo) {
  std::size_t routes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BuiltFabric built(topo);
    state.ResumeTiming();
    routes = 0;
    const auto& routers = built.routers();
    const std::size_t sources =
        std::min<std::size_t>(routers.size(), kPerPathSourceCap);
    for (std::size_t i = 0; i < sources; ++i) {
      for (const NodeIndex dst : routers) {
        if (dst == routers[i]) continue;
        routes += built.route(routers[i], dst) != nullptr;
      }
    }
    benchmark::DoNotOptimize(routes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(routes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["sources"] = static_cast<double>(
      std::min<std::size_t>(topo.node_count(), kPerPathSourceCap));
}

void run_tree(benchmark::State& state, const Topology& topo,
              unsigned threads) {
  std::size_t routes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BuiltFabric built(topo);
    state.ResumeTiming();
    routes = built.compile_all_pairs(threads);
    benchmark::DoNotOptimize(routes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(routes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["threads"] = threads;
}

Topology make_family(const std::string& family, std::size_t n) {
  if (family == "ring") {
    return hp::scenario::make_ring(static_cast<unsigned>(n));
  }
  if (family == "torus") {
    // Square-ish torus with ~n routers.
    unsigned rows = 2;
    while ((rows + 1) * (rows + 1) <= n) ++rows;
    return hp::scenario::make_torus(rows, static_cast<unsigned>(n / rows));
  }
  if (family == "leaf_spine") {
    const unsigned spines = 4;
    return hp::scenario::make_leaf_spine(spines,
                                         static_cast<unsigned>(n) - spines);
  }
  if (family == "fat_tree") {
    // 5k^2/4 switches: k=4 -> 20, k=8 -> 80, k=12 -> 180.
    unsigned k = 4;
    while (5 * (k + 4) * (k + 4) / 4 <= n) k += 4;
    return hp::scenario::make_fat_tree(k);
  }
  throw std::invalid_argument("unknown family " + family);
}

void BM_PerPathPolyAllPairs(benchmark::State& state,
                            const std::string& family) {
  run_per_path_poly(state,
                    make_family(family, static_cast<std::size_t>(state.range(0))));
}

void BM_PerPathAllPairs(benchmark::State& state, const std::string& family) {
  run_per_path(state,
               make_family(family, static_cast<std::size_t>(state.range(0))));
}

void BM_TreeAllPairs(benchmark::State& state, const std::string& family) {
  run_tree(state, make_family(family, static_cast<std::size_t>(state.range(0))),
           1);
}

void BM_TreeAllPairsParallel(benchmark::State& state,
                             const std::string& family) {
  run_tree(state, make_family(family, static_cast<std::size_t>(state.range(0))),
           std::max(1u, std::thread::hardware_concurrency()));
}

void register_family(const std::string& family,
                     std::initializer_list<std::int64_t> sizes) {
  for (const std::int64_t n : sizes) {
    benchmark::RegisterBenchmark(
        ("per_path_poly/" + family).c_str(),
        [family](benchmark::State& s) { BM_PerPathPolyAllPairs(s, family); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("per_path/" + family).c_str(),
        [family](benchmark::State& s) { BM_PerPathAllPairs(s, family); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("tree/" + family).c_str(),
        [family](benchmark::State& s) { BM_TreeAllPairs(s, family); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_family("ring", {64, 256});
  register_family("torus", {64, 256});
  register_family("leaf_spine", {64, 256});
  register_family("fat_tree", {80});
  for (const std::string family : {"ring", "torus"}) {
    benchmark::RegisterBenchmark(
        ("tree_parallel/" + family).c_str(),
        [family](benchmark::State& s) { BM_TreeAllPairsParallel(s, family); })
        ->Arg(256)
        ->Unit(benchmark::kMillisecond);
  }
  return hp::benchjson::run_and_export(argc, argv, "route_compile");
}
