// Scenario sweep: aggregate data-plane packets/sec across topology
// family x size x traffic pattern x runner thread count.
//
// Two sweeps:
//  * Threads -- a >= 256-node generated topology (fat-tree k=16, 320
//    switches) replayed with 1..8 worker threads; items/sec is the
//    aggregate forwarding rate, expected to scale well past 2x from
//    1 -> 4 threads since workers share only immutable compiled state.
//  * Families -- every built-in registry scenario at 1 and 4 threads,
//    so a perf regression in any generator/pattern combination shows
//    up in CI's bench-smoke artifact.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace {

namespace scenario = hp::scenario;

struct PreparedScenario {
  std::unique_ptr<scenario::BuiltFabric> fabric;
  scenario::PacketStream stream;
  std::size_t node_count = 0;
};

/// Build (once) and cache a fabric + stream; streams here carry no
/// failure schedule, so replays do not mutate them.
PreparedScenario& prepared(const std::string& key,
                           const scenario::ScenarioSpec& spec) {
  static std::map<std::string, PreparedScenario> cache;
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  PreparedScenario p;
  auto topo = scenario::build_topology(spec);
  p.node_count = topo.node_count();
  p.fabric = std::make_unique<scenario::BuiltFabric>(std::move(topo));
  p.stream = scenario::generate_traffic(*p.fabric, spec.traffic);
  (void)p.fabric->compiled();  // compile outside the timed region
  return cache.emplace(key, std::move(p)).first->second;
}

scenario::ScenarioSpec threads_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "fat_tree_k16/uniform";
  spec.family = scenario::TopologyFamily::kFatTree;
  spec.a = 16;  // 320 switches >= 256 nodes
  spec.traffic.pattern = scenario::TrafficPattern::kUniformRandom;
  spec.traffic.packets = 1 << 18;
  spec.traffic.max_pairs = 1024;
  spec.traffic.seed = 17;
  return spec;
}

void BM_ScenarioThreads(benchmark::State& state) {
  const auto spec = threads_spec();
  PreparedScenario& p = prepared(spec.name, spec);
  scenario::RunnerOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  const scenario::ScenarioRunner runner(options);
  std::size_t wrong = 0;
  for (auto _ : state) {
    const auto report = runner.run(*p.fabric, p.stream);
    wrong += report.wrong_egress;
    benchmark::DoNotOptimize(report.mod_operations);
  }
  if (wrong != 0) state.SkipWithError("egress mismatches");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.stream.size()));
  state.SetLabel(std::to_string(p.node_count) + " nodes, " +
                 std::to_string(p.stream.size()) + " pkts, " +
                 std::to_string(options.threads) + " threads");
}

void BM_ScenarioFamily(benchmark::State& state,
                       const scenario::ScenarioSpec* spec, unsigned threads) {
  PreparedScenario& p = prepared(spec->name, *spec);
  scenario::RunnerOptions options;
  options.threads = threads;
  const scenario::ScenarioRunner runner(options);
  for (auto _ : state) {
    const auto report = runner.run(*p.fabric, p.stream);
    benchmark::DoNotOptimize(report.mod_operations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.stream.size()));
  state.SetLabel(std::to_string(p.node_count) + " nodes");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("BM_ScenarioThreads", BM_ScenarioThreads)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    for (const unsigned threads : {1u, 4u}) {
      benchmark::RegisterBenchmark(
          ("BM_Scenario/" + spec.name + "/t" + std::to_string(threads))
              .c_str(),
          [&spec, threads](benchmark::State& state) {
            BM_ScenarioFamily(state, &spec, threads);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  return hp::benchjson::run_and_export(argc, argv, "scenario_sweep");
}
