// Ablation: PolKA routeID size vs port-switching label size.
//
// Section II-B contrasts PolKA with the ordered-port-list encoding; the
// paper's related-work section adds that PolKA "can specify all the
// nodes in the path without increasing the header like MPLS does".
// This table quantifies both encodings across path lengths and port
// radixes, plus the per-hop label rewrite count (PolKA: none).

#include <iomanip>
#include <iostream>
#include <random>
#include <string>

#include "obs/export.hpp"
#include "polka/node_id.hpp"
#include "polka/port_switching.hpp"
#include "polka/route.hpp"

int main() {
  namespace polka = hp::polka;
  std::cout << "=== Ablation: route label sizes (PolKA vs port list) ===\n\n";
  std::cout << "hops  radix | polka routeID bits | port-list bits | "
               "rewrites/path (polka vs list)\n";
  std::mt19937_64 rng(5);
  hp::obs::BenchReport report("ablation_label_size");
  for (const unsigned radix : {4U, 16U}) {
    for (const std::size_t hops : {2U, 4U, 8U, 16U, 24U}) {
      polka::NodeIdAllocator alloc;
      std::vector<polka::Hop> path;
      std::vector<unsigned> ports;
      for (std::size_t i = 0; i < hops; ++i) {
        auto node = alloc.allocate("n" + std::to_string(i), radix);
        const unsigned port = static_cast<unsigned>(rng() % radix);
        path.push_back(polka::Hop{std::move(node), port});
        ports.push_back(port);
      }
      const polka::RouteId route = polka::compute_route_id(path);
      const unsigned port_bits = polka::min_degree_for_ports(radix);
      const polka::PortListLabel label(ports, port_bits);
      std::cout << std::setw(4) << hops << "  " << std::setw(5) << radix
                << " | " << std::setw(18) << route.bit_length() << " | "
                << std::setw(14) << label.bit_length() << " | 0 vs "
                << hops << '\n';
      const std::string key =
          "r" + std::to_string(radix) + "/hops" + std::to_string(hops);
      hp::obs::BenchResult& r = report.add(
          "polka_routeid_bits/" + key,
          static_cast<double>(route.bit_length()), "bits");
      r.counters.emplace_back("port_list_bits",
                              static_cast<double>(label.bit_length()));
    }
  }
  std::cout << "wrote " << report.write_default() << '\n';
  std::cout << "\nreading: the routeID costs roughly sum(deg nodeID) bits "
               "-- comparable to\nthe port list for small radixes, larger "
               "when node IDs outgrow the port\nfield -- but it is *never "
               "rewritten* in flight, which is what enables\nstateless "
               "cores and single-PBR path migration.\n";
  return 0;
}
