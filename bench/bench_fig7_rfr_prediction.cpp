// Fig 7: observed vs predicted bandwidth with the *best* model (Random
// Forest) on both paths.  Prints overlayed strip charts and tracking
// statistics; the paper's claim is that RFR "predicts bandwidth ...
// very close to the observed real bandwidth".

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "obs/export.hpp"

namespace {

hp::obs::BenchReport g_report("fig7_rfr_prediction");

std::string strip(const std::vector<double>& v, std::size_t width = 64) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string out;
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t i0 = b * v.size() / width;
    const std::size_t i1 = std::max(i0 + 1, (b + 1) * v.size() / width);
    double acc = 0.0;
    for (std::size_t i = i0; i < i1; ++i) acc += v[i];
    const double mean = acc / static_cast<double>(i1 - i0);
    const double norm = hi > lo ? (mean - lo) / (hi - lo) : 0.5;
    out.push_back(kLevels[static_cast<std::size_t>(
        std::round(norm * (sizeof(kLevels) - 2)))]);
  }
  return out;
}

void report(const char* model_name, const char* path_name,
            const std::vector<double>& series) {
  auto model = hp::ml::make_regressor(model_name);
  const auto result = hp::core::run_pipeline(*model, series);
  std::cout << path_name << " (test split, " << result.observed.size()
            << " samples)\n";
  std::cout << "  observed  [" << strip(result.observed) << "]\n";
  std::cout << "  predicted [" << strip(result.predicted) << "]\n";
  std::cout << std::fixed << std::setprecision(2);
  const double mae = hp::ml::mae(result.observed, result.predicted);
  const double r2 = hp::ml::r2(result.observed, result.predicted);
  std::cout << "  RMSE " << result.rmse << "  MAE " << mae << "  R^2 "
            << std::setprecision(3) << r2 << "\n\n";
  hp::obs::BenchResult& r = g_report.add(
      std::string("rmse/") + model_name + "/" + path_name, result.rmse,
      "rmse");
  r.counters.emplace_back("mae", mae);
  r.counters.emplace_back("r2", r2);
}

}  // namespace

int main() {
  std::cout << "=== Fig 7: Random Forest observed vs predicted ===\n\n";
  const auto trace = hp::dataset::generate_uq_trace();
  report("RFR", "WiFi (Path 1)", trace.wifi);
  report("RFR", "LTE (Path 2)", trace.lte);
  std::cout << "shape check: predictions track the observed series "
               "(positive R^2 on both paths).\n";
  std::cout << "wrote " << g_report.write_default() << '\n';
  return 0;
}
