// The full self-driving loop of Figs 3/4: telemetry -> time-series store
// -> Hecate training -> prediction -> optimizer -> PolKA PBR rewrite.
//
// Background load on tunnel 1 oscillates; telemetry agents feed the
// store; Hecate (Random Forest over 10-sample windows) is retrained
// periodically and a managed flow is re-optimized onto whichever tunnel
// has the most *predicted* available bandwidth.
//
// Build & run:  ./build/examples/selfdriving_loop

#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/runtime.hpp"

int main() {
  using namespace hp::core;
  std::cout << "== Self-driving loop: predictive re-routing ==\n\n";

  HecateConfig config;
  config.model = "RFR";
  config.history = 10;
  config.horizon = 10;
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab(config);
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();

  // Oscillating background load on tunnel 1: alternating 16 Mbps bursts
  // (30 s on / 30 s off), giving Hecate a pattern worth learning.
  const auto t1_path =
      runtime.polka().host_to_host_path(1, "host1", "host2");
  for (int burst = 0; burst < 6; ++burst) {
    const double start = burst * 60.0;
    const auto bg = sim.add_flow(
        start, hp::netsim::FlowSpec{"bg" + std::to_string(burst), t1_path,
                                    16.0, 0});
    sim.stop_flow(start + 30.0, bg);
  }

  // The managed user flow, initially wherever the first tunnel is.
  FlowRequest request;
  request.name = "science-transfer";
  request.acl_name = "sci";
  request.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
  request.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
  request.tos = 1;
  request.demand_mbps = 8.0;
  const auto flow =
      controller.handle_new_flow(request, 0.0, Objective::kFirstConfigured);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << " t(s)  tunnel  rate(Mbps)  decision\n";
  for (int round = 1; round <= 6; ++round) {
    const double t = round * 60.0;
    sim.run_until(t);
    const std::size_t trained = runtime.train_hecate_from_telemetry();
    const unsigned chosen =
        controller.reoptimize(flow, t, Objective::kPredictedBandwidth);
    sim.run_until(t + 5.0);  // let the migration settle
    std::cout << std::setw(5) << t << "  " << std::setw(6) << chosen << "  "
              << std::setw(10)
              << sim.current_rate(controller.managed(flow).sim_flow) << "  "
              << (trained > 0 ? "Hecate forecast" : "reactive fallback")
              << '\n';
  }

  const double transferred =
      sim.transferred_mb(controller.managed(flow).sim_flow);
  std::cout << "\ntransferred by the managed flow: " << transferred
            << " MB over " << sim.now() << " s\n";
  std::cout << "\nfinal " << runtime.dashboard().link_occupation_report();
  return 0;
}
