// Experiment 1 (paper Fig 11): agile migration to a lower-latency path.
//
// A ping-like flow runs host1 -> host2 over tunnel 1 (MIA-SAO-AMS, which
// carries the 20 ms transatlantic delay) for one minute.  The Controller
// then consults the optimizer for a latency-minimizing allocation, which
// returns tunnel 2 (MIA-CHI-AMS); one PBR rewrite at the MIA edge moves
// the flow and the observed RTT steps down.
//
// Build & run:  ./build/examples/latency_migration

#include <iomanip>
#include <iostream>

#include "core/runtime.hpp"

int main() {
  using namespace hp::core;
  std::cout << "== Experiment 1: agile latency migration (Fig 11) ==\n\n";
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();

  FlowRequest ping;
  ping.name = "ping";
  ping.acl_name = "ping";
  ping.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
  ping.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
  ping.protocol = 1;  // ICMP
  ping.demand_mbps = 0.5;

  // Phase (i): the controller allocates the flow to an arbitrary path.
  const auto index =
      runtime.controller().handle_new_flow(ping, 0.0, Objective::kFirstConfigured);
  const auto flow = runtime.controller().managed(index).sim_flow;
  sim.schedule_probes("ping", sim.flow_path(flow), 0.0, 1.0);
  std::cout << "phase (i): flow on tunnel "
            << runtime.controller().managed(index).tunnel_id
            << " (MIA-SAO-AMS)\n";
  sim.run_until(60.0);

  // Phase (ii): consult the optimizer for latency minimization.
  const unsigned chosen =
      runtime.controller().reoptimize(index, 60.0, Objective::kMinLatency);
  std::cout << "phase (ii): optimizer selects tunnel " << chosen
            << " (MIA-CHI-AMS); PBR rewritten at the MIA edge\n\n";
  sim.schedule_probes("ping2", runtime.polka().tunnel(chosen).netsim_path,
                      61.0, 1.0);
  sim.run_until(120.0);

  // Report the RTT timeline (the Fig 11 shape).
  std::cout << std::fixed << std::setprecision(1);
  const auto& before = sim.probe_series("ping");
  std::cout << "RTT on the original tunnel:\n  "
            << Dashboard::strip_chart(before) << '\n';
  const double rtt_before = Dashboard::mean_between(before, 0.0, 59.0);
  const double rtt_after =
      Dashboard::mean_between(sim.probe_series("ping2"), 61.0, 120.0);
  std::cout << "\nmean RTT before migration: " << rtt_before << " ms\n";
  std::cout << "mean RTT after  migration: " << rtt_after << " ms\n";
  std::cout << "improvement: " << rtt_before - rtt_after << " ms ("
            << 100.0 * (rtt_before - rtt_after) / rtt_before << "%)\n";
  return 0;
}
