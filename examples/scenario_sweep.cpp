// Scenario sweep CLI: list the registry, replay a named scenario, or
// sweep everything, with optional thread counts and a link failure.
//
//   scenario_sweep --list
//   scenario_sweep --scenario torus4x4/hotspot --threads 4
//   scenario_sweep --scenario ring12/uniform --fail r0:r1@0.5
//   scenario_sweep --fail-schedule storm --protect 1   # injected failover
//   scenario_sweep                 # sweep all scenarios at 1 and 4 threads
//
// Failover knobs (all optional): --fail a:b@frac names one link by hand;
// --fail-schedule single|storm|flap|srlg generates a deterministic schedule
// per scenario topology (--fail-seed N, --fail-count N tune it);
// --protect K pre-installs K link-disjoint backups per pair;
// --loss-window N charges each recompiled pair N packets of loss.
//
// Observability outputs (all optional):
//   --json PATH    hp-report-v1 JSON, one entry per scenario run
//   --trace PATH   chrome://tracing JSON of replay epochs and repairs

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace scenario = hp::scenario;

namespace {

void print_report(const std::string& name, unsigned threads,
                  const scenario::ScenarioReport& report) {
  std::printf("%-28s t=%u  %9zu pkts  %10zu mods  %5zu wrong  %5zu dropped"
              "  %4zu rerouted  %8.2f Mpkt/s  [%s]\n",
              name.c_str(), threads, report.packets, report.mod_operations,
              report.wrong_egress, report.dropped_packets,
              report.rerouted_pairs, report.packets_per_sec() / 1e6,
              report.fold_kernel_name());
  if (report.backup_swapped_pairs + report.failover_packets_lost +
          report.unroutable_pairs + report.window_recompiles !=
      0) {
    std::printf("%-28s      failover: %zu swapped  %zu lost  %zu unroutable"
                "  %zu window recompiles  %zu lazy\n",
                "", report.backup_swapped_pairs, report.failover_packets_lost,
                report.unroutable_pairs, report.window_recompiles,
                report.lazy_repaired_pairs);
  }
}

/// ("name@tN", hp-report-v1 json) pairs collected for --json.
using JsonEntries = std::vector<std::pair<std::string, std::string>>;

int run_one(const scenario::ScenarioSpec& spec,
            const scenario::RunnerOptions& options,
            const std::optional<scenario::FailureInjectorParams>& inject,
            JsonEntries* json_out) {
  // Build once so a failure schedule acts on the same fabric/stream.
  scenario::BuiltFabric fabric(scenario::build_topology(spec));
  scenario::PacketStream stream = scenario::generate_traffic(fabric, spec.traffic);
  scenario::RunnerOptions run_options = options;
  if (inject.has_value()) {
    // The schedule is a pure function of (topology, params), so each
    // sweep entry gets its own deterministic events.
    const auto schedule =
        scenario::make_failure_schedule(fabric.topology(), *inject);
    run_options.failures.insert(run_options.failures.end(), schedule.begin(),
                                schedule.end());
    std::stable_sort(run_options.failures.begin(), run_options.failures.end(),
                     [](const scenario::LinkFailure& lhs,
                        const scenario::LinkFailure& rhs) {
                       return lhs.at_fraction < rhs.at_fraction;
                     });
  }
  const auto report = scenario::ScenarioRunner(run_options).run(fabric, stream);
  print_report(spec.name, run_options.threads, report);
  if (json_out != nullptr) {
    json_out->emplace_back(spec.name + "@t" + std::to_string(options.threads),
                           hp::obs::to_json(report));
  }
  return report.wrong_egress == 0 ? 0 : 1;
}

/// One JSON object keyed by run name; values are already-valid
/// hp-report-v1 documents, so this is plain concatenation.
void write_json_entries(const std::string& path, const JsonEntries& entries) {
  std::string out = "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  ";
    hp::obs::JsonWriter::escape_to(out, entries[i].first);
    out += ": ";
    out += entries[i].second;
  }
  out += "\n}\n";
  hp::obs::write_text_file(path, out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  scenario::RunnerOptions options;
  std::vector<std::string> failures;
  std::optional<scenario::FailureInjectorParams> inject;
  auto injector = [&]() -> scenario::FailureInjectorParams& {
    if (!inject.has_value()) inject.emplace();
    return *inject;
  };
  bool list = false;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario") {
      name = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--fail") {
      failures.emplace_back(next());  // "<nodeA>:<nodeB>@<fraction>"
    } else if (arg == "--fail-schedule") {
      const char* preset_name = next();
      const auto preset = scenario::parse_failure_preset(preset_name);
      if (!preset.has_value()) {
        std::fprintf(stderr,
                     "bad --fail-schedule %s (want single|storm|flap|srlg)\n",
                     preset_name);
        return 2;
      }
      injector().preset = *preset;
    } else if (arg == "--fail-seed") {
      injector().seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fail-count") {
      injector().count =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--protect") {
      options.protection_k = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--loss-window") {
      options.loss_window_per_recompile =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: scenario_sweep [--list] [--scenario NAME] "
                   "[--threads N] [--fail a:b@frac] "
                   "[--fail-schedule single|storm|flap|srlg] [--fail-seed N] "
                   "[--fail-count N] [--protect K] [--loss-window N] "
                   "[--json PATH] [--trace PATH]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  hp::obs::MetricRegistry registry;
  hp::obs::TraceSink trace_sink;
  JsonEntries json_entries;
  JsonEntries* json_out = json_path.empty() ? nullptr : &json_entries;
  if (!json_path.empty()) options.metrics = &registry;
  if (!trace_path.empty()) options.trace = &trace_sink;

  if (list) {
    for (const auto& spec : scenario::builtin_scenarios()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }

  if (!name.empty()) {
    const scenario::ScenarioSpec* spec = scenario::find_scenario(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try --list)\n", name.c_str());
      return 2;
    }
    // Failure schedule entries resolve against the spec's topology.
    const auto topo = scenario::build_topology(*spec);
    for (const std::string& f : failures) {
      const auto colon = f.find(':');
      const auto at = f.find('@');
      if (colon == std::string::npos || at == std::string::npos || at < colon) {
        std::fprintf(stderr, "bad --fail %s (want a:b@frac)\n", f.c_str());
        return 2;
      }
      scenario::LinkFailure failure;
      try {
        failure.a = topo.index_of(f.substr(0, colon));
        failure.b = topo.index_of(f.substr(colon + 1, at - colon - 1));
      } catch (const std::out_of_range& e) {
        std::fprintf(stderr, "bad --fail %s: %s\n", f.c_str(), e.what());
        return 2;
      }
      char* end = nullptr;
      failure.at_fraction = std::strtod(f.c_str() + at + 1, &end);
      if (end == f.c_str() + at + 1 || *end != '\0' ||
          failure.at_fraction < 0.0 || failure.at_fraction > 1.0) {
        std::fprintf(stderr, "bad --fail %s: fraction must be in [0,1]\n",
                     f.c_str());
        return 2;
      }
      options.failures.push_back(failure);
    }
    if (options.threads == 0) options.threads = 1;
    int status = 0;
    try {
      status = run_one(*spec, options, inject, json_out);
    } catch (const std::exception& e) {
      // e.g. a --fail pair that exists but is not linked.
      std::fprintf(stderr, "scenario failed: %s\n", e.what());
      return 2;
    }
    if (json_out != nullptr) write_json_entries(json_path, json_entries);
    if (!trace_path.empty()) {
      trace_sink.write(trace_path);
      std::printf("wrote %s\n", trace_path.c_str());
    }
    return status;
  }

  int status = 0;
  for (const auto& spec : scenario::builtin_scenarios()) {
    for (const unsigned threads : {1u, 4u}) {
      scenario::RunnerOptions sweep = options;
      sweep.threads = threads;
      sweep.failures.clear();  // hand-named links only bind to --scenario
      status |= run_one(spec, sweep, inject, json_out);
    }
  }
  if (json_out != nullptr) write_json_entries(json_path, json_entries);
  if (!trace_path.empty()) {
    trace_sink.write(trace_path);
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return status;
}
