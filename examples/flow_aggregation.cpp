// Experiment 2 (paper Fig 12): flow aggregation over multiple paths.
//
// Three ToS-tagged TCP flows between host1 and host2 all start on
// tunnel 1 and share its 20 Mbps.  The optimizer is then consulted with
// a bandwidth metric; one flow moves to tunnel 2 and another to tunnel 3
// (each move is a single PBR rewrite at the MIA edge), raising the
// aggregate throughput from ~20 Mbps toward ~35 Mbps in the fluid model
// (the paper measured ~30 Mbps with real TCP).
//
// Build & run:  ./build/examples/flow_aggregation

#include <iomanip>
#include <iostream>

#include "core/runtime.hpp"

int main() {
  using namespace hp::core;
  std::cout << "== Experiment 2: flow aggregation (Fig 12) ==\n\n";
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();

  std::vector<std::size_t> flows;
  for (unsigned tos = 1; tos <= 3; ++tos) {
    FlowRequest request;
    request.name = "flow" + std::to_string(tos);
    request.acl_name = request.name;
    request.src_ip = hp::freertr::parse_ipv4("40.40.1.2");
    request.dst_ip = hp::freertr::parse_ipv4("40.40.2.2");
    request.tos = tos;
    flows.push_back(
        controller.handle_new_flow(request, 0.0, Objective::kFirstConfigured));
  }
  sim.run_until(60.0);

  std::cout << std::fixed << std::setprecision(1);
  auto print_state = [&](const char* label) {
    double total = 0.0;
    std::cout << label << '\n';
    for (const auto f : flows) {
      const auto& managed = controller.managed(f);
      const double rate = sim.current_rate(managed.sim_flow);
      total += rate;
      std::cout << "  " << managed.request.name << " (ToS "
                << *managed.request.tos << ") on tunnel " << managed.tunnel_id
                << ": " << rate << " Mbps\n";
    }
    std::cout << "  total: " << total << " Mbps\n\n";
    return total;
  };
  const double before = print_state("phase (i): all flows on tunnel 1");

  // Phase (ii): bandwidth-metric re-optimization, one flow at a time
  // (telemetry refreshes between decisions).
  controller.reoptimize(flows[1], 60.0, Objective::kCurrentBandwidth);
  sim.run_until(65.0);
  controller.reoptimize(flows[2], 65.0, Objective::kCurrentBandwidth);
  sim.run_until(120.0);

  const double after =
      print_state("phase (ii): after bandwidth re-optimization");
  std::cout << "aggregate throughput: " << before << " -> " << after
            << " Mbps\n\n";
  std::cout << runtime.dashboard().link_occupation_report();
  return 0;
}
