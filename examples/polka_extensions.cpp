// PolKA extensions tour: M-PolKA multipath replication trees and
// PoT-PolKA proof of transit -- the capabilities the paper's related
// work ([31], [18]) builds on PolKA's polynomial machinery.
//
// Build & run:  ./build/examples/polka_extensions

#include <iostream>

#include "polka/multipath.hpp"
#include "polka/pot.hpp"

int main() {
  namespace polka = hp::polka;
  using hp::gf2::Poly;

  std::cout << "== PolKA extensions: multipath + proof of transit ==\n\n";

  // --- M-PolKA: one routeID drives a replication tree -------------------
  std::cout << "--- M-PolKA multipath ---\n";
  polka::NodeIdAllocator alloc;
  const polka::NodeId root =
      alloc.allocate("root", 4, polka::min_degree_for_port_bitmap(4) + 1);
  const polka::NodeId left =
      alloc.allocate("left", 4, polka::min_degree_for_port_bitmap(4) + 1);
  const polka::NodeId right =
      alloc.allocate("right", 4, polka::min_degree_for_port_bitmap(4) + 1);

  const polka::RouteId tree = polka::compute_multipath_route_id({
      {root, {0, 1}},  // replicate toward left (port 0) and right (1)
      {left, {2}},     // left exits on port 2
      {right, {1, 3}}, // right replicates again
  });
  std::cout << "tree routeID = " << tree.value.to_binary_string() << " ("
            << tree.bit_length() << " bits)\n";
  for (const auto& node : {root, left, right}) {
    std::cout << "  at " << node.name << " (" << node.poly.to_string()
              << "): forward on ports {";
    bool first = true;
    for (const unsigned p : polka::output_port_set(tree, node)) {
      std::cout << (first ? "" : ", ") << p;
      first = false;
    }
    std::cout << "}\n";
  }

  // --- PoT-PolKA: the edge verifies the packet's actual path ------------
  std::cout << "\n--- proof of transit ---\n";
  polka::NodeIdAllocator pot_alloc;
  std::vector<polka::NodeId> routers;
  for (const char* name : {"MIA", "SAO", "CHI", "AMS"}) {
    routers.push_back(pot_alloc.allocate(name, 8, 4));
  }
  const polka::PotVerifier verifier(routers);
  const Poly nonce(0xC0FFEE);

  polka::TransitProof honest;
  for (const char* hop : {"MIA", "SAO", "AMS"}) {
    honest.absorb(verifier.secret(hop), nonce);
  }
  std::cout << "honest MIA-SAO-AMS traversal:   "
            << (verifier.verify(honest, {"MIA", "SAO", "AMS"}, nonce)
                    ? "VERIFIED"
                    : "rejected")
            << '\n';

  polka::TransitProof detour;
  for (const char* hop : {"MIA", "CHI", "AMS"}) {  // wrong path
    detour.absorb(verifier.secret(hop), nonce);
  }
  std::cout << "detour via CHI, claimed as SAO: "
            << (verifier.verify(detour, {"MIA", "SAO", "AMS"}, nonce)
                    ? "verified (!)"
                    : "REJECTED")
            << '\n';

  polka::TransitProof skipped;
  skipped.absorb(verifier.secret("MIA"), nonce);
  skipped.absorb(verifier.secret("AMS"), nonce);
  std::cout << "SAO skipped entirely:           "
            << (verifier.verify(skipped, {"MIA", "SAO", "AMS"}, nonce)
                    ? "verified (!)"
                    : "REJECTED")
            << '\n';
  return 0;
}
