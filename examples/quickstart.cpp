// Quickstart: PolKA route encoding in five minutes.
//
// Reproduces the paper's Fig 1 walk-through: three core nodes with
// polynomial identifiers s1 = t+1, s2 = t^2+t+1, s3 = t^3+t+1, output
// ports o1 = 1, o2 = t, o3 = t^2+t.  The routeID is computed with the
// polynomial Chinese Remainder Theorem and each node recovers its port
// with a single mod operation -- no route tables anywhere.
//
// Build & run:  ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "gf2/poly.hpp"
#include "polka/forwarding.hpp"
#include "polka/route.hpp"

int main() {
  using hp::gf2::Poly;
  namespace polka = hp::polka;

  std::cout << "== PolKA quickstart: Fig 1 of the paper ==\n\n";

  // The three core nodes of Fig 1 with their polynomial identifiers.
  const polka::NodeId s1{"s1", Poly(0b11), 2};     // t + 1
  const polka::NodeId s2{"s2", Poly(0b111), 4};    // t^2 + t + 1
  const polka::NodeId s3{"s3", Poly(0b1011), 8};   // t^3 + t + 1
  std::cout << "node identifiers:\n";
  for (const auto& node : {s1, s2, s3}) {
    std::cout << "  " << node.name << "(t) = " << node.poly.to_string()
              << "   (binary " << node.poly.to_binary_string() << ")\n";
  }

  // Desired output ports: o1 = 1, o2 = t (port 2), o3 = t^2 + t (port 6).
  const std::vector<polka::Hop> path{{s1, 1}, {s2, 2}, {s3, 6}};
  const polka::RouteId route = polka::compute_route_id(path);
  std::cout << "\nrouteID = " << route.value.to_string() << "  (binary "
            << route.value.to_binary_string() << ", " << route.bit_length()
            << " bits)\n\n";

  // Each node recovers its port with one mod -- the CRC trick.
  std::cout << "per-node port recovery (routeID mod nodeID):\n";
  for (const auto& hop : path) {
    const unsigned port = polka::output_port(route, hop.node);
    std::cout << "  at " << hop.node.name << ": port " << port
              << (port == hop.port ? "  [matches the intended path]"
                                   : "  [MISMATCH!]")
              << '\n';
    if (port != hop.port) return EXIT_FAILURE;
  }

  // The same thing end to end on a wired fabric, using the table-driven
  // CRC engine the way a P4 switch pipeline would.
  std::cout << "\nforwarding a packet across a wired fabric:\n";
  polka::PolkaFabric fabric(polka::ModEngine::kTable);
  const auto a = fabric.add_node("A", 4);
  const auto b = fabric.add_node("B", 4);
  const auto c = fabric.add_node("C", 4);
  fabric.connect(a, 1, b);
  fabric.connect(b, 2, c);
  const polka::RouteId label = fabric.route_for_path({a, b, c}, 0U);
  const auto trace = fabric.forward(label, a);
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    std::cout << "  " << fabric.node(trace.nodes[i]).name << " --port "
              << trace.ports[i] << "-->\n";
  }
  std::cout << "  (egress; " << trace.mod_operations
            << " mod operations total, label never rewritten)\n";
  return EXIT_SUCCESS;
}
