// Packet-level sim sweep CLI: run registry scenarios through the
// event-driven simulator and print congestion metrics (FCT p50/p95,
// drop rate, deepest queue, link utilization).
//
//   sim_sweep --list
//   sim_sweep --scenario torus4x4/hotspot
//   sim_sweep --scenario leaf_spine_4x8/incast --rate 400 --gap 10000
//   sim_sweep                 # sweep every registry scenario
//
// Knobs (all optional): --packets N, --rate MBPS (per-source line
// rate), --gap NS (inter-arrival of flow starts), --queue N (egress
// FIFO capacity), --ecn N (mark threshold, 0 disables), --flow N
// (packets per flow), --seed N.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/registry.hpp"
#include "sim/runner.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;

namespace {

void print_report(const std::string& name, const sim::SimReport& report) {
  std::printf(
      "%-28s %8zu pkts  %5zu drop (%5.1f%%)  fct p50 %8.1fus  "
      "p95 %8.1fus  q_max %3u  util %4.2f  ecn %5zu  [%s]\n",
      name.c_str(), report.forwarding.packets,
      report.forwarding.dropped_packets, report.drop_rate() * 100.0,
      static_cast<double>(report.fct_p50_ns()) / 1e3,
      static_cast<double>(report.fct_p95_ns()) / 1e3,
      report.max_queue_depth, report.max_link_utilization, report.ecn_marked,
      report.forwarding.fold_kernel_name());
}

int run_one(const scenario::ScenarioSpec& spec, const sim::SimOptions& options,
            std::size_t packets_override, std::uint64_t seed_override) {
  scenario::ScenarioSpec spec_copy = spec;
  if (packets_override != 0) spec_copy.traffic.packets = packets_override;
  if (seed_override != 0) spec_copy.traffic.seed = seed_override;
  const sim::SimReport report = sim::run_sim_scenario(spec_copy, options);
  print_report(spec_copy.name, report);
  return report.forwarding.wrong_egress == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  sim::SimOptions options;
  std::size_t packets = 0;
  std::uint64_t seed = 0;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario") {
      name = next();
    } else if (arg == "--packets") {
      packets = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--rate") {
      options.source_rate_mbps = std::strtod(next(), nullptr);
    } else if (arg == "--gap") {
      options.flow_gap_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--queue") {
      options.queue_capacity =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ecn") {
      options.ecn_threshold =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--flow") {
      options.flow_packets =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: sim_sweep [--list] [--scenario NAME] [--packets N] "
                   "[--rate MBPS] [--gap NS] [--queue N] [--ecn N] [--flow N] "
                   "[--seed N]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  if (list) {
    for (const auto& spec : scenario::builtin_scenarios()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }

  if (!name.empty()) {
    const scenario::ScenarioSpec* spec = scenario::find_scenario(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try --list)\n", name.c_str());
      return 2;
    }
    return run_one(*spec, options, packets, seed);
  }

  int status = 0;
  for (const auto& spec : scenario::builtin_scenarios()) {
    status |= run_one(spec, options, packets, seed);
  }
  return status;
}
