// Packet-level sim sweep CLI: run registry scenarios through the
// event-driven simulator and print congestion metrics (FCT p50/p95,
// drop rate, deepest queue, link utilization).
//
//   sim_sweep --list
//   sim_sweep --scenario torus4x4/hotspot
//   sim_sweep --scenario leaf_spine_4x8/incast --rate 400 --gap 10000
//   sim_sweep                 # sweep every registry scenario
//
// Knobs (all optional): --packets N, --rate MBPS (per-source line
// rate), --gap NS (inter-arrival of flow starts), --queue N (egress
// FIFO capacity), --ecn N (mark threshold, 0 disables), --flow N
// (packets per flow), --seed N.
//
// Failover knobs (all optional): --fail-schedule
// single|storm|flap|srlg generates a deterministic link-event schedule
// per scenario topology (--fail-seed N, --fail-count N tune it);
// --protect K pre-installs K link-disjoint backups per pair, shrinking
// the dead-wire loss window from the recompile latency to the
// switchover latency.
//
// Transport knobs (all optional): --transport switches the run from
// open-loop schedule replay to the closed-loop sender state machine
// (AIMD windows, ECN cuts, retransmit-on-drop, RTO backoff); --cwnd N
// / --max-cwnd N set the initial/max congestion window, --rto-min NS /
// --rto-max NS bound the retransmission timeout, --max-retries N caps
// retransmissions per sequence before a flow is abandoned.
//
// Observability outputs (all optional):
//   --json PATH    hp-report-v1 JSON, one entry per scenario run
//   --trace PATH   chrome://tracing JSON of the runner phases
//   --flight PATH  hp-flight-v1 JSON from the sampled hop recorder

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "sim/runner.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;

namespace {

void print_report(const std::string& name, const sim::SimReport& report) {
  std::printf(
      "%-28s %8zu pkts  %5zu drop (%5.1f%%)  fct p50 %8.1fus  "
      "p95 %8.1fus  q_max %3u  util %4.2f  ecn %5zu  [%s]\n",
      name.c_str(), report.forwarding.packets,
      report.forwarding.dropped_packets, report.drop_rate() * 100.0,
      static_cast<double>(report.fct_p50_ns()) / 1e3,
      static_cast<double>(report.fct_p95_ns()) / 1e3,
      report.max_queue_depth, report.max_link_utilization, report.ecn_marked,
      report.forwarding.fold_kernel_name());
  if (report.transport.enabled) {
    std::printf(
        "%-28s transport: %zu/%zu flows done  %llu abandoned  "
        "%llu rtx  %llu timeouts  goodput %5.1f%%\n",
        "", report.completed_flows, report.flows,
        static_cast<unsigned long long>(report.transport.abandoned_flows),
        static_cast<unsigned long long>(report.transport.retransmits),
        static_cast<unsigned long long>(report.transport.timeouts),
        report.goodput_fraction() * 100.0);
  }
  const auto& fwd = report.forwarding;
  if (fwd.backup_swapped_pairs + fwd.failover_packets_lost +
          fwd.unroutable_pairs + fwd.window_recompiles + fwd.rerouted_pairs !=
      0) {
    std::printf("%-28s failover: %zu rerouted (%zu swapped)  %zu lost"
                "  %zu unroutable  %zu window recompiles\n",
                "", fwd.rerouted_pairs, fwd.backup_swapped_pairs,
                fwd.failover_packets_lost, fwd.unroutable_pairs,
                fwd.window_recompiles);
  }
}

/// (scenario name, hp-report-v1 json) pairs collected for --json.
using JsonEntries = std::vector<std::pair<std::string, std::string>>;

int run_one(const scenario::ScenarioSpec& spec, const sim::SimOptions& options,
            std::size_t packets_override, std::uint64_t seed_override,
            const std::optional<scenario::FailureInjectorParams>& inject,
            JsonEntries* json_out) {
  scenario::ScenarioSpec spec_copy = spec;
  if (packets_override != 0) spec_copy.traffic.packets = packets_override;
  if (seed_override != 0) spec_copy.traffic.seed = seed_override;
  sim::SimOptions run_options = options;
  if (inject.has_value()) {
    // Deterministic per-topology events (the schedule is a pure
    // function of topology + params, so every run reproduces).
    run_options.failures = scenario::make_failure_schedule(
        scenario::build_topology(spec_copy), *inject);
  }
  const sim::SimReport report = sim::run_sim_scenario(spec_copy, run_options);
  print_report(spec_copy.name, report);
  if (json_out != nullptr) {
    json_out->emplace_back(spec_copy.name, hp::obs::to_json(report));
  }
  return report.forwarding.wrong_egress == 0 ? 0 : 1;
}

/// One JSON object keyed by scenario name; values are already-valid
/// hp-report-v1 documents, so this is plain concatenation.
void write_json_entries(const std::string& path, const JsonEntries& entries) {
  std::string out = "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  ";
    hp::obs::JsonWriter::escape_to(out, entries[i].first);
    out += ": ";
    out += entries[i].second;
  }
  out += "\n}\n";
  hp::obs::write_text_file(path, out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  sim::SimOptions options;
  std::size_t packets = 0;
  std::uint64_t seed = 0;
  std::optional<scenario::FailureInjectorParams> inject;
  auto injector = [&]() -> scenario::FailureInjectorParams& {
    if (!inject.has_value()) inject.emplace();
    return *inject;
  };
  bool list = false;
  std::string json_path;
  std::string trace_path;
  std::string flight_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario") {
      name = next();
    } else if (arg == "--packets") {
      packets = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--rate") {
      options.source_rate_mbps = std::strtod(next(), nullptr);
    } else if (arg == "--gap") {
      options.flow_gap_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--queue") {
      options.queue_capacity =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ecn") {
      options.ecn_threshold =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--flow") {
      options.flow_packets =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--transport") {
      options.transport.enabled = true;
    } else if (arg == "--cwnd") {
      options.transport.init_cwnd =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-cwnd") {
      options.transport.max_cwnd =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--rto-min") {
      options.transport.rto_min_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rto-max") {
      options.transport.rto_max_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-retries") {
      options.transport.max_retries =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--fail-schedule") {
      const char* preset_name = next();
      const auto preset = scenario::parse_failure_preset(preset_name);
      if (!preset.has_value()) {
        std::fprintf(stderr,
                     "bad --fail-schedule %s (want single|storm|flap|srlg)\n",
                     preset_name);
        return 2;
      }
      injector().preset = *preset;
    } else if (arg == "--fail-seed") {
      injector().seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fail-count") {
      injector().count =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--protect") {
      options.protection_k =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--flight") {
      flight_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: sim_sweep [--list] [--scenario NAME] [--packets N] "
                   "[--rate MBPS] [--gap NS] [--queue N] [--ecn N] [--flow N] "
                   "[--seed N] [--transport] [--cwnd N] [--max-cwnd N] "
                   "[--rto-min NS] [--rto-max NS] [--max-retries N] "
                   "[--fail-schedule single|storm|flap|srlg] "
                   "[--fail-seed N] [--fail-count N] [--protect K] "
                   "[--json PATH] [--trace PATH] [--flight PATH]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  hp::obs::MetricRegistry registry;
  hp::obs::TraceSink trace_sink;
  hp::obs::FlightRecorder recorder;
  JsonEntries json_entries;
  JsonEntries* json_out = json_path.empty() ? nullptr : &json_entries;
  if (!json_path.empty()) options.metrics = &registry;
  if (!trace_path.empty()) options.trace = &trace_sink;
  if (!flight_path.empty()) options.recorder = &recorder;

  if (list) {
    for (const auto& spec : scenario::builtin_scenarios()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }

  int status = 0;
  if (!name.empty()) {
    const scenario::ScenarioSpec* spec = scenario::find_scenario(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try --list)\n", name.c_str());
      return 2;
    }
    status = run_one(*spec, options, packets, seed, inject, json_out);
  } else {
    for (const auto& spec : scenario::builtin_scenarios()) {
      status |= run_one(spec, options, packets, seed, inject, json_out);
    }
  }

  if (json_out != nullptr) write_json_entries(json_path, json_entries);
  if (!trace_path.empty()) {
    trace_sink.write(trace_path);
    std::printf("wrote %s\n", trace_path.c_str());
  }
  if (!flight_path.empty()) {
    hp::obs::write_text_file(flight_path, recorder.to_json());
    std::printf("wrote %s\n", flight_path.c_str());
  }
  return status;
}
