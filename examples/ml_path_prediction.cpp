// ML path-QoS prediction: the Hecate side of the framework.
//
// Generates the UQ-like wireless trace (WiFi = Path 1, LTE = Path 2),
// trains the paper's best model (Random Forest) and its worst (Gaussian
// Process) through the exact Section V-B pipeline, prints their
// observed-vs-predicted tails (Figs 7/8 as text) and runs Hecate's
// multi-step forecast to recommend a path.
//
// Build & run:  ./build/examples/ml_path_prediction

#include <iomanip>
#include <iostream>

#include "core/hecate.hpp"
#include "dataset/uq_wireless.hpp"
#include "ml/registry.hpp"

int main() {
  std::cout << "== Hecate path-QoS prediction ==\n\n";
  const auto trace = hp::dataset::generate_uq_trace();
  std::cout << "synthetic UQ trace: " << trace.size()
            << " s of WiFi/LTE bandwidth (regimes: indoor 0-100 s,\n"
            << "walking 100-180 s, outdoor 180-500 s)\n\n";

  std::cout << std::fixed << std::setprecision(2);
  for (const char* name : {"RFR", "GPR"}) {
    std::cout << "--- model " << name << " ---\n";
    for (const auto& [path_label, series] :
         {std::pair{"WiFi (Path 1)", &trace.wifi},
          std::pair{"LTE  (Path 2)", &trace.lte}}) {
      auto model = hp::ml::make_regressor(name);
      const auto result = hp::core::run_pipeline(*model, *series);
      std::cout << "  " << path_label << ": RMSE " << std::setw(6)
                << result.rmse << "   observed vs predicted (last 5):\n";
      const std::size_t n = result.observed.size();
      for (std::size_t i = n - 5; i < n; ++i) {
        std::cout << "      " << std::setw(7) << result.observed[i]
                  << "  ->  " << std::setw(7) << result.predicted[i] << '\n';
      }
    }
  }

  // Hecate as a service: learn both paths, forecast 10 steps, recommend.
  std::cout << "\n--- HecateService recommendation ---\n";
  hp::core::HecateConfig config;  // RFR, history 10, horizon 10
  hp::core::HecateService hecate(config);
  hecate.load_series("Path1-WiFi", trace.wifi);
  hecate.load_series("Path2-LTE", trace.lte);
  hecate.fit("Path1-WiFi");
  hecate.fit("Path2-LTE");
  for (const char* path : {"Path1-WiFi", "Path2-LTE"}) {
    const auto forecast = hecate.forecast(path, 10);
    std::cout << "  " << path << " next-10 forecast:";
    for (const double v : forecast) std::cout << ' ' << v;
    std::cout << '\n';
  }
  const auto best = hecate.recommend({"Path1-WiFi", "Path2-LTE"});
  std::cout << "  recommended path (most predicted bandwidth): " << *best
            << '\n';
  return 0;
}
