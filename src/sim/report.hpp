#pragma once
// SimReport: the timed-simulation counterpart of ScenarioReport.
//
// A SimReport embeds a ScenarioReport (so every consumer of replay
// reports -- benches, CLIs, CI artifacts -- reads simulated runs with
// the same fields and merge schema) and adds what only a timed data
// plane can know: the flow-completion-time distribution, drop rate,
// ECN marks, queue high-water marks and link utilization.
//
// FCT percentiles are nearest-rank statistics over the *retained
// sample vector*, never stored precomputed: merging two partial
// reports pools the samples and recomputes, because percentiles do not
// average (see ScenarioReport's shard-merge schema note).  Every field
// is derived from integer event timestamps, so a fixed scenario seed
// reproduces a bit-identical report on every run.

#include <cstdint>
#include <vector>

#include "scenario/runner.hpp"
#include "sim/packet_sim.hpp"
#include "sim/transport.hpp"

namespace hp::sim {

struct SimReport {
  /// Replay-shaped view of the simulated forwarding work.  `packets`
  /// counts packets whose walk terminated (delivered or ttl-killed);
  /// tail-dropped packets land in `dropped_packets`.  `seconds` is
  /// *simulated* time (duration_ns / 1e9) -- deterministic, unlike the
  /// wall clock replay stores there -- so packets_per_sec() reads as
  /// simulated goodput.
  scenario::ScenarioReport forwarding;

  std::size_t flows = 0;
  std::size_t completed_flows = 0;  ///< every packet delivered
  std::size_t ecn_marked = 0;
  std::uint32_t max_queue_depth = 0;   ///< deepest egress queue seen
  double max_link_utilization = 0.0;   ///< busiest link's busy fraction
  double mean_link_utilization = 0.0;  ///< across links that carried traffic
  Tick duration_ns = 0;  ///< simulated time of the last event

  /// FCT of each completed flow (ns), in completion order.  Kept raw so
  /// percentiles can be recomputed after a merge.
  std::vector<Tick> fct_ns;

  /// Closed-loop outcome (all-zero with `enabled` false on open-loop
  /// runs).  Counters merge by summation, `enabled` ORs.
  TransportReport transport;

  /// Delivered first-copy payload over offered payload (1.0 when the
  /// transport was off or nothing was offered).
  [[nodiscard]] double goodput_fraction() const noexcept {
    return transport.offered_bytes == 0
               ? 1.0
               : static_cast<double>(transport.goodput_bytes) /
                     static_cast<double>(transport.offered_bytes);
  }

  /// Nearest-rank percentile of the completed-flow FCTs: the
  /// ceil(q * n)-th order statistic (0 when no flow completed).
  [[nodiscard]] Tick fct_percentile_ns(double q) const;
  [[nodiscard]] Tick fct_p50_ns() const { return fct_percentile_ns(0.50); }
  [[nodiscard]] Tick fct_p95_ns() const { return fct_percentile_ns(0.95); }

  /// Tail drops over injected packets (0 when nothing was injected).
  [[nodiscard]] double drop_rate() const noexcept {
    const double injected = static_cast<double>(
        forwarding.packets + forwarding.dropped_packets);
    return injected == 0.0
               ? 0.0
               : static_cast<double>(forwarding.dropped_packets) / injected;
  }

  /// Merge a partial report covering a disjoint set of flows (e.g. one
  /// simulated shard) over the same simulated period: counters sum via
  /// the ScenarioReport schema, FCT samples pool (percentiles are then
  /// recomputed on demand -- never averaged), high-water marks and
  /// utilizations take the max, and the duration is the latest end.
  void merge_from(const SimReport& partial);

  /// Consuming merge: identical schema, but the partial's FCT samples
  /// are moved (or become the pool outright when ours is empty) instead
  /// of copied -- shard joins discard their partials, so the copy is
  /// pure waste there.
  void merge_from(SimReport&& partial);

  friend bool operator==(const SimReport&, const SimReport&) = default;

 private:
  void merge_scalars_from(const SimReport& partial);
};

}  // namespace hp::sim
