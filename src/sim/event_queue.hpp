#pragma once
// Binary-heap event queue with integer timestamps.
//
// The discrete-event data plane (src/sim/packet_sim.hpp) advances by
// popping the earliest pending event; simulated time is a plain
// std::uint64_t nanosecond counter (`Tick`), never a double, so event
// ordering -- and therefore every simulated result -- is bit-exact
// across runs, compilers and machines.  Events carry only POD payload
// (a kind tag and one 32-bit argument); the engine owns all state and
// interprets the payload, keeping the heap entries 24 bytes and the
// queue allocation-free after its first growth.
//
// Same-time events fire in push order: every push stamps a strictly
// increasing sequence number that breaks timestamp ties, the property
// the determinism tests pin down.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace hp::sim {

/// Simulated time in integer nanoseconds.
using Tick = std::uint64_t;

/// One scheduled occurrence.  `kind` and `arg` are interpreted by the
/// engine that pushed the event (e.g. packet arrival at a node vs a
/// channel queue drain).
struct Event {
  Tick at = 0;            ///< absolute simulated time
  std::uint64_t seq = 0;  ///< push order; breaks same-tick ties FIFO
  std::uint32_t kind = 0;
  std::uint32_t arg = 0;
};

// Heap entries stay 24 bytes (tick + seq + packed payload) so the
// vector heap is three words per event and sift operations stay
// memcpy-cheap.
HP_ASSERT_HOT_POD(Event, 24);

/// Min-heap of events ordered by (at, seq).
///
/// A thin, deterministic wrapper over std::push_heap/std::pop_heap on a
/// contiguous vector -- the classic binary heap, O(log n) push/pop with
/// no node allocations.
class EventQueue {
 public:
  /// Schedule `kind(arg)` at absolute time `at` (>= the caller's
  /// current time by convention; the queue itself does not check).
  void push(Tick at, std::uint32_t kind, std::uint32_t arg) {
    heap_.push_back(Event{at, next_seq_++, kind, arg});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// The earliest pending event.  Calling on an empty queue is a
  /// contract violation (checked in debug builds).
  [[nodiscard]] const Event& top() const {
    HP_DCHECK(!heap_.empty(), "EventQueue::top on an empty queue");
    return heap_.front();
  }

  /// Remove and return the earliest pending event.
  Event pop() {
    HP_DCHECK(!heap_.empty(), "EventQueue::pop on an empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  /// "a fires after b": the std::*_heap comparator producing a min-heap
  /// on (at, seq).
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hp::sim
