#pragma once
// SimRunner: feed any scenario through the event-driven data plane.
//
// The replay path answers "how fast can the kernels forward this
// stream"; SimRunner answers "what happens to this stream on real
// links".  It reuses every artifact the scenario engine already
// builds -- the generated topology (whose per-link capacity_mbps /
// delay_ms become Channel timing), the BuiltFabric's compiled routes
// and the PacketStream's labels, pairs and pooled segments -- then
// schedules the stream as timed flows and runs PacketSim to
// completion.  One compiled fabric therefore drives both the
// pure-throughput replay numbers and the congestion-sensitive
// FCT/drop/queue numbers, with bit-identical forwarding decisions.
//
// Flow shaping: the stream's packets are grouped per traffic pair into
// flows of at most `flow_packets` packets (stream emission order is
// preserved).  Flow k starts at k * flow_gap_ns; within a flow the
// source injects back-to-back at `source_rate_mbps`.  Offered load is
// therefore tuned by the gap and the rate -- a gap shorter than a
// flow's service time piles flows up and congests shared links
// (hotspot incast, elephant collisions), a generous gap drains them
// one by one.
//
// Simulation is single-threaded by design: one event heap, one total
// event order, bit-identical reports for a fixed seed regardless of
// how many threads the surrounding process uses (the determinism
// tests pin this, including against `compile_threads`).

#include <cstdint>
#include <vector>

#include "scenario/fabric_builder.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/traffic.hpp"
#include "sim/report.hpp"
#include "sim/transport.hpp"

namespace hp::obs {
class MetricRegistry;
class TraceSink;
class FlightRecorder;
}  // namespace hp::obs

namespace hp::telemetry {
class TimeSeriesStore;
}  // namespace hp::telemetry

namespace hp::sim {

/// Timing and queueing knobs of a simulated run.
struct SimOptions {
  std::uint64_t packet_bytes = 1500;   ///< wire size of every packet
  double source_rate_mbps = 100.0;     ///< per-source injection line rate
  Tick flow_gap_ns = 50'000;           ///< inter-arrival of flow starts
  std::uint32_t queue_capacity = 64;   ///< per-channel egress FIFO cap
  std::uint32_t ecn_threshold = 48;    ///< mark depth; 0 disables marking
  std::size_t flow_packets = 8;        ///< max packets per flow
  std::size_t max_hops = 64;           ///< same hop cap as replay
  /// Threads for BuiltFabric::compile_all_pairs when run_sim_scenario
  /// precompiles routes (the simulation itself is single-threaded and
  /// its report is identical for every value here).
  unsigned compile_threads = 1;

  // --- failure schedule (all simulated-time deterministic) -----------
  /// Link events, at_fraction mapped onto the injection window (the
  /// last scheduled injection tick).  At each event's tick the directed
  /// channels physically go down (or come back, restore = true):
  /// packets already routed onto a dead wire are failover losses.  The
  /// control plane reacts `switchover_latency_ns` later when a backup
  /// swap serves the pair, `repair_latency_ns` later when it had to
  /// recompile -- packets a source emits inside that window still carry
  /// the dead route and die at the wire, which is exactly the loss gap
  /// hitless protection shrinks.
  std::vector<scenario::LinkFailure> failures;
  /// Closed-loop transport (transport.enabled): instead of replaying
  /// the open-loop schedule verbatim, each flow runs the Transport
  /// sender state machine -- AIMD window, ECN-cut, retransmit-on-drop,
  /// RTO backoff, max-retries abandonment -- and retransmissions
  /// traverse the same compiled fabric.  The failure schedule still
  /// maps its fractions onto the *open-loop* injection window, so an
  /// open and a closed run face the same failure ticks.
  TransportOptions transport;
  /// Pre-install up to k disjoint backups per pair before simulating
  /// (BuiltFabric::enable_protection).  0 leaves the fabric eager.
  unsigned protection_k = 0;
  Tick switchover_latency_ns = 1'000;  ///< label swap from a warm table
  Tick repair_latency_ns = 200'000;    ///< Dijkstra + CRT recompile path

  // --- observability taps (all optional, borrowed) -------------------
  /// Registry for the engine's sim.* metrics plus the runner's
  /// sim.fct_ns histogram and flow counters.  Everything recorded under
  /// it derives from simulated ticks, so fixed-seed snapshots are
  /// bit-identical across runs and thread counts.
  obs::MetricRegistry* metrics = nullptr;
  /// Phase timer sink (sim.wire / sim.schedule / sim.simulate /
  /// sim.report complete events).
  obs::TraceSink* trace = nullptr;
  /// Hop-level flight recorder handed to PacketSim.
  obs::FlightRecorder* recorder = nullptr;
  /// Telemetry store sampled every `telemetry_period_ns` simulated ns:
  /// each registry gauge (per-link queue depth, in-flight packets)
  /// becomes one time series.  When set without `metrics`, the runner
  /// uses a private registry so the bridge still has gauges to read.
  telemetry::TimeSeriesStore* telemetry = nullptr;
  Tick telemetry_period_ns = 100'000;  ///< 100 us of simulated time
};

/// Runs PacketSim over a built fabric and a generated stream.
class SimRunner {
 public:
  explicit SimRunner(SimOptions options = {}) : options_(options) {}

  [[nodiscard]] const SimOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the stream on the fabric's topology links.  The stream
  /// itself is read-only; failure schedules rewrite labels on private
  /// copies of the segment pools, never on the caller's stream.
  /// \return the merged SimReport; `forwarding.fold_kernel` names the
  ///   kernel that made every per-hop decision.
  [[nodiscard]] SimReport run(scenario::BuiltFabric& fabric,
                              const scenario::PacketStream& stream) const;

 private:
  SimOptions options_;
};

/// One-call path for benches, tests and CLIs: build the registry
/// spec's topology and fabric, precompile all routes
/// (options.compile_threads workers), generate its traffic and
/// simulate it.
[[nodiscard]] SimReport run_sim_scenario(const scenario::ScenarioSpec& spec,
                                         const SimOptions& options = {});

}  // namespace hp::sim
