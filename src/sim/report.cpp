#include "sim/report.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

namespace hp::sim {

Tick SimReport::fct_percentile_ns(double q) const {
  if (fct_ns.empty()) return 0;
  std::vector<Tick> sorted(fct_ns);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the ceil(q * n)-th order statistic, clamped to
  // [1, n] (same rule as netsim::collect_fct's p95 -- floor-indexing
  // selects one statistic too high).
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

void SimReport::merge_from(const SimReport& partial) {
  merge_scalars_from(partial);
  fct_ns.insert(fct_ns.end(), partial.fct_ns.begin(), partial.fct_ns.end());
}

void SimReport::merge_from(SimReport&& partial) {
  merge_scalars_from(partial);
  if (fct_ns.empty()) {
    fct_ns = std::move(partial.fct_ns);
  } else {
    fct_ns.insert(fct_ns.end(),
                  std::make_move_iterator(partial.fct_ns.begin()),
                  std::make_move_iterator(partial.fct_ns.end()));
  }
}

void SimReport::merge_scalars_from(const SimReport& partial) {
  forwarding.merge_from(partial.forwarding);
  // `seconds` summed by the counter schema, but simulated shards cover
  // the same period: restore the latest-end definition.
  flows += partial.flows;
  completed_flows += partial.completed_flows;
  ecn_marked += partial.ecn_marked;
  max_queue_depth = std::max(max_queue_depth, partial.max_queue_depth);
  max_link_utilization =
      std::max(max_link_utilization, partial.max_link_utilization);
  mean_link_utilization =
      std::max(mean_link_utilization, partial.mean_link_utilization);
  duration_ns = std::max(duration_ns, partial.duration_ns);
  forwarding.seconds = static_cast<double>(duration_ns) * 1e-9;
  transport.enabled = transport.enabled || partial.transport.enabled;
  transport.packets_sent += partial.transport.packets_sent;
  transport.retransmits += partial.transport.retransmits;
  transport.timeouts += partial.transport.timeouts;
  transport.ecn_cwnd_cuts += partial.transport.ecn_cwnd_cuts;
  transport.drop_cwnd_cuts += partial.transport.drop_cwnd_cuts;
  transport.spurious_deliveries += partial.transport.spurious_deliveries;
  transport.abandoned_flows += partial.transport.abandoned_flows;
  transport.offered_bytes += partial.transport.offered_bytes;
  transport.goodput_bytes += partial.transport.goodput_bytes;
}

}  // namespace hp::sim
