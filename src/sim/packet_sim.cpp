#include "sim/packet_sim.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_bridge.hpp"

namespace hp::sim {

namespace {

/// Event kinds on the engine's queue.
enum EventKind : std::uint32_t {
  kArrive = 0,    ///< arg = packet index; packet reaches its state's node
  kDrain = 1,     ///< arg = channel index; one serialization finished
  kLinkDown = 2,  ///< arg = channel index; the wire disappears
  kLinkUp = 3,    ///< arg = channel index; the wire comes back
  kTimer = 4,     ///< arg = opaque cookie handed to config.timer_hook
};

}  // namespace

PacketSim::PacketSim(const polka::CompiledFabric& fabric,
                     std::vector<Channel> channels,
                     std::vector<std::uint32_t> node_offset,
                     std::vector<std::uint32_t> port_channel, SimConfig config)
    : fabric_(fabric),
      channels_(std::move(channels)),
      node_offset_(std::move(node_offset)),
      port_channel_(std::move(port_channel)),
      config_(std::move(config)) {
  const std::size_t n = fabric_.node_count();
  if (node_offset_.size() != n + 1 || node_offset_.front() != 0 ||
      node_offset_.back() != port_channel_.size()) {
    throw std::invalid_argument("PacketSim: node_offset shape mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (node_offset_[i] > node_offset_[i + 1] ||
        node_offset_[i + 1] - node_offset_[i] != fabric_.port_count(i)) {
      throw std::invalid_argument(
          "PacketSim: node_offset does not match the fabric's port counts");
    }
  }
  for (const std::uint32_t c : port_channel_) {
    if (c != kNoChannel && c >= channels_.size()) {
      throw std::invalid_argument("PacketSim: channel index out of range");
    }
  }
  result_.links.assign(channels_.size(), LinkStat{});
  channel_state_.assign(channels_.size(), ChannelState{});
  link_up_.assign(channels_.size(), 1);
  register_metrics();
}

void PacketSim::register_metrics() {
  obs::MetricRegistry* reg = config_.metrics;
  if (reg == nullptr) return;
  obs_.injected = &reg->counter("sim.injected");
  obs_.delivered = &reg->counter("sim.delivered");
  obs_.tail_drops = &reg->counter("sim.tail_drops");
  obs_.ttl_expired = &reg->counter("sim.ttl_expired");
  obs_.ecn_marked = &reg->counter("sim.ecn_marked");
  obs_.folds = &reg->counter("sim.folds");
  obs_.segment_swaps = &reg->counter("sim.segment_swaps");
  obs_.wrong_egress = &reg->counter("sim.wrong_egress");
  obs_.failover_lost = &reg->counter("sim.failover.packets_lost");
  obs_.link_events = &reg->counter("sim.failover.link_events");
  obs_.in_flight = &reg->gauge("sim.in_flight");
  obs_.queue_depth = &reg->histogram("sim.queue_depth");
  obs_.link_depth.reserve(channels_.size());
  obs_.link_drops.reserve(channels_.size());
  obs_.link_ecn.reserve(channels_.size());
  char name[48];
  for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
    // Zero-padded so the name-sorted snapshot lists links numerically.
    std::snprintf(name, sizeof(name), "sim.link.%05zu.queue_depth", ch);
    obs_.link_depth.push_back(&reg->gauge(name));
    std::snprintf(name, sizeof(name), "sim.link.%05zu.drops", ch);
    obs_.link_drops.push_back(&reg->counter(name));
    std::snprintf(name, sizeof(name), "sim.link.%05zu.ecn", ch);
    obs_.link_ecn.push_back(&reg->counter(name));
  }
}

void PacketSim::set_segment_pool(std::span<const polka::RouteLabel> labels,
                                 std::span<const std::uint32_t> waypoints) {
  pool_labels_ = labels;
  pool_waypoints_ = waypoints;
}

void PacketSim::schedule_link_state(Tick at, std::uint32_t channel, bool up) {
  if (channel >= channels_.size()) {
    throw std::invalid_argument(
        "PacketSim::schedule_link_state: bad channel index");
  }
  queue_.push(at, up ? kLinkUp : kLinkDown, channel);
}

std::uint32_t PacketSim::add_flow(const polka::PacketResult& expected) {
  flow_expected_.push_back(expected);
  result_.flows.push_back(FlowStat{});
  return static_cast<std::uint32_t>(flow_expected_.size() - 1);
}

void PacketSim::schedule_timer(Tick at, std::uint32_t arg) {
  if (!config_.timer_hook) {
    throw std::logic_error("PacketSim::schedule_timer: no timer_hook set");
  }
  queue_.push(at, kTimer, arg);
}

std::uint32_t PacketSim::inject(Tick at, polka::RouteLabel label,
                                polka::SegmentRef ref, std::uint32_t source,
                                std::uint32_t flow) {
  if (source >= fabric_.node_count()) {
    throw std::invalid_argument("PacketSim::inject: bad source node");
  }
  if (flow >= flow_expected_.size()) {
    throw std::invalid_argument("PacketSim::inject: unknown flow");
  }
  if (ref.label_count == 0 ||
      (ref.label_count > 1 &&
       (ref.first_label + std::size_t{ref.label_count} > pool_labels_.size() ||
        ref.first_waypoint + std::size_t{ref.label_count} - 1 >
            pool_waypoints_.size()))) {
    throw std::invalid_argument(
        "PacketSim::inject: segment ref outside the pools");
  }
  PacketState p;
  // Mirrors replay_slice's lane split: pooled labels only for genuinely
  // multi-segment routes (a default ref's first_label means nothing).
  p.label = ref.label_count > 1 ? pool_labels_[ref.first_label].bits
                                : label.bits;
  p.ref = ref;
  p.node = source;
  p.flow = flow;
  const auto index = static_cast<std::uint32_t>(packets_.size());
  packets_.push_back(p);
  FlowStat& fs = result_.flows[flow];
  if (fs.packets == 0 || at < fs.first_inject) fs.first_inject = at;
  ++fs.packets;
  ++result_.counters.injected;
  if (ref.label_count > 1) ++result_.counters.segmented_packets;
  if (obs_.injected != nullptr) {
    obs_.injected->add(1);
    obs_.in_flight->add(1);
  }
  queue_.push(at, kArrive, index);
  return index;
}

// HP_HOT_BEGIN(event_loop)
// The discrete-event inner loop: every hop is a fold, a wiring lookup
// and O(1) queue/state updates on storage sized at wiring time.  All
// allocation (packets_, flows, the per-link vectors) happens in
// inject()/register_metrics() before the clock starts; the loop itself
// must stay growth-free (lint rule hot-path-purity) or event-rate
// throughput becomes allocator-bound.  EventQueue::push re-uses its
// heap's capacity after the first growth.
void PacketSim::handle_arrival(Tick t, std::uint32_t packet) {
  HP_DCHECK(packet < packets_.size(), "PacketSim: arrival for unknown packet");
  PacketState& s = packets_[packet];
  HP_DCHECK(s.node < fabric_.node_count(),
            "PacketSim: packet parked on an unknown node");
  SimCounters& c = result_.counters;
  // 1-in-N flight recording resolved once per hop; flight is a null
  // pointer for unsampled flows so every tap below is one branch.
  obs::FlightRecorder* const flight =
      config_.recorder != nullptr && config_.recorder->sampled(s.flow)
          ? config_.recorder
          : nullptr;
  // Waypoint re-label before this node's mod, exactly as the batch walk
  // kernel does (fold_kernels.hpp): a waypoint folds once like every
  // other node, just with its fresh label.
  if (s.seg + 1 < s.ref.label_count &&
      s.node == pool_waypoints_[s.ref.first_waypoint + s.seg]) {
    ++s.seg;
    s.label = pool_labels_[s.ref.first_label + s.seg].bits;
    ++c.segment_swaps;
    if (obs_.segment_swaps != nullptr) obs_.segment_swaps->add(1);
  }
  const std::uint32_t port =
      fabric_.port_of(polka::RouteLabel{s.label}, s.node);
  ++c.mod_operations;
  ++s.hops;
  if (obs_.folds != nullptr) obs_.folds->add(1);
  const std::uint32_t peer = fabric_.neighbor(s.node, port);
  FlowStat& fs = result_.flows[s.flow];
  // Shared delivery tail: the unwired-port and channel-less-port exits.
  const auto deliver = [&] {
    ++c.delivered;
    ++fs.delivered;
    fs.last_delivery = std::max(fs.last_delivery, t);
    const polka::PacketResult got{s.node, port, s.hops, false};
    const bool wrong = got != flow_expected_[s.flow];
    if (wrong) ++c.wrong_egress;
    if (obs_.delivered != nullptr) {
      obs_.delivered->add(1);
      obs_.in_flight->sub(1);
      if (wrong) obs_.wrong_egress->add(1);
    }
    if (flight != nullptr) {
      flight->record({t, s.flow, packet, s.node, port, 0,
                      obs::HopOutcome::kDelivered});
    }
    if (config_.delivered_hook) config_.delivered_hook(t, s.flow, packet);
  };
  if (peer == polka::CompiledFabric::kNoNode) {
    // Unwired port: the packet egresses here -- a delivery.
    deliver();
    return;
  }
  if (s.hops >= config_.max_hops) {
    ++c.ttl_expired;
    ++fs.ttl_expired;
    if (obs_.ttl_expired != nullptr) {
      obs_.ttl_expired->add(1);
      obs_.in_flight->sub(1);
    }
    if (flight != nullptr) {
      flight->record({t, s.flow, packet, s.node, port, 0,
                      obs::HopOutcome::kTtlExpired});
    }
    if (config_.drop_hook) {
      config_.drop_hook(t, s.flow, packet, DropCause::kTtlExpired);
    }
    return;
  }
  const std::uint32_t ch = port_channel_[node_offset_[s.node] + port];
  if (ch == kNoChannel) {
    // A wired fabric port the runner gave no channel (should not happen
    // on runner-built maps); treat as an egress so the walk terminates.
    deliver();
    return;
  }
  const Channel& link = channels_[ch];
  ChannelState& state = channel_state_[ch];
  LinkStat& stat = result_.links[ch];
  if (link_up_[ch] == 0) {
    // The wire is gone: nothing to queue behind, the packet is lost.
    // This is the loss window hitless failover shrinks -- packets that
    // left their source before the control plane swapped the route.
    ++c.dropped;
    ++c.failover_lost;
    ++fs.dropped;
    ++stat.failover_drops;
    if (obs_.failover_lost != nullptr) {
      obs_.failover_lost->add(1);
      obs_.link_drops[ch]->add(1);
      obs_.in_flight->sub(1);
    }
    if (flight != nullptr) {
      flight->record({t, s.flow, packet, s.node, port, state.queued,
                      obs::HopOutcome::kLinkDown});
    }
    if (config_.drop_hook) {
      config_.drop_hook(t, s.flow, packet, DropCause::kLinkDown);
    }
    return;
  }
  if (state.queued >= link.queue_capacity) {
    // Tail drop: the egress FIFO is full.
    ++c.dropped;
    ++fs.dropped;
    ++stat.tail_drops;
    if (obs_.tail_drops != nullptr) {
      obs_.tail_drops->add(1);
      obs_.link_drops[ch]->add(1);
      obs_.in_flight->sub(1);
    }
    if (flight != nullptr) {
      flight->record({t, s.flow, packet, s.node, port, state.queued,
                      obs::HopOutcome::kTailDrop});
    }
    if (config_.drop_hook) {
      config_.drop_hook(t, s.flow, packet, DropCause::kTailDrop);
    }
    return;
  }
  ++state.queued;
  stat.max_queue_depth = std::max(stat.max_queue_depth, state.queued);
  const bool ecn =
      link.ecn_threshold != 0 && state.queued >= link.ecn_threshold;
  if (ecn) {
    ++c.ecn_marked;
    ++stat.ecn_marks;
    if (config_.ecn_hook) config_.ecn_hook(ch, state.queued, s.flow);
  }
  if (obs_.queue_depth != nullptr) {
    obs_.queue_depth->record(state.queued);
    obs_.link_depth[ch]->add(1);
    if (ecn) {
      obs_.ecn_marked->add(1);
      obs_.link_ecn[ch]->add(1);
    }
  }
  if (flight != nullptr) {
    flight->record({t, s.flow, packet, s.node, port, state.queued,
                    obs::HopOutcome::kForwarded});
  }
  // FIFO serialization: the wire commits to this packet after everything
  // already queued; the departure time is known at enqueue time.
  const Tick start = std::max(t, state.free_at);
  const Tick depart = start + link.serialize_ns;
  state.free_at = depart;
  stat.busy_ns += link.serialize_ns;
  ++stat.forwarded;
  s.node = peer;
  // Drain (queue slot freed) before the downstream arrival: pushed
  // first, so a zero-latency tie still frees the slot first.
  queue_.push(depart, kDrain, ch);
  queue_.push(depart + link.latency_ns, kArrive, packet);
}

SimResult PacketSim::run() {
  const Tick period = config_.telemetry_period_ns;
  const bool sampling = config_.telemetry != nullptr && period > 0;
  // First boundary at one full period (a t=0 sample would only ever see
  // zeros); next_sample_ persists across run() calls so phased feeding
  // keeps one monotonic series.
  if (sampling && next_sample_ == 0) next_sample_ = period;
  while (!queue_.empty()) {
    const Event e = queue_.pop();
    // Simulated time never rewinds: the heap orders by (at, seq), so a
    // violation here means an engine scheduled into the past -- the
    // exact class of bug that silently breaks bit-identical replay.
    HP_CHECK(e.at >= now_, "PacketSim: event scheduled before now");
    if (sampling) {
      // Sample every boundary at or before this event, *before*
      // processing it: each point is the state as of the boundary tick,
      // pinned to event order, never wall clock.
      while (next_sample_ <= e.at) {
        config_.telemetry->sample(static_cast<double>(next_sample_) * 1e-9);
        next_sample_ += period;
      }
    }
    now_ = e.at;
    switch (e.kind) {
      case kArrive:
        handle_arrival(e.at, e.arg);
        break;
      case kDrain:
        HP_DCHECK(channel_state_[e.arg].queued > 0,
                  "PacketSim: drain on an empty channel queue");
        --channel_state_[e.arg].queued;
        if (obs_.queue_depth != nullptr) obs_.link_depth[e.arg]->sub(1);
        break;
      case kLinkDown:
        link_up_[e.arg] = 0;
        ++result_.counters.link_down_events;
        if (obs_.link_events != nullptr) obs_.link_events->add(1);
        break;
      case kLinkUp:
        link_up_[e.arg] = 1;
        if (obs_.link_events != nullptr) obs_.link_events->add(1);
        break;
      case kTimer:
        HP_DCHECK(static_cast<bool>(config_.timer_hook),
                  "PacketSim: timer event with no timer_hook");
        config_.timer_hook(e.at, e.arg);
        break;
      default:
        throw std::logic_error("PacketSim: unknown event kind");
    }
  }
  result_.counters.end_ns = now_;
  return result_;
}
// HP_HOT_END(event_loop)

}  // namespace hp::sim
