#pragma once
// Closed-loop transport over the packet-level simulator.
//
// PR 6's PacketSim counts ECN marks and tail drops but nothing *reacts*
// to them: the open-loop SimRunner injects every packet on a
// precomputed schedule, so an incast or a failover window simply shows
// raw loss.  Transport closes the loop.  Each flow gets a sender state
// machine driven by the same integer-tick EventQueue as the data plane:
//
//  * an AIMD congestion window -- at most `cwnd` packets outstanding;
//    one additive increase per delivered window, multiplicative
//    decrease (halving, floored at 1) on congestion feedback;
//  * ECN reaction -- the engine's ecn_hook fires when an enqueue
//    crosses a channel's mark threshold, and the transport halves the
//    marked flow's window (at most one cut per RTT-estimate window, so
//    a burst of marks is one signal, not a collapse to 1);
//  * retransmit-on-drop -- a tail drop is reported back to the sender
//    (instant backward congestion notification, in the style of
//    lossless-fabric NACKs / packet trimming) and the sequence is
//    queued for retransmission ahead of new data;
//  * a retransmission timeout -- losses with *no* feedback (a packet
//    that died at a failed link, a TTL kill) are recovered by a per-flow
//    RTO: base = clamp(2 * SRTT, rto_min, rto_max), doubled on every
//    expiry (exponential backoff, capped at rto_max) and reset by the
//    next delivery.  An expiry presumes every outstanding sequence
//    lost, collapses the window to 1 and retransmits oldest-first;
//  * graceful degradation -- a sequence retransmitted more than
//    `max_retries` times abandons its flow: the flow stops sending,
//    releases its timer and is surfaced in the report as abandoned
//    rather than hanging the run (the liveness invariant is
//    completed_flows + abandoned_flows == flows).
//
// Retransmitted packets are ordinary injections: they traverse the same
// CompiledFabric fold kernels as every other packet, and a lane whose
// route was rerouted by the failover machinery (scenario/protection)
// re-resolves its RouteEpoch at each send -- a retransmit issued after
// the control plane adopted the repaired route carries the *new* label,
// which is how packets lost in a switchover window get recovered
// instead of merely counted.
//
// Everything the transport does is a pure function of event order:
// state changes happen inside hook callbacks and timer events on the
// single-threaded simulation clock, so a fixed seed produces a
// bit-identical report across runs and thread counts, failure schedules
// included.

#include <cstdint>
#include <deque>
#include <vector>

#include "polka/label.hpp"
#include "sim/packet_sim.hpp"

namespace hp::obs {
class Counter;
class Histogram;
class MetricRegistry;
}  // namespace hp::obs

namespace hp::sim {

/// Closed-loop knobs (`SimOptions::transport`).  Validated by the
/// Transport constructor with HP_CHECK: init_cwnd >= 1,
/// max_cwnd >= init_cwnd, 1 <= rto_min_ns <= rto_max_ns,
/// max_retries >= 1.
struct TransportOptions {
  bool enabled = false;  ///< open-loop injection when false
  std::uint32_t init_cwnd = 4;  ///< packets in flight at flow start
  std::uint32_t max_cwnd = 64;  ///< additive-increase ceiling
  Tick rto_min_ns = 100'000;    ///< RTO floor (also the SRTT-less base)
  Tick rto_max_ns = 50'000'000;  ///< RTO cap: backoff stops doubling here
  /// Retransmissions of one sequence before its flow is abandoned.
  std::uint32_t max_retries = 8;

  friend bool operator==(const TransportOptions&,
                         const TransportOptions&) noexcept = default;
};

/// Scalar outcome of one closed-loop run (`SimReport::transport`).
/// Counters merge by summation; `enabled` ORs.
struct TransportReport {
  bool enabled = false;
  std::uint64_t packets_sent = 0;  ///< injections, retransmits included
  std::uint64_t retransmits = 0;   ///< second-and-later transmissions
  std::uint64_t timeouts = 0;      ///< RTO expiries
  std::uint64_t ecn_cwnd_cuts = 0;  ///< multiplicative decreases (ECN)
  std::uint64_t drop_cwnd_cuts = 0;  ///< multiplicative decreases (drop)
  std::uint64_t spurious_deliveries = 0;  ///< duplicate arrivals of a seq
  std::uint64_t abandoned_flows = 0;  ///< gave up after max_retries
  std::uint64_t offered_bytes = 0;  ///< logical stream payload
  std::uint64_t goodput_bytes = 0;  ///< first-delivery payload

  friend bool operator==(const TransportReport&,
                         const TransportReport&) noexcept = default;
};

/// One adopted route version of a lane: sends at/after `from` carry
/// this label (and pooled segment ref) and are checked against this
/// delivery expectation.  Timelines are sorted by `from`; entry 0 is
/// the pre-failure route with from = 0.
struct RouteEpoch {
  Tick from = 0;
  polka::RouteLabel label{};
  polka::SegmentRef ref{};
  polka::PacketResult expected{};
};

/// The per-flow sender state machine.  Construct over a wired
/// PacketSim, describe lanes (route-epoch timelines) and flows, then
/// arm() once before PacketSim::run(): arming installs the engine's
/// feedback hooks and schedules every flow's opening timer, after which
/// the whole closed loop plays out inside the event queue.
class Transport {
 public:
  /// `sim` is borrowed and must outlive the Transport; `metrics` (may
  /// be null) receives the sim.tp.* counters and histograms.
  /// `packet_bytes` prices offered/goodput bytes.
  Transport(PacketSim& sim, TransportOptions options,
            std::uint64_t packet_bytes, obs::MetricRegistry* metrics);

  /// Register a lane: the route-epoch timeline its flows resolve at
  /// each send.  Throws std::invalid_argument on an empty or unsorted
  /// timeline.
  std::uint32_t add_lane(std::vector<RouteEpoch> epochs);

  /// Register a flow of `packets` logical sequences on `lane`, injected
  /// at fabric node `source`.  The flow opens at `start`; consecutive
  /// sends are paced `pace_ns` apart (the source line rate).  Throws
  /// std::invalid_argument on a bad lane or zero packet count.
  std::uint32_t add_flow(std::uint32_t lane, std::uint32_t source, Tick start,
                         Tick pace_ns, std::uint32_t packets);

  /// Install the PacketSim feedback hooks and schedule every flow's
  /// opening event.  Call exactly once, after the last add_flow and
  /// before PacketSim::run().
  void arm();

  [[nodiscard]] const TransportReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] std::size_t completed_flows() const noexcept {
    return completed_;
  }

  /// Test/diagnostic view of one flow's closed-loop state.
  struct FlowView {
    std::uint32_t cwnd = 0;      ///< current congestion window
    Tick rto_ns = 0;             ///< current timeout (backoff applied)
    std::uint32_t timeouts = 0;  ///< RTO expiries of this flow
    std::uint32_t delivered = 0;  ///< distinct sequences delivered
    bool completed = false;
    bool abandoned = false;
    Tick fct_ns = 0;  ///< last delivery - first send (completed only)
    std::vector<Tick> timeout_at;  ///< tick of each RTO expiry, in order
  };
  [[nodiscard]] FlowView flow_view(std::uint32_t flow) const;

  /// FCT (ns) of each completed flow, in flow-registration order.
  [[nodiscard]] std::vector<Tick> completed_fct_ns() const;

 private:
  /// Lifecycle of one logical sequence number.
  enum class SeqState : std::uint8_t {
    kPending,      ///< never sent
    kOutstanding,  ///< in flight, unresolved
    kLost,         ///< presumed lost, queued for retransmission
    kDelivered,    ///< first copy arrived
  };

  struct Flow {
    // immutable shape
    std::uint32_t lane = 0;
    std::uint32_t source = 0;
    Tick start = 0;
    Tick pace_ns = 1;
    std::uint32_t total = 0;

    // window state
    std::uint32_t cwnd = 1;
    std::uint32_t ack_credit = 0;  ///< deliveries since the last increase
    std::uint32_t outstanding = 0;
    std::uint32_t next_seq = 0;  ///< first never-sent sequence
    std::uint32_t delivered = 0;
    Tick next_send = 0;   ///< pacing cursor
    Tick next_cut_at = 0;  ///< earliest tick the window may halve again
    /// Earliest tick of the next loss-triggered retransmission: one
    /// fast retransmit per RTT window, else the instant NACK ping-pong
    /// (send, drop, resend, ...) burns max_retries inside a single
    /// congestion event.  An RTO expiry overrides the limit.
    Tick next_fast_rtx = 0;
    bool sent_any = false;
    bool abandoned = false;
    Tick first_send = 0;
    Tick last_delivery = 0;

    // RTO state
    Tick srtt_ns = 0;           ///< smoothed RTT (0 until first sample)
    std::uint32_t backoff = 0;  ///< doublings since the last delivery
    std::uint64_t timer_id = 0;  ///< arm generation; stale fires no-op
    bool timer_armed = false;
    std::uint32_t timeouts = 0;
    std::vector<Tick> timeout_at;

    // per-sequence bookkeeping
    std::vector<SeqState> state;         ///< size total
    std::vector<std::uint32_t> tries;    ///< transmissions so far
    std::vector<Tick> sent_at;           ///< latest transmission tick
    std::vector<std::uint32_t> last_packet;  ///< latest sim packet index
    std::deque<std::uint32_t> lost;      ///< retransmit queue (may go stale)

    /// Sim flow handle per lane epoch, created lazily (a flow whose
    /// route never changes registers exactly one).
    std::vector<std::uint32_t> sim_flow;
  };

  /// One armed timer occurrence; kTimer events carry an index here.
  struct TimerRec {
    std::uint32_t flow = 0;
    std::uint64_t id = 0;  ///< 0 = flow-open kick, else RTO generation
  };

  struct PacketTag {
    std::uint32_t flow = 0;
    std::uint32_t seq = 0;
  };

  // engine callbacks (installed by arm())
  void on_ecn(std::uint32_t sim_flow);
  void on_delivered(Tick t, std::uint32_t sim_flow, std::uint32_t packet);
  void on_dropped(Tick t, std::uint32_t sim_flow, std::uint32_t packet,
                  DropCause cause);
  void on_timer(Tick t, std::uint32_t rec_index);

  void try_send(Flow& f, Tick t);
  void send_seq(Flow& f, std::uint32_t flow_index, std::uint32_t seq, Tick t);
  void cut_window(Flow& f, Tick t, bool ecn);
  void abandon(Flow& f, Tick t);
  void arm_timer(Flow& f, std::uint32_t flow_index, Tick at);
  void disarm_timer(Flow& f);
  [[nodiscard]] Tick rto_base(const Flow& f) const;
  [[nodiscard]] Tick rto_current(const Flow& f) const;
  [[nodiscard]] const RouteEpoch& epoch_at(const Flow& f, Tick at,
                                           std::size_t* index) const;
  std::uint32_t ensure_sim_flow(Flow& f, std::size_t epoch_index);
  [[nodiscard]] bool done(const Flow& f) const noexcept {
    return f.abandoned || f.delivered == f.total;
  }

  PacketSim& sim_;
  TransportOptions options_;
  std::uint64_t packet_bytes_;
  std::vector<std::vector<RouteEpoch>> lanes_;
  std::vector<Flow> flows_;
  std::vector<TimerRec> timers_;
  std::vector<PacketTag> tags_;          ///< sim packet index -> (flow, seq)
  std::vector<std::uint32_t> flow_of_;   ///< sim flow handle -> flow index
  TransportReport report_;
  std::size_t completed_ = 0;
  bool armed_ = false;

  /// Metric handles, all null without a registry (one-branch disabled
  /// path, same pattern as PacketSim::ObsHandles).
  struct ObsHandles {
    obs::Counter* sent = nullptr;
    obs::Counter* retransmits = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* ecn_cuts = nullptr;
    obs::Counter* drop_cuts = nullptr;
    obs::Counter* spurious = nullptr;
    obs::Counter* abandoned = nullptr;
    obs::Counter* completed = nullptr;
    obs::Histogram* cwnd = nullptr;
    obs::Histogram* rto_ns = nullptr;
  };
  ObsHandles obs_;
};

}  // namespace hp::sim
