#include "sim/transport.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/metrics.hpp"

namespace hp::sim {

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

}  // namespace

Transport::Transport(PacketSim& sim, TransportOptions options,
                     std::uint64_t packet_bytes, obs::MetricRegistry* metrics)
    : sim_(sim), options_(options), packet_bytes_(packet_bytes) {
  HP_CHECK(options_.init_cwnd >= 1,
           "TransportOptions: init_cwnd must be at least one packet");
  HP_CHECK(options_.max_cwnd >= options_.init_cwnd,
           "TransportOptions: max_cwnd must be >= init_cwnd");
  HP_CHECK(options_.rto_min_ns >= 1,
           "TransportOptions: rto_min_ns must be positive");
  HP_CHECK(options_.rto_max_ns >= options_.rto_min_ns,
           "TransportOptions: rto_max_ns must be >= rto_min_ns");
  HP_CHECK(options_.max_retries >= 1,
           "TransportOptions: max_retries must be at least one");
  if (metrics != nullptr) {
    obs_.sent = &metrics->counter("sim.tp.sent");
    obs_.retransmits = &metrics->counter("sim.tp.retransmits");
    obs_.timeouts = &metrics->counter("sim.tp.timeouts");
    obs_.ecn_cuts = &metrics->counter("sim.tp.ecn_cuts");
    obs_.drop_cuts = &metrics->counter("sim.tp.drop_cuts");
    obs_.spurious = &metrics->counter("sim.tp.spurious");
    obs_.abandoned = &metrics->counter("sim.tp.abandoned_flows");
    obs_.completed = &metrics->counter("sim.tp.completed_flows");
    obs_.cwnd = &metrics->histogram("sim.tp.cwnd");
    obs_.rto_ns = &metrics->histogram("sim.tp.rto_ns");
  }
}

std::uint32_t Transport::add_lane(std::vector<RouteEpoch> epochs) {
  if (epochs.empty() || epochs.front().from != 0) {
    throw std::invalid_argument(
        "Transport::add_lane: timeline must start with a from=0 epoch");
  }
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    if (epochs[i - 1].from > epochs[i].from) {
      throw std::invalid_argument(
          "Transport::add_lane: epochs must be sorted by adoption tick");
    }
  }
  lanes_.push_back(std::move(epochs));
  return static_cast<std::uint32_t>(lanes_.size() - 1);
}

std::uint32_t Transport::add_flow(std::uint32_t lane, std::uint32_t source,
                                  Tick start, Tick pace_ns,
                                  std::uint32_t packets) {
  if (lane >= lanes_.size()) {
    throw std::invalid_argument("Transport::add_flow: unknown lane");
  }
  if (packets == 0) {
    throw std::invalid_argument("Transport::add_flow: empty flow");
  }
  Flow f;
  f.lane = lane;
  f.source = source;
  f.start = start;
  f.pace_ns = pace_ns;
  f.total = packets;
  f.cwnd = options_.init_cwnd;
  f.next_send = start;
  f.state.assign(packets, SeqState::kPending);
  f.tries.assign(packets, 0);
  f.sent_at.assign(packets, 0);
  f.last_packet.assign(packets, kNone);
  f.sim_flow.assign(lanes_[lane].size(), kNone);
  flows_.push_back(std::move(f));
  report_.offered_bytes += packet_bytes_ * packets;
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

void Transport::arm() {
  HP_CHECK(!armed_, "Transport::arm called twice");
  armed_ = true;
  report_.enabled = true;
  sim_.set_ecn_hook([this](std::uint32_t /*channel*/, std::uint32_t /*depth*/,
                           std::uint32_t flow) { on_ecn(flow); });
  sim_.set_feedback_hooks(
      [this](Tick t, std::uint32_t flow, std::uint32_t packet) {
        on_delivered(t, flow, packet);
      },
      [this](Tick t, std::uint32_t flow, std::uint32_t packet,
             DropCause cause) { on_dropped(t, flow, packet, cause); },
      [this](Tick t, std::uint32_t rec) { on_timer(t, rec); });
  // Flow-open kicks: TimerRec id 0 is the open sentinel (RTO arms use
  // generations starting at 1), so a kick needs no validity check.
  for (std::uint32_t i = 0; i < flows_.size(); ++i) {
    timers_.push_back({i, 0});
    sim_.schedule_timer(flows_[i].start,
                        static_cast<std::uint32_t>(timers_.size() - 1));
  }
}

Tick Transport::rto_base(const Flow& f) const {
  if (f.srtt_ns == 0) return options_.rto_min_ns;
  return std::clamp(2 * f.srtt_ns, options_.rto_min_ns, options_.rto_max_ns);
}

Tick Transport::rto_current(const Flow& f) const {
  Tick r = rto_base(f);
  for (std::uint32_t i = 0; i < f.backoff; ++i) {
    if (r >= options_.rto_max_ns / 2) return options_.rto_max_ns;
    r *= 2;
  }
  return std::min(r, options_.rto_max_ns);
}

const RouteEpoch& Transport::epoch_at(const Flow& f, Tick at,
                                      std::size_t* index) const {
  const std::vector<RouteEpoch>& epochs = lanes_[f.lane];
  std::size_t best = 0;
  for (std::size_t i = 1; i < epochs.size(); ++i) {  // timelines are tiny
    if (epochs[i].from <= at) best = i;
  }
  *index = best;
  return epochs[best];
}

std::uint32_t Transport::ensure_sim_flow(Flow& f, std::size_t epoch_index) {
  std::uint32_t& handle = f.sim_flow[epoch_index];
  if (handle == kNone) {
    handle = sim_.add_flow(lanes_[f.lane][epoch_index].expected);
    if (handle >= flow_of_.size()) flow_of_.resize(handle + 1, kNone);
    flow_of_[handle] = static_cast<std::uint32_t>(&f - flows_.data());
  }
  return handle;
}

void Transport::arm_timer(Flow& f, std::uint32_t flow_index, Tick at) {
  ++f.timer_id;
  timers_.push_back({flow_index, f.timer_id});
  sim_.schedule_timer(at, static_cast<std::uint32_t>(timers_.size() - 1));
  f.timer_armed = true;
}

void Transport::disarm_timer(Flow& f) {
  f.timer_armed = false;
  ++f.timer_id;  // any already-scheduled fire is now stale
}

void Transport::send_seq(Flow& f, std::uint32_t flow_index, std::uint32_t seq,
                         Tick t) {
  const Tick at = std::max(t, f.next_send);
  std::size_t epoch_index = 0;
  const RouteEpoch& epoch = epoch_at(f, at, &epoch_index);
  const std::uint32_t handle = ensure_sim_flow(f, epoch_index);
  const std::uint32_t packet =
      sim_.inject(at, epoch.label, epoch.ref, f.source, handle);
  if (packet >= tags_.size()) tags_.resize(packet + 1);
  tags_[packet] = {flow_index, seq};
  f.next_send = at + f.pace_ns;
  if (!f.sent_any) {
    f.sent_any = true;
    f.first_send = at;
  }
  f.state[seq] = SeqState::kOutstanding;
  ++f.outstanding;
  ++f.tries[seq];
  f.sent_at[seq] = at;
  f.last_packet[seq] = packet;
  ++report_.packets_sent;
  if (obs_.sent != nullptr) obs_.sent->add(1);
  if (f.tries[seq] > 1) {
    ++report_.retransmits;
    if (obs_.retransmits != nullptr) obs_.retransmits->add(1);
  }
  if (!f.timer_armed) arm_timer(f, flow_index, at + rto_current(f));
}

void Transport::try_send(Flow& f, Tick t) {
  const auto flow_index = static_cast<std::uint32_t>(&f - flows_.data());
  while (!f.abandoned && f.outstanding < f.cwnd) {
    // Skip entries whose sequence a stale copy meanwhile delivered.
    while (!f.lost.empty() && f.state[f.lost.front()] != SeqState::kLost) {
      f.lost.pop_front();
    }
    std::uint32_t seq = kNone;
    if (!f.lost.empty()) {
      // Retransmissions go ahead of new data (sending fresh sequences
      // past known losses would just feed the same congested queue),
      // rate-limited to one loss-triggered resend per RTT window --
      // see Flow::next_fast_rtx.  The armed RTO covers the wait.
      if (t < f.next_fast_rtx) return;
      seq = f.lost.front();
      f.lost.pop_front();
      if (f.tries[seq] > options_.max_retries) {
        // Graceful degradation: this sequence burned its retry budget,
        // so the flow stops competing instead of retrying forever.
        abandon(f, t);
        return;
      }
    } else {
      if (f.next_seq >= f.total) return;
      seq = f.next_seq++;
    }
    send_seq(f, flow_index, seq, t);
    if (f.tries[seq] > 1) f.next_fast_rtx = t + rto_base(f);
  }
}

void Transport::cut_window(Flow& f, Tick t, bool ecn) {
  // One multiplicative decrease per RTT-estimate window: a whole burst
  // of marks/drops from one congestion event is one signal.
  if (t < f.next_cut_at) return;
  f.next_cut_at = t + (f.srtt_ns != 0 ? f.srtt_ns : options_.rto_min_ns);
  f.cwnd = std::max<std::uint32_t>(1, f.cwnd / 2);
  f.ack_credit = 0;
  if (ecn) {
    ++report_.ecn_cwnd_cuts;
    if (obs_.ecn_cuts != nullptr) obs_.ecn_cuts->add(1);
  } else {
    ++report_.drop_cwnd_cuts;
    if (obs_.drop_cuts != nullptr) obs_.drop_cuts->add(1);
  }
  if (obs_.cwnd != nullptr) obs_.cwnd->record(f.cwnd);
}

void Transport::abandon(Flow& f, Tick t) {
  (void)t;
  f.abandoned = true;
  f.lost.clear();
  disarm_timer(f);
  ++report_.abandoned_flows;
  if (obs_.abandoned != nullptr) obs_.abandoned->add(1);
}

void Transport::on_ecn(std::uint32_t sim_flow) {
  if (sim_flow >= flow_of_.size() || flow_of_[sim_flow] == kNone) return;
  Flow& f = flows_[flow_of_[sim_flow]];
  if (done(f)) return;
  cut_window(f, sim_.now(), /*ecn=*/true);
}

void Transport::on_delivered(Tick t, std::uint32_t sim_flow,
                             std::uint32_t packet) {
  (void)sim_flow;
  if (packet >= tags_.size()) return;
  const PacketTag tag = tags_[packet];
  Flow& f = flows_[tag.flow];
  const std::uint32_t seq = tag.seq;
  if (f.state[seq] == SeqState::kDelivered) {
    // A retransmitted copy of data that already arrived.
    ++report_.spurious_deliveries;
    if (obs_.spurious != nullptr) obs_.spurious->add(1);
    return;
  }
  if (f.state[seq] == SeqState::kOutstanding) {
    --f.outstanding;
    if (f.last_packet[seq] == packet) {
      // RTT sample from the live copy only; a stale copy's age says
      // nothing about the current path.
      const Tick sample = t - f.sent_at[seq];
      f.srtt_ns = f.srtt_ns == 0 ? sample : (7 * f.srtt_ns + sample) / 8;
    }
  }
  f.state[seq] = SeqState::kDelivered;
  ++f.delivered;
  f.last_delivery = std::max(f.last_delivery, t);
  report_.goodput_bytes += packet_bytes_;
  if (f.abandoned) return;  // late arrivals still count as goodput
  f.backoff = 0;  // fresh feedback resets the exponential backoff
  if (++f.ack_credit >= f.cwnd) {  // additive increase, once per window
    f.ack_credit = 0;
    if (f.cwnd < options_.max_cwnd) {
      ++f.cwnd;
      if (obs_.cwnd != nullptr) obs_.cwnd->record(f.cwnd);
    }
  }
  if (f.delivered == f.total) {
    ++completed_;
    if (obs_.completed != nullptr) obs_.completed->add(1);
    disarm_timer(f);
    return;
  }
  // Re-arm: the timeout now covers the oldest still-unresolved data.
  disarm_timer(f);
  arm_timer(f, tag.flow, t + rto_current(f));
  try_send(f, t);
}

void Transport::on_dropped(Tick t, std::uint32_t sim_flow,
                           std::uint32_t packet, DropCause cause) {
  (void)sim_flow;
  if (cause != DropCause::kTailDrop) {
    // A dead wire or a TTL kill gives the sender nothing to observe;
    // only the retransmission timer recovers these.
    return;
  }
  if (packet >= tags_.size()) return;
  const PacketTag tag = tags_[packet];
  Flow& f = flows_[tag.flow];
  const std::uint32_t seq = tag.seq;
  if (f.abandoned) return;
  if (f.last_packet[seq] != packet) return;  // stale copy; live one governs
  if (f.state[seq] != SeqState::kOutstanding) return;
  f.state[seq] = SeqState::kLost;
  --f.outstanding;
  f.lost.push_back(seq);
  cut_window(f, t, /*ecn=*/false);
  try_send(f, t);
}

void Transport::on_timer(Tick t, std::uint32_t rec_index) {
  HP_DCHECK(rec_index < timers_.size(), "Transport: unknown timer record");
  const TimerRec rec = timers_[rec_index];
  Flow& f = flows_[rec.flow];
  if (rec.id == 0) {  // flow-open kick
    if (!f.abandoned) try_send(f, t);
    return;
  }
  if (!f.timer_armed || rec.id != f.timer_id) return;  // stale arm
  f.timer_armed = false;
  if (done(f)) return;
  ++f.timeouts;
  f.timeout_at.push_back(t);
  ++report_.timeouts;
  if (obs_.timeouts != nullptr) obs_.timeouts->add(1);
  if (f.backoff < 63) ++f.backoff;  // exponential backoff (rto_max caps it)
  if (obs_.rto_ns != nullptr) obs_.rto_ns->record(rto_current(f));
  // Go-back-N: every outstanding sequence is presumed lost, oldest
  // first, and the window collapses to one packet.
  for (std::uint32_t seq = 0; seq < f.total && f.outstanding > 0; ++seq) {
    if (f.state[seq] == SeqState::kOutstanding) {
      f.state[seq] = SeqState::kLost;
      --f.outstanding;
      f.lost.push_back(seq);
    }
  }
  f.cwnd = 1;
  f.ack_credit = 0;
  if (obs_.cwnd != nullptr) obs_.cwnd->record(f.cwnd);
  f.next_fast_rtx = 0;  // the expiry overrides the fast-resend limit
  try_send(f, t);
}

Transport::FlowView Transport::flow_view(std::uint32_t flow) const {
  if (flow >= flows_.size()) {
    throw std::invalid_argument("Transport::flow_view: unknown flow");
  }
  const Flow& f = flows_[flow];
  FlowView view;
  view.cwnd = f.cwnd;
  view.rto_ns = rto_current(f);
  view.timeouts = f.timeouts;
  view.delivered = f.delivered;
  view.abandoned = f.abandoned;
  view.completed = !f.abandoned && f.delivered == f.total;
  view.fct_ns = view.completed ? f.last_delivery - f.first_send : 0;
  view.timeout_at = f.timeout_at;
  return view;
}

std::vector<Tick> Transport::completed_fct_ns() const {
  std::vector<Tick> out;
  out.reserve(completed_);
  for (const Flow& f : flows_) {
    if (!f.abandoned && f.delivered == f.total) {
      out.push_back(f.last_delivery - f.first_send);
    }
  }
  return out;
}

}  // namespace hp::sim
