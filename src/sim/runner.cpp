#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_bridge.hpp"
#include "obs/trace.hpp"

namespace hp::sim {

namespace {

/// Serialization delay of one packet on a link, in integer ns
/// (clamped to >= 1 so a zero/absurd capacity cannot stall time).
Tick serialize_ns(std::uint64_t packet_bytes, double capacity_mbps) {
  if (capacity_mbps <= 0.0) return 1;
  const double bits = static_cast<double>(packet_bytes) * 8.0;
  // capacity_mbps is bits per microsecond; scale to nanoseconds.
  const double ns = bits * 1000.0 / capacity_mbps;
  return ns < 1.0 ? 1 : static_cast<Tick>(std::llround(ns));
}

}  // namespace

SimReport SimRunner::run(scenario::BuiltFabric& fabric,
                         const scenario::PacketStream& stream) const {
  const polka::CompiledFabric& fast = fabric.compiled();
  const netsim::Topology& topo = fabric.topology();
  const std::size_t n = fast.node_count();

  // Telemetry sampling needs gauges to read; when the caller asked for
  // a telemetry store but gave no registry, a private one supplies
  // them (its snapshot is simply never read).
  obs::MetricRegistry private_registry;
  const bool want_bridge =
      options_.telemetry != nullptr && options_.telemetry_period_ns > 0;
  obs::MetricRegistry* registry = options_.metrics != nullptr
                                      ? options_.metrics
                                      : (want_bridge ? &private_registry
                                                     : nullptr);
  std::optional<obs::TelemetryBridge> bridge;
  if (want_bridge) bridge.emplace(*registry, *options_.telemetry);

  // Phase timer: each emplace closes the previous phase's event and
  // opens the next (TraceScope records on destruction).
  std::optional<obs::TraceScope> phase;
  phase.emplace(options_.trace, "sim.wire", "sim");

  // --- wire the channels: one per directed router adjacency ----------
  std::vector<std::uint32_t> node_offset(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    node_offset[i + 1] = node_offset[i] + fast.port_count(i);
  }
  std::vector<std::uint32_t> port_channel(node_offset[n],
                                          PacketSim::kNoChannel);
  std::vector<Channel> channels;
  for (std::size_t node = 0; node < n; ++node) {
    for (std::uint32_t port = 0; port < fast.port_count(node); ++port) {
      const std::uint32_t peer = fast.neighbor(node, port);
      if (peer == polka::CompiledFabric::kNoNode) continue;
      const auto link = topo.link_between(fabric.topo_index(node),
                                          fabric.topo_index(peer));
      if (!link) {
        throw std::logic_error(
            "SimRunner: fabric wiring names a link the topology lacks");
      }
      const netsim::Link& l = topo.link(*link);
      Channel ch;
      ch.latency_ns =
          static_cast<Tick>(std::llround(std::max(l.delay_ms, 0.0) * 1e6));
      ch.serialize_ns = serialize_ns(options_.packet_bytes, l.capacity_mbps);
      ch.queue_capacity = options_.queue_capacity;
      ch.ecn_threshold = options_.ecn_threshold;
      port_channel[node_offset[node] + port] =
          static_cast<std::uint32_t>(channels.size());
      channels.push_back(ch);
    }
  }

  SimConfig config;
  config.max_hops = options_.max_hops;
  config.metrics = registry;
  config.recorder = options_.recorder;
  config.telemetry = want_bridge ? &*bridge : nullptr;
  config.telemetry_period_ns = options_.telemetry_period_ns;
  PacketSim sim(fast, std::move(channels), std::move(node_offset),
                std::move(port_channel), std::move(config));
  sim.set_segment_pool(stream.seg_labels, stream.seg_waypoints);

  phase.emplace(options_.trace, "sim.schedule", "sim");

  // --- chop the stream into flows and schedule the injections --------
  // A flow is up to flow_packets consecutive packets of one pair (in
  // stream emission order); flow k starts k * flow_gap_ns after t = 0
  // and its source injects back-to-back at source_rate_mbps.
  const Tick src_gap =
      serialize_ns(options_.packet_bytes, options_.source_rate_mbps);
  struct OpenFlow {
    std::uint32_t handle = 0;
    std::size_t injected = 0;
    Tick next_inject = 0;
  };
  std::unordered_map<std::uint32_t, OpenFlow> open;  // lane -> open flow
  std::size_t flow_count = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint32_t lane = stream.pair[i];
    auto it = open.find(lane);
    if (it == open.end() || it->second.injected >= options_.flow_packets) {
      OpenFlow flow;
      flow.handle = sim.add_flow(stream.pairs[lane].expected);
      flow.next_inject =
          static_cast<Tick>(flow_count) * options_.flow_gap_ns;
      ++flow_count;
      it = open.insert_or_assign(lane, flow).first;
    }
    OpenFlow& flow = it->second;
    const polka::SegmentRef ref = lane < stream.seg_refs.size()
                                      ? stream.seg_refs[lane]
                                      : polka::SegmentRef{};
    sim.inject(flow.next_inject, stream.labels[i], ref, stream.ingress[i],
               flow.handle);
    ++flow.injected;
    flow.next_inject += src_gap;
  }

  phase.emplace(options_.trace, "sim.simulate", "sim");
  const SimResult result = sim.run();
  phase.emplace(options_.trace, "sim.report", "sim");

  // --- shape the result into the report -------------------------------
  SimReport report;
  report.forwarding.fold_kernel = fast.kernel();
  report.forwarding.packets =
      result.counters.delivered + result.counters.ttl_expired;
  report.forwarding.mod_operations = result.counters.mod_operations;
  report.forwarding.wrong_egress = result.counters.wrong_egress;
  report.forwarding.dropped_packets = result.counters.dropped;
  report.forwarding.ttl_expired = result.counters.ttl_expired;
  report.forwarding.segmented_packets = result.counters.segmented_packets;
  report.forwarding.segment_swaps = result.counters.segment_swaps;
  report.duration_ns = result.counters.end_ns;
  // Simulated seconds (deterministic), not wall clock: see SimReport.
  report.forwarding.seconds = static_cast<double>(report.duration_ns) * 1e-9;
  report.flows = result.flows.size();
  report.ecn_marked = result.counters.ecn_marked;
  obs::Histogram* fct_hist =
      registry != nullptr ? &registry->histogram("sim.fct_ns") : nullptr;
  for (const FlowStat& flow : result.flows) {
    if (!flow.complete()) continue;
    ++report.completed_flows;
    report.fct_ns.push_back(flow.fct_ns());
    if (fct_hist != nullptr) fct_hist->record(flow.fct_ns());
  }
  if (registry != nullptr) {
    registry->counter("sim.flows").add(report.flows);
    registry->counter("sim.completed_flows").add(report.completed_flows);
  }
  double util_sum = 0.0;
  std::size_t util_links = 0;
  for (const LinkStat& link : result.links) {
    report.max_queue_depth =
        std::max(report.max_queue_depth, link.max_queue_depth);
    const double util = link.utilization(report.duration_ns);
    report.max_link_utilization = std::max(report.max_link_utilization, util);
    if (link.forwarded != 0 || link.tail_drops != 0) {
      util_sum += util;
      ++util_links;
    }
  }
  if (util_links != 0) {
    report.mean_link_utilization = util_sum / static_cast<double>(util_links);
  }
  return report;
}

SimReport run_sim_scenario(const scenario::ScenarioSpec& spec,
                           const SimOptions& options) {
  scenario::BuiltFabric fabric(scenario::build_topology(spec));
  fabric.set_observability(options.metrics, options.trace);
  // Precompile every route up front (sharded across compile_threads);
  // generate_traffic then reuses the cache instead of compiling lazily.
  fabric.compile_all_pairs(options.compile_threads);
  const scenario::PacketStream stream =
      scenario::generate_traffic(fabric, spec.traffic);
  return SimRunner(options).run(fabric, stream);
}

}  // namespace hp::sim
