#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_bridge.hpp"
#include "obs/trace.hpp"

namespace hp::sim {

namespace {

/// Serialization delay of one packet on a link, in integer ns
/// (clamped to >= 1 so a zero/absurd capacity cannot stall time).
Tick serialize_ns(std::uint64_t packet_bytes, double capacity_mbps) {
  if (capacity_mbps <= 0.0) return 1;
  const double bits = static_cast<double>(packet_bytes) * 8.0;
  // capacity_mbps is bits per microsecond; scale to nanoseconds.
  const double ns = bits * 1000.0 / capacity_mbps;
  return ns < 1.0 ? 1 : static_cast<Tick>(std::llround(ns));
}

}  // namespace

SimReport SimRunner::run(scenario::BuiltFabric& fabric,
                         const scenario::PacketStream& stream) const {
  HP_CHECK(options_.queue_capacity > 0,
           "SimOptions: queue_capacity must be positive");
  HP_CHECK(options_.ecn_threshold <= options_.queue_capacity,
           "SimOptions: ecn_threshold beyond queue_capacity can never mark");
  const polka::CompiledFabric& fast = fabric.compiled();
  const netsim::Topology& topo = fabric.topology();
  const std::size_t n = fast.node_count();

  // Telemetry sampling needs gauges to read; when the caller asked for
  // a telemetry store but gave no registry, a private one supplies
  // them (its snapshot is simply never read).
  obs::MetricRegistry private_registry;
  const bool want_bridge =
      options_.telemetry != nullptr && options_.telemetry_period_ns > 0;
  obs::MetricRegistry* registry = options_.metrics != nullptr
                                      ? options_.metrics
                                      : (want_bridge ? &private_registry
                                                     : nullptr);
  std::optional<obs::TelemetryBridge> bridge;
  if (want_bridge) bridge.emplace(*registry, *options_.telemetry);

  // Phase timer: each emplace closes the previous phase's event and
  // opens the next (TraceScope records on destruction).
  std::optional<obs::TraceScope> phase;
  phase.emplace(options_.trace, "sim.wire", "sim");

  // --- wire the channels: one per directed router adjacency ----------
  std::vector<std::uint32_t> node_offset(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    node_offset[i + 1] = node_offset[i] + fast.port_count(i);
  }
  std::vector<std::uint32_t> port_channel(node_offset[n],
                                          PacketSim::kNoChannel);
  std::vector<Channel> channels;
  // Directed topology pair -> channel index, so the failure schedule
  // below can take the physical wire down at the right tick.
  std::unordered_map<std::uint64_t, std::uint32_t> channel_of;
  for (std::size_t node = 0; node < n; ++node) {
    for (std::uint32_t port = 0; port < fast.port_count(node); ++port) {
      const std::uint32_t peer = fast.neighbor(node, port);
      if (peer == polka::CompiledFabric::kNoNode) continue;
      const auto link = topo.link_between(fabric.topo_index(node),
                                          fabric.topo_index(peer));
      if (!link) {
        throw std::logic_error(
            "SimRunner: fabric wiring names a link the topology lacks");
      }
      const netsim::Link& l = topo.link(*link);
      Channel ch;
      ch.latency_ns =
          static_cast<Tick>(std::llround(std::max(l.delay_ms, 0.0) * 1e6));
      ch.serialize_ns = serialize_ns(options_.packet_bytes, l.capacity_mbps);
      ch.queue_capacity = options_.queue_capacity;
      ch.ecn_threshold = options_.ecn_threshold;
      channel_of.emplace(
          netsim::node_pair_key(fabric.topo_index(node),
                                fabric.topo_index(peer)),
          static_cast<std::uint32_t>(channels.size()));
      port_channel[node_offset[node] + port] =
          static_cast<std::uint32_t>(channels.size());
      channels.push_back(ch);
    }
  }

  SimConfig config;
  config.max_hops = options_.max_hops;
  config.metrics = registry;
  config.recorder = options_.recorder;
  config.telemetry = want_bridge ? &*bridge : nullptr;
  config.telemetry_period_ns = options_.telemetry_period_ns;
  PacketSim sim(fast, std::move(channels), std::move(node_offset),
                std::move(port_channel), std::move(config));

  phase.emplace(options_.trace, "sim.schedule", "sim");

  // --- pass 1: the unsplit injection schedule -------------------------
  // A flow is up to flow_packets consecutive packets of one pair (in
  // stream emission order); flow k starts k * flow_gap_ns after t = 0
  // and its source injects back-to-back at source_rate_mbps.  The
  // per-packet ticks are computed first and reused verbatim below, so
  // the failure schedule (whose fractions map onto the last injection
  // tick) cannot perturb packet timing -- a protected and an
  // unprotected run offer the exact same load.
  const Tick src_gap =
      serialize_ns(options_.packet_bytes, options_.source_rate_mbps);
  std::vector<Tick> inject_at(stream.size(), 0);
  Tick last_inject = 0;
  // The same flow boundaries, recorded for the closed-loop branch: the
  // transport opens one sender per pass-1 flow (same start tick, same
  // pacing) and lets the window -- not the schedule -- decide sends.
  struct FlowDef {
    std::uint32_t lane = 0;
    std::uint32_t source = 0;
    Tick start = 0;
    std::uint32_t packets = 0;
  };
  std::vector<FlowDef> flow_defs;
  {
    struct Cadence {
      std::size_t injected = 0;
      Tick next_inject = 0;
      std::size_t def = 0;  ///< index into flow_defs
    };
    std::unordered_map<std::uint32_t, Cadence> cadence;  // lane -> state
    std::size_t flow_count = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const std::uint32_t lane = stream.pair[i];
      auto it = cadence.find(lane);
      if (it == cadence.end() ||
          it->second.injected >= options_.flow_packets) {
        Cadence fresh;
        fresh.next_inject =
            static_cast<Tick>(flow_count) * options_.flow_gap_ns;
        fresh.def = flow_defs.size();
        flow_defs.push_back(
            {lane, stream.ingress[i], fresh.next_inject, 0});
        ++flow_count;
        it = cadence.insert_or_assign(lane, fresh).first;
      }
      inject_at[i] = it->second.next_inject;
      last_inject = std::max(last_inject, inject_at[i]);
      ++it->second.injected;
      it->second.next_inject += src_gap;
      ++flow_defs[it->second.def].packets;
    }
  }

  // --- play the failure schedule against the control plane ------------
  // Each event takes the physical wires down (or up) at its tick and
  // asks the fabric for the rerouted labels; a lane adopts its new
  // route one control-plane latency later -- switchover_latency_ns for
  // a hitless backup swap, repair_latency_ns for a recompile.  Packets
  // the source emits before the adoption tick still carry the dead
  // route and die at the wire: that gap, times the offered rate, IS the
  // packets-lost-per-failure the reports compare.
  struct RouteVersion {
    Tick at = 0;  ///< adoption tick: injections at/after use this route
    polka::RouteLabel label{};
    polka::SegmentRef ref{};
    polka::PacketResult expected{};
  };
  std::unordered_map<std::uint32_t, std::vector<RouteVersion>> versions;
  // Failure rewrites pool fresh segment lists on private copies -- the
  // caller's stream is never mutated (contract of run()).
  std::vector<polka::RouteLabel> pool_labels(stream.seg_labels.begin(),
                                             stream.seg_labels.end());
  std::vector<std::uint32_t> pool_waypoints(stream.seg_waypoints.begin(),
                                            stream.seg_waypoints.end());
  std::size_t swapped_pairs = 0;
  std::size_t lazy_repairs = 0;
  std::size_t unroutable_pairs = 0;
  std::size_t window_recompiles = 0;
  std::size_t rerouted_pairs = 0;
  if (!options_.failures.empty() || options_.protection_k > 0) {
    if (options_.protection_k > 0) {
      (void)fabric.enable_protection(options_.protection_k);
    }
    std::unordered_map<std::uint64_t, std::uint32_t> lane_of;
    for (std::uint32_t lane = 0; lane < stream.pairs.size(); ++lane) {
      lane_of.emplace(netsim::node_pair_key(stream.pairs[lane].src,
                                            stream.pairs[lane].dst),
                      lane);
    }
    auto append_ref =
        [&](const polka::SegmentedRoute& route) -> polka::SegmentRef {
      polka::SegmentRef ref;
      if (route.single_label()) return ref;
      ref.first_label = static_cast<std::uint32_t>(pool_labels.size());
      ref.first_waypoint = static_cast<std::uint32_t>(pool_waypoints.size());
      ref.label_count = static_cast<std::uint32_t>(route.labels.size());
      pool_labels.insert(pool_labels.end(), route.labels.begin(),
                         route.labels.end());
      pool_waypoints.insert(pool_waypoints.end(), route.waypoints.begin(),
                            route.waypoints.end());
      return ref;
    };
    auto adopt =
        [&](const std::vector<std::pair<netsim::NodeIndex,
                                        netsim::NodeIndex>>& pairs,
            Tick effective) {
          std::size_t matched = 0;
          for (const auto& [src, dst] : pairs) {
            const auto it = lane_of.find(netsim::node_pair_key(src, dst));
            if (it == lane_of.end()) continue;
            const scenario::CompiledRoute* route = fabric.route(src, dst);
            if (route == nullptr || route->segments.labels.empty()) continue;
            RouteVersion v;
            v.at = effective;
            v.label = route->segments.labels.front();
            v.ref = append_ref(route->segments);
            v.expected = route->expected;
            versions[it->second].push_back(v);
            ++matched;
            ++rerouted_pairs;
          }
          return matched;
        };
    std::vector<scenario::LinkFailure> failures = options_.failures;
    std::ranges::stable_sort(failures, {},
                             &scenario::LinkFailure::at_fraction);
    for (const scenario::LinkFailure& failure : failures) {
      const double f = std::clamp(failure.at_fraction, 0.0, 1.0);
      const Tick at = static_cast<Tick>(
          std::llround(f * static_cast<double>(last_inject)));
      const scenario::FailoverReport ev =
          failure.restore ? fabric.restore_link(failure.a, failure.b)
                          : fabric.apply_failure(failure.a, failure.b);
      if (ev.duplicate) continue;
      for (const std::uint64_t key :
           {netsim::node_pair_key(failure.a, failure.b),
            netsim::node_pair_key(failure.b, failure.a)}) {
        if (const auto it = channel_of.find(key); it != channel_of.end()) {
          sim.schedule_link_state(at, it->second, failure.restore);
        }
      }
      swapped_pairs += adopt(ev.swapped, at + options_.switchover_latency_ns);
      (void)adopt(ev.repaired, at + options_.repair_latency_ns);
      window_recompiles += ev.window_recompiles;
      scenario::FailoverReport lazy;
      if (fabric.pending_repair_count() > 0) {
        lazy = fabric.repair_pending();
        lazy_repairs += adopt(lazy.repaired, at + options_.repair_latency_ns);
      }
      for (const auto* list :
           {&ev.unroutable, &std::as_const(lazy).unroutable}) {
        for (const auto& [src, dst] : *list) {
          if (lane_of.contains(netsim::node_pair_key(src, dst))) {
            ++unroutable_pairs;
          }
        }
      }
    }
    // Events land in tick order but the two control-plane latencies can
    // interleave adoptions; keep each lane's timeline sorted.
    for (auto& [lane, timeline] : versions) {
      std::ranges::stable_sort(timeline, {}, &RouteVersion::at);
    }
  }
  sim.set_segment_pool(pool_labels, pool_waypoints);

  std::optional<Transport> transport;
  if (options_.transport.enabled) {
    // --- closed loop: hand the flows to the transport ------------------
    // One transport lane per traffic pair, carrying the pair's route
    // timeline (base route at tick 0, then every adopted failover
    // version); sends resolve their epoch at the send tick, so a
    // retransmit issued after adoption carries the repaired label.
    transport.emplace(sim, options_.transport, options_.packet_bytes,
                      registry);
    constexpr auto kNoLane = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> base_label_at(stream.pairs.size(), kNoLane);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (base_label_at[stream.pair[i]] == kNoLane) {
        base_label_at[stream.pair[i]] = static_cast<std::uint32_t>(i);
      }
    }
    std::vector<std::uint32_t> tp_lane(stream.pairs.size(), kNoLane);
    for (std::uint32_t lane = 0; lane < stream.pairs.size(); ++lane) {
      if (base_label_at[lane] == kNoLane) continue;  // pair without packets
      std::vector<RouteEpoch> epochs;
      RouteEpoch base;
      base.from = 0;
      base.label = stream.labels[base_label_at[lane]];
      base.ref = lane < stream.seg_refs.size() ? stream.seg_refs[lane]
                                               : polka::SegmentRef{};
      base.expected = stream.pairs[lane].expected;
      epochs.push_back(base);
      if (const auto it = versions.find(lane); it != versions.end()) {
        for (const RouteVersion& v : it->second) {
          epochs.push_back({v.at, v.label, v.ref, v.expected});
        }
      }
      tp_lane[lane] = transport->add_lane(std::move(epochs));
    }
    for (const FlowDef& def : flow_defs) {
      (void)transport->add_flow(tp_lane[def.lane], def.source, def.start,
                                src_gap, def.packets);
    }
    transport->arm();
  } else {
    // --- pass 2: register flows and inject ---------------------------
    // Identical to pass 1 except that a lane whose route version
    // changed (by adoption tick) force-opens a new flow: the new
    // route's hop count changes the delivery expectation, and a flow's
    // expectation is fixed at registration.  Forced flows keep the
    // lane's cadence, so the packet timing stays exactly pass 1's.
    auto version_of = [&](std::uint32_t lane,
                          Tick at) -> const RouteVersion* {
      const auto it = versions.find(lane);
      if (it == versions.end()) return nullptr;
      const RouteVersion* best = nullptr;
      for (const RouteVersion& v : it->second) {  // timelines are tiny
        if (v.at <= at) best = &v;
      }
      return best;
    };
    struct OpenFlow {
      std::uint32_t handle = 0;
      std::size_t injected = 0;
      const RouteVersion* version = nullptr;
    };
    std::unordered_map<std::uint32_t, OpenFlow> open;  // lane -> open flow
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const std::uint32_t lane = stream.pair[i];
      const Tick at = inject_at[i];
      const RouteVersion* ver = version_of(lane, at);
      auto it = open.find(lane);
      if (it == open.end() || it->second.injected >= options_.flow_packets ||
          it->second.version != ver) {
        OpenFlow flow;
        flow.handle = sim.add_flow(
            ver != nullptr ? ver->expected : stream.pairs[lane].expected);
        flow.version = ver;
        it = open.insert_or_assign(lane, flow).first;
      }
      OpenFlow& flow = it->second;
      const polka::RouteLabel label =
          ver != nullptr ? ver->label : stream.labels[i];
      const polka::SegmentRef ref =
          ver != nullptr
              ? ver->ref
              : (lane < stream.seg_refs.size() ? stream.seg_refs[lane]
                                               : polka::SegmentRef{});
      sim.inject(at, label, ref, stream.ingress[i], flow.handle);
      ++flow.injected;
    }
  }

  phase.emplace(options_.trace, "sim.simulate", "sim");
  const SimResult result = sim.run();
  phase.emplace(options_.trace, "sim.report", "sim");

  // --- shape the result into the report -------------------------------
  SimReport report;
  report.forwarding.fold_kernel = fast.kernel();
  report.forwarding.packets =
      result.counters.delivered + result.counters.ttl_expired;
  report.forwarding.mod_operations = result.counters.mod_operations;
  report.forwarding.wrong_egress = result.counters.wrong_egress;
  report.forwarding.dropped_packets = result.counters.dropped;
  report.forwarding.ttl_expired = result.counters.ttl_expired;
  report.forwarding.segmented_packets = result.counters.segmented_packets;
  report.forwarding.segment_swaps = result.counters.segment_swaps;
  report.forwarding.rerouted_pairs = rerouted_pairs;
  report.forwarding.backup_swapped_pairs = swapped_pairs;
  report.forwarding.failover_packets_lost = result.counters.failover_lost;
  report.forwarding.unroutable_pairs = unroutable_pairs;
  report.forwarding.lazy_repaired_pairs = lazy_repairs;
  report.forwarding.window_recompiles = window_recompiles;
  report.duration_ns = result.counters.end_ns;
  // Simulated seconds (deterministic), not wall clock: see SimReport.
  report.forwarding.seconds = static_cast<double>(report.duration_ns) * 1e-9;
  report.ecn_marked = result.counters.ecn_marked;
  obs::Histogram* fct_hist =
      registry != nullptr ? &registry->histogram("sim.fct_ns") : nullptr;
  if (transport.has_value()) {
    // Engine FlowStats count per-epoch injections (retransmits
    // included), so the logical flow facts come from the transport:
    // a flow completes when every distinct sequence arrived, and its
    // FCT spans first send to last first-copy delivery.
    report.flows = transport->flow_count();
    report.completed_flows = transport->completed_flows();
    report.transport = transport->report();
    for (const Tick fct : transport->completed_fct_ns()) {
      report.fct_ns.push_back(fct);
      if (fct_hist != nullptr) fct_hist->record(fct);
    }
  } else {
    report.flows = result.flows.size();
    for (const FlowStat& flow : result.flows) {
      if (!flow.complete()) continue;
      ++report.completed_flows;
      report.fct_ns.push_back(flow.fct_ns());
      if (fct_hist != nullptr) fct_hist->record(flow.fct_ns());
    }
  }
  if (registry != nullptr) {
    registry->counter("sim.flows").add(report.flows);
    registry->counter("sim.completed_flows").add(report.completed_flows);
    if (!options_.failures.empty() || options_.protection_k > 0) {
      // All simulated-schedule derived, so they snapshot identically
      // across runs and thread counts like every other sim.* metric.
      registry->counter("sim.failover.swaps").add(swapped_pairs);
      registry->counter("sim.failover.lazy_repairs").add(lazy_repairs);
      registry->counter("sim.failover.unroutable_pairs").add(unroutable_pairs);
      registry->counter("sim.failover.window_recompiles")
          .add(window_recompiles);
    }
  }
  double util_sum = 0.0;
  std::size_t util_links = 0;
  for (const LinkStat& link : result.links) {
    report.max_queue_depth =
        std::max(report.max_queue_depth, link.max_queue_depth);
    const double util = link.utilization(report.duration_ns);
    report.max_link_utilization = std::max(report.max_link_utilization, util);
    if (link.forwarded != 0 || link.tail_drops != 0) {
      util_sum += util;
      ++util_links;
    }
  }
  if (util_links != 0) {
    report.mean_link_utilization = util_sum / static_cast<double>(util_links);
  }
  return report;
}

SimReport run_sim_scenario(const scenario::ScenarioSpec& spec,
                           const SimOptions& options) {
  scenario::BuiltFabric fabric(scenario::build_topology(spec));
  fabric.set_observability(options.metrics, options.trace);
  // Precompile every route up front (sharded across compile_threads);
  // generate_traffic then reuses the cache instead of compiling lazily.
  fabric.compile_all_pairs(options.compile_threads);
  const scenario::PacketStream stream =
      scenario::generate_traffic(fabric, spec.traffic);
  return SimRunner(options).run(fabric, stream);
}

}  // namespace hp::sim
