#pragma once
// Event-driven packet-level data plane over a CompiledFabric.
//
// Replay (scenario/runner.hpp) measures pure forwarding throughput:
// every packet walks its whole route in one go, so queueing, latency
// and loss are invisible.  PacketSim adds the missing time axis while
// keeping the exact same forwarding decisions: at every hop the packet
// folds its label through CompiledFabric::port_of (the PCLMUL Barrett
// or slice-by-8 table kernel, whichever the fabric runs) and moves to
// CompiledFabric::neighbor(node, port) -- the hop sequence is
// bit-identical to forward_one / forward_segmented, including waypoint
// re-labels on multi-segment routes.
//
// The timing model is classic store-and-forward output queueing, in
// the style of hansungk/netsim's Sim { EventQueue, Router, Channel,
// Stat }:
//
//  * each directed router adjacency is a Channel with a propagation
//    latency and a per-packet serialization delay (wire size over link
//    bandwidth);
//  * the channel's upstream side is a finite FIFO egress queue: a
//    packet routed onto a busy channel waits behind the packets
//    already committed; arriving at a full queue is a tail drop, and
//    crossing `ecn_threshold` fires the ECN-mark hook;
//  * per-flow and per-link Stat accumulate delivery times (FCT),
//    queue-depth high-water marks, drops/marks and busy time (link
//    utilization).
//
// Time is integer nanoseconds on a binary-heap EventQueue
// (event_queue.hpp); processing is single-threaded and the tie order
// is pinned, so a fixed input schedule produces a bit-identical
// SimResult on every run.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "polka/fastpath.hpp"
#include "polka/label.hpp"
#include "sim/event_queue.hpp"

namespace hp::obs {
class Counter;
class Gauge;
class Histogram;
class MetricRegistry;
class FlightRecorder;
class TelemetryBridge;
}  // namespace hp::obs

namespace hp::sim {

/// One directed channel: the timing constants of a router-to-router
/// link plus the bounds of its upstream egress queue.
struct Channel {
  Tick latency_ns = 0;    ///< propagation delay
  Tick serialize_ns = 1;  ///< transmission time of one packet
  std::uint32_t queue_capacity = 64;  ///< packets queued or in service
  std::uint32_t ecn_threshold = 48;   ///< mark at/above this depth; 0 = off
};

/// Per-channel accumulated statistics.
struct LinkStat {
  std::uint64_t forwarded = 0;   ///< packets serialized onto the wire
  std::uint64_t tail_drops = 0;  ///< arrivals at a full egress queue
  std::uint64_t failover_drops = 0;  ///< arrivals while the link was down
  std::uint64_t ecn_marks = 0;   ///< enqueues at/above the ECN threshold
  std::uint32_t max_queue_depth = 0;  ///< high-water mark (packets)
  Tick busy_ns = 0;  ///< total time the wire was serializing

  /// Fraction of `duration` the wire was busy (0 when duration == 0).
  [[nodiscard]] double utilization(Tick duration) const noexcept {
    return duration == 0 ? 0.0
                         : static_cast<double>(busy_ns) /
                               static_cast<double>(duration);
  }

  friend bool operator==(const LinkStat&, const LinkStat&) noexcept = default;
};

/// Per-flow accumulated statistics.  A flow is complete when every one
/// of its packets was delivered; its FCT is last delivery - first
/// injection.
struct FlowStat {
  std::uint32_t packets = 0;    ///< injected so far
  std::uint32_t delivered = 0;
  std::uint32_t dropped = 0;    ///< tail-dropped at some queue
  std::uint32_t ttl_expired = 0;
  Tick first_inject = 0;
  Tick last_delivery = 0;

  [[nodiscard]] bool complete() const noexcept {
    return packets > 0 && delivered == packets;
  }
  [[nodiscard]] Tick fct_ns() const noexcept {
    return complete() ? last_delivery - first_inject : 0;
  }

  friend bool operator==(const FlowStat&, const FlowStat&) noexcept = default;
};

/// Why a packet left the simulation without being delivered.  The
/// drop hook receives the cause so a transport can distinguish
/// congestion feedback (a tail drop is reported backwards, like a
/// lossless-fabric NACK) from silent losses (a dead wire or a TTL kill
/// gives the sender nothing -- only its retransmission timer notices).
enum class DropCause : std::uint32_t {
  kTailDrop,    ///< egress FIFO full
  kLinkDown,    ///< routed onto a failed channel
  kTtlExpired,  ///< hop cap reached
};

/// Engine-wide knobs.
struct SimConfig {
  std::size_t max_hops = 64;  ///< same hop cap as the replay walks
  /// ECN-mark hook: called once per marked packet with (channel index,
  /// queue depth after enqueue, flow handle of the marked packet).
  /// Marks are counted either way; the hook is where the congestion
  /// -control layer (sim/transport.hpp) or a test taps in.
  std::function<void(std::uint32_t channel, std::uint32_t depth,
                     std::uint32_t flow)>
      ecn_hook;
  /// Closed-loop feedback taps (see sim/transport.hpp).  All optional:
  /// delivered_hook fires once per delivered packet, drop_hook once per
  /// lost packet with its cause, timer_hook once per kTimer event
  /// scheduled through schedule_timer().
  std::function<void(Tick t, std::uint32_t flow, std::uint32_t packet)>
      delivered_hook;
  std::function<void(Tick t, std::uint32_t flow, std::uint32_t packet,
                     DropCause cause)>
      drop_hook;
  std::function<void(Tick t, std::uint32_t arg)> timer_hook;
  /// Observability taps, all optional (borrowed; must outlive run()).
  /// With `metrics` set the engine registers sim.* counters, the
  /// sim.queue_depth histogram and one sim.link.NNNNN.queue_depth gauge
  /// (plus .drops/.ecn counters) per channel.  Everything recorded
  /// derives from simulated ticks and event order -- never wall clock
  /// -- so a fixed-seed run snapshots bit-identically.
  obs::MetricRegistry* metrics = nullptr;
  /// Hop-level ring for 1-in-N flows (see obs/flight_recorder.hpp).
  obs::FlightRecorder* recorder = nullptr;
  /// Sampled on simulated-tick boundaries: every `telemetry_period_ns`
  /// the engine appends each registry gauge to the bridge's store at
  /// t = tick * 1e-9 s, *before* processing any event at or past the
  /// boundary.  0 disables sampling.
  obs::TelemetryBridge* telemetry = nullptr;
  Tick telemetry_period_ns = 0;
};

/// Merged outcome of one PacketSim::run().
struct SimCounters {
  std::size_t injected = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;        ///< tail + failover drops
  std::size_t failover_lost = 0;  ///< of `dropped`: arrivals at a dead link
  std::size_t link_down_events = 0;  ///< kLinkDown events processed
  std::size_t ttl_expired = 0;
  std::size_t wrong_egress = 0;   ///< delivery diverged from expectation
  std::size_t mod_operations = 0; ///< label folds == hops walked
  std::size_t ecn_marked = 0;
  std::size_t segmented_packets = 0;  ///< injected with > 1 segment label
  std::size_t segment_swaps = 0;      ///< waypoint re-labels performed
  Tick end_ns = 0;  ///< time of the last processed event

  friend bool operator==(const SimCounters&, const SimCounters&) noexcept =
      default;
};

struct SimResult {
  SimCounters counters;
  std::vector<LinkStat> links;  ///< one per channel
  std::vector<FlowStat> flows;  ///< one per registered flow

  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// The event-driven engine.  Wire it (channels + the per-port channel
/// map), register flows, inject packets, then run() to drain the event
/// queue.  `fabric` and the pooled segment arrays are borrowed and must
/// outlive run().
class PacketSim {
 public:
  /// Marks a fabric port with no channel behind it (an egress port).
  static constexpr std::uint32_t kNoChannel = 0xFFFFFFFFu;

  /// \param fabric compiled data plane whose kernels make every
  ///   forwarding decision
  /// \param channels one entry per directed router adjacency
  /// \param node_offset size node_count() + 1: node n's ports map
  ///   through port_channel[node_offset[n] .. node_offset[n + 1])
  /// \param port_channel flattened port -> channel map (kNoChannel on
  ///   egress ports); a packet folded onto port p at node n departs on
  ///   channel port_channel[node_offset[n] + p]
  /// Throws std::invalid_argument when the map shape does not match the
  /// fabric or a channel index is out of range.
  PacketSim(const polka::CompiledFabric& fabric, std::vector<Channel> channels,
            std::vector<std::uint32_t> node_offset,
            std::vector<std::uint32_t> port_channel, SimConfig config = {});

  /// Attach the pooled multi-segment label/waypoint arrays that
  /// injected SegmentRefs index (same layout as scenario::PacketStream
  /// seg_labels/seg_waypoints).  Unnecessary when every injection is
  /// single-label.
  void set_segment_pool(std::span<const polka::RouteLabel> labels,
                        std::span<const std::uint32_t> waypoints);

  /// Register a flow; delivered packets are checked against
  /// `expected` (the pair's replay expectation) and divergences count
  /// as wrong_egress.  Returns the flow handle inject() takes.
  std::uint32_t add_flow(const polka::PacketResult& expected);

  /// Schedule one packet: injected at fabric node `source` at time
  /// `at`, carrying `label` (or, when ref.label_count > 1, the pooled
  /// segment list `ref` names -- the first pooled label must equal
  /// `label`, exactly as in a PacketStream).  Returns the packet's
  /// index (the handle delivered_hook / drop_hook report).  Safe to
  /// call from inside a hook while run() drains, which is how the
  /// transport layer injects retransmissions.  Throws
  /// std::invalid_argument on a bad source, flow or ref.
  std::uint32_t inject(Tick at, polka::RouteLabel label, polka::SegmentRef ref,
                       std::uint32_t source, std::uint32_t flow);

  /// Schedule a kTimer event at simulated time `at`; when it fires the
  /// engine calls config.timer_hook(at, arg).  The queue never cancels:
  /// stale timers are the hook owner's problem (the transport keeps an
  /// arm generation per flow).  Throws std::logic_error when no
  /// timer_hook is installed.
  void schedule_timer(Tick at, std::uint32_t arg);

  /// Install / replace the closed-loop feedback hooks after
  /// construction (the transport layer wires itself onto an already
  /// -built engine).
  void set_ecn_hook(
      std::function<void(std::uint32_t, std::uint32_t, std::uint32_t)> hook) {
    config_.ecn_hook = std::move(hook);
  }
  void set_feedback_hooks(
      std::function<void(Tick, std::uint32_t, std::uint32_t)> delivered,
      std::function<void(Tick, std::uint32_t, std::uint32_t, DropCause)>
          dropped,
      std::function<void(Tick, std::uint32_t)> timer) {
    config_.delivered_hook = std::move(delivered);
    config_.drop_hook = std::move(dropped);
    config_.timer_hook = std::move(timer);
  }

  /// Schedule the directed channel to go down (up = false) or come
  /// back (up = true) at simulated time `at`.  While a channel is
  /// down, every packet routed onto it is dropped and counted as
  /// failover loss (the wire is gone -- no queueing, no ECN).  Packets
  /// already committed to the wire before `at` still arrive: failing a
  /// link does not destroy in-flight serializations.  Throws
  /// std::invalid_argument on a bad channel index.
  void schedule_link_state(Tick at, std::uint32_t channel, bool up);

  /// Process every pending event; returns the accumulated result.
  /// Resets nothing: a second run() continues from the drained state
  /// (inject more first), which is how arrival schedules can be fed in
  /// phases.
  SimResult run();

  [[nodiscard]] Tick now() const noexcept { return now_; }

 private:
  struct PacketState {
    std::uint64_t label = 0;     ///< active segment's bits
    polka::SegmentRef ref{};     ///< pooled segments (label_count > 1)
    std::uint32_t seg = 0;       ///< active segment index
    std::uint32_t node = 0;      ///< current / next-arrival node
    std::uint32_t hops = 0;
    std::uint32_t flow = 0;
  };

  struct ChannelState {
    std::uint32_t queued = 0;  ///< waiting + in serialization
    Tick free_at = 0;          ///< when the wire finishes its last commit
  };

  /// Metric handles resolved once at construction (all null when
  /// config_.metrics is null, so the disabled path costs one branch).
  struct ObsHandles {
    obs::Counter* injected = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* tail_drops = nullptr;
    obs::Counter* ttl_expired = nullptr;
    obs::Counter* ecn_marked = nullptr;
    obs::Counter* folds = nullptr;
    obs::Counter* segment_swaps = nullptr;
    obs::Counter* wrong_egress = nullptr;
    obs::Counter* failover_lost = nullptr;
    obs::Counter* link_events = nullptr;
    obs::Gauge* in_flight = nullptr;
    obs::Histogram* queue_depth = nullptr;
    std::vector<obs::Gauge*> link_depth;     ///< one per channel
    std::vector<obs::Counter*> link_drops;   ///< one per channel
    std::vector<obs::Counter*> link_ecn;     ///< one per channel
  };

  void register_metrics();
  void handle_arrival(Tick t, std::uint32_t packet);

  const polka::CompiledFabric& fabric_;
  std::vector<Channel> channels_;
  std::vector<std::uint32_t> node_offset_;
  std::vector<std::uint32_t> port_channel_;
  SimConfig config_;
  std::span<const polka::RouteLabel> pool_labels_;
  std::span<const std::uint32_t> pool_waypoints_;
  std::vector<polka::PacketResult> flow_expected_;
  std::vector<PacketState> packets_;
  std::vector<ChannelState> channel_state_;
  std::vector<char> link_up_;  ///< per channel: 1 while the wire exists
  EventQueue queue_;
  Tick now_ = 0;
  Tick next_sample_ = 0;  ///< next telemetry-bridge tick boundary
  SimResult result_;
  ObsHandles obs_;
};

}  // namespace hp::sim
