#pragma once
// PolKA route identifiers.
//
// A route is a list of (node, output-port) hops.  The routeID is the CRT
// solution of { routeID == port_poly(hop)  (mod nodeID(hop)) } and is the
// *only* state carried by the packet: core nodes recover their port with
// one polynomial remainder and never rewrite the label (contrast with
// the port-switching baseline in port_switching.hpp).

#include <cstdint>
#include <vector>

#include "gf2/crt.hpp"
#include "gf2/poly.hpp"
#include "polka/node_id.hpp"

namespace hp::polka {

/// One hop of an explicit route: at `node`, leave through `port`.
struct Hop {
  NodeId node;
  unsigned port = 0;
};

/// The packet-carried route label.
struct RouteId {
  gf2::Poly value;  ///< CRT solution; deg < sum of nodeID degrees.

  /// Bits needed to carry this routeID in a packet header.
  [[nodiscard]] unsigned bit_length() const noexcept {
    return static_cast<unsigned>(value.degree() + 1);
  }
};

/// Encode a port index as a polynomial (its binary expansion).
[[nodiscard]] gf2::Poly port_polynomial(unsigned port);

/// Decode a polynomial back to a port index.  Throws std::domain_error
/// if the polynomial's value does not fit `unsigned`.
[[nodiscard]] unsigned polynomial_port(const gf2::Poly& p);

/// Compute the routeID for an explicit path.  Throws std::domain_error
/// when a hop's port does not fit its node's degree (the port polynomial
/// must have degree < deg(nodeID)) or when nodeIDs are not pairwise
/// coprime; std::invalid_argument on an empty path.
[[nodiscard]] RouteId compute_route_id(const std::vector<Hop>& path);

/// What a core node does in the data plane: one mod operation.
[[nodiscard]] unsigned output_port(const RouteId& route, const NodeId& node);

}  // namespace hp::polka
