#pragma once
// Stateless PolKA forwarding over an abstract switching fabric.
//
// A PolkaFabric owns the core nodes and their port wiring.  Packets carry
// only a routeID; each node computes its output port with a single mod
// (via a CRC engine, mirroring the P4 implementation) and hands the
// packet to the neighbour on that port.  No per-node route tables exist.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "polka/crc.hpp"
#include "polka/label.hpp"
#include "polka/node_id.hpp"
#include "polka/route.hpp"

namespace hp::polka {

class CompiledFabric;

/// How a node computes routeID mod nodeID in the data plane.
enum class ModEngine {
  kBitSerial,  ///< reference LFSR (any degree)
  kTable,      ///< byte-at-a-time table CRC (degree <= 56)
  kDirect,     ///< exact gf2::Poly Euclidean division
};

/// A switching fabric of PolKA core nodes.
class PolkaFabric {
 public:
  explicit PolkaFabric(ModEngine engine = ModEngine::kTable);
  ~PolkaFabric();  // out of line: compiled_ is incomplete here

  // Copies do not inherit the compiled_ cache (see CompiledCache): a
  // copy that carried the source's flattened view would keep serving
  // the source's wiring if any mutator forgot to invalidate it.  Each
  // copy recompiles lazily on first fast-path use instead.
  PolkaFabric(const PolkaFabric&) = default;
  PolkaFabric& operator=(const PolkaFabric&) = default;
  PolkaFabric(PolkaFabric&&) noexcept = default;
  PolkaFabric& operator=(PolkaFabric&&) noexcept = default;

  [[nodiscard]] ModEngine engine() const noexcept { return engine_; }

  /// Add a core node with `port_count` output ports; returns its index.
  /// Node names must be unique (throws std::invalid_argument).
  std::size_t add_node(const std::string& name, unsigned port_count);

  /// Wire `port` of node `from` to node `to` (unidirectional at this
  /// layer; call twice for duplex).  Throws std::out_of_range on bad
  /// indices or ports.
  void connect(std::size_t from, unsigned port, std::size_t to);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const NodeId& node(std::size_t i) const {
    return nodes_.at(i);
  }
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// Build the routeID for an explicit node-index path; transit ports
  /// are derived from the wiring (consecutive path nodes must be
  /// connected).  `egress_port`, when given, adds a congruence for the
  /// *last* node so it deterministically emits the packet on that port
  /// (typically an unwired host-facing port); without it the last node's
  /// behaviour is unspecified, as in real PolKA where the edge strips
  /// the header.
  [[nodiscard]] RouteId route_for_path(
      const std::vector<std::size_t>& node_path,
      std::optional<unsigned> egress_port = std::nullopt) const;

  /// Result of pushing one packet through the fabric.
  struct Trace {
    std::vector<std::size_t> nodes;  ///< nodes visited, in order
    std::vector<unsigned> ports;     ///< port taken at each visited node
    std::size_t mod_operations = 0;  ///< data-plane work performed
    /// The hop limit cut the walk short -- the packet never egressed.
    bool ttl_expired = false;
  };

  /// Forward a packet carrying `route` starting at node `first`, for at
  /// most `max_hops` hops (guards against misconfigured loops).  The
  /// trace ends when a node's computed port is unwired (egress) or the
  /// hop limit is reached (then ttl_expired is set).
  [[nodiscard]] Trace forward(const RouteId& route, std::size_t first,
                              std::size_t max_hops = 64) const;

  /// Cut an explicit node-index path into a multi-segment route whose
  /// every label fits 64 bits: transit congruences accumulate into one
  /// segment while the CRT modulus stays within 64 coefficient bits;
  /// when the next node would push it past, the segment is closed and
  /// that node becomes a re-label waypoint.  The final segment carries
  /// the egress congruence at the last node (cut there too when it does
  /// not fit, leaving a final label of the bare egress-port bits).
  /// Consecutive nodes must be wired (throws std::invalid_argument);
  /// the egress port polynomial must fit the last node's degree (throws
  /// std::domain_error, mirroring compute_route_id).  A path whose full
  /// routeID already fits returns exactly one label, bit-identical to
  /// pack_label(route_for_path(...)).
  [[nodiscard]] SegmentedRoute segmented_route_for_path(
      const std::vector<std::size_t>& node_path, unsigned egress_port) const;

  /// The port `from` uses to reach `to`, if wired.
  [[nodiscard]] std::optional<unsigned> port_between(std::size_t from,
                                                     std::size_t to) const;

  /// The neighbour wired to `port` of `node`, if any.
  [[nodiscard]] std::optional<std::size_t> neighbour(std::size_t node,
                                                     unsigned port) const;

  // --- batched uint64 fast path ---------------------------------------

  /// The flattened data-plane view of this fabric, compiled on first use
  /// and cached until the topology next changes (add_node / connect).
  [[nodiscard]] const CompiledFabric& compiled() const;

  /// Forward a batch of packets, all injected at `first`, through the
  /// compiled fast path; results[i] receives routes[i]'s outcome (spans
  /// must match in length, throws std::invalid_argument).  Routes are
  /// packed into 64-bit labels in fixed-size chunks -- no heap
  /// allocation in the loop; a route too long to pack (degree >= 64)
  /// transparently takes the scalar slow path.  Returns the total
  /// number of mod operations.
  std::size_t forward_batch(std::span<const RouteId> routes,
                            std::size_t first,
                            std::span<PacketResult> results,
                            std::size_t max_hops = 64) const;

 private:
  [[nodiscard]] unsigned compute_port(const RouteId& route,
                                      std::size_t node) const;

  ModEngine engine_;
  NodeIdAllocator allocator_;
  std::vector<NodeId> nodes_;
  std::unordered_map<std::string, std::size_t> by_name_;
  // wiring_[node][port] = neighbour index (or npos when unwired).
  std::vector<std::vector<std::size_t>> wiring_;
  std::vector<BitSerialCrc> bit_engines_;
  std::vector<TableCrc> table_engines_;

  /// Cache holder whose copies start empty, so the fabric's defaulted
  /// copy operations never carry a (potentially soon-stale) compiled
  /// view -- and adding fabric members later cannot reintroduce the
  /// hazard by missing a hand-written copy constructor.
  struct CompiledCache {
    CompiledCache() = default;
    CompiledCache(const CompiledCache&) noexcept {}
    CompiledCache& operator=(const CompiledCache&) noexcept {
      ptr.reset();
      return *this;
    }
    CompiledCache(CompiledCache&&) noexcept = default;
    CompiledCache& operator=(CompiledCache&&) noexcept = default;

    std::shared_ptr<const CompiledFabric> ptr;
  };
  /// Lazily-built flattened view.  Reset by add_node / connect.
  mutable CompiledCache compiled_;

  static constexpr std::size_t kUnwired = static_cast<std::size_t>(-1);
};

}  // namespace hp::polka
