#pragma once
// Proof of Transit for path-aware networks (PoT-PolKA, the paper's
// reference [18]: "let the edge control the proof-of-transit").
//
// Model: every core node holds a secret polynomial key.  A packet
// carries a per-packet nonce and a PoT accumulator; each node folds in
// its tag = (key * nonce) mod nodeID, and the egress edge -- which
// knows all keys -- recomputes the expected accumulator for the
// intended path and compares.  A node skipped (path deviation) or an
// unknown node inserted leaves a mismatching accumulator with
// probability 1 - 2^-deg.
//
// This is a didactic simplification of [18]'s Shamir-secret-sharing
// construction: it keeps the two properties the framework exercises
// (edge-verifiable transit, stateless per-node work) with GF(2)
// arithmetic only; it is not resistant to nodes colluding to reorder
// tags (XOR is commutative).  Documented in DESIGN.md.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gf2/poly.hpp"
#include "polka/node_id.hpp"

namespace hp::polka {

/// A node's transit secret, provisioned by the edge controller.
struct TransitSecret {
  NodeId node;
  gf2::Poly key;
};

/// The per-node data-plane operation: tag = (key * nonce) mod nodeID.
[[nodiscard]] gf2::Poly transit_tag(const TransitSecret& secret,
                                    const gf2::Poly& nonce);

/// Running accumulator carried by the packet (XOR of tags).
struct TransitProof {
  gf2::Poly accumulator;

  /// Fold one node's tag in (order-independent by construction).
  void absorb(const TransitSecret& secret, const gf2::Poly& nonce);
};

/// Edge-side verifier: provisions secrets and checks proofs.
class PotVerifier {
 public:
  /// Generate distinct pseudo-random keys (deg < deg(nodeID)) for each
  /// node from a seed.  Node names must be unique.
  explicit PotVerifier(const std::vector<NodeId>& nodes,
                       std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// The secret provisioned for a node (throws std::out_of_range).
  [[nodiscard]] const TransitSecret& secret(const std::string& name) const;

  /// The accumulator an honest traversal of `path_names` must produce
  /// for this nonce.
  [[nodiscard]] gf2::Poly expected(const std::vector<std::string>& path_names,
                                   const gf2::Poly& nonce) const;

  /// Does the carried proof match the intended path?
  [[nodiscard]] bool verify(const TransitProof& proof,
                            const std::vector<std::string>& path_names,
                            const gf2::Poly& nonce) const;

 private:
  std::map<std::string, TransitSecret> secrets_;
};

}  // namespace hp::polka
