#include "polka/label.hpp"

#include <stdexcept>

namespace hp::polka {

std::optional<RouteLabel> pack_label(const RouteId& route) {
  if (route.value.degree() >= 64) return std::nullopt;
  return RouteLabel{route.value.to_uint64()};
}

RouteLabel pack_label_checked(const RouteId& route) {
  const auto label = pack_label(route);
  if (!label) {
    throw std::domain_error(
        "pack_label_checked: routeID degree >= 64 does not fit a label");
  }
  return *label;
}

RouteId unpack_label(RouteLabel label) {
  return RouteId{gf2::Poly(label.bits)};
}

}  // namespace hp::polka
