#pragma once
// CRC-style polynomial remainder engines.
//
// PolKA's key data-plane trick is that "routeID mod nodeID" is exactly the
// remainder a CRC circuit computes, so programmable switches reuse their
// CRC hardware for forwarding.  We model that hardware two ways:
//
//  * BitSerialCrc  - one coefficient per step, the textbook LFSR; this is
//    the reference implementation and works for any generator degree.
//  * TableCrc     - byte-at-a-time with a 256-entry table, the way real
//    pipelines stage the computation; generators up to degree 56.
//
// Both consume the dividend most-significant coefficient first and agree
// with gf2::Poly's Euclidean remainder (asserted by tests and benches).

#include <array>
#include <cstdint>

#include "gf2/poly.hpp"

namespace hp::polka {

/// Reference remainder engine: processes the dividend one coefficient at
/// a time, mirroring a linear-feedback shift register.
class BitSerialCrc {
 public:
  /// `generator` must have degree >= 1 (throws std::invalid_argument).
  explicit BitSerialCrc(gf2::Poly generator);

  /// Remainder of `dividend` modulo the generator.
  [[nodiscard]] gf2::Poly remainder(const gf2::Poly& dividend) const;

  [[nodiscard]] const gf2::Poly& generator() const noexcept {
    return generator_;
  }

 private:
  gf2::Poly generator_;
  int degree_;
};

/// Table-driven remainder engine (byte at a time).  Requires the
/// generator degree to fit the 64-bit state with one byte of headroom
/// (degree <= 56); throws std::invalid_argument otherwise.
class TableCrc {
 public:
  explicit TableCrc(const gf2::Poly& generator);

  /// Remainder of `dividend` modulo the generator, as raw bits.
  [[nodiscard]] std::uint64_t remainder_bits(const gf2::Poly& dividend) const;

  /// Remainder as a polynomial.
  [[nodiscard]] gf2::Poly remainder(const gf2::Poly& dividend) const {
    return gf2::Poly(remainder_bits(dividend));
  }

  [[nodiscard]] unsigned degree() const noexcept { return degree_; }

 private:
  /// Advance the remainder state by one input byte.
  [[nodiscard]] std::uint64_t step(std::uint64_t state,
                                   std::uint8_t byte) const noexcept;

  std::array<std::uint64_t, 256> table_{};
  std::uint64_t generator_bits_ = 0;
  unsigned degree_ = 0;
};

}  // namespace hp::polka
