#pragma once
// The shared interleaved batch-walk kernel behind every CompiledFabric
// forwarding entry point, written once and instantiated per fold
// kernel:
//
//   * fastpath.cpp instantiates it with TableFold (baseline ISA);
//   * fold_clmul.cpp instantiates it with the PCLMUL Barrett fold, in a
//     translation unit compiled with -mpclmul so the carry-less
//     multiply intrinsics inline into the loop (callers reach it only
//     through the runtime-dispatched clmul_* entry points below).
//
// A packet walk is a chain of dependent loads: fold the label at the
// current node, look up the port's neighbour, move.  One packet at a
// time, every hop stalls on the previous hop's cache miss.  The kernel
// instead keeps kInFlight independent packets resident and advances
// each one hop per round, issuing a software prefetch of every
// packet's *next* node record as soon as it is known -- by the time a
// packet's turn comes again its constants are in flight or resident.
// Finished packets are refilled from the batch in place, so the lanes
// stay dense until the stream drains.
//
// This header is an implementation detail of polka/fastpath; tests may
// include it, other subsystems should stay on the CompiledFabric API.

#include <cstddef>
#include <cstdint>

#include "polka/fastpath.hpp"
#include "polka/label.hpp"

namespace hp::polka::detail {

/// The fabric arrays a kernel walks (borrowed from a CompiledFabric).
struct FabricView {
  const CompiledNode* nodes = nullptr;
  const std::uint32_t* next = nullptr;
};

/// One validated batch: parallel input/output pointers.  `firsts` is
/// read at stride `first_stride` -- 0 broadcasts a single shared
/// ingress, 1 reads one ingress per packet -- which is how the
/// single-ingress and per-packet forward_batch overloads share one
/// kernel.  Exactly one of `labels` (plain batches) or the
/// pool_labels/pool_waypoints/refs triple (segmented batches) is set.
struct BatchSpec {
  const std::uint32_t* firsts = nullptr;
  std::size_t first_stride = 1;
  PacketResult* results = nullptr;
  std::size_t count = 0;
  std::size_t max_hops = 0;
  const RouteLabel* labels = nullptr;             // plain
  const RouteLabel* pool_labels = nullptr;        // segmented
  const std::uint32_t* pool_waypoints = nullptr;  // segmented
  const SegmentRef* refs = nullptr;               // segmented
};

/// Slice-by-8 fold over the lazily built per-node tables.
struct TableFold {
  const std::uint64_t* tables;

  [[nodiscard]] std::uint64_t operator()(const CompiledNode&,
                                         std::uint32_t node,
                                         std::uint64_t label) const noexcept {
    return fold_remainder(tables + std::size_t{node} * kFoldTableSize, label);
  }

  /// The table spans 16 KB; pulling its first line in early still buys
  /// the lane-0 load (the node record is prefetched by the kernel).
  void prefetch(std::uint32_t node) const noexcept {
    __builtin_prefetch(tables + std::size_t{node} * kFoldTableSize);
  }
};

inline constexpr std::size_t kInFlight = 8;  ///< packets kept in flight

// HP_HOT_BEGIN(run_batch)
// The per-packet walk: no allocation, no container growth, no
// wall-clock reads between these markers (enforced by
// scripts/lint/hp_lint.py's hot-path-purity rule and pinned
// dynamically by tests/alloc_guard_test.cpp).
template <bool Segmented, class Fold>
inline std::size_t run_batch(const FabricView& fabric, const BatchSpec& batch,
                             Fold fold) {
  HP_DCHECK(batch.count == 0 || batch.results != nullptr,
            "run_batch: results array missing");
  HP_DCHECK(batch.count == 0 || batch.firsts != nullptr,
            "run_batch: ingress array missing");
  // Zero hop budget: no folds happen, every packet is killed where the
  // scalar walks kill it (default egress fields, ttl_expired set).
  if (batch.max_hops == 0) {
    for (std::size_t i = 0; i < batch.count; ++i) {
      PacketResult r;
      r.ttl_expired = true;
      batch.results[i] = r;
    }
    return 0;
  }

  struct Slot {
    std::uint64_t label;
    const RouteLabel* seg_labels;          // Segmented only
    const std::uint32_t* seg_waypoints;    // Segmented only
    std::uint32_t seg;
    std::uint32_t seg_count;
    std::uint32_t node;
    std::uint32_t hops;
    std::size_t out;
  };

  Slot slots[kInFlight];
  std::size_t next_packet = 0;
  std::size_t active = 0;
  std::size_t mods = 0;

  const auto load = [&](Slot& s) {
    const std::size_t i = next_packet++;
    s.out = i;
    s.node = batch.firsts[i * batch.first_stride];
    s.hops = 0;
    if constexpr (Segmented) {
      const SegmentRef& ref = batch.refs[i];
      HP_DCHECK(ref.label_count > 0,
                "run_batch: segmented lane with zero labels");
      s.seg_labels = batch.pool_labels + ref.first_label;
      s.seg_waypoints = batch.pool_waypoints + ref.first_waypoint;
      s.seg_count = ref.label_count;
      s.seg = 0;
      s.label = s.seg_labels[0].bits;
    } else {
      s.label = batch.labels[i].bits;
    }
    __builtin_prefetch(&fabric.nodes[s.node]);
    fold.prefetch(s.node);
  };

  while (active < kInFlight && next_packet < batch.count) {
    load(slots[active++]);
  }

  while (active != 0) {
    std::size_t k = 0;
    while (k < active) {
      Slot& s = slots[k];
      if constexpr (Segmented) {
        // Waypoints are checked in route order; reaching the next one
        // re-labels before this node's mod (a waypoint does exactly one
        // fold, same as every other node, just with its fresh label).
        if (s.seg + 1 < s.seg_count && s.node == s.seg_waypoints[s.seg]) {
          ++s.seg;
          s.label = s.seg_labels[s.seg].bits;
        }
      }
      const CompiledNode& m = fabric.nodes[s.node];
      const std::uint32_t port =
          static_cast<std::uint32_t>(fold(m, s.node, s.label));
      ++s.hops;
      const std::uint32_t peer = port < m.port_count
                                     ? fabric.next[m.wiring_offset + port]
                                     : CompiledFabric::kNoNode;
      if (peer != CompiledFabric::kNoNode && s.hops < batch.max_hops)
          [[likely]] {
        s.node = peer;
        __builtin_prefetch(&fabric.nodes[peer]);
        fold.prefetch(peer);
        ++k;
        continue;
      }
      // Done: either the port is unwired (egress) or the hop budget ran
      // out with the packet still in flight (ttl kill, never reported
      // as a delivery).
      PacketResult r;
      r.egress_node = s.node;
      r.egress_port = port;
      r.hops = s.hops;
      r.ttl_expired = peer != CompiledFabric::kNoNode;
      batch.results[s.out] = r;
      mods += s.hops;
      if (next_packet < batch.count) {
        load(s);  // refill in place; its first hop runs next round
        ++k;
      } else {
        slots[k] = slots[--active];  // compact; re-examine the mover
      }
    }
  }
  return mods;
}
// HP_HOT_END(run_batch)

// --- PCLMUL kernel entry points (fold_clmul.cpp) ----------------------
// Stubs returning false/0 when the binary was built without PCLMUL
// support; never called unless clmul_runtime_supported().

/// CPUID says the CPU can run PCLMULQDQ (false when compiled out).
[[nodiscard]] bool clmul_runtime_supported() noexcept;

/// One Barrett fold through the hardware carry-less multiplier.
[[nodiscard]] std::uint64_t clmul_fold_one(std::uint64_t generator,
                                           std::uint64_t mu,
                                           std::uint32_t degree,
                                           std::uint64_t label) noexcept;

/// run_batch instantiated with the PCLMUL Barrett fold.
std::size_t clmul_batch(const FabricView& fabric, const BatchSpec& batch,
                        bool segmented);

}  // namespace hp::polka::detail
