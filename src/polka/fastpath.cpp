#include "polka/fastpath.hpp"

#include <stdexcept>

#include "polka/forwarding.hpp"

namespace hp::polka {

void build_fold_table(const gf2::Poly& generator, std::uint64_t* out) {
  const int d = generator.degree();
  if (d < 1 || d > 32) {
    throw std::invalid_argument(
        "build_fold_table: generator degree must be in [1, 32]");
  }
  // Reduction is GF(2)-linear, so a 64-bit label reduces byte-wise:
  // out[256*k + b] = (b * t^(8k)) mod g, and a remainder is the XOR of
  // one constant per byte lane.  Exact polynomial arithmetic here; pure
  // integer ops on the hot path.
  for (unsigned k = 0; k < 8; ++k) {
    const gf2::Poly lane = gf2::Poly::monomial(8 * k);
    for (unsigned b = 0; b < 256; ++b) {
      out[256 * k + b] = ((gf2::Poly(b) * lane) % generator).to_uint64();
    }
  }
}

LabelFoldEngine::LabelFoldEngine(const gf2::Poly& generator)
    : table_(kFoldTableSize) {
  build_fold_table(generator, table_.data());
  degree_ = static_cast<unsigned>(generator.degree());
}

CompiledFabric::CompiledFabric(const PolkaFabric& fabric) {
  const std::size_t n = fabric.node_count();
  meta_.resize(n);
  fold_.resize(n * kFoldTableSize);
  std::size_t total_ports = 0;
  for (std::size_t i = 0; i < n; ++i) total_ports += fabric.node(i).port_count;
  next_.assign(total_ports, kNoNode);

  std::uint32_t wiring_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId& id = fabric.node(i);
    build_fold_table(id.poly, fold_.data() + i * kFoldTableSize);
    meta_[i].wiring_offset = wiring_offset;
    meta_[i].port_count = id.port_count;
    for (unsigned p = 0; p < id.port_count; ++p) {
      const auto peer = fabric.neighbour(i, p);
      next_[wiring_offset + p] =
          peer ? static_cast<std::uint32_t>(*peer) : kNoNode;
    }
    wiring_offset += id.port_count;
  }
}

PacketResult CompiledFabric::forward_one(RouteLabel label, std::size_t first,
                                         std::size_t max_hops) const {
  PacketResult r;
  std::size_t current = first;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const std::uint32_t port = port_of(label, current);
    r.egress_node = static_cast<std::uint32_t>(current);
    r.egress_port = port;
    ++r.hops;
    const NodeMeta& m = meta_[current];
    const std::uint32_t peer =
        port < m.port_count ? next_[m.wiring_offset + port] : kNoNode;
    if (peer == kNoNode) return r;  // egress
    current = peer;
  }
  // Hop budget exhausted with the packet still in flight: flag it so
  // callers can tell a kill from a delivery.
  r.ttl_expired = true;
  return r;
}

PacketResult CompiledFabric::forward_segmented(
    std::span<const RouteLabel> labels, std::span<const std::uint32_t> waypoints,
    std::size_t first, std::size_t max_hops) const {
  PacketResult r;
  if (labels.empty()) {
    r.egress_node = static_cast<std::uint32_t>(first);
    r.ttl_expired = true;
    return r;
  }
  std::size_t seg = 0;
  std::uint64_t bits = labels[0].bits;
  std::size_t current = first;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    // Waypoints are checked in route order; reaching the next one
    // re-labels before this node's mod (a waypoint does exactly one
    // fold, same as every other node, just with its fresh label).
    if (seg < waypoints.size() && seg + 1 < labels.size() &&
        current == waypoints[seg]) {
      ++seg;
      bits = labels[seg].bits;
    }
    const std::uint32_t port = port_of(RouteLabel{bits}, current);
    r.egress_node = static_cast<std::uint32_t>(current);
    r.egress_port = port;
    ++r.hops;
    const NodeMeta& m = meta_[current];
    const std::uint32_t peer =
        port < m.port_count ? next_[m.wiring_offset + port] : kNoNode;
    if (peer == kNoNode) return r;  // egress
    current = peer;
  }
  r.ttl_expired = true;
  return r;
}

std::size_t CompiledFabric::forward_batch_segmented(
    std::span<const RouteLabel> labels, std::span<const std::uint32_t> waypoints,
    std::span<const SegmentRef> refs, std::span<const std::uint32_t> firsts,
    std::span<PacketResult> results, std::size_t max_hops) const {
  if (refs.size() != firsts.size() || refs.size() != results.size()) {
    throw std::invalid_argument(
        "forward_batch_segmented: span length mismatch");
  }
  for (const SegmentRef& ref : refs) {
    if (ref.label_count == 0 ||
        ref.first_label + std::size_t{ref.label_count} > labels.size() ||
        ref.first_waypoint + std::size_t{ref.label_count} - 1 >
            waypoints.size()) {
      throw std::out_of_range(
          "forward_batch_segmented: ref outside the segment pools");
    }
  }
  std::size_t mods = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (firsts[i] >= meta_.size()) {
      throw std::out_of_range("forward_batch_segmented: bad start node");
    }
    const SegmentRef& ref = refs[i];
    results[i] = forward_segmented(
        labels.subspan(ref.first_label, ref.label_count),
        waypoints.subspan(ref.first_waypoint, ref.label_count - 1), firsts[i],
        max_hops);
    mods += results[i].hops;
  }
  return mods;
}

std::size_t CompiledFabric::forward_batch(std::span<const RouteLabel> labels,
                                          std::size_t first,
                                          std::span<PacketResult> results,
                                          std::size_t max_hops) const {
  if (labels.size() != results.size()) {
    throw std::invalid_argument("forward_batch: span length mismatch");
  }
  if (first >= meta_.size()) {
    throw std::out_of_range("forward_batch: bad start node");
  }
  std::size_t mods = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    results[i] = forward_one(labels[i], first, max_hops);
    mods += results[i].hops;
  }
  return mods;
}

std::size_t CompiledFabric::forward_batch(std::span<const RouteLabel> labels,
                                          std::span<const std::uint32_t> firsts,
                                          std::span<PacketResult> results,
                                          std::size_t max_hops) const {
  if (labels.size() != results.size() || labels.size() != firsts.size()) {
    throw std::invalid_argument("forward_batch: span length mismatch");
  }
  std::size_t mods = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (firsts[i] >= meta_.size()) {
      throw std::out_of_range("forward_batch: bad start node");
    }
    results[i] = forward_one(labels[i], firsts[i], max_hops);
    mods += results[i].hops;
  }
  return mods;
}

}  // namespace hp::polka
