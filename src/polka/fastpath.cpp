#include "polka/fastpath.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "polka/fold_kernels.hpp"
#include "polka/forwarding.hpp"

namespace hp::polka {

namespace {

/// Table construction on plain words: powers[i] = t^i mod g stepped
/// incrementally (degree <= 32 keeps every remainder under 33 bits), a
/// lane entry is the XOR of one power per set bit of the byte, filled
/// by subset DP.  The generator's degree is validated once by the
/// callers -- no polynomial arithmetic, no per-lane degree recompute.
void build_fold_table_bits(std::uint64_t generator, unsigned degree,
                           std::uint64_t* out) noexcept {
  HP_DCHECK(degree >= 1 && degree <= 32,
            "build_fold_table_bits: caller must validate the degree");
  std::uint64_t powers[64];
  std::uint64_t power = 1;  // t^0 mod g
  for (unsigned i = 0; i < 64; ++i) {
    powers[i] = power;
    power <<= 1;
    if ((power >> degree) & 1u) power ^= generator;
  }
  for (unsigned k = 0; k < 8; ++k) {
    std::uint64_t* lane = out + 256 * k;
    const std::uint64_t* lane_powers = powers + 8 * k;
    lane[0] = 0;
    for (unsigned b = 1; b < 256; ++b) {
      lane[b] = lane[b & (b - 1)] ^ lane_powers[std::countr_zero(b)];
    }
  }
}

}  // namespace

const char* to_string(FoldKernel kernel) noexcept {
  switch (kernel) {
    case FoldKernel::kTable:
      return "table";
    case FoldKernel::kClmulBarrett:
      return "clmul-barrett";
  }
  return "unknown";
}

bool clmul_fold_supported() noexcept {
  static const bool supported = detail::clmul_runtime_supported();
  return supported;
}

bool table_fold_forced() noexcept {
  const char* force = std::getenv("HP_FORCE_TABLE_FOLD");
  return force != nullptr && force[0] != '\0' &&
         !(force[0] == '0' && force[1] == '\0');
}

FoldKernel default_fold_kernel() noexcept {
  static const FoldKernel kernel =
      clmul_fold_supported() && !table_fold_forced()
          ? FoldKernel::kClmulBarrett
          : FoldKernel::kTable;
  return kernel;
}

std::uint64_t clmul_barrett_remainder(const gf2::fixed::Barrett64& constants,
                                      std::uint64_t label) {
  if (!clmul_fold_supported()) {
    throw std::runtime_error(
        "clmul_barrett_remainder: PCLMUL unavailable on this machine");
  }
  return detail::clmul_fold_one(constants.generator, constants.mu,
                                constants.degree, label);
}

void build_fold_table(const gf2::Poly& generator, std::uint64_t* out) {
  const int d = generator.degree();
  if (d < 1 || d > 32) {
    throw std::invalid_argument(
        "build_fold_table: generator degree must be in [1, 32]");
  }
  build_fold_table_bits(generator.to_uint64(), static_cast<unsigned>(d), out);
}

LabelFoldEngine::LabelFoldEngine(const gf2::Poly& generator)
    : table_(kFoldTableSize) {
  build_fold_table(generator, table_.data());
  degree_ = static_cast<unsigned>(generator.degree());
}

CompiledFabric::CompiledFabric(const PolkaFabric& fabric)
    : CompiledFabric(fabric, default_fold_kernel()) {}

CompiledFabric::CompiledFabric(const PolkaFabric& fabric, FoldKernel kernel)
    : kernel_(kernel) {
  if (kernel == FoldKernel::kClmulBarrett && !clmul_fold_supported()) {
    throw std::invalid_argument(
        "CompiledFabric: kClmulBarrett requested but PCLMUL is unavailable");
  }
  const std::size_t n = fabric.node_count();
  // Size everything from the fabric up front: one allocation per array,
  // no incremental growth.
  nodes_.reserve(n);
  std::size_t total_ports = 0;
  for (std::size_t i = 0; i < n; ++i) total_ports += fabric.node(i).port_count;
  next_.assign(total_ports, kNoNode);

  std::uint32_t wiring_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId& id = fabric.node(i);
    const int d = id.poly.degree();
    if (d < 1 || d > 32) {
      throw std::invalid_argument(
          "CompiledFabric: nodeID degree must be in [1, 32]");
    }
    CompiledNode node;
    node.generator = id.poly.to_uint64();
    node.mu = gf2::fixed::barrett_mu(node.generator);
    node.degree = static_cast<std::uint32_t>(d);
    node.wiring_offset = wiring_offset;
    node.port_count = id.port_count;
    for (unsigned p = 0; p < id.port_count; ++p) {
      const auto peer = fabric.neighbour(i, p);
      next_[wiring_offset + p] =
          peer ? static_cast<std::uint32_t>(*peer) : kNoNode;
    }
    wiring_offset += id.port_count;
    nodes_.push_back(node);
  }
  // The 16 KB/node slice-by-8 tables exist only when the table kernel
  // is actually selected; the Barrett path runs on the 32 B/node
  // records alone.
  if (kernel_ == FoldKernel::kTable) ensure_fold_tables();
}

void CompiledFabric::ensure_fold_tables() {
  if (!fold_.empty()) return;
  fold_.resize(nodes_.size() * kFoldTableSize);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    build_fold_table_bits(nodes_[i].generator, nodes_[i].degree,
                          fold_.data() + i * kFoldTableSize);
  }
}

void CompiledFabric::set_kernel(FoldKernel kernel) {
  if (kernel == FoldKernel::kClmulBarrett && !clmul_fold_supported()) {
    throw std::invalid_argument(
        "CompiledFabric::set_kernel: PCLMUL is unavailable");
  }
  if (kernel == FoldKernel::kTable) ensure_fold_tables();
  kernel_ = kernel;
}

std::size_t CompiledFabric::forwarding_state_bytes() const noexcept {
  std::size_t bytes = nodes_.size() * sizeof(CompiledNode) +
                      next_.size() * sizeof(std::uint32_t);
  if (kernel_ == FoldKernel::kTable) {
    bytes += nodes_.size() * kFoldTableSize * sizeof(std::uint64_t);
  }
  return bytes;
}

std::uint32_t CompiledFabric::port_of(RouteLabel label,
                                      std::size_t node) const noexcept {
  if (kernel_ == FoldKernel::kClmulBarrett) {
    const CompiledNode& m = nodes_[node];
    return static_cast<std::uint32_t>(
        detail::clmul_fold_one(m.generator, m.mu, m.degree, label.bits));
  }
  return static_cast<std::uint32_t>(
      fold_remainder(fold_.data() + node * kFoldTableSize, label.bits));
}

std::uint32_t CompiledFabric::port_count(std::size_t node) const {
  return nodes_.at(node).port_count;
}

std::uint32_t CompiledFabric::neighbor(std::size_t node,
                                       std::uint32_t port) const {
  const CompiledNode& m = nodes_.at(node);
  if (port >= m.port_count) return kNoNode;
  return next_[m.wiring_offset + port];
}

// HP_HOT_BEGIN(forward_batch)
// Every CompiledFabric forwarding entry point from here down runs
// allocation-free on preallocated spans: validation throws happen
// before the walk, the walk itself is the shared interleaved kernel.
// scripts/lint/hp_lint.py (hot-path-purity) rejects container growth
// in this region; tests/alloc_guard_test.cpp pins it at runtime.
std::size_t CompiledFabric::run(const detail::BatchSpec& spec,
                                bool segmented) const {
  HP_DCHECK(kernel_ != FoldKernel::kTable || !fold_.empty(),
            "CompiledFabric::run: table kernel selected without tables");
  const detail::FabricView view{nodes_.data(), next_.data()};
  if (kernel_ == FoldKernel::kClmulBarrett) {
    return detail::clmul_batch(view, spec, segmented);
  }
  const detail::TableFold fold{fold_.data()};
  return segmented ? detail::run_batch<true>(view, spec, fold)
                   : detail::run_batch<false>(view, spec, fold);
}

PacketResult CompiledFabric::forward_one(RouteLabel label, std::size_t first,
                                         std::size_t max_hops) const {
  PacketResult result;
  const std::uint32_t first32 = static_cast<std::uint32_t>(first);
  detail::BatchSpec spec;
  spec.firsts = &first32;
  spec.first_stride = 0;
  spec.labels = &label;
  spec.results = &result;
  spec.count = 1;
  spec.max_hops = max_hops;
  (void)run(spec, /*segmented=*/false);
  return result;
}

PacketResult CompiledFabric::forward_segmented(
    std::span<const RouteLabel> labels, std::span<const std::uint32_t> waypoints,
    std::size_t first, std::size_t max_hops) const {
  PacketResult result;
  if (labels.empty()) {
    result.egress_node = static_cast<std::uint32_t>(first);
    result.ttl_expired = true;
    return result;
  }
  // Labels past the waypoint list can never activate; clamping the
  // count up front lets the kernel bound-check against it alone.
  const std::size_t effective =
      std::min(labels.size(), waypoints.size() + 1);
  const SegmentRef ref{0, 0,
                       static_cast<std::uint32_t>(std::min<std::size_t>(
                           effective, 0xFFFFFFFFu))};
  const std::uint32_t first32 = static_cast<std::uint32_t>(first);
  detail::BatchSpec spec;
  spec.firsts = &first32;
  spec.first_stride = 0;
  spec.pool_labels = labels.data();
  spec.pool_waypoints = waypoints.data();
  spec.refs = &ref;
  spec.results = &result;
  spec.count = 1;
  spec.max_hops = max_hops;
  (void)run(spec, /*segmented=*/true);
  return result;
}

std::size_t CompiledFabric::forward_batch_segmented(
    std::span<const RouteLabel> labels, std::span<const std::uint32_t> waypoints,
    std::span<const SegmentRef> refs, std::span<const std::uint32_t> firsts,
    std::span<PacketResult> results, std::size_t max_hops) const {
  if (refs.size() != firsts.size() || refs.size() != results.size()) {
    throw std::invalid_argument(
        "forward_batch_segmented: span length mismatch");
  }
  for (const SegmentRef& ref : refs) {
    if (ref.label_count == 0 ||
        ref.first_label + std::size_t{ref.label_count} > labels.size() ||
        ref.first_waypoint + std::size_t{ref.label_count} - 1 >
            waypoints.size()) {
      throw std::out_of_range(
          "forward_batch_segmented: ref outside the segment pools");
    }
  }
  for (const std::uint32_t first : firsts) {
    if (first >= nodes_.size()) {
      throw std::out_of_range("forward_batch_segmented: bad start node");
    }
  }
  detail::BatchSpec spec;
  spec.firsts = firsts.data();
  spec.first_stride = 1;
  spec.pool_labels = labels.data();
  spec.pool_waypoints = waypoints.data();
  spec.refs = refs.data();
  spec.results = results.data();
  spec.count = refs.size();
  spec.max_hops = max_hops;
  return run(spec, /*segmented=*/true);
}

std::size_t CompiledFabric::forward_batch(std::span<const RouteLabel> labels,
                                          std::size_t first,
                                          std::span<PacketResult> results,
                                          std::size_t max_hops) const {
  if (labels.size() != results.size()) {
    throw std::invalid_argument("forward_batch: span length mismatch");
  }
  if (first >= nodes_.size()) {
    throw std::out_of_range("forward_batch: bad start node");
  }
  const std::uint32_t first32 = static_cast<std::uint32_t>(first);
  detail::BatchSpec spec;
  spec.firsts = &first32;
  spec.first_stride = 0;
  spec.labels = labels.data();
  spec.results = results.data();
  spec.count = labels.size();
  spec.max_hops = max_hops;
  return run(spec, /*segmented=*/false);
}

std::size_t CompiledFabric::forward_batch(std::span<const RouteLabel> labels,
                                          std::span<const std::uint32_t> firsts,
                                          std::span<PacketResult> results,
                                          std::size_t max_hops) const {
  if (labels.size() != results.size() || labels.size() != firsts.size()) {
    throw std::invalid_argument("forward_batch: span length mismatch");
  }
  for (const std::uint32_t first : firsts) {
    if (first >= nodes_.size()) {
      throw std::out_of_range("forward_batch: bad start node");
    }
  }
  detail::BatchSpec spec;
  spec.firsts = firsts.data();
  spec.first_stride = 1;
  spec.labels = labels.data();
  spec.results = results.data();
  spec.count = labels.size();
  spec.max_hops = max_hops;
  return run(spec, /*segmented=*/false);
}
// HP_HOT_END(forward_batch)

}  // namespace hp::polka
