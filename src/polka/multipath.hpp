#pragma once
// M-PolKA-style stateless multipath source routing.
//
// The paper's related work cites mPolKA-INT [31]: "stateless multipath
// source routing" where the per-node remainder is interpreted as an
// output-port *bitmap* instead of a port index, so one routeID encodes
// a whole replication tree.  A node whose remainder has bits {0, 2} set
// forwards copies on ports 0 and 2.  Node IDs need degree > max port
// index (one bit per port) rather than log2(ports).
//
// This module computes multipath routeIDs from explicit trees and
// replicates packets through the PolkaFabric wiring.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "gf2/crt.hpp"
#include "polka/node_id.hpp"
#include "polka/route.hpp"

namespace hp::polka {

/// One node of a multipath route: forward on every port in `ports`.
struct MultiHop {
  NodeId node;
  std::vector<unsigned> ports;
};

/// Encode a port set as a bitmap polynomial (bit p <=> port p).
[[nodiscard]] gf2::Poly port_set_polynomial(const std::vector<unsigned>& ports);

/// Decode a bitmap polynomial back into sorted port indices.
[[nodiscard]] std::vector<unsigned> polynomial_port_set(const gf2::Poly& p);

/// Compute the multipath routeID.  Every hop needs
/// deg(nodeID) > max(port) (bitmap must fit below the modulus degree);
/// throws std::domain_error otherwise, std::invalid_argument on an
/// empty tree or a hop with no ports.
[[nodiscard]] RouteId compute_multipath_route_id(
    const std::vector<MultiHop>& tree);

/// Data-plane lookup: the set of output ports at `node`.
[[nodiscard]] std::vector<unsigned> output_port_set(const RouteId& route,
                                                    const NodeId& node);

/// Minimum nodeID degree for bitmap forwarding on `port_count` ports.
[[nodiscard]] unsigned min_degree_for_port_bitmap(unsigned port_count);

}  // namespace hp::polka
