#include "polka/node_id.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf2/irreducible.hpp"

namespace hp::polka {

unsigned min_degree_for_ports(unsigned port_count) {
  unsigned d = 1;
  while ((std::uint64_t{1} << d) < port_count) ++d;
  return d;
}

NodeId NodeIdAllocator::allocate(std::string name, unsigned port_count,
                                 unsigned min_degree) {
  if (port_count == 0) {
    throw std::invalid_argument("NodeIdAllocator: node needs >= 1 port");
  }
  const unsigned need = std::max(min_degree, min_degree_for_ports(port_count));
  for (unsigned d = need; d <= need + 16; ++d) {
    for (const gf2::Poly& f : gf2::irreducible_of_degree(d)) {
      if (std::ranges::find(used_, f) == used_.end()) {
        used_.push_back(f);
        NodeId id{std::move(name), f, port_count};
        nodes_.push_back(id);
        return id;
      }
    }
  }
  throw std::runtime_error("NodeIdAllocator: exhausted candidate degrees");
}

}  // namespace hp::polka
