#include "polka/node_id.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf2/irreducible.hpp"

namespace hp::polka {

unsigned min_degree_for_ports(unsigned port_count) {
  unsigned d = 1;
  while ((std::uint64_t{1} << d) < port_count) ++d;
  return d;
}

NodeIdAllocator::DegreePool& NodeIdAllocator::pool(unsigned degree) {
  auto [it, inserted] = pools_.try_emplace(degree);
  if (inserted) it->second.candidates = gf2::irreducible_of_degree(degree);
  return it->second;
}

NodeId NodeIdAllocator::allocate(std::string name, unsigned port_count,
                                 unsigned min_degree) {
  if (port_count == 0) {
    throw std::invalid_argument("NodeIdAllocator: node needs >= 1 port");
  }
  const unsigned need = std::max(min_degree, min_degree_for_ports(port_count));
  for (unsigned d = need; d <= need + 16; ++d) {
    DegreePool& p = pool(d);
    if (p.next < p.candidates.size()) {
      NodeId id{std::move(name), p.candidates[p.next++], port_count};
      nodes_.push_back(id);
      return id;
    }
  }
  throw std::runtime_error("NodeIdAllocator: exhausted candidate degrees");
}

}  // namespace hp::polka
