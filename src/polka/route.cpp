#include "polka/route.hpp"

#include <stdexcept>

namespace hp::polka {

gf2::Poly port_polynomial(unsigned port) { return gf2::Poly(port); }

unsigned polynomial_port(const gf2::Poly& p) {
  const std::uint64_t v = p.to_uint64();
  if (v > 0xFFFFFFFFULL) {
    throw std::domain_error("polynomial_port: value exceeds unsigned range");
  }
  return static_cast<unsigned>(v);
}

RouteId compute_route_id(const std::vector<Hop>& path) {
  if (path.empty()) {
    throw std::invalid_argument("compute_route_id: empty path");
  }
  std::vector<gf2::Congruence> system;
  system.reserve(path.size());
  for (const Hop& hop : path) {
    const gf2::Poly port = port_polynomial(hop.port);
    if (port.degree() >= hop.node.poly.degree()) {
      throw std::domain_error(
          "compute_route_id: port polynomial does not fit nodeID degree");
    }
    system.push_back(gf2::Congruence{port, hop.node.poly});
  }
  return RouteId{gf2::crt(system)};
}

unsigned output_port(const RouteId& route, const NodeId& node) {
  return polynomial_port(route.value % node.poly);
}

}  // namespace hp::polka
