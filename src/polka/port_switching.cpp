#include "polka/port_switching.hpp"

#include <stdexcept>

namespace hp::polka {

PortListLabel::PortListLabel(const std::vector<unsigned>& ports,
                             unsigned port_bits)
    : ports_(ports), port_bits_(port_bits) {
  if (port_bits == 0 || port_bits > 16) {
    throw std::invalid_argument("PortListLabel: port_bits must be in [1,16]");
  }
  for (unsigned p : ports) {
    if (p >= (1U << port_bits)) {
      throw std::invalid_argument("PortListLabel: port does not fit field");
    }
  }
}

unsigned PortListLabel::pop_front() {
  if (head_ >= ports_.size()) {
    throw std::out_of_range("PortListLabel::pop_front: label exhausted");
  }
  const unsigned p = ports_[head_++];
  if (head_ == ports_.size()) {
    ports_.clear();
    head_ = 0;
  }
  return p;
}

}  // namespace hp::polka
