#include "polka/crc.hpp"

#include <stdexcept>
#include <vector>

namespace hp::polka {

BitSerialCrc::BitSerialCrc(gf2::Poly generator)
    : generator_(std::move(generator)), degree_(generator_.degree()) {
  if (degree_ < 1) {
    throw std::invalid_argument("BitSerialCrc: generator degree must be >= 1");
  }
}

gf2::Poly BitSerialCrc::remainder(const gf2::Poly& dividend) const {
  gf2::Poly state;
  for (int i = dividend.degree(); i >= 0; --i) {
    // Shift the next dividend coefficient into the LFSR...
    state = state.shifted_left(1);
    if (dividend.coeff(static_cast<unsigned>(i))) state.set_coeff(0, true);
    // ...and reduce when the state reaches the generator degree.
    if (state.degree() == degree_) state += generator_;
  }
  return state;
}

TableCrc::TableCrc(const gf2::Poly& generator) {
  const int d = generator.degree();
  if (d < 1 || d > 56) {
    throw std::invalid_argument("TableCrc: generator degree must be in [1,56]");
  }
  degree_ = static_cast<unsigned>(d);
  generator_bits_ = generator.to_uint64();
  // Folding the top 8 state bits H back into the low part needs
  // table_[H] = (H * t^degree) mod g; build the entries with exact
  // polynomial arithmetic once, then the hot path is pure integer ops.
  const gf2::Poly t_d = gf2::Poly::monomial(degree_);
  for (unsigned b = 0; b < 256; ++b) {
    table_[b] = ((gf2::Poly(b) * t_d) % generator).to_uint64();
  }
}

std::uint64_t TableCrc::step(std::uint64_t state,
                             std::uint8_t byte) const noexcept {
  // Mixing the next input byte with the high bits of the state and
  // indexing the table is equivalent to 8 bit-serial steps, but only if
  // the state's high byte can be exposed; with degree <= 56 the shifted
  // state never overflows 64 bits.
  std::uint64_t shifted = (state << 8) | byte;
  // Reduce the (degree_+8)-bit value by folding its top 8 bits through
  // the table.
  const std::uint64_t high = shifted >> degree_;
  shifted &= (std::uint64_t{1} << degree_) - 1;
  return shifted ^ table_[static_cast<std::uint8_t>(high)];
}

std::uint64_t TableCrc::remainder_bits(const gf2::Poly& dividend) const {
  const int d = dividend.degree();
  if (d < 0) return 0;
  // Serialize the dividend MSB-first into whole bytes (left-aligned to a
  // byte boundary would scale the polynomial, so pad on the *left* with
  // zeros, which is harmless).
  const unsigned nbits = static_cast<unsigned>(d) + 1;
  const unsigned nbytes = (nbits + 7) / 8;
  std::uint64_t state = 0;
  for (unsigned i = 0; i < nbytes; ++i) {
    std::uint8_t byte = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      const unsigned pos = nbytes * 8 - 1 - (i * 8 + bit);
      const bool c = pos < nbits && dividend.coeff(pos);
      byte = static_cast<std::uint8_t>((byte << 1) | (c ? 1 : 0));
    }
    state = step(state, byte);
  }
  return state;
}

}  // namespace hp::polka
