#include "polka/pot.hpp"

#include <stdexcept>

namespace hp::polka {

gf2::Poly transit_tag(const TransitSecret& secret, const gf2::Poly& nonce) {
  // Reduce the nonce into the node's field first and map zero to one:
  // otherwise a nonce divisible by the nodeID would zero the tag and
  // make skipping this node undetectable.  With an irreducible modulus
  // and both factors nonzero, the tag is never zero.
  gf2::Poly reduced = nonce % secret.node.poly;
  if (reduced.is_zero()) reduced = gf2::Poly(1);
  return (secret.key * reduced) % secret.node.poly;
}

void TransitProof::absorb(const TransitSecret& secret,
                          const gf2::Poly& nonce) {
  accumulator += transit_tag(secret, nonce);
}

PotVerifier::PotVerifier(const std::vector<NodeId>& nodes,
                         std::uint64_t seed) {
  std::uint64_t state = seed | 1;
  auto next = [&state]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  };
  for (const NodeId& node : nodes) {
    if (secrets_.contains(node.name)) {
      throw std::invalid_argument("PotVerifier: duplicate node " + node.name);
    }
    // Key: nonzero pseudo-random polynomial below the nodeID degree.
    const int degree = node.poly.degree();
    gf2::Poly key;
    do {
      key = gf2::Poly{};
      for (int i = 0; i < degree; ++i) {
        if (next() & 1) key.set_coeff(static_cast<unsigned>(i), true);
      }
    } while (key.is_zero());
    secrets_.emplace(node.name, TransitSecret{node, std::move(key)});
  }
}

const TransitSecret& PotVerifier::secret(const std::string& name) const {
  const auto it = secrets_.find(name);
  if (it == secrets_.end()) {
    throw std::out_of_range("PotVerifier: unknown node " + name);
  }
  return it->second;
}

gf2::Poly PotVerifier::expected(const std::vector<std::string>& path_names,
                                const gf2::Poly& nonce) const {
  gf2::Poly acc;
  for (const std::string& name : path_names) {
    acc += transit_tag(secret(name), nonce);
  }
  return acc;
}

bool PotVerifier::verify(const TransitProof& proof,
                         const std::vector<std::string>& path_names,
                         const gf2::Poly& nonce) const {
  return proof.accumulator == expected(path_names, nonce);
}

}  // namespace hp::polka
