#pragma once
// Port-switching source routing: the classical baseline PolKA contrasts
// against (Section II-B of the paper).
//
// The route label is an ordered list of output-port indices; every hop
// pops the head of the list and rewrites the packet.  We model the label
// as a bit-packed stack of fixed-width port fields so that label sizes
// can be compared against PolKA routeID bit lengths (the
// bench_ablation_label_size experiment).

#include <cstdint>
#include <vector>

namespace hp::polka {

/// A port-list source-routing label.
class PortListLabel {
 public:
  /// Build a label from the sequence of ports to take, first hop first.
  /// `port_bits` is the fixed field width per hop (must be in [1,16]
  /// and large enough for every port; throws std::invalid_argument).
  PortListLabel(const std::vector<unsigned>& ports, unsigned port_bits);

  /// Pop the next output port, shortening the label (the per-hop
  /// rewrite that PolKA avoids).  Throws std::out_of_range when empty.
  unsigned pop_front();

  [[nodiscard]] bool empty() const noexcept {
    return head_ >= ports_.size();
  }
  [[nodiscard]] std::size_t remaining_hops() const noexcept {
    return ports_.size() - head_;
  }

  /// Current label size in bits (fields remaining * field width).
  [[nodiscard]] unsigned bit_length() const noexcept {
    return static_cast<unsigned>(remaining_hops()) * port_bits_;
  }

  [[nodiscard]] unsigned port_bits() const noexcept { return port_bits_; }

 private:
  std::vector<unsigned> ports_;  // front at index head_
  std::size_t head_ = 0;
  unsigned port_bits_;
};

}  // namespace hp::polka
