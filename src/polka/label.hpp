#pragma once
// Packed 64-bit route labels: the wire form of a routeID.
//
// A RouteId is a gf2::Poly of arbitrary degree, which is the right shape
// for the control plane but allocates and chases pointers.  Real PolKA
// headers carry a fixed-width label; RouteLabel is that form -- the
// coefficient bits of a routeID packed into one uint64.  The packing is
// exact whenever the CRT degree bound (sum of nodeID degrees along the
// path) stays below 64, which holds for every path the fast path cares
// about; longer routes fall back to the polynomial slow path.  Labels
// are trivially copyable so batches live in flat contiguous arrays.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/contracts.hpp"
#include "polka/route.hpp"

namespace hp::polka {

/// A routeID packed into 64 coefficient bits (bit i => t^i).
struct RouteLabel {
  std::uint64_t bits = 0;

  friend bool operator==(RouteLabel, RouteLabel) noexcept = default;
};

// The wire form: exactly the packed coefficient word, nothing else.
// Batches alias RouteLabel arrays as uint64 streams; any growth here
// breaks that layout silently, so pin it.
HP_ASSERT_HOT_POD(RouteLabel, 8);

/// A route too long for one 64-bit label, cut into segments that each
/// do fit: labels[0] is active from the ingress, and when the packet
/// arrives at fabric node waypoints[i] it swaps in labels[i + 1]
/// *before* that node computes its port (the waypoint re-labels, every
/// other node stays oblivious).  Invariant: waypoints.size() ==
/// labels.size() - 1; a single-label route has no waypoints.  This is
/// the wire form PolKA segment routing carries -- each segment stays on
/// the uint64 fold fast path regardless of total path length.
struct SegmentedRoute {
  std::vector<RouteLabel> labels;
  std::vector<std::uint32_t> waypoints;

  [[nodiscard]] bool single_label() const noexcept {
    return labels.size() == 1;
  }

  friend bool operator==(const SegmentedRoute&, const SegmentedRoute&) =
      default;
};

/// One route's slice of pooled segment arrays (the flat storage batch
/// replay consumes): labels [first_label, first_label + label_count),
/// waypoints [first_waypoint, first_waypoint + label_count - 1).  A
/// default-constructed ref (label_count == 1) means "single-label,
/// nothing pooled".
struct SegmentRef {
  std::uint32_t first_label = 0;
  std::uint32_t first_waypoint = 0;
  std::uint32_t label_count = 1;
};

// Three pool offsets, no padding: refs ride in per-lane flat arrays
// next to the label stream.
HP_ASSERT_HOT_POD(SegmentRef, 12);

/// Outcome of one packet's walk through the fast path.  Mirrors the tail
/// of PolkaFabric::Trace without recording intermediate hops, so batch
/// results stay fixed-size and allocation-free.
struct PacketResult {
  std::uint32_t egress_node = 0;  ///< last node visited
  std::uint32_t egress_port = 0;  ///< port computed at that node
  std::uint32_t hops = 0;         ///< nodes visited == mod operations
  /// The walk exhausted max_hops with the packet still in flight; the
  /// egress fields are where it was killed, not a delivery.
  bool ttl_expired = false;

  friend bool operator==(const PacketResult&, const PacketResult&) noexcept =
      default;
};

// Batch result arrays are preallocated and rewritten wholesale; the
// record must stay fixed-size (16 bytes: 3 words + flag + padding).
HP_ASSERT_HOT_POD(PacketResult, 16);

/// Pack a routeID into its wire form; nullopt when it does not fit
/// (degree >= 64) and the polynomial slow path must be used.
[[nodiscard]] std::optional<RouteLabel> pack_label(const RouteId& route);

/// Pack a routeID that is known to fit; throws std::domain_error when it
/// does not.
[[nodiscard]] RouteLabel pack_label_checked(const RouteId& route);

/// Expand a wire label back into a routeID (exact inverse of packing).
[[nodiscard]] RouteId unpack_label(RouteLabel label);

}  // namespace hp::polka
