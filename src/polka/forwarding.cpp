#include "polka/forwarding.hpp"

#include <array>
#include <algorithm>
#include <stdexcept>

#include "polka/fastpath.hpp"

namespace hp::polka {

PolkaFabric::PolkaFabric(ModEngine engine) : engine_(engine) {}

PolkaFabric::~PolkaFabric() = default;

std::size_t PolkaFabric::add_node(const std::string& name,
                                  unsigned port_count) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("PolkaFabric: duplicate node name " + name);
  }
  const std::size_t idx = nodes_.size();
  NodeId id = allocator_.allocate(name, port_count);
  bit_engines_.emplace_back(id.poly);
  table_engines_.emplace_back(id.poly);
  nodes_.push_back(std::move(id));
  wiring_.emplace_back(port_count, kUnwired);
  by_name_.emplace(name, idx);
  compiled_.ptr.reset();
  return idx;
}

void PolkaFabric::connect(std::size_t from, unsigned port, std::size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("PolkaFabric::connect: bad node index");
  }
  auto& ports = wiring_.at(from);
  if (port >= ports.size()) {
    throw std::out_of_range("PolkaFabric::connect: bad port");
  }
  ports[port] = to;
  compiled_.ptr.reset();
}

std::size_t PolkaFabric::index_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("PolkaFabric: unknown node " + name);
  }
  return it->second;
}

RouteId PolkaFabric::route_for_path(
    const std::vector<std::size_t>& node_path,
    std::optional<unsigned> egress_port) const {
  if (node_path.empty()) {
    throw std::invalid_argument("route_for_path: empty path");
  }
  std::vector<Hop> hops;
  hops.reserve(node_path.size());
  for (std::size_t i = 0; i + 1 < node_path.size(); ++i) {
    const auto port = port_between(node_path[i], node_path[i + 1]);
    if (!port) {
      throw std::invalid_argument("route_for_path: consecutive nodes " +
                                  nodes_.at(node_path[i]).name + " -> " +
                                  nodes_.at(node_path[i + 1]).name +
                                  " are not wired");
    }
    hops.push_back(Hop{nodes_.at(node_path[i]), *port});
  }
  if (egress_port) {
    hops.push_back(Hop{nodes_.at(node_path.back()), *egress_port});
  }
  if (hops.empty()) {
    throw std::invalid_argument(
        "route_for_path: path needs >= 2 nodes or an egress port");
  }
  return compute_route_id(hops);
}

unsigned PolkaFabric::compute_port(const RouteId& route,
                                   std::size_t node) const {
  switch (engine_) {
    case ModEngine::kBitSerial:
      return polynomial_port(bit_engines_.at(node).remainder(route.value));
    case ModEngine::kTable:
      return polynomial_port(table_engines_.at(node).remainder(route.value));
    case ModEngine::kDirect:
      return output_port(route, nodes_.at(node));
  }
  throw std::logic_error("PolkaFabric: unknown engine");
}

PolkaFabric::Trace PolkaFabric::forward(const RouteId& route,
                                        std::size_t first,
                                        std::size_t max_hops) const {
  if (first >= nodes_.size()) {
    throw std::out_of_range("PolkaFabric::forward: bad start node");
  }
  Trace trace;
  std::size_t current = first;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const unsigned port = compute_port(route, current);
    ++trace.mod_operations;
    trace.nodes.push_back(current);
    trace.ports.push_back(port);
    const auto& ports = wiring_.at(current);
    if (port >= ports.size() || ports[port] == kUnwired) return trace;  // egress
    current = ports[port];
  }
  trace.ttl_expired = true;
  return trace;
}

SegmentedRoute PolkaFabric::segmented_route_for_path(
    const std::vector<std::size_t>& node_path, unsigned egress_port) const {
  if (node_path.empty()) {
    throw std::invalid_argument("segmented_route_for_path: empty path");
  }
  SegmentedRoute out;
  gf2::CrtAccumulator acc;
  int seg_degree = 0;  // 0 <=> the current segment holds no congruence
  const auto cut_at = [&](std::size_t node) {
    // A closed segment always packs: a multi-congruence segment has
    // modulus degree <= 64, and a lone congruence's solution is its
    // reduced residue (the port bits).
    out.labels.push_back(pack_label_checked(RouteId{acc.solution()}));
    out.waypoints.push_back(static_cast<std::uint32_t>(node));
    acc = {};
    seg_degree = 0;
  };
  for (std::size_t i = 0; i + 1 < node_path.size(); ++i) {
    const auto port = port_between(node_path[i], node_path[i + 1]);
    if (!port) {
      throw std::invalid_argument(
          "segmented_route_for_path: consecutive nodes " +
          nodes_.at(node_path[i]).name + " -> " +
          nodes_.at(node_path[i + 1]).name + " are not wired");
    }
    const gf2::Poly& id = nodes_.at(node_path[i]).poly;
    const int d = id.degree();
    if (seg_degree > 0 && seg_degree + d > 64) cut_at(node_path[i]);
    if (d <= 63) {
      acc.add(*port, id.to_uint64());
    } else {
      acc.add(gf2::Congruence{port_polynomial(*port), id});
    }
    seg_degree += d;
  }
  const gf2::Poly& dst = nodes_.at(node_path.back()).poly;
  const int dd = dst.degree();
  if (port_polynomial(egress_port).degree() >= dd) {
    throw std::domain_error(
        "segmented_route_for_path: egress port does not fit the last "
        "node's degree");
  }
  if (seg_degree > 0 && seg_degree + dd > 64) cut_at(node_path.back());
  if (seg_degree == 0) {
    // The destination starts a fresh segment: its label only has to
    // satisfy label mod nodeID == egress port, and the port bits do.
    out.labels.push_back(RouteLabel{egress_port});
  } else {
    out.labels.push_back(pack_label_checked(RouteId{
        dd <= 63 ? acc.solution_with(egress_port, dst.to_uint64())
                 : acc.solution_with(gf2::Congruence{
                       port_polynomial(egress_port), dst})}));
  }
  return out;
}

std::optional<unsigned> PolkaFabric::port_between(std::size_t from,
                                                  std::size_t to) const {
  const auto& ports = wiring_.at(from);
  for (unsigned p = 0; p < ports.size(); ++p) {
    if (ports[p] == to) return p;
  }
  return std::nullopt;
}

std::optional<std::size_t> PolkaFabric::neighbour(std::size_t node,
                                                  unsigned port) const {
  const auto& ports = wiring_.at(node);
  if (port >= ports.size() || ports[port] == kUnwired) return std::nullopt;
  return ports[port];
}

const CompiledFabric& PolkaFabric::compiled() const {
  if (!compiled_.ptr) {
    compiled_.ptr = std::make_shared<const CompiledFabric>(*this);
  }
  return *compiled_.ptr;
}

std::size_t PolkaFabric::forward_batch(std::span<const RouteId> routes,
                                       std::size_t first,
                                       std::span<PacketResult> results,
                                       std::size_t max_hops) const {
  if (routes.size() != results.size()) {
    throw std::invalid_argument(
        "PolkaFabric::forward_batch: span length mismatch");
  }
  const CompiledFabric& fast = compiled();
  std::size_t mods = 0;
  // Pack-and-stream in fixed-size chunks so the loop owns no heap
  // memory regardless of batch size.
  constexpr std::size_t kChunk = 256;
  std::array<RouteLabel, kChunk> labels;
  std::array<PacketResult, kChunk> chunk_results;
  std::size_t done = 0;
  while (done < routes.size()) {
    const std::size_t n = std::min(kChunk, routes.size() - done);
    std::size_t packed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto label = pack_label(routes[done + i]);
      if (label) {
        labels[packed++] = *label;
      } else {
        // Oversized routeID: polynomial slow path, same result shape.
        const Trace trace = forward(routes[done + i], first, max_hops);
        PacketResult& r = results[done + i];
        r = PacketResult{};
        if (!trace.nodes.empty()) {
          r.egress_node = static_cast<std::uint32_t>(trace.nodes.back());
          r.egress_port = trace.ports.back();
          r.hops = static_cast<std::uint32_t>(trace.nodes.size());
        }
        mods += trace.mod_operations;
      }
    }
    if (packed == n) {
      // Common case: the whole chunk fits the fast path; write results
      // straight through.
      mods += fast.forward_batch(
          std::span<const RouteLabel>(labels.data(), n),
          first, results.subspan(done, n), max_hops);
    } else if (packed > 0) {
      mods += fast.forward_batch(
          std::span<const RouteLabel>(labels.data(), packed), first,
          std::span<PacketResult>(chunk_results.data(), packed), max_hops);
      std::size_t next_fast = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (pack_label(routes[done + i])) {
          results[done + i] = chunk_results[next_fast++];
        }
      }
    }
    done += n;
  }
  return mods;
}

}  // namespace hp::polka
