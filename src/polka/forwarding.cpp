#include "polka/forwarding.hpp"

#include <stdexcept>

namespace hp::polka {

PolkaFabric::PolkaFabric(ModEngine engine) : engine_(engine) {}

std::size_t PolkaFabric::add_node(const std::string& name,
                                  unsigned port_count) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("PolkaFabric: duplicate node name " + name);
  }
  const std::size_t idx = nodes_.size();
  NodeId id = allocator_.allocate(name, port_count);
  bit_engines_.emplace_back(id.poly);
  table_engines_.emplace_back(id.poly);
  nodes_.push_back(std::move(id));
  wiring_.emplace_back(port_count, kUnwired);
  by_name_.emplace(name, idx);
  return idx;
}

void PolkaFabric::connect(std::size_t from, unsigned port, std::size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("PolkaFabric::connect: bad node index");
  }
  auto& ports = wiring_.at(from);
  if (port >= ports.size()) {
    throw std::out_of_range("PolkaFabric::connect: bad port");
  }
  ports[port] = to;
}

std::size_t PolkaFabric::index_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("PolkaFabric: unknown node " + name);
  }
  return it->second;
}

RouteId PolkaFabric::route_for_path(
    const std::vector<std::size_t>& node_path,
    std::optional<unsigned> egress_port) const {
  if (node_path.empty()) {
    throw std::invalid_argument("route_for_path: empty path");
  }
  std::vector<Hop> hops;
  hops.reserve(node_path.size());
  for (std::size_t i = 0; i + 1 < node_path.size(); ++i) {
    const auto port = port_between(node_path[i], node_path[i + 1]);
    if (!port) {
      throw std::invalid_argument("route_for_path: consecutive nodes " +
                                  nodes_.at(node_path[i]).name + " -> " +
                                  nodes_.at(node_path[i + 1]).name +
                                  " are not wired");
    }
    hops.push_back(Hop{nodes_.at(node_path[i]), *port});
  }
  if (egress_port) {
    hops.push_back(Hop{nodes_.at(node_path.back()), *egress_port});
  }
  if (hops.empty()) {
    throw std::invalid_argument(
        "route_for_path: path needs >= 2 nodes or an egress port");
  }
  return compute_route_id(hops);
}

unsigned PolkaFabric::compute_port(const RouteId& route,
                                   std::size_t node) const {
  switch (engine_) {
    case ModEngine::kBitSerial:
      return polynomial_port(bit_engines_.at(node).remainder(route.value));
    case ModEngine::kTable:
      return polynomial_port(table_engines_.at(node).remainder(route.value));
    case ModEngine::kDirect:
      return output_port(route, nodes_.at(node));
  }
  throw std::logic_error("PolkaFabric: unknown engine");
}

PolkaFabric::Trace PolkaFabric::forward(const RouteId& route,
                                        std::size_t first,
                                        std::size_t max_hops) const {
  if (first >= nodes_.size()) {
    throw std::out_of_range("PolkaFabric::forward: bad start node");
  }
  Trace trace;
  std::size_t current = first;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const unsigned port = compute_port(route, current);
    ++trace.mod_operations;
    trace.nodes.push_back(current);
    trace.ports.push_back(port);
    const auto& ports = wiring_.at(current);
    if (port >= ports.size() || ports[port] == kUnwired) break;  // egress
    current = ports[port];
  }
  return trace;
}

std::optional<unsigned> PolkaFabric::port_between(std::size_t from,
                                                  std::size_t to) const {
  const auto& ports = wiring_.at(from);
  for (unsigned p = 0; p < ports.size(); ++p) {
    if (ports[p] == to) return p;
  }
  return std::nullopt;
}

}  // namespace hp::polka
