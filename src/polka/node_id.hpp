#pragma once
// Node identifier allocation for PolKA core nodes.
//
// Each core node's nodeID is a GF(2) polynomial; the output port for a
// packet is (routeID mod nodeID), so a node with P ports needs a nodeID
// of degree d with 2^d >= P so every port index 0..P-1 is expressible as
// a remainder.  CRT additionally requires the nodeIDs to be pairwise
// coprime; distinct *irreducible* polynomials satisfy that for free,
// which is the allocation policy used here (and in the PolKA paper).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gf2/poly.hpp"

namespace hp::polka {

/// Identifier of a core node inside a PolKA domain.
struct NodeId {
  std::string name;     ///< Human-readable router name (e.g. "SAO").
  gf2::Poly poly;       ///< The node's polynomial identifier.
  unsigned port_count;  ///< Number of output ports the node exposes.
};

/// Allocates pairwise-coprime node identifiers.
class NodeIdAllocator {
 public:
  /// Assign an irreducible polynomial to a node with `port_count` output
  /// ports.  The chosen degree d satisfies 2^d >= port_count (and is at
  /// least `min_degree`); each call returns a distinct polynomial.
  NodeId allocate(std::string name, unsigned port_count,
                  unsigned min_degree = 2);

  /// All identifiers allocated so far, in allocation order.
  [[nodiscard]] const std::vector<NodeId>& allocated() const noexcept {
    return nodes_;
  }

 private:
  /// Candidates of one degree are consumed strictly front to back, so a
  /// cursor replaces the old linear membership scan and the per-call
  /// re-enumeration -- allocation stays O(1) amortized, which matters
  /// when the scenario engine builds fabrics of hundreds of nodes.
  struct DegreePool {
    std::vector<gf2::Poly> candidates;
    std::size_t next = 0;
  };
  DegreePool& pool(unsigned degree);

  std::vector<NodeId> nodes_;
  std::map<unsigned, DegreePool> pools_;
};

/// Degree needed so that all port indices 0..port_count-1 are valid
/// remainders (smallest d with 2^d >= port_count, minimum 1).
[[nodiscard]] unsigned min_degree_for_ports(unsigned port_count);

}  // namespace hp::polka
