#pragma once
// Allocation-free batched fast path over a compiled PolKA fabric.
//
// PolkaFabric is the flexible control-plane object: nodes carry
// gf2::Poly identifiers and remainders run through polynomial engines
// that allocate per hop.  This header is the data plane:
//
//  * LabelFoldEngine - per-node precomputed reduction constants.  The
//    remainder of a 64-bit label modulo the nodeID is rebuilt from the
//    label's eight bytes with one table lookup each ("slice-by-8", a
//    Barrett-style fold generalizing TableCrc): since reduction is
//    linear over GF(2),  L mod g = XOR_k (byte_k(L) * t^(8k) mod g),
//    and each term is a precomputed constant.  Eight independent loads
//    and XORs per mod, no state recurrence, no allocation, any
//    generator degree up to 32.
//
//  * CompiledFabric - an immutable view of a PolkaFabric with the fold
//    tables and port wiring flattened into contiguous arrays, plus
//    batch forwarding entry points whose inner loops touch only those
//    arrays and caller-provided spans.

#include <cstdint>
#include <span>
#include <vector>

#include "gf2/poly.hpp"
#include "polka/label.hpp"

namespace hp::polka {

class PolkaFabric;

/// Number of 64-bit constants in one node's fold table (8 byte lanes x
/// 256 byte values).
inline constexpr std::size_t kFoldTableSize = 8 * 256;

/// Fill `out` (kFoldTableSize entries) with the reduction constants of
/// `generator`: out[256*k + b] = (b * t^(8k)) mod generator.  The
/// generator degree must be in [1, 32] (throws std::invalid_argument) so
/// every remainder -- and therefore every port index -- fits 32 bits.
void build_fold_table(const gf2::Poly& generator, std::uint64_t* out);

/// Remainder of a packed label given a node's fold table.
[[nodiscard]] inline std::uint64_t fold_remainder(
    const std::uint64_t* table, std::uint64_t label) noexcept {
  std::uint64_t r = table[label & 0xFF];
  r ^= table[256 * 1 + ((label >> 8) & 0xFF)];
  r ^= table[256 * 2 + ((label >> 16) & 0xFF)];
  r ^= table[256 * 3 + ((label >> 24) & 0xFF)];
  r ^= table[256 * 4 + ((label >> 32) & 0xFF)];
  r ^= table[256 * 5 + ((label >> 40) & 0xFF)];
  r ^= table[256 * 6 + ((label >> 48) & 0xFF)];
  r ^= table[256 * 7 + ((label >> 56) & 0xFF)];
  return r;
}

/// One node's reduction constants as a standalone engine (the uint64
/// counterpart of BitSerialCrc / TableCrc, asserted equal by tests).
class LabelFoldEngine {
 public:
  explicit LabelFoldEngine(const gf2::Poly& generator);

  /// label mod generator, as packed coefficient bits.
  [[nodiscard]] std::uint64_t remainder(std::uint64_t label) const noexcept {
    return fold_remainder(table_.data(), label);
  }

  [[nodiscard]] unsigned degree() const noexcept { return degree_; }

 private:
  std::vector<std::uint64_t> table_;  // kFoldTableSize entries
  unsigned degree_ = 0;
};

/// Immutable flattened view of a PolkaFabric for batch forwarding.
class CompiledFabric {
 public:
  /// Port value marking "no neighbour" in the flattened wiring.
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  /// Compile the fabric's current nodes and wiring.  Throws
  /// std::invalid_argument if any nodeID degree exceeds 32.
  explicit CompiledFabric(const PolkaFabric& fabric);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return meta_.size();
  }

  /// One data-plane mod: the output port of `label` at `node`.
  [[nodiscard]] std::uint32_t port_of(RouteLabel label,
                                      std::size_t node) const noexcept {
    return static_cast<std::uint32_t>(
        fold_remainder(fold_.data() + node * kFoldTableSize, label.bits));
  }

  /// Walk one packet from `first` until it egresses (its computed port
  /// is unwired) or `max_hops` is reached (then result.ttl_expired is
  /// set).  Agrees hop-for-hop with PolkaFabric::forward on the same
  /// fabric.
  [[nodiscard]] PacketResult forward_one(RouteLabel label, std::size_t first,
                                         std::size_t max_hops = 64) const;

  /// Walk one packet carrying a multi-segment route: `labels` holds one
  /// label per segment and `waypoints` (labels.size() - 1 entries) the
  /// node at which each next label activates -- arriving at
  /// waypoints[i] swaps labels[i + 1] in before the mod, so the whole
  /// walk stays on the uint64 fold path no matter how long the route
  /// is.  An empty `labels` span returns an immediately ttl-expired
  /// result.  A single-label call is exactly forward_one.
  [[nodiscard]] PacketResult forward_segmented(
      std::span<const RouteLabel> labels,
      std::span<const std::uint32_t> waypoints, std::size_t first,
      std::size_t max_hops = 64) const;

  /// Batch of multi-segment packets over pooled segment arrays:
  /// packet i carries refs[i]'s slice of `labels`/`waypoints` and is
  /// injected at firsts[i].  Spans refs/firsts/results must have equal
  /// length and every ref must stay inside the pools (throws
  /// std::invalid_argument / std::out_of_range).  Returns total mods.
  std::size_t forward_batch_segmented(std::span<const RouteLabel> labels,
                                      std::span<const std::uint32_t> waypoints,
                                      std::span<const SegmentRef> refs,
                                      std::span<const std::uint32_t> firsts,
                                      std::span<PacketResult> results,
                                      std::size_t max_hops = 64) const;

  /// Stream a batch of packets, all injected at `first`; results[i]
  /// receives labels[i]'s outcome.  The spans must have equal length
  /// (throws std::invalid_argument).  No allocation; returns the total
  /// number of mod operations performed.
  std::size_t forward_batch(std::span<const RouteLabel> labels,
                            std::size_t first,
                            std::span<PacketResult> results,
                            std::size_t max_hops = 64) const;

  /// Batch with a per-packet injection node (mixed-ingress traffic,
  /// e.g. replaying a workload across many tunnels).
  std::size_t forward_batch(std::span<const RouteLabel> labels,
                            std::span<const std::uint32_t> firsts,
                            std::span<PacketResult> results,
                            std::size_t max_hops = 64) const;

 private:
  struct NodeMeta {
    std::uint32_t wiring_offset = 0;  ///< into next_
    std::uint32_t port_count = 0;
  };

  std::vector<NodeMeta> meta_;
  std::vector<std::uint64_t> fold_;  // kFoldTableSize entries per node
  std::vector<std::uint32_t> next_;  // flattened wiring_, kNoNode = unwired
};

}  // namespace hp::polka
