#pragma once
// Allocation-free batched fast path over a compiled PolKA fabric.
//
// PolkaFabric is the flexible control-plane object: nodes carry
// gf2::Poly identifiers and remainders run through polynomial engines
// that allocate per hop.  This header is the data plane, built around
// two interchangeable per-hop reduction kernels:
//
//  * FoldKernel::kClmulBarrett - Barrett reduction with two carry-less
//    multiplies (PCLMULQDQ): per node only the 16-byte (generator, mu)
//    pair from gf2/barrett.hpp, so a whole fabric's forwarding state is
//    ~32 B/node and stays cache-resident at thousands of nodes.  Used
//    whenever the CPU supports PCLMUL (runtime CPUID dispatch) unless
//    HP_FORCE_TABLE_FOLD forces the table path.
//
//  * FoldKernel::kTable - the slice-by-8 fold: per-node 8x256 table of
//    precomputed reduction constants (16 KB/node), a remainder is eight
//    loads XORed together.  The portable fallback; its tables are built
//    lazily, only when this kernel is actually selected.
//
// CompiledFabric flattens a PolkaFabric into a hot contiguous array of
// CompiledNode records (fold constants + wiring offsets side by side)
// plus the flattened port wiring, and every batch entry point runs one
// shared interleaved walk kernel that keeps several independent
// packets in flight per iteration, prefetching each packet's next-node
// record to hide the walk's dependent-load latency.

#include <cstdint>
#include <span>
#include <vector>

#include "core/contracts.hpp"
#include "gf2/barrett.hpp"
#include "gf2/poly.hpp"
#include "polka/label.hpp"

namespace hp::polka {

class PolkaFabric;

/// Which per-hop reduction kernel a CompiledFabric runs.
enum class FoldKernel : std::uint8_t {
  kTable,         ///< slice-by-8 table fold (16 KB/node, portable)
  kClmulBarrett,  ///< 2x PCLMUL Barrett fold (16 B/node constants)
};

[[nodiscard]] const char* to_string(FoldKernel kernel) noexcept;

/// True when the PCLMUL Barrett kernel can run on this machine: the
/// binary was built with PCLMUL support and the CPU reports the
/// feature (checked once via CPUID).
[[nodiscard]] bool clmul_fold_supported() noexcept;

/// True when the environment variable HP_FORCE_TABLE_FOLD is set to
/// anything but "0"/"" -- the CI lever that keeps the table fallback
/// covered on PCLMUL machines.  Reads the environment on every call;
/// default_fold_kernel caches its one read.
[[nodiscard]] bool table_fold_forced() noexcept;

/// The kernel a CompiledFabric picks by default: kClmulBarrett when
/// clmul_fold_supported() and not table_fold_forced(), else kTable.
/// Decided once per process.
[[nodiscard]] FoldKernel default_fold_kernel() noexcept;

/// One Barrett fold through the PCLMUL kernel (the hardware twin of
/// gf2::fixed::barrett_mod, exposed for parity tests).  Throws
/// std::runtime_error unless clmul_fold_supported().
[[nodiscard]] std::uint64_t clmul_barrett_remainder(
    const gf2::fixed::Barrett64& constants, std::uint64_t label);

/// Number of 64-bit constants in one node's fold table (8 byte lanes x
/// 256 byte values).
inline constexpr std::size_t kFoldTableSize = 8 * 256;

/// Fill `out` (kFoldTableSize entries) with the reduction constants of
/// `generator`: out[256*k + b] = (b * t^(8k)) mod generator.  The
/// generator degree must be in [1, 32] (throws std::invalid_argument) so
/// every remainder -- and therefore every port index -- fits 32 bits.
void build_fold_table(const gf2::Poly& generator, std::uint64_t* out);

/// Remainder of a packed label given a node's fold table.
[[nodiscard]] inline std::uint64_t fold_remainder(
    const std::uint64_t* table, std::uint64_t label) noexcept {
  std::uint64_t r = table[label & 0xFF];
  r ^= table[256 * 1 + ((label >> 8) & 0xFF)];
  r ^= table[256 * 2 + ((label >> 16) & 0xFF)];
  r ^= table[256 * 3 + ((label >> 24) & 0xFF)];
  r ^= table[256 * 4 + ((label >> 32) & 0xFF)];
  r ^= table[256 * 5 + ((label >> 40) & 0xFF)];
  r ^= table[256 * 6 + ((label >> 48) & 0xFF)];
  r ^= table[256 * 7 + ((label >> 56) & 0xFF)];
  return r;
}

/// One node's reduction constants as a standalone engine (the uint64
/// counterpart of BitSerialCrc / TableCrc, asserted equal by tests).
class LabelFoldEngine {
 public:
  explicit LabelFoldEngine(const gf2::Poly& generator);

  /// label mod generator, as packed coefficient bits.
  [[nodiscard]] std::uint64_t remainder(std::uint64_t label) const noexcept {
    return fold_remainder(table_.data(), label);
  }

  [[nodiscard]] unsigned degree() const noexcept { return degree_; }

 private:
  std::vector<std::uint64_t> table_;  // kFoldTableSize entries
  unsigned degree_ = 0;
};

/// The hot per-node record of a CompiledFabric: the Barrett fold
/// constants and the node's slice of the flattened wiring, padded to 32
/// bytes so records never straddle more than one 64-byte line boundary
/// and one prefetch covers everything a hop needs (bar the wiring
/// entry and, on the table kernel, the fold table).
struct CompiledNode {
  std::uint64_t generator = 0;      ///< nodeID coefficient bits (deg <= 32)
  std::uint64_t mu = 0;             ///< floor(x^64 / generator)
  std::uint32_t wiring_offset = 0;  ///< into CompiledFabric's next_ array
  std::uint32_t port_count = 0;
  std::uint32_t degree = 0;         ///< deg(generator), in [1, 32]
  std::uint32_t reserved_ = 0;
};
// One prefetch must cover a whole record: 32 bytes, never straddling
// more than one line boundary, and memcpy-safe for the flat nodes_
// array.  (HP_ASSERT_HOT_POD also rejects accidental vtables/members.)
HP_ASSERT_HOT_POD(CompiledNode, 32);

namespace detail {
struct BatchSpec;  // fold_kernels.hpp: one validated batch's pointers
}

/// Immutable flattened view of a PolkaFabric for batch forwarding.
class CompiledFabric {
 public:
  /// Port value marking "no neighbour" in the flattened wiring.
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  /// Compile the fabric's current nodes and wiring with the
  /// default_fold_kernel().  Throws std::invalid_argument if any nodeID
  /// degree exceeds 32.
  explicit CompiledFabric(const PolkaFabric& fabric);

  /// Compile with an explicit kernel (benches and parity tests force
  /// both paths this way).  Throws std::invalid_argument when the
  /// kernel cannot run here (kClmulBarrett without PCLMUL).
  CompiledFabric(const PolkaFabric& fabric, FoldKernel kernel);

  [[nodiscard]] FoldKernel kernel() const noexcept { return kernel_; }

  /// Switch kernels in place.  Selecting kTable builds the fold tables
  /// on first use (they are kept across later switches, so toggling is
  /// cheap for benches); selecting kClmulBarrett throws
  /// std::invalid_argument when unsupported.  Not thread-safe: switch
  /// before sharding a replay.
  void set_kernel(FoldKernel kernel);

  /// Bytes of forwarding state the *active* kernel's hot path reads:
  /// the node records and wiring, plus the fold tables only on kTable.
  [[nodiscard]] std::size_t forwarding_state_bytes() const noexcept;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// One data-plane mod: the output port of `label` at `node`.
  /// \param label packed routeID the node folds
  /// \param node compiled node index (caller guarantees < node_count())
  /// \return the port index, i.e. `label mod nodeID` as packed bits
  [[nodiscard]] std::uint32_t port_of(RouteLabel label,
                                      std::size_t node) const noexcept;

  /// Fabric ports of one node (wired neighbour ports plus any unwired
  /// egress ports).  Throws std::out_of_range on a bad node.
  [[nodiscard]] std::uint32_t port_count(std::size_t node) const;

  /// Neighbour reached from `node` through `port` -- the same wiring
  /// lookup the batch walk kernels perform after each fold.  Returns
  /// kNoNode when the port is unwired (the packet egresses there) or
  /// `port >= port_count(node)` (out-of-range remainders egress too).
  /// Throws std::out_of_range on a bad node.  This is the hop-stepping
  /// primitive the event-driven simulator (src/sim) walks with, so the
  /// timed data plane and the pure-throughput replay share one wiring.
  [[nodiscard]] std::uint32_t neighbor(std::size_t node,
                                       std::uint32_t port) const;

  /// Walk one packet from `first` until it egresses (its computed port
  /// is unwired) or `max_hops` is reached (then result.ttl_expired is
  /// set).  Agrees hop-for-hop with PolkaFabric::forward on the same
  /// fabric.
  [[nodiscard]] PacketResult forward_one(RouteLabel label, std::size_t first,
                                         std::size_t max_hops = 64) const;

  /// Walk one packet carrying a multi-segment route: `labels` holds one
  /// label per segment and `waypoints` (labels.size() - 1 entries) the
  /// node at which each next label activates -- arriving at
  /// waypoints[i] swaps labels[i + 1] in before the mod, so the whole
  /// walk stays on the uint64 fold path no matter how long the route
  /// is.  An empty `labels` span returns an immediately ttl-expired
  /// result.  A single-label call is exactly forward_one.
  [[nodiscard]] PacketResult forward_segmented(
      std::span<const RouteLabel> labels,
      std::span<const std::uint32_t> waypoints, std::size_t first,
      std::size_t max_hops = 64) const;

  /// Batch of multi-segment packets over pooled segment arrays:
  /// packet i carries refs[i]'s slice of `labels`/`waypoints` and is
  /// injected at firsts[i].  Spans refs/firsts/results must have equal
  /// length, every ref must stay inside the pools and every first must
  /// name a node (all validated up front; throws std::invalid_argument
  /// / std::out_of_range before any result is written).  Returns total
  /// mods.
  std::size_t forward_batch_segmented(std::span<const RouteLabel> labels,
                                      std::span<const std::uint32_t> waypoints,
                                      std::span<const SegmentRef> refs,
                                      std::span<const std::uint32_t> firsts,
                                      std::span<PacketResult> results,
                                      std::size_t max_hops = 64) const;

  /// Stream a batch of packets, all injected at `first`; results[i]
  /// receives labels[i]'s outcome.  The spans must have equal length
  /// (throws std::invalid_argument).  No allocation; returns the total
  /// number of mod operations performed.
  std::size_t forward_batch(std::span<const RouteLabel> labels,
                            std::size_t first,
                            std::span<PacketResult> results,
                            std::size_t max_hops = 64) const;

  /// Batch with a per-packet injection node (mixed-ingress traffic,
  /// e.g. replaying a workload across many tunnels).  Every first is
  /// validated up front (throws std::out_of_range before any result is
  /// written).
  std::size_t forward_batch(std::span<const RouteLabel> labels,
                            std::span<const std::uint32_t> firsts,
                            std::span<PacketResult> results,
                            std::size_t max_hops = 64) const;

 private:
  /// Dispatch one validated batch to the active kernel's instantiation
  /// of the shared interleaved walk.
  std::size_t run(const detail::BatchSpec& spec, bool segmented) const;

  /// Build the slice-by-8 tables (idempotent; kTable only needs them).
  void ensure_fold_tables();

  FoldKernel kernel_ = FoldKernel::kTable;
  std::vector<CompiledNode> nodes_;
  std::vector<std::uint32_t> next_;  // flattened wiring_, kNoNode = unwired
  std::vector<std::uint64_t> fold_;  // kFoldTableSize per node; lazy
};

}  // namespace hp::polka
