#include "polka/multipath.hpp"

#include <stdexcept>

namespace hp::polka {

gf2::Poly port_set_polynomial(const std::vector<unsigned>& ports) {
  gf2::Poly p;
  for (const unsigned port : ports) p.set_coeff(port, true);
  return p;
}

std::vector<unsigned> polynomial_port_set(const gf2::Poly& p) {
  std::vector<unsigned> ports;
  for (int i = 0; i <= p.degree(); ++i) {
    if (p.coeff(static_cast<unsigned>(i))) {
      ports.push_back(static_cast<unsigned>(i));
    }
  }
  return ports;
}

unsigned min_degree_for_port_bitmap(unsigned port_count) {
  // Bitmap needs one coefficient per port, strictly below the modulus
  // degree: deg(nodeID) >= port_count.
  return port_count;
}

RouteId compute_multipath_route_id(const std::vector<MultiHop>& tree) {
  if (tree.empty()) {
    throw std::invalid_argument("compute_multipath_route_id: empty tree");
  }
  std::vector<gf2::Congruence> system;
  system.reserve(tree.size());
  for (const MultiHop& hop : tree) {
    if (hop.ports.empty()) {
      throw std::invalid_argument(
          "compute_multipath_route_id: hop with no output ports at " +
          hop.node.name);
    }
    const gf2::Poly bitmap = port_set_polynomial(hop.ports);
    if (bitmap.degree() >= hop.node.poly.degree()) {
      throw std::domain_error(
          "compute_multipath_route_id: port bitmap does not fit nodeID "
          "degree at " +
          hop.node.name);
    }
    system.push_back(gf2::Congruence{bitmap, hop.node.poly});
  }
  return RouteId{gf2::crt(system)};
}

std::vector<unsigned> output_port_set(const RouteId& route,
                                      const NodeId& node) {
  return polynomial_port_set(route.value % node.poly);
}

}  // namespace hp::polka
