// PCLMUL instantiation of the shared interleaved batch-walk kernel.
//
// This translation unit is compiled with -mpclmul (CMake sets the flag
// per-source when the compiler accepts it) so the Barrett fold's
// carry-less-multiply intrinsics inline into run_batch's loop; the
// entry points additionally carry __attribute__((target("pclmul"))) so
// the ISA contract is visible at the definitions themselves.  Nothing
// here executes unless clmul_runtime_supported() -- CompiledFabric
// dispatches at runtime and non-PCLMUL builds get the stubs below.

#include "polka/fold_kernels.hpp"

#if defined(__PCLMUL__)

#include <emmintrin.h>
#include <wmmintrin.h>

namespace hp::polka::detail {

namespace {

/// label mod generator by Barrett reduction: q = floor((label >> d) *
/// mu / x^(64-d)) recovered from one 64x64 carry-less multiply, then
/// label ^ low64(q * generator).  Bit-identical to
/// gf2::fixed::barrett_mod (see gf2/barrett.hpp for the derivation).
__attribute__((target("pclmul"), always_inline)) inline std::uint64_t
barrett_fold_pclmul(std::uint64_t generator, std::uint64_t mu,
                    std::uint32_t degree, std::uint64_t label) noexcept {
  // Same degree-0 guard as the software twin: treat the struct's
  // default as the unit polynomial instead of shifting by 64.
  if (degree == 0) return 0;
  const __m128i head_mu = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(label >> degree)),
      _mm_cvtsi64_si128(static_cast<long long>(mu)), 0);
  const std::uint64_t lo =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(head_mu));
  const std::uint64_t hi = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(head_mu, head_mu)));
  const std::uint64_t q = (lo >> (64 - degree)) | (hi << degree);
  const __m128i q_g = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(q)),
      _mm_cvtsi64_si128(static_cast<long long>(generator)), 0);
  return label ^ static_cast<std::uint64_t>(_mm_cvtsi128_si64(q_g));
}

/// Fold functor handed to run_batch: all constants ride in the node
/// record the kernel already prefetches, so there is nothing extra to
/// pull in ahead of a hop.
struct BarrettFold {
  __attribute__((target("pclmul"), always_inline)) inline std::uint64_t
  operator()(const CompiledNode& m, std::uint32_t,
             std::uint64_t label) const noexcept {
    return barrett_fold_pclmul(m.generator, m.mu, m.degree, label);
  }

  void prefetch(std::uint32_t) const noexcept {}
};

}  // namespace

bool clmul_runtime_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("pclmul");
#else
  return false;
#endif
}

__attribute__((target("pclmul"))) std::uint64_t clmul_fold_one(
    std::uint64_t generator, std::uint64_t mu, std::uint32_t degree,
    std::uint64_t label) noexcept {
  return barrett_fold_pclmul(generator, mu, degree, label);
}

__attribute__((target("pclmul"))) std::size_t clmul_batch(
    const FabricView& fabric, const BatchSpec& batch, bool segmented) {
  return segmented ? run_batch<true>(fabric, batch, BarrettFold{})
                   : run_batch<false>(fabric, batch, BarrettFold{});
}

}  // namespace hp::polka::detail

#else  // !defined(__PCLMUL__): portable stubs, unreachable at runtime

namespace hp::polka::detail {

bool clmul_runtime_supported() noexcept { return false; }

std::uint64_t clmul_fold_one(std::uint64_t, std::uint64_t, std::uint32_t,
                             std::uint64_t) noexcept {
  return 0;
}

std::size_t clmul_batch(const FabricView&, const BatchSpec&, bool) {
  return 0;
}

}  // namespace hp::polka::detail

#endif
