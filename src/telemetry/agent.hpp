#pragma once
// Telemetry agents: the Controller "activates agents to collect
// telemetry data from relevant network paths ... focusing on metrics
// like flow rate and latency" (paper Section IV).  A PathAgent samples
// a path's available bandwidth and RTT from the simulator on a fixed
// period and appends to the Telemetry Service store.

#include <string>
#include <vector>

#include "netsim/simulator.hpp"
#include "telemetry/store.hpp"

namespace hp::telemetry {

/// Sampling configuration for one monitored path.
struct PathAgentConfig {
  std::string path_name;        ///< series prefix, e.g. "tunnel1"
  hp::netsim::Path path;        ///< forward path through the topology
  double interval_s = 1.0;      ///< sampling period
};

/// Installs periodic sampling callbacks on the simulator.  Three series
/// per path are produced: "<name>.available_mbps" (bottleneck residual
/// capacity, what a new flow could get), "<name>.rtt_ms", and
/// "<name>.jitter_ms" (absolute RTT delta between consecutive samples,
/// one of the Section III QoS parameters).
class PathAgent {
 public:
  PathAgent(PathAgentConfig config, TimeSeriesStore& store);

  /// Begin sampling at `start_s` on `sim`'s clock.
  void start(hp::netsim::Simulator& sim, double start_s);

  [[nodiscard]] const std::string& name() const noexcept {
    return config_.path_name;
  }
  [[nodiscard]] std::string bandwidth_series() const {
    return config_.path_name + ".available_mbps";
  }
  [[nodiscard]] std::string rtt_series() const {
    return config_.path_name + ".rtt_ms";
  }
  [[nodiscard]] std::string jitter_series() const {
    return config_.path_name + ".jitter_ms";
  }

  /// Available bandwidth of a path right now: the minimum over links of
  /// (capacity - load), clamped at 0.
  [[nodiscard]] static double available_mbps(const hp::netsim::Simulator& sim,
                                             const hp::netsim::Path& path);

 private:
  PathAgentConfig config_;
  TimeSeriesStore* store_;
};

}  // namespace hp::telemetry
