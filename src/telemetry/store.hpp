#pragma once
// Telemetry Service: an in-memory time-series store.
//
// The paper's framework stores per-path flow-rate and latency samples in
// a time-series database that the Controller later queries as
// "a dataset of time-indexed values" for the Optimizer (Fig 4).  This
// store keeps one append-only series per string key with range / last-k
// queries and an optional retention cap.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hp::telemetry {

/// One observation.
struct Point {
  double t_s = 0.0;
  double value = 0.0;
};

/// Append-only named time series with retention.
class TimeSeriesStore {
 public:
  /// `max_points_per_series` == 0 means unbounded.
  explicit TimeSeriesStore(std::size_t max_points_per_series = 0)
      : max_points_(max_points_per_series) {}

  /// Append a sample; timestamps within one series must be
  /// non-decreasing (throws std::invalid_argument otherwise).
  void append(const std::string& series, Point p);

  [[nodiscard]] bool has_series(const std::string& series) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t size(const std::string& series) const;

  /// All points with t in [t0, t1]; unknown series yields empty.
  [[nodiscard]] std::vector<Point> range(const std::string& series, double t0,
                                         double t1) const;

  /// Last k points (fewer if the series is shorter).
  [[nodiscard]] std::vector<Point> last(const std::string& series,
                                        std::size_t k) const;

  /// Values (without timestamps) of the last k points, oldest first --
  /// the exact shape the regression windowing consumes.
  [[nodiscard]] std::vector<double> last_values(const std::string& series,
                                                std::size_t k) const;

  /// Latest point of a series, if any.
  [[nodiscard]] std::optional<Point> latest(const std::string& series) const;

  /// Drop all data of one series.
  void clear(const std::string& series);

 private:
  std::size_t max_points_;
  std::map<std::string, std::vector<Point>> series_;
};

}  // namespace hp::telemetry
