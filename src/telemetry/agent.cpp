#include "telemetry/agent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace hp::telemetry {

PathAgent::PathAgent(PathAgentConfig config, TimeSeriesStore& store)
    : config_(std::move(config)), store_(&store) {}

double PathAgent::available_mbps(const hp::netsim::Simulator& sim,
                                 const hp::netsim::Path& path) {
  double avail = std::numeric_limits<double>::infinity();
  for (const hp::netsim::LinkIndex l : path) {
    const double cap = sim.topology().link(l).capacity_mbps;
    const double residual = cap * (1.0 - sim.link_utilization(l));
    avail = std::min(avail, std::max(residual, 0.0));
  }
  return avail;
}

void PathAgent::start(hp::netsim::Simulator& sim, double start_s) {
  auto fire = std::make_shared<
      std::function<void(hp::netsim::Simulator&, double)>>();
  // Copy what the callback needs by value: the agent object may go out
  // of scope while the simulation keeps running.
  TimeSeriesStore* store = store_;
  const hp::netsim::Path path = config_.path;
  const std::string bw_series = bandwidth_series();
  const std::string rtt_series_name = rtt_series();
  const std::string jitter_series_name = jitter_series();
  const double interval = config_.interval_s;
  // Previous RTT for the jitter delta; shared by the recurring closure.
  auto prev_rtt = std::make_shared<double>(-1.0);
  // Weak self-capture: ownership of the recurring closure lives in the
  // scheduled events only, so the chain is freed with the simulator.
  std::weak_ptr<std::function<void(hp::netsim::Simulator&, double)>> weak =
      fire;
  *fire = [=](hp::netsim::Simulator& s, double t) {
    const double rtt = s.path_rtt_ms(path);
    store->append(bw_series, Point{t, available_mbps(s, path)});
    store->append(rtt_series_name, Point{t, rtt});
    if (*prev_rtt >= 0.0) {
      store->append(jitter_series_name, Point{t, std::abs(rtt - *prev_rtt)});
    }
    *prev_rtt = rtt;
    const double next = t + interval;
    if (auto self = weak.lock()) {
      s.schedule_callback(next,
                          [self, next](hp::netsim::Simulator& s2) {
                            (*self)(s2, next);
                          });
    }
  };
  sim.schedule_callback(start_s, [fire, start_s](hp::netsim::Simulator& s) {
    (*fire)(s, start_s);
  });
}

}  // namespace hp::telemetry
