#include "telemetry/store.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::telemetry {

void TimeSeriesStore::append(const std::string& series, Point p) {
  auto& data = series_[series];
  if (!data.empty() && p.t_s < data.back().t_s) {
    throw std::invalid_argument("TimeSeriesStore: non-monotonic timestamp in " +
                                series);
  }
  data.push_back(p);
  if (max_points_ != 0 && data.size() > max_points_) {
    data.erase(data.begin(),
               data.begin() + static_cast<std::ptrdiff_t>(data.size() -
                                                          max_points_));
  }
}

bool TimeSeriesStore::has_series(const std::string& series) const {
  return series_.contains(series);
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

std::size_t TimeSeriesStore::size(const std::string& series) const {
  const auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.size();
}

std::vector<Point> TimeSeriesStore::range(const std::string& series, double t0,
                                          double t1) const {
  const auto it = series_.find(series);
  if (it == series_.end()) return {};
  const auto& data = it->second;
  const auto lo = std::lower_bound(
      data.begin(), data.end(), t0,
      [](const Point& p, double t) { return p.t_s < t; });
  const auto hi = std::upper_bound(
      data.begin(), data.end(), t1,
      [](double t, const Point& p) { return t < p.t_s; });
  if (hi < lo) return {};  // inverted window (t1 < t0)
  return {lo, hi};
}

std::vector<Point> TimeSeriesStore::last(const std::string& series,
                                         std::size_t k) const {
  const auto it = series_.find(series);
  if (it == series_.end()) return {};
  const auto& data = it->second;
  const std::size_t n = std::min(k, data.size());
  return {data.end() - static_cast<std::ptrdiff_t>(n), data.end()};
}

std::vector<double> TimeSeriesStore::last_values(const std::string& series,
                                                 std::size_t k) const {
  const auto points = last(series, k);
  std::vector<double> values(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) values[i] = points[i].value;
  return values;
}

std::optional<Point> TimeSeriesStore::latest(const std::string& series) const {
  const auto it = series_.find(series);
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void TimeSeriesStore::clear(const std::string& series) {
  series_.erase(series);
}

}  // namespace hp::telemetry
