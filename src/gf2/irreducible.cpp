#include "gf2/irreducible.hpp"

#include <stdexcept>

namespace hp::gf2 {

namespace {

std::vector<unsigned> prime_factors(unsigned n) {
  std::vector<unsigned> out;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

}  // namespace

bool is_irreducible(const Poly& f) {
  const int d = f.degree();
  if (d < 1) return false;
  if (d == 1) return true;  // t and t+1 are irreducible.
  const Poly t = Poly::monomial(1);
  // t^(2^d) mod f must come back to t.
  if (frobenius_pow(t, static_cast<unsigned>(d), f) != t % f) return false;
  for (unsigned p : prime_factors(static_cast<unsigned>(d))) {
    const unsigned k = static_cast<unsigned>(d) / p;
    const Poly h = frobenius_pow(t, k, f) + t % f;  // t^(2^k) - t mod f
    if (!gcd(h, f).is_one()) return false;
  }
  return true;
}

std::vector<Poly> irreducible_of_degree(unsigned degree) {
  if (degree == 0) return {};
  if (degree > 24) {
    throw std::invalid_argument(
        "irreducible_of_degree: exhaustive scan capped at degree 24");
  }
  std::vector<Poly> out;
  const std::uint64_t lead = std::uint64_t{1} << degree;
  for (std::uint64_t low = 0; low < lead; ++low) {
    // Cheap sieves: an irreducible polynomial of degree >= 1 must have a
    // nonzero constant term (else divisible by t) and an odd number of
    // terms (else t+1 divides it), except for degree 1 itself.
    const Poly f(lead | low);
    if (degree > 1) {
      if ((low & 1) == 0) continue;
      if (f.popcount() % 2 == 0) continue;
    }
    if (is_irreducible(f)) out.push_back(f);
  }
  return out;
}

std::vector<Poly> first_irreducible(std::size_t count, unsigned min_degree) {
  std::vector<Poly> out;
  out.reserve(count);
  for (unsigned d = min_degree == 0 ? 1 : min_degree; out.size() < count; ++d) {
    for (const Poly& f : irreducible_of_degree(d)) {
      out.push_back(f);
      if (out.size() == count) break;
    }
  }
  return out;
}

std::size_t count_irreducible(unsigned degree) {
  if (degree == 0) return 0;
  // (1/n) * sum_{d | n} mu(n/d) 2^d
  auto moebius = [](unsigned n) -> int {
    int mu = 1;
    for (unsigned p = 2; p * p <= n; ++p) {
      if (n % p == 0) {
        n /= p;
        if (n % p == 0) return 0;
        mu = -mu;
      }
    }
    if (n > 1) mu = -mu;
    return mu;
  };
  long long sum = 0;
  for (unsigned d = 1; d <= degree; ++d) {
    if (degree % d == 0) {
      sum += static_cast<long long>(moebius(degree / d)) * (1LL << d);
    }
  }
  return static_cast<std::size_t>(sum / degree);
}

}  // namespace hp::gf2
