#pragma once
// GF(2) polynomial arithmetic.
//
// PolKA encodes a whole network path into a single route identifier using
// the Chinese Remainder Theorem over the ring GF(2)[t].  Every core node
// owns a polynomial nodeID; the packet's routeID is the unique polynomial
// whose remainder modulo each nodeID equals that node's output-port
// polynomial.  This header provides the ring: addition (XOR), carry-less
// multiplication, Euclidean division, (extended) GCD and modular inverses.
//
// Representation: coefficient bit-vector packed into 64-bit words, little
// endian (bit i of the vector is the coefficient of t^i).  The value is
// kept normalized (no trailing zero words), so degree() is O(1) on the
// top word.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hp::gf2 {

/// A polynomial over GF(2) of arbitrary degree.
///
/// Value-semantic and cheap to move.  The zero polynomial has
/// degree() == -1 by convention.
class Poly {
 public:
  /// Zero polynomial.
  Poly() = default;

  /// Polynomial from the low 64 coefficient bits (bit i => t^i).
  /// `Poly(0b111)` is t^2 + t + 1.
  explicit Poly(std::uint64_t bits);

  /// Polynomial with exactly the coefficients listed in `exponents`
  /// set (duplicates cancel, as befits characteristic 2).
  static Poly from_exponents(std::initializer_list<unsigned> exponents);

  /// Parse a binary coefficient string, most-significant coefficient
  /// first: "10011" is t^4 + t + 1.  Throws std::invalid_argument on
  /// anything but '0'/'1' (empty string is the zero polynomial).
  static Poly from_binary_string(std::string_view bits);

  /// The monomial t^k.
  static Poly monomial(unsigned k);

  /// Polynomial from little-endian 64-bit coefficient words (word i
  /// covers t^(64i) .. t^(64i+63)); trailing zero words are allowed.
  /// One allocation -- the cheap bridge from the fixed-width kernels.
  static Poly from_words(std::span<const std::uint64_t> words);

  /// Degree, or -1 for the zero polynomial.
  [[nodiscard]] int degree() const noexcept;

  [[nodiscard]] bool is_zero() const noexcept { return words_.empty(); }
  [[nodiscard]] bool is_one() const noexcept {
    return words_.size() == 1 && words_[0] == 1;
  }

  /// Coefficient of t^i (0 or 1); i past the degree reads as 0.
  [[nodiscard]] bool coeff(unsigned i) const noexcept;

  /// Set/clear the coefficient of t^i.
  void set_coeff(unsigned i, bool value);

  /// Number of nonzero coefficients.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Value of the low 64 coefficient bits.  Throws std::overflow_error
  /// if the degree is 64 or higher (information would be lost).
  [[nodiscard]] std::uint64_t to_uint64() const;

  /// Human-readable algebraic form, e.g. "t^3 + t + 1"; "0" for zero.
  [[nodiscard]] std::string to_string() const;

  /// Binary coefficient string, most-significant first ("1011").
  [[nodiscard]] std::string to_binary_string() const;

  // --- ring operations ------------------------------------------------

  /// Addition == subtraction == XOR in characteristic 2.
  friend Poly operator+(const Poly& a, const Poly& b);
  Poly& operator+=(const Poly& other);

  /// Carry-less multiplication.
  friend Poly operator*(const Poly& a, const Poly& b);
  Poly& operator*=(const Poly& other);

  /// Multiply by t^k (left shift of the coefficient vector).
  [[nodiscard]] Poly shifted_left(unsigned k) const;

  friend Poly operator/(const Poly& a, const Poly& b);
  friend Poly operator%(const Poly& a, const Poly& b);

  /// The square of this polynomial (bit-interleave; cheaper than *).
  [[nodiscard]] Poly squared() const;

  friend bool operator==(const Poly& a, const Poly& b) noexcept = default;

  /// Lexicographic-by-value ordering (interprets the coefficient vector
  /// as a big integer); gives a total order usable for std::map / sort.
  friend std::strong_ordering operator<=>(const Poly& a,
                                          const Poly& b) noexcept;

  friend std::ostream& operator<<(std::ostream& os, const Poly& p);

  /// FNV-style hash of the coefficient words, for unordered containers.
  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  void normalize() noexcept;

  std::vector<std::uint64_t> words_;
};

/// Quotient and remainder of Euclidean division.
struct DivMod {
  Poly quotient;
  Poly remainder;
};

/// Euclidean division; divisor must be nonzero (throws
/// std::domain_error otherwise).  deg(remainder) < deg(b).
[[nodiscard]] DivMod divmod(const Poly& a, const Poly& b);

/// Greatest common divisor (monic by construction in GF(2)).
[[nodiscard]] Poly gcd(Poly a, Poly b);

/// Extended GCD: returns {g, u, v} with u*a + v*b == g.
struct Egcd {
  Poly g;
  Poly u;
  Poly v;
};
[[nodiscard]] Egcd extended_gcd(const Poly& a, const Poly& b);

/// Inverse of `a` modulo `m`; throws std::domain_error when
/// gcd(a, m) != 1 (no inverse exists).
[[nodiscard]] Poly inverse_mod(const Poly& a, const Poly& m);

/// Inverse of `a` modulo `m` when it exists, nullopt when gcd(a, m) != 1.
/// The non-throwing coprimality probe for hot paths (CRT folds one of
/// these per hop); `m` must still be nonzero (throws std::domain_error).
[[nodiscard]] std::optional<Poly> try_inverse_mod(const Poly& a,
                                                  const Poly& m);

/// a * b mod m without forming the full product's intermediate growth
/// beyond one reduction (convenience; semantically (a*b) % m).
[[nodiscard]] Poly mulmod(const Poly& a, const Poly& b, const Poly& m);

/// a^(2^k) mod m via k repeated squarings (Frobenius iterate).
[[nodiscard]] Poly frobenius_pow(const Poly& a, unsigned k, const Poly& m);

}  // namespace hp::gf2

template <>
struct std::hash<hp::gf2::Poly> {
  std::size_t operator()(const hp::gf2::Poly& p) const noexcept {
    return p.hash();
  }
};
