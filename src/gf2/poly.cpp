#include "gf2/poly.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::gf2 {

namespace {
constexpr unsigned kWordBits = 64;
}  // namespace

Poly::Poly(std::uint64_t bits) {
  if (bits != 0) words_.push_back(bits);
}

Poly Poly::from_exponents(std::initializer_list<unsigned> exponents) {
  Poly p;
  for (unsigned e : exponents) p.set_coeff(e, !p.coeff(e));
  return p;
}

Poly Poly::from_binary_string(std::string_view bits) {
  Poly p;
  const std::size_t n = bits.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = bits[i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("Poly::from_binary_string: bad digit");
    }
    if (c == '1') p.set_coeff(static_cast<unsigned>(n - 1 - i), true);
  }
  return p;
}

Poly Poly::monomial(unsigned k) {
  Poly p;
  p.set_coeff(k, true);
  return p;
}

Poly Poly::from_words(std::span<const std::uint64_t> words) {
  Poly p;
  p.words_.assign(words.begin(), words.end());
  p.normalize();
  return p;
}

int Poly::degree() const noexcept {
  if (words_.empty()) return -1;
  const std::uint64_t top = words_.back();
  const int top_bit = kWordBits - 1 - std::countl_zero(top);
  return static_cast<int>((words_.size() - 1) * kWordBits) + top_bit;
}

bool Poly::coeff(unsigned i) const noexcept {
  const std::size_t w = i / kWordBits;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i % kWordBits)) & 1U;
}

void Poly::set_coeff(unsigned i, bool value) {
  const std::size_t w = i / kWordBits;
  if (value) {
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= std::uint64_t{1} << (i % kWordBits);
  } else if (w < words_.size()) {
    words_[w] &= ~(std::uint64_t{1} << (i % kWordBits));
    normalize();
  }
}

std::size_t Poly::popcount() const noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::uint64_t Poly::to_uint64() const {
  if (words_.empty()) return 0;
  if (words_.size() > 1) {
    throw std::overflow_error("Poly::to_uint64: degree >= 64");
  }
  return words_[0];
}

std::string Poly::to_string() const {
  if (is_zero()) return "0";
  std::ostringstream os;
  bool first = true;
  for (int i = degree(); i >= 0; --i) {
    if (!coeff(static_cast<unsigned>(i))) continue;
    if (!first) os << " + ";
    first = false;
    if (i == 0) {
      os << "1";
    } else if (i == 1) {
      os << "t";
    } else {
      os << "t^" << i;
    }
  }
  return os.str();
}

std::string Poly::to_binary_string() const {
  const int d = degree();
  if (d < 0) return "0";
  std::string s;
  s.reserve(static_cast<std::size_t>(d) + 1);
  for (int i = d; i >= 0; --i) {
    s.push_back(coeff(static_cast<unsigned>(i)) ? '1' : '0');
  }
  return s;
}

Poly operator+(const Poly& a, const Poly& b) {
  Poly r = a;
  r += b;
  return r;
}

Poly& Poly::operator+=(const Poly& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  normalize();
  return *this;
}

Poly operator*(const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return Poly{};
  // Schoolbook carry-less multiply: accumulate b shifted to every set
  // bit position of a.  Word-level shifted XOR keeps this O(da*db/64).
  const int da = a.degree();
  const int db = b.degree();
  Poly r;
  r.words_.assign((static_cast<std::size_t>(da + db) / kWordBits) + 1, 0);
  for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
    std::uint64_t bits = a.words_[wi];
    while (bits != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const unsigned shift = static_cast<unsigned>(wi) * kWordBits + bit;
      const unsigned word_shift = shift / kWordBits;
      const unsigned bit_shift = shift % kWordBits;
      for (std::size_t bj = 0; bj < b.words_.size(); ++bj) {
        const std::uint64_t w = b.words_[bj];
        r.words_[bj + word_shift] ^= w << bit_shift;
        if (bit_shift != 0 && bj + word_shift + 1 < r.words_.size()) {
          r.words_[bj + word_shift + 1] ^= w >> (kWordBits - bit_shift);
        }
      }
    }
  }
  r.normalize();
  return r;
}

Poly& Poly::operator*=(const Poly& other) {
  *this = *this * other;
  return *this;
}

Poly Poly::shifted_left(unsigned k) const {
  if (is_zero() || k == 0) {
    Poly r = *this;
    return r;
  }
  const unsigned word_shift = k / kWordBits;
  const unsigned bit_shift = k % kWordBits;
  Poly r;
  r.words_.assign(words_.size() + word_shift + 1, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    r.words_[i + word_shift] ^= words_[i] << bit_shift;
    if (bit_shift != 0) {
      r.words_[i + word_shift + 1] ^= words_[i] >> (kWordBits - bit_shift);
    }
  }
  r.normalize();
  return r;
}

DivMod divmod(const Poly& a, const Poly& b) {
  if (b.is_zero()) throw std::domain_error("Poly::divmod: division by zero");
  DivMod out;
  out.remainder = a;
  const int db = b.degree();
  int dr = out.remainder.degree();
  while (dr >= db) {
    const unsigned shift = static_cast<unsigned>(dr - db);
    out.remainder += b.shifted_left(shift);
    out.quotient.set_coeff(shift, true);
    dr = out.remainder.degree();
  }
  return out;
}

Poly operator/(const Poly& a, const Poly& b) {
  return divmod(a, b).quotient;
}

Poly operator%(const Poly& a, const Poly& b) {
  return divmod(a, b).remainder;
}

Poly Poly::squared() const {
  // Squaring in GF(2)[t] interleaves zero bits between coefficients:
  // (sum c_i t^i)^2 = sum c_i t^(2i), because cross terms appear twice.
  Poly r;
  const int d = degree();
  if (d < 0) return r;
  r.words_.assign((static_cast<std::size_t>(2 * d) / kWordBits) + 1, 0);
  for (int i = 0; i <= d; ++i) {
    if (coeff(static_cast<unsigned>(i))) {
      const unsigned j = static_cast<unsigned>(2 * i);
      r.words_[j / kWordBits] |= std::uint64_t{1} << (j % kWordBits);
    }
  }
  r.normalize();
  return r;
}

std::strong_ordering operator<=>(const Poly& a, const Poly& b) noexcept {
  if (a.words_.size() != b.words_.size()) {
    return a.words_.size() <=> b.words_.size();
  }
  for (std::size_t i = a.words_.size(); i-- > 0;) {
    if (a.words_[i] != b.words_[i]) return a.words_[i] <=> b.words_[i];
  }
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Poly& p) {
  return os << p.to_string();
}

std::size_t Poly::hash() const noexcept {
  std::size_t h = 1469598103934665603ULL;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ULL;
  }
  return h;
}

void Poly::normalize() noexcept {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

Poly gcd(Poly a, Poly b) {
  while (!b.is_zero()) {
    Poly r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Egcd extended_gcd(const Poly& a, const Poly& b) {
  // Iterative extended Euclid maintaining r = u*a + v*b invariants.
  Poly r0 = a, r1 = b;
  Poly u0(1), u1;
  Poly v0, v1(1);
  while (!r1.is_zero()) {
    const auto qr = divmod(r0, r1);
    Poly r2 = qr.remainder;
    Poly u2 = u0 + qr.quotient * u1;
    Poly v2 = v0 + qr.quotient * v1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    u0 = std::move(u1);
    u1 = std::move(u2);
    v0 = std::move(v1);
    v1 = std::move(v2);
  }
  return Egcd{std::move(r0), std::move(u0), std::move(v0)};
}

Poly inverse_mod(const Poly& a, const Poly& m) {
  auto inv = try_inverse_mod(a, m);
  if (!inv) {
    throw std::domain_error("inverse_mod: element not invertible");
  }
  return *std::move(inv);
}

std::optional<Poly> try_inverse_mod(const Poly& a, const Poly& m) {
  Egcd e = extended_gcd(a % m, m);
  if (!e.g.is_one()) return std::nullopt;
  return e.u % m;
}

Poly mulmod(const Poly& a, const Poly& b, const Poly& m) {
  return (a * b) % m;
}

Poly frobenius_pow(const Poly& a, unsigned k, const Poly& m) {
  Poly r = a % m;
  for (unsigned i = 0; i < k; ++i) r = r.squared() % m;
  return r;
}

}  // namespace hp::gf2
