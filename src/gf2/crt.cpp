#include "gf2/crt.hpp"

#include <stdexcept>

namespace hp::gf2 {

Poly crt(std::span<const Congruence> system) {
  if (system.empty()) throw std::domain_error("crt: empty system");
  CrtAccumulator acc;
  for (const Congruence& c : system) acc.add(c);
  return acc.solution();
}

Poly crt(const std::vector<Congruence>& system) {
  return crt(std::span<const Congruence>(system));
}

const Poly& CrtAccumulator::solution() const {
  materialize();
  return solution_;
}

const Poly& CrtAccumulator::modulus() const {
  materialize();
  return modulus_;
}

void CrtAccumulator::materialize() const {
  if (!stale_) return;
  solution_ = Poly(fast_solution_.lo) + Poly(fast_solution_.hi).shifted_left(64);
  modulus_ = Poly(fast_modulus_.lo) + Poly(fast_modulus_.hi).shifted_left(64);
  stale_ = false;
}

void CrtAccumulator::spill() {
  materialize();
  wide_ = true;
}

std::optional<fixed::Poly64> CrtAccumulator::fast_fold_k(
    fixed::Poly64 r, fixed::Poly64 m) const {
  const fixed::Poly64 diff = fixed::mod(r, m) ^ fixed::mod(fast_solution_, m);
  const auto inv = fixed::try_inverse(fixed::mod(fast_modulus_, m), m);
  if (!inv) return std::nullopt;
  return fixed::mulmod(diff, *inv, m);
}

Poly CrtAccumulator::solution_with(const Congruence& c) const {
  const int dm = c.modulus.degree();
  if (dm < 0) throw std::domain_error("crt: zero modulus");
  if (!wide_ && dm <= 63 && fast_degree_ + dm <= 127) {
    const fixed::Poly64 m = c.modulus.to_uint64();
    const fixed::Poly64 r = c.residue.degree() <= 63
                                ? c.residue.to_uint64()
                                : (c.residue % c.modulus).to_uint64();
    return solution_with(r, m);
  }
  CrtAccumulator folded = *this;
  folded.add(c);
  folded.materialize();
  return std::move(folded.solution_);
}

Poly CrtAccumulator::solution_with(std::uint64_t residue_bits,
                                   std::uint64_t modulus_bits) const {
  const int dm = fixed::degree(modulus_bits);
  if (dm < 0) throw std::domain_error("crt: zero modulus");
  if (!wide_ && fast_degree_ + dm <= 127) {
    const auto k = fast_fold_k(residue_bits, modulus_bits);
    if (!k) throw std::domain_error("crt: moduli are not pairwise coprime");
    const fixed::Poly128 sol =
        fast_solution_ ^ fixed::mul(fast_modulus_, *k);
    const std::uint64_t words[2] = {sol.lo, sol.hi};
    return Poly::from_words(words);
  }
  return solution_with(
      Congruence{Poly(residue_bits), Poly(modulus_bits)});
}

void CrtAccumulator::add(std::uint64_t residue_bits,
                         std::uint64_t modulus_bits) {
  const int dm = fixed::degree(modulus_bits);
  if (dm < 0) throw std::domain_error("crt: zero modulus");
  if (!wide_ && fast_degree_ + dm <= 127) {
    // Fixed-width fold: every operand stays in one or two words.  The
    // new solution needs no final reduction -- deg(solution) stays
    // below deg(old modulus) + dm == the new modulus degree.
    const auto k = fast_fold_k(residue_bits, modulus_bits);
    if (!k) {
      throw std::domain_error("crt: moduli are not pairwise coprime");
    }
    fast_solution_ ^= fixed::mul(fast_modulus_, *k);
    fast_modulus_ = fixed::mul(fast_modulus_, modulus_bits);
    fast_degree_ += dm;
    stale_ = true;
    return;
  }
  add(Congruence{Poly(residue_bits), Poly(modulus_bits)});
}

void CrtAccumulator::add(const Congruence& c) {
  // Solve x == solution (mod modulus), x == c.residue (mod c.modulus):
  //   x = solution + modulus * k, where
  //   k == (c.residue - solution) * modulus^{-1}  (mod c.modulus).
  const int dm = c.modulus.degree();
  if (dm < 0) throw std::domain_error("crt: zero modulus");

  if (!wide_ && dm <= 63 && fast_degree_ + dm <= 127) {
    // Still fixed-width capable: delegate to the word form.
    const fixed::Poly64 r = c.residue.degree() <= 63
                                ? c.residue.to_uint64()
                                : (c.residue % c.modulus).to_uint64();
    add(r, c.modulus.to_uint64());
    return;
  }

  if (!wide_) spill();
  const Poly diff = (c.residue + solution_) % c.modulus;
  const auto inv = try_inverse_mod(modulus_, c.modulus);
  if (!inv) {
    throw std::domain_error("crt: moduli are not pairwise coprime");
  }
  const Poly k = (diff * *inv) % c.modulus;
  solution_ = solution_ + modulus_ * k;
  modulus_ = modulus_ * c.modulus;
  solution_ = solution_ % modulus_;
}

}  // namespace hp::gf2
