#include "gf2/crt.hpp"

#include <stdexcept>

namespace hp::gf2 {

Poly crt(std::span<const Congruence> system) {
  if (system.empty()) throw std::domain_error("crt: empty system");
  CrtAccumulator acc;
  for (const Congruence& c : system) acc.add(c);
  return acc.solution();
}

Poly crt(const std::vector<Congruence>& system) {
  return crt(std::span<const Congruence>(system));
}

void CrtAccumulator::add(const Congruence& c) {
  if (c.modulus.is_zero()) throw std::domain_error("crt: zero modulus");
  // Solve x == solution_ (mod modulus_), x == c.residue (mod c.modulus):
  //   x = solution_ + modulus_ * k, where
  //   k == (c.residue - solution_) * modulus_^{-1}  (mod c.modulus).
  const Poly diff = (c.residue + solution_) % c.modulus;
  Poly inv;
  try {
    inv = inverse_mod(modulus_, c.modulus);
  } catch (const std::domain_error&) {
    throw std::domain_error("crt: moduli are not pairwise coprime");
  }
  const Poly k = (diff * inv) % c.modulus;
  solution_ = solution_ + modulus_ * k;
  modulus_ = modulus_ * c.modulus;
  solution_ = solution_ % modulus_;
}

}  // namespace hp::gf2
