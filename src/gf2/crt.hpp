#pragma once
// Chinese Remainder Theorem over GF(2)[t].
//
// This is the heart of PolKA's route encoding: given core nodes with
// pairwise-coprime nodeIDs m_i and desired output-port polynomials r_i,
// the routeID is the unique polynomial R with deg R < deg(prod m_i) and
// R mod m_i == r_i for every hop.

#include <span>
#include <vector>

#include "gf2/poly.hpp"
#include "gf2/poly64.hpp"

namespace hp::gf2 {

/// One congruence R == residue (mod modulus).
struct Congruence {
  Poly residue;
  Poly modulus;
};

/// Solve a CRT system.  Requirements (checked, throws std::domain_error):
/// at least one congruence, every modulus nonzero with pairwise GCD 1,
/// and deg(residue) < deg(modulus) is *not* required (residues are
/// reduced first).  Returns the unique solution of degree less than the
/// degree of the product of the moduli.
[[nodiscard]] Poly crt(std::span<const Congruence> system);

/// Convenience overload.
[[nodiscard]] Poly crt(const std::vector<Congruence>& system);

/// Incremental CRT combiner: fold congruences in one at a time.  Useful
/// when building a routeID hop by hop (e.g. extending a tunnel, or
/// descending a shortest-path tree in the scenario route compiler).
///
/// While the accumulated modulus fits 128 coefficient bits the state
/// lives in the fixed-width gf2::fixed kernels -- no heap allocation
/// per fold -- and spills to arbitrary-degree Poly arithmetic past that
/// bound.  The Poly views returned by solution()/modulus() are
/// materialized lazily from the fixed state.  Copies are cheap while on
/// the fast path, which the tree compiler relies on (one copy per DFS
/// descent).
class CrtAccumulator {
 public:
  /// Current combined solution (zero before any congruence is added).
  [[nodiscard]] const Poly& solution() const;

  /// Product of the moduli folded so far (one initially).
  [[nodiscard]] const Poly& modulus() const;

  /// Fold in one more congruence; the new modulus must be coprime with
  /// the accumulated product (throws std::domain_error otherwise).
  void add(const Congruence& c);

  /// The solution of the accumulated system with `c` folded in, without
  /// mutating this accumulator: what add(c) followed by solution()
  /// would return.  This is the tree compiler's per-destination step --
  /// on the fixed-width path it runs with a single allocation (the
  /// returned Poly) instead of copying the whole accumulator.
  [[nodiscard]] Poly solution_with(const Congruence& c) const;

  /// Word forms of add / solution_with for congruences whose modulus
  /// fits 64 coefficient bits (every PolKA nodeID does): identical
  /// semantics, but the hot path never materializes a Poly operand.
  /// modulus_bits must be nonzero (throws std::domain_error).
  void add(std::uint64_t residue_bits, std::uint64_t modulus_bits);
  [[nodiscard]] Poly solution_with(std::uint64_t residue_bits,
                                   std::uint64_t modulus_bits) const;

 private:
  /// Fixed-width fold scalar: the k with new solution == solution XOR
  /// modulus * k; nullopt when the modulus is not coprime.  Only valid
  /// while !wide_; r and m are the congruence's words, m nonzero.
  [[nodiscard]] std::optional<fixed::Poly64> fast_fold_k(
      fixed::Poly64 r, fixed::Poly64 m) const;

  void materialize() const;
  void spill();

  // Fixed-width state, authoritative while wide_ == false.
  fixed::Poly128 fast_solution_{};
  fixed::Poly128 fast_modulus_{1, 0};
  int fast_degree_ = 0;  ///< degree of fast_modulus_
  bool wide_ = false;

  // Wide state once spilled; before that, a lazily refreshed view of
  // the fixed-width words (stale_ marks it out of date).
  mutable Poly solution_{};
  mutable Poly modulus_{1};
  mutable bool stale_ = false;
};

}  // namespace hp::gf2
