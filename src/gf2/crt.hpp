#pragma once
// Chinese Remainder Theorem over GF(2)[t].
//
// This is the heart of PolKA's route encoding: given core nodes with
// pairwise-coprime nodeIDs m_i and desired output-port polynomials r_i,
// the routeID is the unique polynomial R with deg R < deg(prod m_i) and
// R mod m_i == r_i for every hop.

#include <span>
#include <vector>

#include "gf2/poly.hpp"

namespace hp::gf2 {

/// One congruence R == residue (mod modulus).
struct Congruence {
  Poly residue;
  Poly modulus;
};

/// Solve a CRT system.  Requirements (checked, throws std::domain_error):
/// at least one congruence, every modulus nonzero with pairwise GCD 1,
/// and deg(residue) < deg(modulus) is *not* required (residues are
/// reduced first).  Returns the unique solution of degree less than the
/// degree of the product of the moduli.
[[nodiscard]] Poly crt(std::span<const Congruence> system);

/// Convenience overload.
[[nodiscard]] Poly crt(const std::vector<Congruence>& system);

/// Incremental CRT combiner: fold congruences in one at a time.  Useful
/// when building a routeID hop by hop (e.g. extending a tunnel).
class CrtAccumulator {
 public:
  /// Current combined solution (zero before any congruence is added).
  [[nodiscard]] const Poly& solution() const noexcept { return solution_; }

  /// Product of the moduli folded so far (one initially).
  [[nodiscard]] const Poly& modulus() const noexcept { return modulus_; }

  /// Fold in one more congruence; the new modulus must be coprime with
  /// the accumulated product (throws std::domain_error otherwise).
  void add(const Congruence& c);

 private:
  Poly solution_{};
  Poly modulus_{1};
};

}  // namespace hp::gf2
