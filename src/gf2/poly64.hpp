#pragma once
// Fixed-width GF(2) kernels: one- and two-word polynomials.
//
// gf2::Poly is the right shape for arbitrary-degree control-plane math,
// but every operation walks a heap-allocated word vector.  Route
// compilation folds millions of tiny congruences whose operands fit in
// one or two machine words; these kernels are the allocation-free fast
// path the CrtAccumulator runs on until the accumulated modulus
// outgrows 128 coefficient bits (at which point it spills to Poly).
//
// Representation matches Poly: bit i is the coefficient of t^i.  All
// routines are branch-light shift-XOR loops over set bits -- portable
// carry-less multiplication with no intrinsics required.

#include <bit>
#include <cstdint>
#include <optional>

namespace hp::gf2::fixed {

/// A polynomial of degree <= 63 packed into one word.
using Poly64 = std::uint64_t;

/// A polynomial of degree <= 127 packed into two little-endian words.
struct Poly128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend constexpr bool operator==(Poly128, Poly128) noexcept = default;
  constexpr Poly128& operator^=(Poly128 o) noexcept {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
  friend constexpr Poly128 operator^(Poly128 a, Poly128 b) noexcept {
    return Poly128{a.lo ^ b.lo, a.hi ^ b.hi};
  }
};

/// Degree, or -1 for the zero polynomial (same convention as Poly).
[[nodiscard]] constexpr int degree(Poly64 a) noexcept {
  return a == 0 ? -1 : 63 - std::countl_zero(a);
}

[[nodiscard]] constexpr int degree(Poly128 a) noexcept {
  return a.hi != 0 ? 64 + degree(a.hi) : degree(a.lo);
}

/// Carry-less 64x64 -> 128 multiply (shift-XOR over the set bits of b).
[[nodiscard]] constexpr Poly128 clmul(Poly64 a, Poly64 b) noexcept {
  Poly128 r{};
  while (b != 0) {
    const int i = std::countr_zero(b);
    b &= b - 1;
    r.lo ^= a << i;
    if (i != 0) r.hi ^= a >> (64 - i);
  }
  return r;
}

/// Remainder of a modulo m; m must be nonzero.
[[nodiscard]] constexpr Poly64 mod(Poly64 a, Poly64 m) noexcept {
  const int dm = degree(m);
  for (int da = degree(a); da >= dm; da = degree(a)) {
    a ^= m << (da - dm);
  }
  return a;
}

/// Remainder of a two-word polynomial modulo a one-word m (nonzero).
[[nodiscard]] constexpr Poly64 mod(Poly128 a, Poly64 m) noexcept {
  const int dm = degree(m);
  while (a.hi != 0) {
    // Clear the top set bit: XOR in m aligned under it.  The shift is
    // always >= 1 because dm <= 63 while the bit sits at >= 64.
    const int shift = 64 + degree(a.hi) - dm;
    if (shift >= 64) {
      a.hi ^= m << (shift - 64);
    } else {
      a.lo ^= m << shift;
      a.hi ^= m >> (64 - shift);
    }
  }
  return mod(a.lo, m);
}

/// (a * b) mod m without touching the heap.
[[nodiscard]] constexpr Poly64 mulmod(Poly64 a, Poly64 b, Poly64 m) noexcept {
  return mod(clmul(a, b), m);
}

/// Product of a two-word by a one-word polynomial.  The true degree sum
/// must stay <= 127 (callers check the bound before taking the fast
/// path); bits past t^127 are silently lost otherwise.
[[nodiscard]] constexpr Poly128 mul(Poly128 a, Poly64 b) noexcept {
  Poly128 r = clmul(a.lo, b);
  r.hi ^= clmul(a.hi, b).lo;
  return r;
}

/// Inverse of a modulo m via polynomial extended Euclid on words;
/// nullopt when gcd(a, m) != 1.  Mirrors gf2::try_inverse_mod exactly
/// (including inverse 0 modulo the unit polynomial 1).
[[nodiscard]] constexpr std::optional<Poly64> try_inverse(Poly64 a,
                                                          Poly64 m) noexcept {
  a = mod(a, m);
  Poly64 r0 = m, r1 = a;
  Poly64 u0 = 0, u1 = 1;  // invariant: r_i == u_i * a  (mod m)
  while (r1 != 0) {
    Poly64 q = 0, r = r0;
    const int d1 = degree(r1);
    for (int dr = degree(r); dr >= d1; dr = degree(r)) {
      q ^= Poly64{1} << (dr - d1);
      r ^= r1 << (dr - d1);
    }
    // deg q + deg u1 <= deg m - 1, so the product never leaves one word.
    const Poly64 u2 = u0 ^ clmul(q, u1).lo;
    r0 = r1;
    r1 = r;
    u0 = u1;
    u1 = u2;
  }
  if (degree(r0) != 0) return std::nullopt;  // gcd is not the unit
  return mod(u0, m);
}

}  // namespace hp::gf2::fixed
