#pragma once
// Barrett reduction constants for fixed-width GF(2) remainders.
//
// The slice-by-8 fold (polka/fastpath.hpp) trades 16 KB of per-node
// table for eight loads per mod.  Barrett's method trades the table for
// two carry-less multiplies and ~16 bytes of per-node state: with
//   mu = floor(x^64 / g)
// the quotient of any 64-bit label L by g is recovered exactly as
//   q = floor((L >> d) * mu / x^(64-d)),   d = deg g,
// and the remainder is L xor low64(q * g).  Exactness (no +1 correction
// as in the integer version) follows from GF(2) division being linear:
// writing L = A*x^d + B (deg B < d) and A*x^d = Q*g + R, the product
// A*mu equals Q*x^(64-d) plus terms of degree < 64-d, so the shift
// truncates to exactly Q, and L xor Q*g = B + R = L mod g.
//
// Everything here is constexpr shift-XOR arithmetic on top of
// gf2/poly64.hpp -- the portable reference.  The PCLMUL-accelerated
// twin of barrett_mod lives behind polka::clmul_barrett_remainder and
// is proven bit-identical by the fold-kernel parity tests.

#include <cstdint>
#include <stdexcept>

#include "core/contracts.hpp"
#include "gf2/poly64.hpp"

namespace hp::gf2::fixed {

/// Per-generator Barrett state: the generator's coefficient bits, its
/// degree, and mu = floor(x^64 / g).  16 bytes of hot data.
struct Barrett64 {
  Poly64 generator = 0;
  Poly64 mu = 0;
  std::uint32_t degree = 0;

  friend constexpr bool operator==(Barrett64, Barrett64) noexcept = default;
};

// Two constant words plus the degree (padded): the per-node state the
// PCLMUL fold keeps resident, embedded verbatim in CompiledNode.
HP_ASSERT_HOT_POD(Barrett64, 24);

/// floor(x^64 / g) by long division.  deg g must be in [1, 63] so the
/// quotient (degree 64 - deg g) fits one word.
[[nodiscard]] constexpr Poly64 barrett_mu(Poly64 g) {
  const int d = degree(g);
  if (d < 1 || d > 63) {
    throw std::invalid_argument("barrett_mu: generator degree must be in [1, 63]");
  }
  Poly128 r{0, 1};  // x^64
  Poly64 q = 0;
  for (int dr = degree(r); dr >= d; dr = degree(r)) {
    const int shift = dr - d;  // <= 64 - d <= 63
    q ^= Poly64{1} << shift;
    // g << shift spans both words when dr >= 64: bits below d stay in
    // lo, the leading bit (and anything above it) lands in hi.
    r.lo ^= g << shift;
    if (shift != 0) r.hi ^= g >> (64 - shift);
  }
  return q;
}

[[nodiscard]] constexpr Barrett64 make_barrett(Poly64 g) {
  return Barrett64{g, barrett_mu(g), static_cast<std::uint32_t>(degree(g))};
}

/// label mod generator via two carry-less multiplies.  The portable
/// software form of the PCLMUL fast-path kernel (bit-identical).
/// `b` must come from make_barrett (degree in [1, 63]); a degree-0
/// struct is treated as the unit polynomial (remainder 0) rather than
/// hitting an undefined 64-bit shift.
[[nodiscard]] constexpr Poly64 barrett_mod(const Barrett64& b,
                                           Poly64 label) noexcept {
  const unsigned d = b.degree;
  if (d == 0) return 0;  // x mod 1 == 0 for every x
  const Poly128 t = clmul(label >> d, b.mu);
  const Poly64 q = (t.lo >> (64 - d)) | (t.hi << d);
  return label ^ clmul(q, b.generator).lo;
}

}  // namespace hp::gf2::fixed
