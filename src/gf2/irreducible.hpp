#pragma once
// Irreducibility testing and enumeration of GF(2) polynomials.
//
// PolKA assigns every core node a polynomial nodeID.  CRT requires the
// nodeIDs to be pairwise coprime; choosing *irreducible* polynomials of
// possibly different degrees makes any set of distinct ones pairwise
// coprime automatically, which is how the node-ID allocator works.

#include <cstddef>
#include <vector>

#include "gf2/poly.hpp"

namespace hp::gf2 {

/// Rabin irreducibility test over GF(2).
///
/// f of degree d is irreducible iff t^(2^d) == t (mod f) and, for each
/// prime p dividing d, gcd(t^(2^(d/p)) - t, f) == 1.  Degree-0 and the
/// zero polynomial are not irreducible by convention.
[[nodiscard]] bool is_irreducible(const Poly& f);

/// All irreducible polynomials of exactly `degree`, in increasing
/// bit-value order.  Cost is O(2^degree * test); intended for the small
/// degrees PolKA uses for node IDs (<= ~20).
[[nodiscard]] std::vector<Poly> irreducible_of_degree(unsigned degree);

/// The first `count` irreducible polynomials with degree >= `min_degree`,
/// scanning degrees upward.  Always returns exactly `count` elements.
[[nodiscard]] std::vector<Poly> first_irreducible(std::size_t count,
                                                  unsigned min_degree);

/// Number of monic irreducible polynomials of degree n over GF(2),
/// by the necklace-counting (Moebius) formula.  Useful for tests.
[[nodiscard]] std::size_t count_irreducible(unsigned degree);

}  // namespace hp::gf2
