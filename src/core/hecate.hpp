#pragma once
// Hecate Service: the AI/ML optimization side of the framework.
//
// Wraps the regression pipeline of Section V: per-path bandwidth series
// are windowed (history of 10 samples), standardized, and fed to a
// regressor; multi-step forecasts ("the predicted values for the next
// 10 steps") come from recursive one-step prediction; the recommended
// path is the one with the most predicted available bandwidth.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/preprocessing.hpp"
#include "ml/registry.hpp"
#include "ml/regressor.hpp"

namespace hp::core {

/// Pipeline configuration, defaulting to the paper's choices.
struct HecateConfig {
  std::string model = "RFR";     ///< the Fig 6 winner
  std::size_t history = 10;      ///< t-9..t features predict t+1
  std::size_t horizon = 10;      ///< steps forecast for recommendations
  double train_fraction = 0.75;  ///< 75/25 chronological split
};

/// Result of evaluating one model on one series (a Fig 6 data point).
struct ModelScore {
  std::string label;       ///< "R13:RFR"
  std::string short_name;  ///< "RFR"
  double rmse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;
};

/// Observed-vs-predicted pairs over a test split (Figs 7 and 8).
struct PredictionTrace {
  std::vector<double> observed;
  std::vector<double> predicted;
  double rmse = 0.0;
};

/// Run the paper's exact ML pipeline for one model on one series:
/// chronological 75/25 split, StandardScaler fit on the training
/// windows, fit, predict the test split, inverse-transform, score.
[[nodiscard]] PredictionTrace run_pipeline(hp::ml::Regressor& model,
                                           const std::vector<double>& series,
                                           std::size_t history = 10,
                                           double train_fraction = 0.75);

/// Evaluate the full 18-model catalogue on one series (one axis of the
/// Fig 6 scatter).
[[nodiscard]] std::vector<ModelScore> evaluate_catalog(
    const std::vector<double>& series, std::size_t history = 10,
    double train_fraction = 0.75);

/// The Hecate service proper: holds per-path series and trained models.
class HecateService {
 public:
  explicit HecateService(HecateConfig config = {});

  /// Append one bandwidth observation for a path.
  void observe(const std::string& path, double t_s, double mbps);

  /// Bulk-load a series (e.g. from the Telemetry Service).
  void load_series(const std::string& path, const std::vector<double>& values);

  /// (Re)train the configured model on a path's accumulated series.
  /// Throws std::runtime_error when fewer than history+2 samples exist.
  void fit(const std::string& path);

  /// Model selection, as the paper runs it: evaluate a set of candidate
  /// models on a chronological holdout of the path's series, adopt the
  /// lowest-RMSE one for this path, and retrain it on the full series.
  /// Returns the winning model's short name.  With an empty candidate
  /// list the full 18-model catalogue is tried.
  std::string fit_auto(const std::string& path,
                       std::vector<std::string> candidates = {});

  /// Short name of the model currently serving a path ("" if none).
  [[nodiscard]] std::string model_of(const std::string& path) const;

  /// Recursive multi-step forecast from the latest window; fit() must
  /// have been called for the path.
  [[nodiscard]] std::vector<double> forecast(const std::string& path,
                                             std::size_t steps) const;

  /// Recommend the path with the highest mean forecast bandwidth over
  /// the configured horizon.  Paths that are not trained are skipped;
  /// returns nullopt when none is usable.
  [[nodiscard]] std::optional<std::string> recommend(
      const std::vector<std::string>& paths) const;

  [[nodiscard]] bool is_trained(const std::string& path) const;
  [[nodiscard]] std::size_t series_length(const std::string& path) const;
  [[nodiscard]] const HecateConfig& config() const noexcept { return config_; }

 private:
  struct PathModel {
    std::vector<double> series;
    hp::ml::StandardScaler x_scaler;
    hp::ml::StandardScaler y_scaler;
    std::unique_ptr<hp::ml::Regressor> model;
    std::string model_name;
    bool trained = false;
  };

  /// Shared tail of fit()/fit_auto(): train `model_name` on the series.
  void fit_with_model(const std::string& path, const std::string& model_name);

  HecateConfig config_;
  std::map<std::string, PathModel> paths_;
};

}  // namespace hp::core
