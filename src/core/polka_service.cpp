#include "core/polka_service.hpp"

#include <array>
#include <span>
#include <sstream>
#include <stdexcept>

#include "scenario/runner.hpp"

namespace hp::core {

using hp::netsim::LinkIndex;
using hp::netsim::NodeIndex;
using hp::netsim::NodeKind;

PolkaService::PolkaService(const hp::netsim::Topology& topo,
                           hp::freertr::RouterConfigService& edge)
    : topo_(&topo), edge_(&edge) {
  // Mirror the router subgraph into the PolKA fabric.  Fabric port p of
  // a router corresponds to topo.outgoing(router)[p]; ports toward
  // hosts stay unwired in the fabric (they are egress ports).
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind != NodeKind::kRouter) continue;
    const unsigned ports =
        static_cast<unsigned>(topo.outgoing(n).size());
    fabric_.add_node(topo.node(n).name, std::max(ports, 1U));
  }
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind != NodeKind::kRouter) continue;
    const std::size_t from = fabric_.index_of(topo.node(n).name);
    const auto& out = topo.outgoing(n);
    for (unsigned p = 0; p < out.size(); ++p) {
      const NodeIndex neighbour = topo.link(out[p]).to;
      if (topo.node(neighbour).kind == NodeKind::kRouter) {
        fabric_.connect(from, p, fabric_.index_of(topo.node(neighbour).name));
      }
    }
  }
}

void PolkaService::push_config(const std::string& commands) {
  edge_->queue().push(
      hp::freertr::ConfigMessage{next_message_id_++, commands});
  edge_->process_pending();
  const auto& acks = edge_->acks();
  if (!acks.empty() && !acks.back().ok) {
    throw std::invalid_argument("PolkaService: edge rejected config: " +
                                acks.back().error);
  }
}

const Tunnel& PolkaService::define_tunnel(
    unsigned id, const std::vector<std::string>& routers,
    const std::string& egress_host, const std::string& destination_ip) {
  if (routers.size() < 2) {
    throw std::invalid_argument("define_tunnel: need >= 2 routers");
  }
  Tunnel tunnel;
  tunnel.id = id;
  tunnel.routers = routers;
  tunnel.name = "tunnel" + std::to_string(id);
  tunnel.netsim_path = topo_->path_through(routers);

  // Egress port: the last router's topology port toward the host.
  const NodeIndex last = topo_->index_of(routers.back());
  const NodeIndex host = topo_->index_of(egress_host);
  const auto& out = topo_->outgoing(last);
  std::optional<unsigned> egress_port;
  for (unsigned p = 0; p < out.size(); ++p) {
    if (topo_->link(out[p]).to == host) {
      egress_port = p;
      break;
    }
  }
  if (!egress_port) {
    throw std::invalid_argument("define_tunnel: " + routers.back() +
                                " has no link to host " + egress_host);
  }

  std::vector<std::size_t> fabric_path;
  fabric_path.reserve(routers.size());
  for (const std::string& name : routers) {
    fabric_path.push_back(fabric_.index_of(name));
  }
  tunnel.route_id = fabric_.route_for_path(fabric_path, egress_port);

  // Push the freeRtr tunnel definition to the edge.
  std::ostringstream cfg;
  cfg << "interface tunnel" << id << '\n';
  cfg << " tunnel destination " << destination_ip << '\n';
  cfg << " tunnel domain-name";
  for (const std::string& name : routers) cfg << ' ' << name;
  cfg << '\n';
  cfg << " tunnel mode polka\n";
  cfg << "exit\n";
  push_config(cfg.str());

  tunnel_egress_host_[id] = egress_host;
  auto [it, _] = tunnels_.insert_or_assign(id, std::move(tunnel));
  return it->second;
}

void PolkaService::install_access_list(const hp::freertr::AccessList& acl) {
  std::ostringstream cfg;
  cfg << "access-list " << acl.name << " permit " << acl.protocol << ' '
      << acl.source.to_string() << ' ' << acl.destination.to_string();
  if (acl.tos) cfg << " tos " << *acl.tos;
  cfg << '\n';
  push_config(cfg.str());
}

std::uint64_t PolkaService::bind_flow(const std::string& acl_name,
                                      unsigned tunnel_id,
                                      const std::string& nexthop_ip) {
  if (!tunnels_.contains(tunnel_id)) {
    throw std::invalid_argument("bind_flow: unknown tunnel " +
                                std::to_string(tunnel_id));
  }
  std::ostringstream cfg;
  cfg << "pbr " << acl_name << " tunnel " << tunnel_id << " nexthop "
      << nexthop_ip << '\n';
  push_config(cfg.str());
  return edge_->config().revision();
}

const Tunnel& PolkaService::tunnel(unsigned id) const {
  const auto it = tunnels_.find(id);
  if (it == tunnels_.end()) {
    throw std::out_of_range("PolkaService: unknown tunnel " +
                            std::to_string(id));
  }
  return it->second;
}

hp::netsim::Path PolkaService::host_to_host_path(
    unsigned tunnel_id, const std::string& src_host,
    const std::string& dst_host) const {
  const Tunnel& t = tunnel(tunnel_id);
  const NodeIndex src = topo_->index_of(src_host);
  const NodeIndex ingress = topo_->index_of(t.routers.front());
  const NodeIndex egress = topo_->index_of(t.routers.back());
  const NodeIndex dst = topo_->index_of(dst_host);
  const auto in_link = topo_->link_between(src, ingress);
  const auto out_link = topo_->link_between(egress, dst);
  if (!in_link || !out_link) {
    throw std::invalid_argument("host_to_host_path: hosts not attached");
  }
  hp::netsim::Path path;
  path.push_back(*in_link);
  path.insert(path.end(), t.netsim_path.begin(), t.netsim_path.end());
  path.push_back(*out_link);
  return path;
}

namespace {

/// Scalar reference outcome of a tunnel's packet, for batch parity.
hp::polka::PacketResult reference_walk(const hp::polka::PolkaFabric& fabric,
                                       const Tunnel& t) {
  const auto trace =
      fabric.forward(t.route_id, fabric.index_of(t.routers.front()));
  hp::polka::PacketResult r;
  r.egress_node = static_cast<std::uint32_t>(trace.nodes.back());
  r.egress_port = trace.ports.back();
  r.hops = static_cast<std::uint32_t>(trace.nodes.size());
  return r;
}

}  // namespace

BatchForwardReport PolkaService::forward_batch(
    std::size_t packets_per_tunnel) const {
  if (tunnels_.empty()) {
    throw std::logic_error("forward_batch: no tunnels defined");
  }
  const auto& fast = compiled_fabric();
  BatchForwardReport report;
  constexpr std::size_t kChunk = 256;
  std::array<hp::polka::RouteLabel, kChunk> labels;
  std::array<hp::polka::PacketResult, kChunk> results;
  for (const auto& [id, t] : tunnels_) {
    const auto label = hp::polka::pack_label(t.route_id);
    const std::size_t first = fabric_.index_of(t.routers.front());
    const auto expected = reference_walk(fabric_, t);
    if (label) labels.fill(*label);  // constant per tunnel
    std::size_t remaining = packets_per_tunnel;
    while (remaining > 0) {
      const std::size_t n = std::min(kChunk, remaining);
      if (label) {
        report.mod_operations += fast.forward_batch(
            std::span<const hp::polka::RouteLabel>(labels.data(), n), first,
            std::span<hp::polka::PacketResult>(results.data(), n));
        for (std::size_t i = 0; i < n; ++i) {
          if (results[i] != expected) ++report.mismatches;
        }
      } else {
        // Oversized label: scalar slow path still counts the packets.
        for (std::size_t i = 0; i < n; ++i) {
          const auto trace = fabric_.forward(t.route_id, first);
          report.mod_operations += trace.mod_operations;
        }
      }
      report.packets += n;
      remaining -= n;
    }
  }
  return report;
}

BatchForwardReport PolkaService::replay_workload(
    const std::vector<hp::netsim::ScheduledFlow>& flows,
    std::size_t batch_size, double mtu_bytes, unsigned threads) const {
  if (tunnels_.empty()) {
    throw std::logic_error("replay_workload: no tunnels defined");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("replay_workload: batch_size must be > 0");
  }
  const auto& fast = compiled_fabric();

  // Per-tunnel constants, indexed by round-robin position.  A tunnel
  // whose routeID does not fit a 64-bit label takes the scalar slow
  // path (no label), mirroring PolkaFabric::forward_batch's fallback.
  struct TunnelLane {
    std::optional<hp::polka::RouteLabel> label;
    const hp::polka::RouteId* route = nullptr;
    std::uint32_t first = 0;
    hp::polka::PacketResult expected;
  };
  std::vector<TunnelLane> lanes;
  lanes.reserve(tunnels_.size());
  for (const auto& [id, t] : tunnels_) {
    TunnelLane lane;
    lane.label = hp::polka::pack_label(t.route_id);
    lane.route = &t.route_id;
    lane.first =
        static_cast<std::uint32_t>(fabric_.index_of(t.routers.front()));
    lane.expected = reference_walk(fabric_, t);
    lanes.push_back(lane);
  }

  // Oversized routeID: walk one flow's packets on the polynomial slow
  // path (shared by the threaded and streaming branches below).
  BatchForwardReport report;
  auto walk_slow_lane = [&](const TunnelLane& lane, std::size_t packets) {
    for (std::size_t i = 0; i < packets; ++i) {
      const auto trace = fabric_.forward(*lane.route, lane.first);
      report.mod_operations += trace.mod_operations;
      if (trace.nodes.empty() ||
          trace.nodes.back() != lane.expected.egress_node ||
          trace.ports.back() != lane.expected.egress_port) {
        ++report.mismatches;
      }
    }
    report.packets += packets;
  };

  if (threads > 1) {
    // Materialize the label stream and shard it across workers via the
    // scenario engine's replay primitive.
    std::vector<hp::polka::RouteLabel> labels;
    std::vector<std::uint32_t> firsts;
    std::vector<std::uint32_t> lane_index;
    std::vector<hp::polka::PacketResult> expected(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      expected[i] = lanes[i].expected;
    }
    std::size_t next_lane = 0;
    for (const auto& flow : flows) {
      const std::size_t lane_id = next_lane;
      const TunnelLane& lane = lanes[lane_id];
      next_lane = (next_lane + 1) % lanes.size();
      const std::size_t packets =
          hp::netsim::packet_count(flow.spec, mtu_bytes);
      if (!lane.label) {
        walk_slow_lane(lane, packets);
        continue;
      }
      labels.insert(labels.end(), packets, *lane.label);
      firsts.insert(firsts.end(), packets, lane.first);
      lane_index.insert(lane_index.end(), packets,
                        static_cast<std::uint32_t>(lane_id));
    }
    const auto sharded = hp::scenario::replay_shards(
        fast, labels, firsts, lane_index, expected, {}, threads, batch_size);
    report.packets += sharded.packets;
    report.mod_operations += sharded.mod_operations;
    report.mismatches += sharded.wrong_egress;
    return report;
  }

  // Reusable batch buffers: the replay loop itself never allocates.
  std::vector<hp::polka::RouteLabel> labels(batch_size);
  std::vector<std::uint32_t> firsts(batch_size);
  std::vector<hp::polka::PacketResult> results(batch_size);
  std::vector<std::uint32_t> lane_of(batch_size);

  std::size_t fill = 0;
  auto flush = [&] {
    if (fill == 0) return;
    report.mod_operations += fast.forward_batch(
        std::span<const hp::polka::RouteLabel>(labels.data(), fill),
        std::span<const std::uint32_t>(firsts.data(), fill),
        std::span<hp::polka::PacketResult>(results.data(), fill));
    for (std::size_t i = 0; i < fill; ++i) {
      if (results[i] != lanes[lane_of[i]].expected) ++report.mismatches;
    }
    report.packets += fill;
    fill = 0;
  };

  std::size_t next_lane = 0;
  for (const auto& flow : flows) {
    const TunnelLane& lane = lanes[next_lane];
    const std::uint32_t lane_index = static_cast<std::uint32_t>(next_lane);
    next_lane = (next_lane + 1) % lanes.size();
    std::size_t packets = hp::netsim::packet_count(flow.spec, mtu_bytes);
    if (!lane.label) {
      walk_slow_lane(lane, packets);
      continue;
    }
    while (packets > 0) {
      labels[fill] = *lane.label;
      firsts[fill] = lane.first;
      lane_of[fill] = lane_index;
      ++fill;
      --packets;
      if (fill == batch_size) flush();
    }
  }
  flush();
  return report;
}

std::size_t PolkaService::verify_tunnel(unsigned id) const {
  const Tunnel& t = tunnel(id);
  const std::size_t first = fabric_.index_of(t.routers.front());
  const auto trace = fabric_.forward(t.route_id, first);
  if (trace.nodes.size() != t.routers.size()) {
    throw std::logic_error("verify_tunnel: trace length mismatch for " +
                           t.name);
  }
  for (std::size_t i = 0; i < t.routers.size(); ++i) {
    if (fabric_.node(trace.nodes[i]).name != t.routers[i]) {
      throw std::logic_error("verify_tunnel: trace diverges at hop " +
                             std::to_string(i) + " for " + t.name);
    }
  }
  return trace.mod_operations;
}

}  // namespace hp::core
