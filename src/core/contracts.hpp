#pragma once
// Enforced invariants: runtime contract checks and hot-struct pins.
//
// The repo's load-bearing conventions -- bit-identical reports for a
// fixed seed, allocation-free hot paths, 32-byte compiled node records
// -- were protected only by reviewer vigilance until this layer.  The
// macros here turn them into machine-checked rules:
//
//  * HP_CHECK(cond, what)  -- always-on cheap invariant.  Stays in
//    Release builds, so it is for O(1) checks on cold or per-event
//    paths (a failover swap, an event-queue pop), never per-packet
//    work.  Violations throw hp::core::ContractViolation with the
//    failing expression and source location.
//  * HP_DCHECK(cond, what) -- debug-only twin for per-hop/per-lane
//    assertions inside the fold kernels and the simulator event loop.
//    Compiled out under NDEBUG (the condition is still parsed, so it
//    cannot rot), or forced on with -DHP_FORCE_DCHECKS.
//  * HP_ASSERT_HOT_POD(type, bytes) -- compile-time pin for structs
//    that live in flat batch arrays: trivially copyable, standard
//    layout, and exactly `bytes` wide.  A drive-by member addition to
//    CompiledNode or RouteLabel fails the build, not a cache-behaviour
//    benchmark three PRs later.
//
// Throwing (rather than aborting) keeps violations testable and lets
// library callers fail one run instead of the whole process.  Inside a
// noexcept function a violated contract still terminates -- loudly,
// which is the point.

#include <stdexcept>
#include <type_traits>

namespace hp::core {

/// Thrown when an HP_CHECK / HP_DCHECK invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Out-of-line failure path: formats "<what>: !(expr) at file:line" and
/// throws ContractViolation.  Never inlined so the macro's fast path
/// costs one predictable branch.
[[noreturn]] void contract_failed(const char* expr, const char* file, int line,
                                  const char* what);

}  // namespace hp::core

/// Always-on invariant; keep the condition O(1).
#define HP_CHECK(cond, what)                                           \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::hp::core::contract_failed(#cond, __FILE__, __LINE__, (what));  \
    }                                                                  \
  } while (false)

/// Debug-only invariant for hot loops.  Under NDEBUG the condition is
/// parsed but never evaluated (no side effects run, no code is
/// emitted); -DHP_FORCE_DCHECKS re-enables it in optimized builds.
#if !defined(NDEBUG) || defined(HP_FORCE_DCHECKS)
#define HP_DCHECK(cond, what) HP_CHECK(cond, what)
#else
#define HP_DCHECK(cond, what)          \
  do {                                 \
    if (false) {                       \
      static_cast<void>(cond);         \
    }                                  \
  } while (false)
#endif

/// Pin a batch-array struct: trivially copyable, standard layout, and
/// exactly `bytes` wide.  Use at namespace scope right after the
/// struct definition.
#define HP_ASSERT_HOT_POD(type, bytes)                                    \
  static_assert(std::is_trivially_copyable_v<type>,                       \
                #type " must stay trivially copyable (lives in flat "     \
                      "batch arrays)");                                   \
  static_assert(std::is_standard_layout_v<type>,                          \
                #type " must stay standard layout");                      \
  static_assert(sizeof(type) == (bytes),                                  \
                #type " must stay exactly " #bytes " bytes -- fix the "   \
                      "layout or update every consumer of this pin")
