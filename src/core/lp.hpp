#pragma once
// Dense two-phase simplex LP solver.
//
// Section III frames optimal flow allocation as a Linear Programming
// problem ("this can be solved using LP solvers").  This is that solver:
// small, exact, dense -- the framework's allocation problems have a
// handful of paths and links.

#include "ml/linalg.hpp"

namespace hp::core {

using hp::ml::Matrix;
using hp::ml::Vector;

/// Constraint sense for one row.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// minimize c.x  subject to  A x (sense) b,  x >= 0.
struct LpProblem {
  Matrix a;
  Vector b;
  std::vector<Sense> senses;
  Vector c;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  Vector x;
  double objective = 0.0;
};

/// Solve with two-phase simplex (Bland's rule; always terminates).
/// Throws std::invalid_argument on dimension mismatches.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem);

}  // namespace hp::core
