#include "core/hecate.hpp"

#include <limits>
#include <stdexcept>

#include "dataset/uq_wireless.hpp"

namespace hp::core {

using hp::dataset::make_windows;
using hp::ml::Matrix;
using hp::ml::StandardScaler;
using hp::ml::Vector;

PredictionTrace run_pipeline(hp::ml::Regressor& model,
                             const std::vector<double>& series,
                             std::size_t history, double train_fraction) {
  // Window the raw series, split chronologically, then scale the
  // *features*: the scaler sees only training data (fit) and is applied
  // to both splits (transform), as in the paper's Section V-B.  The
  // target stays in Mbps -- the paper's GPR RMSE (52.43 for LTE)
  // exceeds the series' own standard deviation, which is only possible
  // when the zero-mean GP prior faces an uncentred target, so the
  // published pipeline cannot have standardized y.
  const auto windows = make_windows(series, history, 1);
  const auto split =
      hp::ml::chronological_split(windows.x, windows.y, train_fraction);

  StandardScaler x_scaler;
  const Matrix x_train = x_scaler.fit_transform(split.x_train);
  const Matrix x_test = x_scaler.transform(split.x_test);

  model.fit(x_train, split.y_train);

  PredictionTrace trace;
  trace.predicted = model.predict(x_test);
  trace.observed = split.y_test;
  trace.rmse = hp::ml::rmse(trace.observed, trace.predicted);
  return trace;
}

std::vector<ModelScore> evaluate_catalog(const std::vector<double>& series,
                                         std::size_t history,
                                         double train_fraction) {
  std::vector<ModelScore> scores;
  for (auto& entry : hp::ml::make_regressor_catalog()) {
    const PredictionTrace trace =
        run_pipeline(*entry.model, series, history, train_fraction);
    ModelScore score;
    score.label = entry.label;
    score.short_name = entry.short_name;
    score.rmse = trace.rmse;
    score.mae = hp::ml::mae(trace.observed, trace.predicted);
    score.r2 = hp::ml::r2(trace.observed, trace.predicted);
    scores.push_back(std::move(score));
  }
  return scores;
}

HecateService::HecateService(HecateConfig config)
    : config_(std::move(config)) {
  if (config_.history == 0) {
    throw std::invalid_argument("HecateService: history must be >= 1");
  }
}

void HecateService::observe(const std::string& path, double /*t_s*/,
                            double mbps) {
  paths_[path].series.push_back(mbps);
}

void HecateService::load_series(const std::string& path,
                                const std::vector<double>& values) {
  auto& state = paths_[path];
  state.series.insert(state.series.end(), values.begin(), values.end());
}

void HecateService::fit(const std::string& path) {
  fit_with_model(path, config_.model);
}

void HecateService::fit_with_model(const std::string& path,
                                   const std::string& model_name) {
  auto it = paths_.find(path);
  if (it == paths_.end() || it->second.series.size() < config_.history + 2) {
    throw std::runtime_error("HecateService::fit: not enough samples for " +
                             path);
  }
  PathModel& state = it->second;
  const auto windows = make_windows(state.series, config_.history, 1);
  const Matrix x = state.x_scaler.fit_transform(windows.x);
  state.y_scaler.fit(windows.y);
  const Vector y = state.y_scaler.transform(windows.y);
  state.model = hp::ml::make_regressor(model_name);
  state.model->fit(x, y);
  state.model_name = model_name;
  state.trained = true;
}

std::string HecateService::fit_auto(const std::string& path,
                                    std::vector<std::string> candidates) {
  const auto it = paths_.find(path);
  // The holdout evaluation needs enough windows on both sides of the
  // 75/25 split; demand a reasonable minimum.
  if (it == paths_.end() ||
      it->second.series.size() < 4 * (config_.history + 2)) {
    throw std::runtime_error(
        "HecateService::fit_auto: not enough samples for " + path);
  }
  if (candidates.empty()) candidates = hp::ml::regressor_short_names();

  std::string best_name;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (const std::string& name : candidates) {
    auto model = hp::ml::make_regressor(name);
    const PredictionTrace trace = run_pipeline(
        *model, it->second.series, config_.history, config_.train_fraction);
    if (trace.rmse < best_rmse) {
      best_rmse = trace.rmse;
      best_name = name;
    }
  }
  fit_with_model(path, best_name);
  return best_name;
}

std::string HecateService::model_of(const std::string& path) const {
  const auto it = paths_.find(path);
  return it == paths_.end() ? std::string{} : it->second.model_name;
}

std::vector<double> HecateService::forecast(const std::string& path,
                                            std::size_t steps) const {
  const auto it = paths_.find(path);
  if (it == paths_.end() || !it->second.trained) {
    throw std::runtime_error("HecateService::forecast: path not trained: " +
                             path);
  }
  const PathModel& state = it->second;
  // Rolling window seeded with the latest observations; predictions are
  // appended and fed back for multi-step forecasting.
  std::vector<double> window(state.series.end() -
                                 static_cast<std::ptrdiff_t>(config_.history),
                             state.series.end());
  std::vector<double> out;
  out.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    Matrix x(1, config_.history);
    for (std::size_t j = 0; j < config_.history; ++j) x(0, j) = window[j];
    const Matrix xs = state.x_scaler.transform(x);
    const double pred_scaled = state.model->predict(xs)[0];
    const double pred = state.y_scaler.inverse_transform(
        Vector{pred_scaled})[0];
    out.push_back(pred);
    window.erase(window.begin());
    window.push_back(pred);
  }
  return out;
}

std::optional<std::string> HecateService::recommend(
    const std::vector<std::string>& paths) const {
  std::optional<std::string> best;
  double best_mean = -1.0;
  for (const std::string& path : paths) {
    const auto it = paths_.find(path);
    if (it == paths_.end() || !it->second.trained) continue;
    const auto forecasts = forecast(path, config_.horizon);
    double total = 0.0;
    for (const double v : forecasts) total += v;
    const double mean = total / static_cast<double>(forecasts.size());
    if (mean > best_mean) {
      best_mean = mean;
      best = path;
    }
  }
  return best;
}

bool HecateService::is_trained(const std::string& path) const {
  const auto it = paths_.find(path);
  return it != paths_.end() && it->second.trained;
}

std::size_t HecateService::series_length(const std::string& path) const {
  const auto it = paths_.find(path);
  return it == paths_.end() ? 0 : it->second.series.size();
}

}  // namespace hp::core
