#include "core/lp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hp::core {

namespace {

constexpr double kEps = 1e-9;

/// Tableau simplex on standard form min c.x, Ax = b, x >= 0, b >= 0.
/// `basis` holds the basic variable of each row and must index an
/// identity submatrix on entry.  Returns false when unbounded.
bool run_simplex(Matrix& a, Vector& b, Vector& c, std::vector<std::size_t>& basis,
                 double& objective) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Reduced costs: make c zero on basic columns.
  for (std::size_t r = 0; r < m; ++r) {
    const double cb = c[basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) c[j] -= cb * a(r, j);
    objective -= cb * b[r];
  }
  while (true) {
    // Bland's rule: entering variable = lowest index with negative
    // reduced cost.
    std::size_t enter = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (c[j] < -kEps) {
        enter = j;
        break;
      }
    }
    if (enter == n) return true;  // optimal
    // Ratio test (Bland: smallest basis index breaks ties).
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      if (a(r, enter) > kEps) {
        const double ratio = b[r] / a(r, enter);
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return false;  // unbounded
    // Pivot.
    const double pivot = a(leave, enter);
    for (std::size_t j = 0; j < n; ++j) a(leave, j) /= pivot;
    b[leave] /= pivot;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == leave) continue;
      const double f = a(r, enter);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) a(r, j) -= f * a(leave, j);
      b[r] -= f * b[leave];
    }
    const double fc = c[enter];
    if (fc != 0.0) {
      for (std::size_t j = 0; j < n; ++j) c[j] -= fc * a(leave, j);
      objective -= fc * b[leave];
    }
    basis[leave] = enter;
  }
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  if (problem.b.size() != m || problem.senses.size() != m ||
      problem.c.size() != n) {
    throw std::invalid_argument("solve_lp: dimension mismatch");
  }

  // Standard form: normalize b >= 0, add slacks/surplus, then
  // artificials where no natural basic column exists.
  struct Row {
    Vector coeffs;
    double rhs;
    Sense sense;
  };
  std::vector<Row> rows(m);
  for (std::size_t r = 0; r < m; ++r) {
    rows[r].coeffs = problem.a.row(r);
    rows[r].rhs = problem.b[r];
    rows[r].sense = problem.senses[r];
    if (rows[r].rhs < 0.0) {
      for (double& v : rows[r].coeffs) v = -v;
      rows[r].rhs = -rows[r].rhs;
      if (rows[r].sense == Sense::kLessEqual) {
        rows[r].sense = Sense::kGreaterEqual;
      } else if (rows[r].sense == Sense::kGreaterEqual) {
        rows[r].sense = Sense::kLessEqual;
      }
    }
  }

  std::size_t n_slack = 0;
  for (const Row& row : rows) {
    if (row.sense != Sense::kEqual) ++n_slack;
  }
  std::size_t n_art = 0;
  for (const Row& row : rows) {
    if (row.sense != Sense::kLessEqual) ++n_art;
  }

  const std::size_t total = n + n_slack + n_art;
  Matrix a(m, total, 0.0);
  Vector b(m, 0.0);
  std::vector<std::size_t> basis(m);
  std::size_t slack_col = n;
  std::size_t art_col = n + n_slack;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) a(r, j) = rows[r].coeffs[j];
    b[r] = rows[r].rhs;
    switch (rows[r].sense) {
      case Sense::kLessEqual:
        a(r, slack_col) = 1.0;
        basis[r] = slack_col++;
        break;
      case Sense::kGreaterEqual:
        a(r, slack_col) = -1.0;  // surplus
        ++slack_col;
        a(r, art_col) = 1.0;
        basis[r] = art_col++;
        break;
      case Sense::kEqual:
        a(r, art_col) = 1.0;
        basis[r] = art_col++;
        break;
    }
  }

  LpSolution solution;

  if (n_art > 0) {
    // Phase 1: minimize the sum of artificials.
    Vector c1(total, 0.0);
    for (std::size_t j = n + n_slack; j < total; ++j) c1[j] = 1.0;
    double obj1 = 0.0;
    Matrix a1 = a;
    Vector b1 = b;
    if (!run_simplex(a1, b1, c1, basis, obj1)) {
      solution.status = LpStatus::kInfeasible;  // cannot happen, guard
      return solution;
    }
    // run_simplex tracks the *negated* objective value (z-row
    // convention), so the attained sum of artificials is -obj1.
    if (-obj1 > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any artificial still in the basis out (degenerate case):
    // pivot on any nonzero non-artificial column in its row.
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + n_slack) {
        std::size_t pivot_col = total;
        for (std::size_t j = 0; j < n + n_slack; ++j) {
          if (std::abs(a1(r, j)) > kEps) {
            pivot_col = j;
            break;
          }
        }
        if (pivot_col == total) continue;  // redundant row; keep artificial=0
        const double pivot = a1(r, pivot_col);
        for (std::size_t j = 0; j < total; ++j) a1(r, j) /= pivot;
        b1[r] /= pivot;
        for (std::size_t rr = 0; rr < m; ++rr) {
          if (rr == r) continue;
          const double f = a1(rr, pivot_col);
          if (f == 0.0) continue;
          for (std::size_t j = 0; j < total; ++j) a1(rr, j) -= f * a1(r, j);
          b1[rr] -= f * b1[r];
        }
        basis[r] = pivot_col;
      }
    }
    a = std::move(a1);
    b = std::move(b1);
  }

  // Phase 2: original objective (artificial columns pinned by zero
  // coefficients but excluded from entering via a large cost).
  Vector c2(total, 0.0);
  for (std::size_t j = 0; j < n; ++j) c2[j] = problem.c[j];
  // Forbid artificials from re-entering.
  for (std::size_t j = n + n_slack; j < total; ++j) c2[j] = 1e30;
  double obj2 = 0.0;
  if (!run_simplex(a, b, c2, basis, obj2)) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) solution.x[basis[r]] = b[r];
  }
  solution.objective = hp::ml::dot(solution.x, problem.c);
  return solution;
}

}  // namespace hp::core
