#include "core/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace hp::core {

std::string Dashboard::link_occupation_report(unsigned width) const {
  const auto& topo = sim_->topology();
  std::ostringstream os;
  os << "link occupation @ t=" << std::fixed << std::setprecision(1)
     << sim_->now() << "s\n";
  for (hp::netsim::LinkIndex l = 0; l < topo.link_count(); ++l) {
    const double util = sim_->link_utilization(l);
    if (util <= 1e-9) continue;
    const auto& link = topo.link(l);
    const unsigned filled = static_cast<unsigned>(
        std::round(std::min(util, 1.0) * width));
    os << std::setw(6) << topo.node(link.from).name << "->" << std::left
       << std::setw(6) << topo.node(link.to).name << std::right << " [";
    for (unsigned i = 0; i < width; ++i) os << (i < filled ? '#' : ' ');
    os << "] " << std::setprecision(1) << util * link.capacity_mbps << '/'
       << link.capacity_mbps << " Mbps\n";
  }
  return os.str();
}

std::string Dashboard::series_table(
    const std::vector<hp::netsim::Sample>& series, const std::string& header,
    std::size_t max_rows) {
  std::ostringstream os;
  os << header << '\n';
  if (series.empty()) {
    os << "  (empty)\n";
    return os.str();
  }
  const std::size_t stride =
      std::max<std::size_t>(1, series.size() / std::max<std::size_t>(
                                                   max_rows, 1));
  os << std::fixed << std::setprecision(2);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    os << "  " << std::setw(8) << series[i].t_s << "  " << std::setw(10)
       << series[i].value << '\n';
  }
  return os.str();
}

std::string Dashboard::strip_chart(
    const std::vector<hp::netsim::Sample>& series, std::size_t width) {
  if (series.empty()) return "(empty)";
  double lo = series.front().value;
  double hi = lo;
  for (const auto& s : series) {
    lo = std::min(lo, s.value);
    hi = std::max(hi, s.value);
  }
  static constexpr char kLevels[] = " .:-=+*#%@";
  const std::size_t n_levels = sizeof(kLevels) - 2;
  std::string chart;
  chart.reserve(width);
  const std::size_t n = series.size();
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t i0 = b * n / width;
    const std::size_t i1 = std::max(i0 + 1, (b + 1) * n / width);
    double acc = 0.0;
    for (std::size_t i = i0; i < i1 && i < n; ++i) acc += series[i].value;
    const double v = acc / static_cast<double>(i1 - i0);
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    chart.push_back(
        kLevels[static_cast<std::size_t>(std::round(norm * n_levels))]);
  }
  std::ostringstream os;
  os << '[' << chart << "] min=" << lo << " max=" << hi;
  return os.str();
}

double Dashboard::mean_between(const std::vector<hp::netsim::Sample>& series,
                               double t0, double t1) {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& s : series) {
    if (s.t_s >= t0 && s.t_s <= t1) {
      acc += s.value;
      ++count;
    }
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace hp::core
