#pragma once
// FrameworkRuntime: wires the whole Hecate-PolKA framework together on
// the emulated testbed -- topology, simulator, telemetry store + agents,
// Hecate service, PolKA service, edge router and Controller -- matching
// the component diagram of Fig 3.
//
// This is the highest-level entry point of the library; the quickstart
// example and the Figs 11/12 benches are thin wrappers over it.

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/dashboard.hpp"
#include "core/hecate.hpp"
#include "core/polka_service.hpp"
#include "freertr/router_service.hpp"
#include "netsim/paths.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/store.hpp"

namespace hp::core {

/// Tunnel blueprint for runtime construction.
struct TunnelPlan {
  unsigned id = 0;
  std::vector<std::string> routers;
  std::string egress_host = "host2";
  std::string destination_ip = "20.20.0.7";  ///< AMS edge, as in Fig 10
};

class FrameworkRuntime {
 public:
  /// Build on a topology (default: the Fig 9 Global P4 Lab subset) with
  /// the given tunnel plans; every tunnel is registered as a Controller
  /// candidate and gets a telemetry agent sampling available bandwidth
  /// and RTT at `telemetry_interval_s`.
  FrameworkRuntime(hp::netsim::Topology topo, std::vector<TunnelPlan> plans,
                   HecateConfig hecate_config = {},
                   double telemetry_interval_s = 1.0);

  /// Convenience: Fig 9 topology with the three tunnels of experiment 2
  /// (1: MIA-SAO-AMS, 2: MIA-CHI-AMS, 3: MIA-CAL-CHI-AMS).
  [[nodiscard]] static FrameworkRuntime global_p4_lab(
      HecateConfig hecate_config = {});

  /// PCE-style automatic tunnel planning: derive up to `k` tunnel plans
  /// from the k-shortest loopless router paths between two hosts
  /// (tunnel ids 1..k, best metric first).  Throws std::invalid_argument
  /// when no path exists.
  [[nodiscard]] static std::vector<TunnelPlan> plan_tunnels(
      const hp::netsim::Topology& topo, const std::string& src_host,
      const std::string& dst_host, std::size_t k,
      hp::netsim::PathMetric metric = hp::netsim::PathMetric::kDelay);

  [[nodiscard]] hp::netsim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] hp::telemetry::TimeSeriesStore& store() noexcept {
    return store_;
  }
  [[nodiscard]] HecateService& hecate() noexcept { return hecate_; }
  [[nodiscard]] PolkaService& polka() noexcept { return *polka_; }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] Dashboard& dashboard() noexcept { return *dashboard_; }
  [[nodiscard]] hp::freertr::RouterConfigService& edge() noexcept {
    return edge_;
  }

  /// Train Hecate on the telemetry collected so far for every tunnel
  /// bandwidth series that has enough samples; returns how many models
  /// were (re)trained.
  std::size_t train_hecate_from_telemetry();

  /// Drain the Scheduler: admit every pending request at time `at_s`
  /// with the given objective.  Returns managed-flow indices.
  std::vector<std::size_t> admit_pending(double at_s, Objective objective);

 private:
  std::unique_ptr<hp::netsim::Simulator> sim_;
  hp::telemetry::TimeSeriesStore store_;
  hp::freertr::RouterConfigService edge_{"MIA"};
  HecateService hecate_;
  std::unique_ptr<PolkaService> polka_;
  std::unique_ptr<Controller> controller_;
  Scheduler scheduler_;
  std::unique_ptr<Dashboard> dashboard_;
};

}  // namespace hp::core
