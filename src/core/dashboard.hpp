#pragma once
// Dashboard: "visual feedback through link occupation graphs" (Fig 4).
//
// Renders ASCII reports from simulator and telemetry series: per-link
// occupation bars, flow-rate tables, and probe (RTT) timelines.  The
// benches print these to regenerate the paper's figures as text.

#include <string>
#include <vector>

#include "netsim/simulator.hpp"
#include "telemetry/store.hpp"

namespace hp::core {

class Dashboard {
 public:
  explicit Dashboard(const hp::netsim::Simulator& sim) : sim_(&sim) {}

  /// One bar per directed link with nonzero load:
  /// "MIA->SAO [#####     ] 10.0/20.0 Mbps".
  [[nodiscard]] std::string link_occupation_report(unsigned width = 30) const;

  /// Tabulate a sampled series as "t  value" rows, optionally
  /// downsampled to at most `max_rows` rows.
  [[nodiscard]] static std::string series_table(
      const std::vector<hp::netsim::Sample>& series,
      const std::string& header, std::size_t max_rows = 40);

  /// Sparkline-style strip chart of a series (one char per bucket).
  [[nodiscard]] static std::string strip_chart(
      const std::vector<hp::netsim::Sample>& series, std::size_t width = 60);

  /// Mean of series values within [t0, t1].
  [[nodiscard]] static double mean_between(
      const std::vector<hp::netsim::Sample>& series, double t0, double t1);

 private:
  const hp::netsim::Simulator* sim_;
};

}  // namespace hp::core
