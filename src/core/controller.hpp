#pragma once
// Controller and Scheduler: the orchestration of Fig 4.
//
// The Dashboard inserts flow requests into the Scheduler; the Scheduler
// notifies the Controller; the Controller gathers telemetry, consults
// the Optimizer (Hecate) and instructs the SR service (PolKA) before
// admitting the flow into the network.  Re-optimization migrates a
// running flow onto a better tunnel with one PBR rewrite.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/hecate.hpp"
#include "core/polka_service.hpp"
#include "freertr/config_model.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/store.hpp"

namespace hp::core {

/// What the Controller optimizes when picking a tunnel.
enum class Objective {
  kMinLatency,          ///< experiment 1: lowest path RTT
  kPredictedBandwidth,  ///< Hecate forecast (the paper's framework)
  kCurrentBandwidth,    ///< reactive baseline: latest telemetry sample
  kFirstConfigured,     ///< phase (i): arbitrary path, no optimization
};

/// A user flow request as entered on the Dashboard.
struct FlowRequest {
  std::string name;
  std::string acl_name;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  unsigned protocol = 6;
  std::optional<unsigned> tos;
  double demand_mbps = std::numeric_limits<double>::infinity();
  std::string src_host = "host1";
  std::string dst_host = "host2";
};

/// FIFO of pending flow requests (the Scheduler of Fig 4).
class Scheduler {
 public:
  void submit(FlowRequest request) { pending_.push_back(std::move(request)); }
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  /// Pop the next request; throws std::out_of_range when empty.
  FlowRequest next();

 private:
  std::deque<FlowRequest> pending_;
};

/// A flow the Controller admitted and tracks.
struct ManagedFlow {
  FlowRequest request;
  hp::netsim::FlowId sim_flow = 0;
  unsigned tunnel_id = 0;
};

class Controller {
 public:
  Controller(hp::netsim::Simulator& sim, hp::telemetry::TimeSeriesStore& store,
             HecateService& hecate, PolkaService& polka);

  /// Register a tunnel as a candidate for flows toward `dst_host`.
  void register_candidate(unsigned tunnel_id);
  [[nodiscard]] const std::vector<unsigned>& candidates() const noexcept {
    return candidates_;
  }

  /// Fig 4 "newFlow": choose a tunnel per `objective`, program the edge
  /// (ACL + PBR), and admit the flow into the simulator at `at_s`.
  /// Returns the managed-flow handle.
  std::size_t handle_new_flow(const FlowRequest& request, double at_s,
                              Objective objective);

  /// Re-optimize one managed flow at `at_s`: consult the optimizer
  /// again and migrate when a different tunnel wins.  Returns the
  /// chosen tunnel id.
  unsigned reoptimize(std::size_t managed_index, double at_s,
                      Objective objective);

  /// Failure recovery (paper future work; a PolKA selling point): move
  /// every managed flow whose tunnel crosses a down link onto the best
  /// healthy candidate per `objective` -- one PBR rewrite per affected
  /// flow, nothing to update in the stateless core.  Returns the number
  /// of flows migrated.  Throws std::runtime_error when an affected
  /// flow has no healthy candidate tunnel.
  std::size_t recover_from_failures(double at_s, Objective objective);

  /// Is every link of this tunnel currently up?
  [[nodiscard]] bool tunnel_healthy(unsigned tunnel_id) const;

  /// Split one finite demand across *all* healthy candidate tunnels
  /// with the Section III min-max LP (utilization-balancing), creating
  /// one managed subflow per tunnel that receives a nonzero share
  /// ("<name>.k" ACLs).  Returns the managed indices.  Throws
  /// std::invalid_argument for infinite demand and std::domain_error
  /// when the demand exceeds the candidates' total bottleneck capacity.
  std::vector<std::size_t> split_flow(const FlowRequest& request,
                                      double at_s);

  /// The tunnel-selection logic, exposed for tests and ablations.
  [[nodiscard]] unsigned choose_tunnel(Objective objective) const;

  [[nodiscard]] const ManagedFlow& managed(std::size_t index) const {
    return managed_.at(index);
  }
  [[nodiscard]] std::size_t managed_count() const noexcept {
    return managed_.size();
  }

  /// Telemetry series name used for a tunnel's available bandwidth.
  [[nodiscard]] static std::string bandwidth_series(const Tunnel& tunnel) {
    return tunnel.name + ".available_mbps";
  }

 private:
  hp::netsim::Simulator* sim_;
  hp::telemetry::TimeSeriesStore* store_;
  HecateService* hecate_;
  PolkaService* polka_;
  std::vector<unsigned> candidates_;
  std::vector<ManagedFlow> managed_;
};

}  // namespace hp::core
