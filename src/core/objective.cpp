#include "core/objective.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hp::core {

bool is_feasible(const TwoPathProblem& p) {
  return p.demand >= 0.0 && p.capacity1 >= 0.0 && p.capacity2 >= 0.0 &&
         p.demand <= p.capacity1 + p.capacity2;
}

DemandSplit solve_linear_cost(const TwoPathProblem& p) {
  if (!is_feasible(p)) {
    throw std::domain_error("solve_linear_cost: infeasible demand");
  }
  DemandSplit s;
  // Corner solution of the LP: saturate the cheaper path first.
  if (p.cost1 <= p.cost2) {
    s.x1 = std::min(p.demand, p.capacity1);
    s.x2 = p.demand - s.x1;
  } else {
    s.x2 = std::min(p.demand, p.capacity2);
    s.x1 = p.demand - s.x2;
  }
  s.objective = p.cost1 * s.x1 + p.cost2 * s.x2;
  return s;
}

DemandSplit solve_min_max_utilization(const TwoPathProblem& p) {
  if (!is_feasible(p)) {
    throw std::domain_error("solve_min_max_utilization: infeasible demand");
  }
  if (p.capacity1 + p.capacity2 <= 0.0) {
    throw std::domain_error("solve_min_max_utilization: no capacity");
  }
  DemandSplit s;
  // Equal utilization split (both paths at h / (c1 + c2)).
  s.x1 = p.demand * p.capacity1 / (p.capacity1 + p.capacity2);
  s.x2 = p.demand - s.x1;
  const double u1 = p.capacity1 > 0.0 ? s.x1 / p.capacity1 : 0.0;
  const double u2 = p.capacity2 > 0.0 ? s.x2 / p.capacity2 : 0.0;
  s.objective = std::max(u1, u2);
  return s;
}

double delay_objective_value(const TwoPathProblem& p, double x1) {
  const double x2 = p.demand - x1;
  if (x1 < 0.0 || x2 < 0.0 || x1 >= p.capacity1 || x2 >= p.capacity2) {
    return std::numeric_limits<double>::infinity();
  }
  return x1 / (p.capacity1 - x1) + 2.0 * x2 / (p.capacity2 - x2);
}

DemandSplit solve_delay_objective(const TwoPathProblem& p) {
  if (p.demand >= p.capacity1 + p.capacity2) {
    throw std::domain_error("solve_delay_objective: needs h < c1 + c2");
  }
  if (p.demand < 0.0) {
    throw std::domain_error("solve_delay_objective: negative demand");
  }
  // Feasible interval for x1: both paths strictly under capacity.
  const double lo = std::max(0.0, p.demand - p.capacity2 + 1e-12);
  const double hi = std::min(p.capacity1 - 1e-12, p.demand);
  DemandSplit s;
  if (lo >= hi) {  // single feasible point (or h == 0)
    s.x1 = std::clamp(p.demand, lo, std::max(lo, hi));
    s.x2 = p.demand - s.x1;
    s.objective = delay_objective_value(p, s.x1);
    return s;
  }
  // f(x1) = x1/(c1-x1) + 2(h-x1)/(c2-(h-x1)) is strictly convex; golden
  // section search is robust to the boundary asymptotes.
  constexpr double kPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x_left = b - kPhi * (b - a);
  double x_right = a + kPhi * (b - a);
  double f_left = delay_objective_value(p, x_left);
  double f_right = delay_objective_value(p, x_right);
  for (int it = 0; it < 200 && (b - a) > 1e-12; ++it) {
    if (f_left < f_right) {
      b = x_right;
      x_right = x_left;
      f_right = f_left;
      x_left = b - kPhi * (b - a);
      f_left = delay_objective_value(p, x_left);
    } else {
      a = x_left;
      x_left = x_right;
      f_left = f_right;
      x_right = a + kPhi * (b - a);
      f_right = delay_objective_value(p, x_right);
    }
  }
  s.x1 = 0.5 * (a + b);
  s.x2 = p.demand - s.x1;
  s.objective = delay_objective_value(p, s.x1);
  return s;
}

std::vector<double> solve_k_path_min_max(
    double demand, const std::vector<double>& path_capacities) {
  const std::size_t k = path_capacities.size();
  if (k == 0) throw std::domain_error("solve_k_path_min_max: no paths");
  // Variables: x_0..x_{k-1}, t.  Minimize t subject to
  //   sum x = demand;  x_i - c_i * t <= 0;  x_i <= c_i.
  LpProblem lp;
  const std::size_t nvars = k + 1;
  const std::size_t nrows = 1 + k + k;
  lp.a = Matrix(nrows, nvars, 0.0);
  lp.b.assign(nrows, 0.0);
  lp.senses.assign(nrows, Sense::kLessEqual);
  lp.c.assign(nvars, 0.0);
  lp.c[k] = 1.0;  // minimize t

  // Row 0: sum x_i == demand.
  for (std::size_t i = 0; i < k; ++i) lp.a(0, i) = 1.0;
  lp.b[0] = demand;
  lp.senses[0] = Sense::kEqual;
  // Rows 1..k: x_i - c_i t <= 0.
  for (std::size_t i = 0; i < k; ++i) {
    lp.a(1 + i, i) = 1.0;
    lp.a(1 + i, k) = -path_capacities[i];
  }
  // Rows k+1..2k: x_i <= c_i.
  for (std::size_t i = 0; i < k; ++i) {
    lp.a(1 + k + i, i) = 1.0;
    lp.b[1 + k + i] = path_capacities[i];
  }

  const LpSolution sol = solve_lp(lp);
  if (sol.status != LpStatus::kOptimal) {
    throw std::domain_error("solve_k_path_min_max: infeasible");
  }
  return {sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(k)};
}

}  // namespace hp::core
