#pragma once
// PolKA Service: the source-routing side of the framework.
//
// Owns the PolKA fabric mirror of the router topology, computes routeIDs
// for explicit tunnels (the freeRtr "tunnel domain-name" conversion the
// paper describes), and programs the ingress edge router through the
// message-queue reconfiguration service.  Flow steering is always a
// single PBR rewrite at the edge -- the property Figs 11/12 demonstrate.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "freertr/router_service.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"

namespace hp::core {

/// A configured PolKA tunnel.
struct Tunnel {
  unsigned id = 0;
  std::vector<std::string> routers;  ///< explicit path, ingress first
  hp::netsim::Path netsim_path;      ///< router-to-router directed links
  hp::polka::RouteId route_id;       ///< CRT-encoded label
  std::string name;                  ///< e.g. "tunnel1"
};

/// Outcome of streaming data-plane packets through the compiled fabric.
struct BatchForwardReport {
  std::size_t packets = 0;
  std::size_t mod_operations = 0;
  /// Packets whose egress diverged from the scalar reference walk for
  /// their tunnel (0 on a healthy fabric; a data-plane self-check).
  std::size_t mismatches = 0;
};

class PolkaService {
 public:
  /// Builds the PolKA fabric from the router subgraph of `topo` and
  /// attaches to the ingress edge's reconfiguration service.
  PolkaService(const hp::netsim::Topology& topo,
               hp::freertr::RouterConfigService& edge);

  /// Define a tunnel along `routers` (>= 2 names, consecutive ones must
  /// be linked in the topology).  Computes the routeID and pushes the
  /// interface/tunnel configuration to the edge router.  The tunnel's
  /// egress port points at `egress_host`.
  const Tunnel& define_tunnel(unsigned id,
                              const std::vector<std::string>& routers,
                              const std::string& egress_host,
                              const std::string& destination_ip);

  /// Install a flow-classification ACL on the edge.
  void install_access_list(const hp::freertr::AccessList& acl);

  /// Bind (or re-bind) an ACL to a tunnel -- the one-line PBR migration.
  /// Returns the edge config revision after the change.
  std::uint64_t bind_flow(const std::string& acl_name, unsigned tunnel_id,
                          const std::string& nexthop_ip);

  [[nodiscard]] const Tunnel& tunnel(unsigned id) const;
  [[nodiscard]] bool has_tunnel(unsigned id) const {
    return tunnels_.contains(id);
  }
  [[nodiscard]] const std::map<unsigned, Tunnel>& tunnels() const noexcept {
    return tunnels_;
  }

  /// Full netsim path for traffic from `src_host` through a tunnel to
  /// `dst_host` (host access links prepended/appended).
  [[nodiscard]] hp::netsim::Path host_to_host_path(
      unsigned tunnel_id, const std::string& src_host,
      const std::string& dst_host) const;

  /// Verify in the fabric that the routeID actually traverses the
  /// tunnel's routers (a data-plane self-check; throws std::logic_error
  /// on mismatch).  Returns the number of mod operations performed.
  std::size_t verify_tunnel(unsigned id) const;

  [[nodiscard]] const hp::polka::PolkaFabric& fabric() const noexcept {
    return fabric_;
  }

  /// The batched uint64 data-plane view of the fabric (compiled lazily,
  /// cached until the topology changes).
  [[nodiscard]] const hp::polka::CompiledFabric& compiled_fabric() const {
    return fabric_.compiled();
  }

  /// Stream `packets_per_tunnel` label packets through every defined
  /// tunnel via the batched fast path, checking each packet against the
  /// scalar reference walk.  Throws std::logic_error when no tunnels
  /// are defined.
  [[nodiscard]] BatchForwardReport forward_batch(
      std::size_t packets_per_tunnel) const;

  /// Replay a netsim workload on the data plane: each scheduled flow's
  /// bytes become MTU-sized packets carrying its tunnel's label
  /// (tunnels assigned round-robin), streamed through the compiled
  /// fabric in chunks of `batch_size` with per-packet ingress nodes.
  /// With `threads` > 1 the packet stream is materialized (16 bytes
  /// per packet -- size workloads accordingly) and sharded across that
  /// many workers via the scenario engine's replay primitive;
  /// oversized routeIDs always take the single-threaded scalar path.
  /// This is how traffic workloads report data-plane packets/sec.
  [[nodiscard]] BatchForwardReport replay_workload(
      const std::vector<hp::netsim::ScheduledFlow>& flows,
      std::size_t batch_size = 256, double mtu_bytes = 1500.0,
      unsigned threads = 1) const;

 private:
  const hp::netsim::Topology* topo_;
  hp::freertr::RouterConfigService* edge_;
  hp::polka::PolkaFabric fabric_;
  std::map<unsigned, Tunnel> tunnels_;
  std::map<unsigned, std::string> tunnel_egress_host_;
  std::uint64_t next_message_id_ = 1;

  void push_config(const std::string& commands);
};

}  // namespace hp::core
