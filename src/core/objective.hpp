#pragma once
// The Section III objective functions for the two-path demand-split
// problem of Fig 2, plus a general K-path min-max LP formulation.
//
// Notation follows the paper: demand volume h arrives at source s and
// can be split between the direct path (x_sd) and the path via node i
// (x_sid); each path has a capacity c and a unit cost xi.

#include <vector>

#include "core/lp.hpp"

namespace hp::core {

/// The Fig 2 instance: split demand h over two capacitated paths.
struct TwoPathProblem {
  double demand = 0.0;      ///< h
  double capacity1 = 0.0;   ///< c for path s-d
  double capacity2 = 0.0;   ///< c for path s-i-d
  double cost1 = 1.0;       ///< xi_sd   (Eq 2)
  double cost2 = 1.0;       ///< xi_sid  (Eq 2)
};

/// A demand split; valid iff x1 + x2 == h within tolerance and both
/// parts respect their capacities.
struct DemandSplit {
  double x1 = 0.0;
  double x2 = 0.0;
  double objective = 0.0;
};

/// Is the problem feasible at all (h <= c1 + c2, strict for delay)?
[[nodiscard]] bool is_feasible(const TwoPathProblem& p);

/// Eq 2: minimize xi1*x1 + xi2*x2 -- a corner solution: fill the cheaper
/// path first.  Throws std::domain_error when infeasible.
[[nodiscard]] DemandSplit solve_linear_cost(const TwoPathProblem& p);

/// Min-max link utilization: minimize max(x1/c1, x2/c2); the optimum
/// equalizes utilizations, x1 = h*c1/(c1+c2).  The objective field holds
/// the max utilization.
[[nodiscard]] DemandSplit solve_min_max_utilization(const TwoPathProblem& p);

/// Eq 3: minimize x1/(c1-x1) + 2*x2/(c2-x2) (the M/M/1 delay objective
/// with the via path counted twice for its two hops).  Requires
/// h < c1 + c2 strictly; solved by bisection on the derivative (the
/// objective is strictly convex on the feasible interval).
[[nodiscard]] DemandSplit solve_delay_objective(const TwoPathProblem& p);

/// Evaluate Eq 3's objective at a given split (infinity at/over
/// capacity) -- used by tests and the ablation bench.
[[nodiscard]] double delay_objective_value(const TwoPathProblem& p, double x1);

/// General K-path min-max: distribute `demand` over `path_capacities`
/// minimizing the maximum utilization, as an LP (variables x_k and the
/// max-utilization t).  Returns per-path allocations; throws
/// std::domain_error when infeasible.
[[nodiscard]] std::vector<double> solve_k_path_min_max(
    double demand, const std::vector<double>& path_capacities);

}  // namespace hp::core
