#include "core/contracts.hpp"

#include <string>

namespace hp::core {

void contract_failed(const char* expr, const char* file, int line,
                     const char* what) {
  std::string message;
  message.reserve(128);
  message.append(what);
  message.append(": !(");
  message.append(expr);
  message.append(") at ");
  message.append(file);
  message.push_back(':');
  message.append(std::to_string(line));
  throw ContractViolation(message);
}

}  // namespace hp::core
