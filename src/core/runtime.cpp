#include "core/runtime.hpp"

namespace hp::core {

FrameworkRuntime::FrameworkRuntime(hp::netsim::Topology topo,
                                   std::vector<TunnelPlan> plans,
                                   HecateConfig hecate_config,
                                   double telemetry_interval_s)
    : sim_(std::make_unique<hp::netsim::Simulator>(std::move(topo))),
      hecate_(std::move(hecate_config)) {
  polka_ = std::make_unique<PolkaService>(sim_->topology(), edge_);
  controller_ =
      std::make_unique<Controller>(*sim_, store_, hecate_, *polka_);
  dashboard_ = std::make_unique<Dashboard>(*sim_);

  for (const TunnelPlan& plan : plans) {
    const Tunnel& tunnel = polka_->define_tunnel(
        plan.id, plan.routers, plan.egress_host, plan.destination_ip);
    polka_->verify_tunnel(plan.id);  // data-plane self-check
    controller_->register_candidate(plan.id);

    hp::telemetry::PathAgentConfig agent_config;
    agent_config.path_name = tunnel.name;
    agent_config.path = tunnel.netsim_path;
    agent_config.interval_s = telemetry_interval_s;
    hp::telemetry::PathAgent agent(agent_config, store_);
    agent.start(*sim_, 0.0);
  }
}

FrameworkRuntime FrameworkRuntime::global_p4_lab(HecateConfig hecate_config) {
  std::vector<TunnelPlan> plans{
      TunnelPlan{1, {"MIA", "SAO", "AMS"}, "host2", "20.20.0.7"},
      TunnelPlan{2, {"MIA", "CHI", "AMS"}, "host2", "20.20.0.7"},
      TunnelPlan{3, {"MIA", "CAL", "CHI", "AMS"}, "host2", "20.20.0.7"},
  };
  return FrameworkRuntime(hp::netsim::make_global_p4_lab(), std::move(plans),
                          std::move(hecate_config));
}

std::vector<TunnelPlan> FrameworkRuntime::plan_tunnels(
    const hp::netsim::Topology& topo, const std::string& src_host,
    const std::string& dst_host, std::size_t k,
    hp::netsim::PathMetric metric) {
  const auto paths = hp::netsim::k_shortest_paths(
      topo, topo.index_of(src_host), topo.index_of(dst_host), k, metric);
  if (paths.empty()) {
    throw std::invalid_argument("plan_tunnels: no path between " + src_host +
                                " and " + dst_host);
  }
  std::vector<TunnelPlan> plans;
  unsigned id = 1;
  for (const auto& path : paths) {
    const auto nodes = hp::netsim::path_nodes(topo, path);
    TunnelPlan plan;
    plan.id = id++;
    plan.egress_host = dst_host;
    // Strip the host endpoints: tunnels span routers only.
    for (std::size_t i = 1; i + 1 < nodes.size(); ++i) {
      plan.routers.push_back(topo.node(nodes[i]).name);
    }
    if (plan.routers.size() < 2) continue;  // degenerate one-router path
    plans.push_back(std::move(plan));
  }
  if (plans.empty()) {
    throw std::invalid_argument(
        "plan_tunnels: no multi-router path between " + src_host + " and " +
        dst_host);
  }
  return plans;
}

std::size_t FrameworkRuntime::train_hecate_from_telemetry() {
  // Rebuild Hecate's view from the Telemetry Service each training
  // round (the Controller "retrieves the stored telemetry data ... and
  // provides it to the Optimizer", Fig 4).  The member is reassigned in
  // place, so the Controller's reference stays valid.
  hecate_ = HecateService(hecate_.config());
  std::size_t trained = 0;
  for (const auto& [id, tunnel] : polka_->tunnels()) {
    const std::string series = Controller::bandwidth_series(tunnel);
    const auto values = store_.last_values(series, store_.size(series));
    if (values.size() < hecate_.config().history + 2) continue;
    hecate_.load_series(series, values);
    hecate_.fit(series);
    ++trained;
  }
  return trained;
}

std::vector<std::size_t> FrameworkRuntime::admit_pending(double at_s,
                                                         Objective objective) {
  std::vector<std::size_t> admitted;
  while (!scheduler_.empty()) {
    admitted.push_back(
        controller_->handle_new_flow(scheduler_.next(), at_s, objective));
  }
  return admitted;
}

}  // namespace hp::core
