#include "core/controller.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/objective.hpp"

namespace hp::core {

FlowRequest Scheduler::next() {
  if (pending_.empty()) throw std::out_of_range("Scheduler: no requests");
  FlowRequest request = std::move(pending_.front());
  pending_.pop_front();
  return request;
}

Controller::Controller(hp::netsim::Simulator& sim,
                       hp::telemetry::TimeSeriesStore& store,
                       HecateService& hecate, PolkaService& polka)
    : sim_(&sim), store_(&store), hecate_(&hecate), polka_(&polka) {}

void Controller::register_candidate(unsigned tunnel_id) {
  if (!polka_->has_tunnel(tunnel_id)) {
    throw std::invalid_argument("register_candidate: unknown tunnel " +
                                std::to_string(tunnel_id));
  }
  candidates_.push_back(tunnel_id);
}

bool Controller::tunnel_healthy(unsigned tunnel_id) const {
  for (const hp::netsim::LinkIndex l :
       polka_->tunnel(tunnel_id).netsim_path) {
    if (!sim_->is_link_up(l)) return false;
  }
  return true;
}

unsigned Controller::choose_tunnel(Objective objective) const {
  if (candidates_.empty()) {
    throw std::logic_error("Controller: no candidate tunnels registered");
  }
  // Down tunnels never win; if everything is down, fall back to the
  // full list (the caller will see zero throughput either way).
  std::vector<unsigned> pool;
  for (const unsigned id : candidates_) {
    if (tunnel_healthy(id)) pool.push_back(id);
  }
  if (pool.empty()) pool = candidates_;

  switch (objective) {
    case Objective::kFirstConfigured:
      return pool.front();

    case Objective::kMinLatency: {
      // Lowest current RTT over the tunnel's router path.
      unsigned best = pool.front();
      double best_rtt = std::numeric_limits<double>::infinity();
      for (const unsigned id : pool) {
        const double rtt = sim_->path_rtt_ms(polka_->tunnel(id).netsim_path);
        if (rtt < best_rtt) {
          best_rtt = rtt;
          best = id;
        }
      }
      return best;
    }

    case Objective::kCurrentBandwidth: {
      // Reactive: latest telemetry sample of available bandwidth.
      unsigned best = pool.front();
      double best_bw = -1.0;
      for (const unsigned id : pool) {
        const auto latest =
            store_->latest(bandwidth_series(polka_->tunnel(id)));
        const double bw = latest ? latest->value : 0.0;
        if (bw > best_bw) {
          best_bw = bw;
          best = id;
        }
      }
      return best;
    }

    case Objective::kPredictedBandwidth: {
      // Predictive: Hecate's multi-step forecast per tunnel series.
      std::vector<std::string> series;
      series.reserve(pool.size());
      for (const unsigned id : pool) {
        series.push_back(bandwidth_series(polka_->tunnel(id)));
      }
      const auto recommended = hecate_->recommend(series);
      if (!recommended) {
        // No trained model yet: fall back to the reactive choice, which
        // is exactly the paper's phase (i) -> phase (ii) progression.
        return choose_tunnel(Objective::kCurrentBandwidth);
      }
      for (std::size_t k = 0; k < series.size(); ++k) {
        if (series[k] == *recommended) return pool[k];
      }
      return pool.front();
    }
  }
  throw std::logic_error("Controller: unknown objective");
}

std::size_t Controller::handle_new_flow(const FlowRequest& request,
                                        double at_s, Objective objective) {
  const unsigned tunnel_id = choose_tunnel(objective);

  // Program the edge: classification ACL, then the PBR binding.
  hp::freertr::AccessList acl;
  acl.name = request.acl_name;
  acl.protocol = request.protocol;
  acl.source = hp::freertr::Prefix{request.src_ip, 24};
  acl.destination = hp::freertr::Prefix{request.dst_ip, 32};
  acl.tos = request.tos;
  polka_->install_access_list(acl);
  polka_->bind_flow(request.acl_name, tunnel_id,
                    hp::freertr::ipv4_to_string(request.dst_ip));

  // Admit the flow into the network on the tunnel's end-to-end path.
  hp::netsim::FlowSpec spec;
  spec.name = request.name;
  spec.path = polka_->host_to_host_path(tunnel_id, request.src_host,
                                        request.dst_host);
  spec.demand_mbps = request.demand_mbps;
  spec.tos = request.tos ? static_cast<int>(*request.tos) : 0;
  const hp::netsim::FlowId sim_flow = sim_->add_flow(at_s, std::move(spec));

  managed_.push_back(ManagedFlow{request, sim_flow, tunnel_id});
  return managed_.size() - 1;
}

unsigned Controller::reoptimize(std::size_t managed_index, double at_s,
                                Objective objective) {
  ManagedFlow& flow = managed_.at(managed_index);
  const unsigned chosen = choose_tunnel(objective);
  if (chosen == flow.tunnel_id) return chosen;

  // One PBR rewrite at the ingress edge...
  polka_->bind_flow(flow.request.acl_name, chosen,
                    hp::freertr::ipv4_to_string(flow.request.dst_ip));
  // ...and the corresponding path change in the network.
  sim_->migrate_flow(at_s, flow.sim_flow,
                     polka_->host_to_host_path(chosen, flow.request.src_host,
                                               flow.request.dst_host));
  flow.tunnel_id = chosen;
  return chosen;
}

std::vector<std::size_t> Controller::split_flow(const FlowRequest& request,
                                                double at_s) {
  if (!std::isfinite(request.demand_mbps)) {
    throw std::invalid_argument("split_flow: demand must be finite");
  }
  std::vector<unsigned> pool;
  std::vector<double> capacities;
  for (const unsigned id : candidates_) {
    if (!tunnel_healthy(id)) continue;
    pool.push_back(id);
    capacities.push_back(sim_->topology().path_bottleneck_mbps(
        polka_->tunnel(id).netsim_path));
  }
  if (pool.empty()) throw std::domain_error("split_flow: no healthy tunnel");
  // Section III min-max LP: balance utilization across the tunnels.
  const std::vector<double> shares =
      solve_k_path_min_max(request.demand_mbps, capacities);

  std::vector<std::size_t> indices;
  for (std::size_t k = 0; k < pool.size(); ++k) {
    if (shares[k] <= 1e-9) continue;
    FlowRequest sub = request;
    sub.name = request.name + "." + std::to_string(k);
    sub.acl_name = request.acl_name + "." + std::to_string(k);
    sub.demand_mbps = shares[k];

    const Tunnel& tunnel = polka_->tunnel(pool[k]);
    hp::freertr::AccessList acl;
    acl.name = sub.acl_name;
    acl.protocol = sub.protocol;
    acl.source = hp::freertr::Prefix{sub.src_ip, 24};
    acl.destination = hp::freertr::Prefix{sub.dst_ip, 32};
    acl.tos = sub.tos;
    polka_->install_access_list(acl);
    polka_->bind_flow(sub.acl_name, tunnel.id,
                      hp::freertr::ipv4_to_string(sub.dst_ip));

    hp::netsim::FlowSpec spec;
    spec.name = sub.name;
    spec.path =
        polka_->host_to_host_path(tunnel.id, sub.src_host, sub.dst_host);
    spec.demand_mbps = sub.demand_mbps;
    spec.tos = sub.tos ? static_cast<int>(*sub.tos) : 0;
    const hp::netsim::FlowId sim_flow = sim_->add_flow(at_s, std::move(spec));
    managed_.push_back(ManagedFlow{std::move(sub), sim_flow, tunnel.id});
    indices.push_back(managed_.size() - 1);
  }
  return indices;
}

std::size_t Controller::recover_from_failures(double at_s,
                                              Objective objective) {
  std::size_t migrated = 0;
  for (std::size_t i = 0; i < managed_.size(); ++i) {
    if (tunnel_healthy(managed_[i].tunnel_id)) continue;
    const unsigned chosen = choose_tunnel(objective);
    if (!tunnel_healthy(chosen)) {
      throw std::runtime_error(
          "recover_from_failures: no healthy candidate tunnel for flow " +
          managed_[i].request.name);
    }
    ManagedFlow& flow = managed_[i];
    polka_->bind_flow(flow.request.acl_name, chosen,
                      hp::freertr::ipv4_to_string(flow.request.dst_ip));
    sim_->migrate_flow(
        at_s, flow.sim_flow,
        polka_->host_to_host_path(chosen, flow.request.src_host,
                                  flow.request.dst_host));
    flow.tunnel_id = chosen;
    ++migrated;
  }
  return migrated;
}

}  // namespace hp::core
