#pragma once
// TelemetryBridge: sample registry gauges into the Telemetry Service.
//
// The paper's control loop reads per-path load and latency as
// time-indexed series from a Telemetry Service (src/telemetry's
// TimeSeriesStore); the reproduction's packet-level data plane exposes
// its live state as MetricRegistry gauges.  The bridge is the thin
// joint: each sample(t_s) call appends every registered gauge's
// current value to the store under its metric name, so the seed's
// range/last-k query API -- and everything stacked on it (the ML
// regressors' windowing, the controller) -- now reads real simulated
// data-plane state.
//
// Who drives the tick matters: PacketSim calls sample() on *simulated*
// tick boundaries (SimOptions::telemetry_period_ns), never wall clock,
// so a fixed-seed run writes a bit-identical series set at any thread
// count.

#include "obs/metrics.hpp"
#include "telemetry/store.hpp"

namespace hp::obs {

class TelemetryBridge {
 public:
  /// Both the registry and the store are borrowed and must outlive the
  /// bridge.
  TelemetryBridge(const MetricRegistry& registry,
                  telemetry::TimeSeriesStore& store)
      : registry_(registry), store_(store) {}

  /// Append every gauge's current value at time `t_s` (seconds).
  /// Returns the number of series written.  Timestamps must be
  /// non-decreasing across calls (the store enforces per-series
  /// monotonicity).
  std::size_t sample(double t_s);

  [[nodiscard]] std::size_t samples_taken() const noexcept {
    return samples_;
  }

 private:
  const MetricRegistry& registry_;
  telemetry::TimeSeriesStore& store_;
  std::size_t samples_ = 0;
};

}  // namespace hp::obs
