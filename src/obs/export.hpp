#pragma once
// Machine-readable export: one JSON writer, one schema, every report.
//
// Free-form printf reports cannot be diffed across PRs, so every
// artifact the project emits for CI goes through here:
//
//  * JsonWriter -- a minimal, allocation-light JSON serializer (objects,
//    arrays, escaped strings, integers, shortest-round-trip doubles).
//    No external dependency; deterministic output for deterministic
//    inputs, so fixed-seed reports diff bit-identically.
//
//  * BenchReport -- the `hp-bench-v1` schema behind every BENCH_*.json
//    file: {"schema", "bench", "results": [{"name", "value", "unit",
//    "label", "counters": {...}}]}.  Google-Benchmark binaries fill it
//    through bench/bench_json.hpp's capturing reporter; plain-main
//    benches append results directly.  write_default() drops
//    BENCH_<bench>.json into $HP_BENCH_JSON_DIR (default: the current
//    directory), which is what CI's bench-smoke validates with
//    scripts/check_bench_json.py.
//
//  * to_json(...) -- `hp-report-v1` serializations of ScenarioReport,
//    SimReport and MetricsSnapshot, used by the sweep CLIs' --json
//    flags and by tests pinning snapshot determinism.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hp::scenario {
struct ScenarioReport;
}
namespace hp::sim {
struct SimReport;
}

namespace hp::obs {

struct MetricsSnapshot;

/// Streaming JSON serializer.  Call sequence is validated only by the
/// emitted text (keep calls balanced); commas are managed internally.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Object member key; must be followed by a value or container.
  void key(std::string_view k);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(bool b);

  /// The finished document.
  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& text() const noexcept { return out_; }

  /// Append `s` JSON-escaped (quotes added) -- exposed for tests.
  static void escape_to(std::string& out, std::string_view s);

 private:
  void separate();

  std::string out_;
  std::vector<bool> first_;  ///< per open container: no comma yet?
  bool pending_key_ = false;
};

/// One benchmark measurement in the `hp-bench-v1` schema.
struct BenchResult {
  std::string name;
  double value = 0.0;  ///< the headline number (time, rate, score...)
  std::string unit;    ///< e.g. "ns", "ms", "pps", "rmse"
  std::string label;   ///< free-form context ("clmul-barrett, 64 flows")
  /// Secondary numbers, serialized as a flat "counters" object in
  /// insertion order.
  std::vector<std::pair<std::string, double>> counters;
};

/// The machine-readable outcome of one bench binary.
struct BenchReport {
  static constexpr std::string_view kSchema = "hp-bench-v1";

  explicit BenchReport(std::string bench_name)
      : bench(std::move(bench_name)) {}

  std::string bench;  ///< binary name, e.g. "bench_sim_fct"
  std::vector<BenchResult> results;

  /// Append a result and return it for counter additions.
  BenchResult& add(std::string name, double value, std::string unit,
                   std::string label = {});

  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on failure.
  void write(const std::string& path) const;

  /// Write BENCH_<bench>.json into $HP_BENCH_JSON_DIR (or "."), the
  /// location CI's bench-smoke collects; returns the path written.
  std::string write_default() const;
};

/// `hp-report-v1` serializations (kind: "scenario" / "sim" /
/// "metrics").  A SimReport embeds its forwarding ScenarioReport under
/// "forwarding", mirroring the struct.
[[nodiscard]] std::string to_json(const scenario::ScenarioReport& report);
[[nodiscard]] std::string to_json(const sim::SimReport& report);
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Serialize a snapshot inline into an open writer (after key()),
/// shared by to_json overloads that embed snapshots.
void write_snapshot(JsonWriter& json, const MetricsSnapshot& snapshot);

/// Write `text` to `path` (binary, truncating); throws
/// std::runtime_error on failure.  The one file-dump helper every
/// exporter shares.
void write_text_file(const std::string& path, std::string_view text);

}  // namespace hp::obs
