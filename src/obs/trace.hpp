#pragma once
// Phase tracing: RAII scopes emitting chrome://tracing trace events.
//
// A TraceSink collects complete ("ph": "X") trace events -- name,
// category, per-thread id, microsecond timestamp and duration relative
// to the sink's construction -- and serializes them as the Trace Event
// Format JSON that chrome://tracing and https://ui.perfetto.dev open
// directly.  TraceScope is the only producer most code needs:
//
//   {
//     obs::TraceScope scope(sink, "compile.all_pairs");
//     fabric.compile_all_pairs(threads);
//   }  // one "X" event with the measured duration
//
// Scopes are cheap (two steady_clock reads and one short mutex hold at
// destruction; phase events fire a handful of times per run, never per
// packet) and null-safe: a nullptr sink makes the scope a no-op, the
// same convention as MetricRegistry*.  Thread ids are small integers
// assigned on each thread's first event, so per-thread tracks render
// compactly in the viewer.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hp::obs {

/// One complete-phase event, microseconds relative to the sink epoch.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start, relative to the sink's epoch
  std::uint64_t dur_us = 0;  ///< duration
  std::uint32_t tid = 0;     ///< small per-thread id (first-event order)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Collects trace events and writes Trace Event Format JSON.
class TraceSink {
 public:
  using Clock = std::chrono::steady_clock;

  TraceSink() : epoch_(Clock::now()) {}

  /// The sink's time origin (TraceScope measures against it).
  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

  /// Append one complete event (thread-safe).
  void record(std::string_view name, std::string_view category,
              Clock::time_point start, Clock::time_point end);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// {"traceEvents": [...]} -- the JSON chrome://tracing consumes.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on I/O error.
  void write(const std::string& path) const;

 private:
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII phase timer: records one complete event on destruction.  Null
/// sink = disabled.  The name/category strings must outlive the scope
/// (string literals in practice).
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name,
             const char* category = "phase") noexcept
      : sink_(sink), name_(name), category_(category) {
    if (sink_ != nullptr) start_ = TraceSink::Clock::now();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (sink_ != nullptr) {
      sink_->record(name_, category_, start_, TraceSink::Clock::now());
    }
  }

 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  TraceSink::Clock::time_point start_{};
};

}  // namespace hp::obs
