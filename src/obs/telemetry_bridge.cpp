#include "obs/telemetry_bridge.hpp"

namespace hp::obs {

std::size_t TelemetryBridge::sample(double t_s) {
  const auto gauges = registry_.gauges();
  for (const auto& [name, value] : gauges) {
    store_.append(name, telemetry::Point{t_s, static_cast<double>(value)});
  }
  ++samples_;
  return gauges.size();
}

}  // namespace hp::obs
