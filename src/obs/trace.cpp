#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "obs/export.hpp"

namespace hp::obs {

namespace {

/// Process-wide small thread id, assigned on each thread's first
/// traced event (the Trace Event Format only needs tids to be stable
/// and distinct per thread).
std::uint32_t this_thread_trace_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void TraceSink::record(std::string_view name, std::string_view category,
                       Clock::time_point start, Clock::time_point end) {
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  if (end < start) end = start;
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_us = static_cast<std::uint64_t>(
      duration_cast<microseconds>(start - epoch_).count());
  e.dur_us = static_cast<std::uint64_t>(
      duration_cast<microseconds>(end - start).count());
  e.tid = this_thread_trace_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceSink::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_json() const {
  const std::vector<TraceEvent> events = this->events();
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit");
  json.value("ms");
  json.key("traceEvents");
  json.begin_array();
  for (const TraceEvent& e : events) {
    json.begin_object();
    json.key("name");
    json.value(e.name);
    json.key("cat");
    json.value(e.category);
    json.key("ph");
    json.value("X");
    json.key("ts");
    json.value(e.ts_us);
    json.key("dur");
    json.value(e.dur_us);
    json.key("pid");
    json.value(std::uint64_t{1});
    json.key("tid");
    json.value(std::uint64_t{e.tid});
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

void TraceSink::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceSink: cannot open " + path);
  }
  out << to_json() << '\n';
  if (!out) {
    throw std::runtime_error("TraceSink: write failed for " + path);
  }
}

}  // namespace hp::obs
