#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "sim/report.hpp"

namespace hp::obs {

// --- JsonWriter -------------------------------------------------------

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the key just written
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::end_object() {
  out_.push_back('}');
  first_.pop_back();
}

void JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::end_array() {
  out_.push_back(']');
  first_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  separate();
  escape_to(out_, k);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  escape_to(out_, s);
}

void JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out_ += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips every double and prints integers compactly.
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t u) {
  separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
  out_ += buf;
}

void JsonWriter::value(std::int64_t i) {
  separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, i);
  out_ += buf;
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::escape_to(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// --- file helper ------------------------------------------------------

void write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path);
  }
  out << text << '\n';
  if (!out) {
    throw std::runtime_error("obs: write failed for " + path);
  }
}

// --- BenchReport ------------------------------------------------------

BenchResult& BenchReport::add(std::string name, double value,
                              std::string unit, std::string label) {
  BenchResult r;
  r.name = std::move(name);
  r.value = value;
  r.unit = std::move(unit);
  r.label = std::move(label);
  results.push_back(std::move(r));
  return results.back();
}

std::string BenchReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(kSchema);
  json.key("bench");
  json.value(bench);
  json.key("results");
  json.begin_array();
  for (const BenchResult& r : results) {
    json.begin_object();
    json.key("name");
    json.value(r.name);
    json.key("value");
    json.value(r.value);
    json.key("unit");
    json.value(r.unit);
    if (!r.label.empty()) {
      json.key("label");
      json.value(r.label);
    }
    if (!r.counters.empty()) {
      json.key("counters");
      json.begin_object();
      for (const auto& [name, value] : r.counters) {
        json.key(name);
        json.value(value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

void BenchReport::write(const std::string& path) const {
  write_text_file(path, to_json());
}

std::string BenchReport::write_default() const {
  const char* dir = std::getenv("HP_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path.push_back('/');
  path += "BENCH_" + bench + ".json";
  write(path);
  return path;
}

// --- report serializations -------------------------------------------

namespace {

/// Members of a ScenarioReport, emitted into an open object so the
/// standalone and SimReport-embedded forms share one field list.
void write_scenario_fields(JsonWriter& json,
                           const scenario::ScenarioReport& report) {
  json.key("packets");
  json.value(static_cast<std::uint64_t>(report.packets));
  json.key("mod_operations");
  json.value(static_cast<std::uint64_t>(report.mod_operations));
  json.key("wrong_egress");
  json.value(static_cast<std::uint64_t>(report.wrong_egress));
  json.key("rerouted_pairs");
  json.value(static_cast<std::uint64_t>(report.rerouted_pairs));
  json.key("dropped_packets");
  json.value(static_cast<std::uint64_t>(report.dropped_packets));
  json.key("ttl_expired");
  json.value(static_cast<std::uint64_t>(report.ttl_expired));
  json.key("segmented_packets");
  json.value(static_cast<std::uint64_t>(report.segmented_packets));
  json.key("segment_swaps");
  json.value(static_cast<std::uint64_t>(report.segment_swaps));
  json.key("backup_swapped_pairs");
  json.value(static_cast<std::uint64_t>(report.backup_swapped_pairs));
  json.key("failover_packets_lost");
  json.value(static_cast<std::uint64_t>(report.failover_packets_lost));
  json.key("unroutable_pairs");
  json.value(static_cast<std::uint64_t>(report.unroutable_pairs));
  json.key("lazy_repaired_pairs");
  json.value(static_cast<std::uint64_t>(report.lazy_repaired_pairs));
  json.key("window_recompiles");
  json.value(static_cast<std::uint64_t>(report.window_recompiles));
  json.key("fold_kernel");
  json.value(report.fold_kernel_name());
  json.key("seconds");
  json.value(report.seconds);
  json.key("packets_per_sec");
  json.value(report.packets_per_sec());
}

}  // namespace

std::string to_json(const scenario::ScenarioReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("hp-report-v1");
  json.key("kind");
  json.value("scenario");
  write_scenario_fields(json, report);
  json.end_object();
  return std::move(json).str();
}

std::string to_json(const sim::SimReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("hp-report-v1");
  json.key("kind");
  json.value("sim");
  json.key("forwarding");
  json.begin_object();
  write_scenario_fields(json, report.forwarding);
  json.end_object();
  json.key("flows");
  json.value(static_cast<std::uint64_t>(report.flows));
  json.key("completed_flows");
  json.value(static_cast<std::uint64_t>(report.completed_flows));
  json.key("ecn_marked");
  json.value(static_cast<std::uint64_t>(report.ecn_marked));
  json.key("max_queue_depth");
  json.value(std::uint64_t{report.max_queue_depth});
  json.key("max_link_utilization");
  json.value(report.max_link_utilization);
  json.key("mean_link_utilization");
  json.value(report.mean_link_utilization);
  json.key("duration_ns");
  json.value(static_cast<std::uint64_t>(report.duration_ns));
  json.key("drop_rate");
  json.value(report.drop_rate());
  json.key("fct_p50_ns");
  json.value(static_cast<std::uint64_t>(report.fct_p50_ns()));
  json.key("fct_p95_ns");
  json.value(static_cast<std::uint64_t>(report.fct_p95_ns()));
  json.key("fct_samples");
  json.value(static_cast<std::uint64_t>(report.fct_ns.size()));
  json.key("transport");
  json.begin_object();
  json.key("enabled");
  json.value(report.transport.enabled);
  json.key("packets_sent");
  json.value(report.transport.packets_sent);
  json.key("retransmits");
  json.value(report.transport.retransmits);
  json.key("timeouts");
  json.value(report.transport.timeouts);
  json.key("ecn_cwnd_cuts");
  json.value(report.transport.ecn_cwnd_cuts);
  json.key("drop_cwnd_cuts");
  json.value(report.transport.drop_cwnd_cuts);
  json.key("spurious_deliveries");
  json.value(report.transport.spurious_deliveries);
  json.key("abandoned_flows");
  json.value(report.transport.abandoned_flows);
  json.key("offered_bytes");
  json.value(report.transport.offered_bytes);
  json.key("goodput_bytes");
  json.value(report.transport.goodput_bytes);
  json.key("goodput_fraction");
  json.value(report.goodput_fraction());
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

void write_snapshot(JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_array();
  for (const MetricValue& m : snapshot.entries) {
    json.begin_object();
    json.key("name");
    json.value(m.name);
    json.key("kind");
    json.value(to_string(m.kind));
    switch (m.kind) {
      case MetricKind::kCounter:
        json.key("value");
        json.value(m.counter);
        break;
      case MetricKind::kGauge:
        json.key("value");
        json.value(m.gauge);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        json.key("count");
        json.value(h.count);
        json.key("sum");
        json.value(h.sum);
        json.key("min");
        json.value(h.min);
        json.key("max");
        json.value(h.max);
        json.key("p50");
        json.value(h.percentile(0.50));
        json.key("p95");
        json.value(h.percentile(0.95));
        json.key("buckets");
        json.begin_object();
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          if (h.buckets[b] == 0) continue;
          char name[16];
          std::snprintf(name, sizeof(name), "b%zu", b);
          json.key(name);
          json.value(h.buckets[b]);
        }
        json.end_object();
        break;
      }
    }
    json.end_object();
  }
  json.end_array();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("hp-report-v1");
  json.key("kind");
  json.value("metrics");
  json.key("metrics");
  write_snapshot(json, snapshot);
  json.end_object();
  return std::move(json).str();
}

}  // namespace hp::obs
