#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace hp::obs {

const char* to_string(HopOutcome outcome) noexcept {
  switch (outcome) {
    case HopOutcome::kForwarded:
      return "forwarded";
    case HopOutcome::kDelivered:
      return "delivered";
    case HopOutcome::kTailDrop:
      return "tail_drop";
    case HopOutcome::kTtlExpired:
      return "ttl_expired";
    case HopOutcome::kLinkDown:
      return "link_down";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::uint32_t sample_every)
    : ring_(std::max<std::size_t>(capacity, 1)),
      sample_every_(std::max<std::uint32_t>(sample_every, 1)) {}

void FlightRecorder::record(const HopRecord& r) noexcept {
  ring_[head_] = r;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++total_;
}

std::vector<HopRecord> FlightRecorder::records() const {
  std::vector<HopRecord> out;
  const std::size_t kept = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(kept);
  // Oldest record: at head_ once the ring has wrapped, else at 0.
  const std::size_t start = total_ >= ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() noexcept {
  head_ = 0;
  total_ = 0;
}

std::string FlightRecorder::to_json() const {
  const std::vector<HopRecord> kept = records();
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("hp-flight-v1");
  json.key("sample_every");
  json.value(std::uint64_t{sample_every_});
  json.key("capacity");
  json.value(static_cast<std::uint64_t>(ring_.size()));
  json.key("total_recorded");
  json.value(total_);
  json.key("overwritten");
  json.value(total_ - kept.size());
  json.key("records");
  json.begin_array();
  for (const HopRecord& r : kept) {
    json.begin_object();
    json.key("tick_ns");
    json.value(r.tick_ns);
    json.key("flow");
    json.value(std::uint64_t{r.flow});
    json.key("packet");
    json.value(std::uint64_t{r.packet});
    json.key("node");
    json.value(std::uint64_t{r.node});
    json.key("port");
    json.value(std::uint64_t{r.port});
    json.key("queue_depth");
    json.value(std::uint64_t{r.queue_depth});
    json.key("outcome");
    json.value(to_string(r.outcome));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

void FlightRecorder::write(const std::string& path) const {
  write_text_file(path, to_json());
}

}  // namespace hp::obs
