#pragma once
// MetricRegistry: fabric-wide counters, gauges and latency histograms.
//
// The paper's Telemetry Service assumes the data plane can be observed
// continuously without perturbing it.  This registry is the collection
// side of that contract, shaped by two requirements:
//
//  * the hot path must be lock-free and contention-free: every metric
//    owns one cache-line-padded slot per shard, a recording thread
//    picks its shard once (thread_local, round-robin) and then only
//    ever touches that slot with relaxed atomics -- no mutex, no
//    cross-core cache-line ping-pong on the replay inner loops;
//  * snapshots must be deterministic: snapshot() merges the per-shard
//    slots by summation and emits entries sorted by name, so a run
//    whose *recorded values* are deterministic (e.g. the integer-tick
//    simulator) produces a bit-identical MetricsSnapshot regardless of
//    how many threads recorded or how the shards were assigned.
//
// Three metric kinds:
//  * Counter   -- monotonically growing uint64 (add);
//  * Gauge     -- signed level (add/sub, plus single-writer set);
//  * Histogram -- log-bucketed value distribution: value v lands in
//    bucket bit_width(v) (bucket 0 holds zeros), i.e. power-of-two
//    buckets, 65 total, covering the full uint64 range.  count/sum/
//    min/max ride along so means and ranges need no bucket math.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and
// returns a stable reference: resolve handles once, record forever.
// Components take a `MetricRegistry*` and treat nullptr as "metrics
// off" -- the disabled baseline costs one branch.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hp::obs {

/// Number of independent per-metric slots.  Threads map onto shards
/// round-robin, so contention appears only beyond kShards concurrent
/// recorders (and is then still just shared atomics, never a lock).
inline constexpr std::size_t kShards = 8;

/// The calling thread's shard index: assigned round-robin on first use
/// and pinned for the thread's lifetime.
[[nodiscard]] std::size_t this_thread_shard() noexcept;

namespace detail {
/// One padded 64-bit cell.  alignas(64) keeps neighbouring shards on
/// different cache lines so relaxed fetch_adds never false-share.
struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};
static_assert(sizeof(PaddedCell) == 64, "one cache line per shard");
}  // namespace detail

/// Monotonic counter.  add() is lock-free (one relaxed fetch_add on
/// the caller's shard); value() merges the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[this_thread_shard()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedCell, kShards> shards_{};
};

/// Signed level.  add()/sub() are lock-free per-shard deltas; value()
/// sums them.  set() is a convenience for single-writer gauges (e.g.
/// the single-threaded simulator): it rewrites the caller's shard so
/// the merged value equals `v`, and is NOT atomic against concurrent
/// writers on other shards.
class Gauge {
 public:
  void add(std::int64_t n) noexcept {
    shards_[this_thread_shard()].value.fetch_add(
        static_cast<std::uint64_t>(n), std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept { add(-n); }

  void set(std::int64_t v) noexcept { add(v - value()); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return static_cast<std::int64_t>(total);
  }

 private:
  std::array<detail::PaddedCell, kShards> shards_{};
};

/// Number of log buckets: bucket 0 holds zeros, bucket b >= 1 holds
/// values with bit_width == b, i.e. [2^(b-1), 2^b).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index of one recorded value.
[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// Inclusive upper bound of one bucket (the value a percentile
/// estimate reports for samples landing there).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_limit(
    std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

/// Merged view of one histogram.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Nearest-rank percentile estimate from the log buckets: the upper
  /// bound of the bucket holding the ceil(q * count)-th sample (exact
  /// min/max at the extremes, 0 when empty).
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  friend bool operator==(const HistogramData&,
                         const HistogramData&) noexcept = default;
};

/// Log-bucketed distribution.  record() is lock-free: one relaxed
/// bucket increment plus count/sum adds and min/max CAS loops, all on
/// the caller's shard.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;

  /// Merge every shard into one HistogramData.
  [[nodiscard]] HistogramData data() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind) noexcept;

/// One metric's merged state at snapshot time.  Exactly one of the
/// value fields is meaningful, selected by `kind`.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  HistogramData histogram;

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// Deterministically ordered (by name) merge of a whole registry.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  /// Entry by exact name; nullptr when absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0)
      const noexcept;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Named metric store.  Registration is mutex-guarded and idempotent
/// (same name + kind returns the same object; same name with another
/// kind throws std::invalid_argument).  Returned references stay valid
/// for the registry's lifetime.
class MetricRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Merge every metric into a name-sorted snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Current (name, value) of every registered gauge, name-sorted --
  /// the slice the telemetry bridge samples on each tick.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> gauges()
      const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::size_t index;  ///< into the kind's deque
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> by_name_;
  // Deques: stable addresses across registration, no atomic copies.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace hp::obs
