#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hp::obs {

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::uint64_t HistogramData::percentile(double q) const noexcept {
  if (count == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(clamped * static_cast<double>(count))));
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (rank <= buckets[b]) {
      // A bucket only bounds its samples; clamping to [min, max] makes
      // the estimate exact at both distribution edges.
      return std::clamp(histogram_bucket_limit(b), min, max);
    }
    rank -= buckets[b];
  }
  return max;
}

void Histogram::record(std::uint64_t v) noexcept {
  Shard& s = shards_[this_thread_shard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (v < seen &&
         !s.min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::data() const noexcept {
  HistogramData out;
  std::uint64_t min_seen = ~std::uint64_t{0};
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.min = out.count == 0 ? 0 : min_seen;
  return out;
}

const MetricValue* MetricsSnapshot::find(
    std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const MetricValue& e, std::string_view n) { return e.name < n; });
  return it != entries.end() && it->name == name ? &*it : nullptr;
}

std::uint64_t MetricsSnapshot::counter_or(
    std::string_view name, std::uint64_t fallback) const noexcept {
  const MetricValue* entry = find(name);
  return entry != nullptr && entry->kind == MetricKind::kCounter
             ? entry->counter
             : fallback;
}

namespace {

[[noreturn]] void throw_kind_clash(std::string_view name, MetricKind have,
                                   MetricKind want) {
  throw std::invalid_argument("MetricRegistry: \"" + std::string(name) +
                              "\" already registered as " +
                              std::string(to_string(have)) + ", requested " +
                              to_string(want));
}

}  // namespace

Counter& MetricRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      throw_kind_clash(name, it->second.kind, MetricKind::kCounter);
    }
    return counters_[it->second.index];
  }
  counters_.emplace_back();
  by_name_.emplace(std::string(name),
                   Entry{MetricKind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      throw_kind_clash(name, it->second.kind, MetricKind::kGauge);
    }
    return gauges_[it->second.index];
  }
  gauges_.emplace_back();
  by_name_.emplace(std::string(name),
                   Entry{MetricKind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::kHistogram) {
      throw_kind_clash(name, it->second.kind, MetricKind::kHistogram);
    }
    return histograms_[it->second.index];
  }
  histograms_.emplace_back();
  by_name_.emplace(std::string(name),
                   Entry{MetricKind::kHistogram, histograms_.size() - 1});
  return histograms_.back();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(by_name_.size());
  // std::map iterates name-sorted, which is the snapshot order.
  for (const auto& [name, entry] : by_name_) {
    MetricValue v;
    v.name = name;
    v.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        v.counter = counters_[entry.index].value();
        break;
      case MetricKind::kGauge:
        v.gauge = gauges_[entry.index].value();
        break;
      case MetricKind::kHistogram:
        v.histogram = histograms_[entry.index].data();
        break;
    }
    snap.entries.push_back(std::move(v));
  }
  return snap;
}

std::vector<std::pair<std::string, std::int64_t>> MetricRegistry::gauges()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, entry] : by_name_) {
    if (entry.kind != MetricKind::kGauge) continue;
    out.emplace_back(name, gauges_[entry.index].value());
  }
  return out;
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

}  // namespace hp::obs
