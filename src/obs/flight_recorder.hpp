#pragma once
// FlightRecorder: a sampled hop-level ring buffer for the packet sim.
//
// Aggregate counters say *that* a queue overflowed; they cannot say
// which flow was crossing which node when it happened.  The flight
// recorder keeps the last `capacity` per-hop records of every sampled
// flow (1-in-N by flow handle, so sampling is deterministic for a
// fixed flow enumeration): at each hop the simulator logs the node,
// the egress port its fold computed, the egress-queue depth right
// after the enqueue, the simulated tick and the hop's outcome.  The
// ring overwrites oldest-first, so post-mortems always hold the most
// recent window; records() returns chronological order and to_json()
// dumps the `hp-flight-v1` document CI uploads as an artifact.
//
// Recording is plain (non-atomic) state: PacketSim is single-threaded
// by design, and the recorder inherits its determinism -- a fixed-seed
// run dumps bit-identical JSON at any thread count.

#include <cstdint>
#include <string>
#include <vector>

namespace hp::obs {

/// What happened to the packet at this hop.
enum class HopOutcome : std::uint8_t {
  kForwarded,   ///< enqueued onto the egress channel
  kDelivered,   ///< folded onto an unwired port: left the fabric
  kTailDrop,    ///< egress queue full
  kTtlExpired,  ///< hop cap reached
  kLinkDown,    ///< routed onto a failed link: failover loss
};

[[nodiscard]] const char* to_string(HopOutcome outcome) noexcept;

/// One sampled hop.
struct HopRecord {
  std::uint64_t tick_ns = 0;      ///< simulated arrival time
  std::uint32_t flow = 0;         ///< PacketSim flow handle
  std::uint32_t packet = 0;       ///< injection index within the sim
  std::uint32_t node = 0;         ///< fabric node making the decision
  std::uint32_t port = 0;         ///< egress port the fold computed
  std::uint32_t queue_depth = 0;  ///< egress queue depth after enqueue
  HopOutcome outcome = HopOutcome::kForwarded;

  friend bool operator==(const HopRecord&, const HopRecord&) = default;
};

class FlightRecorder {
 public:
  /// \param capacity ring size in records (>= 1; clamped)
  /// \param sample_every record flows whose handle % N == 0 (>= 1;
  ///   clamped -- 1 records every flow)
  explicit FlightRecorder(std::size_t capacity = 4096,
                          std::uint32_t sample_every = 16);

  /// Should this flow's hops be recorded?
  [[nodiscard]] bool sampled(std::uint32_t flow) const noexcept {
    return flow % sample_every_ == 0;
  }

  [[nodiscard]] std::uint32_t sample_every() const noexcept {
    return sample_every_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }

  /// Append one record, overwriting the oldest when full.
  void record(const HopRecord& r) noexcept;

  /// Records seen so far (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<HopRecord> records() const;

  /// Drop everything recorded so far (capacity/sampling unchanged).
  void clear() noexcept;

  /// The `hp-flight-v1` JSON document (sampling parameters, overwrite
  /// count, then every retained record oldest-first).
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on failure.
  void write(const std::string& path) const;

 private:
  std::vector<HopRecord> ring_;
  std::size_t head_ = 0;     ///< next write position
  std::uint64_t total_ = 0;  ///< lifetime record() calls
  std::uint32_t sample_every_;
};

}  // namespace hp::obs
