#include "ml/preprocessing.hpp"

#include <cmath>
#include <stdexcept>

namespace hp::ml {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty fit");
  mean_ = col_means(x);
  scale_ = col_variances(x);
  for (double& s : scale_) {
    s = std::sqrt(s);
    if (s == 0.0) s = 1.0;  // constant column: shift only
  }
  fitted_ = true;
}

void StandardScaler::check(std::size_t cols) const {
  if (!fitted_) throw std::logic_error("StandardScaler: not fitted");
  if (cols != mean_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  check(x.cols());
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out(i, j) = (x(i, j) - mean_[j]) / scale_[j];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

Matrix StandardScaler::inverse_transform(const Matrix& x) const {
  check(x.cols());
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out(i, j) = x(i, j) * scale_[j] + mean_[j];
    }
  }
  return out;
}

void StandardScaler::fit(const Vector& y) {
  Matrix m(y.size(), 1);
  for (std::size_t i = 0; i < y.size(); ++i) m(i, 0) = y[i];
  fit(m);
}

Vector StandardScaler::transform(const Vector& y) const {
  check(1);
  Vector out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = (y[i] - mean_[0]) / scale_[0];
  }
  return out;
}

Vector StandardScaler::inverse_transform(const Vector& y) const {
  check(1);
  Vector out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = y[i] * scale_[0] + mean_[0];
  }
  return out;
}

Split chronological_split(const Matrix& x, const Vector& y,
                          double train_fraction) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("chronological_split: fraction in (0,1)");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("chronological_split: dimension mismatch");
  }
  const auto n_train = static_cast<std::size_t>(
      std::floor(train_fraction * static_cast<double>(x.rows())));
  if (n_train == 0 || n_train == x.rows()) {
    throw std::invalid_argument("chronological_split: degenerate split");
  }
  Split s;
  s.x_train = Matrix(n_train, x.cols());
  s.x_test = Matrix(x.rows() - n_train, x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (i < n_train) {
        s.x_train(i, j) = x(i, j);
      } else {
        s.x_test(i - n_train, j) = x(i, j);
      }
    }
  }
  s.y_train.assign(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n_train));
  s.y_test.assign(y.begin() + static_cast<std::ptrdiff_t>(n_train), y.end());
  return s;
}

}  // namespace hp::ml
