#include "ml/hist_gbr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace hp::ml {

namespace {

/// Quantile bin edges for one feature column (at most max_bins bins,
/// fewer when the column has few distinct values).
Vector make_bin_edges(Vector values, unsigned max_bins) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.size() <= max_bins) {
    // One bin per distinct value: edges at midpoints.
    Vector edges;
    edges.reserve(values.size() > 0 ? values.size() - 1 : 0);
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      edges.push_back(0.5 * (values[i] + values[i + 1]));
    }
    return edges;
  }
  Vector edges;
  edges.reserve(max_bins - 1);
  for (unsigned b = 1; b < max_bins; ++b) {
    const double q = static_cast<double>(b) / max_bins;
    const auto pos = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    edges.push_back(values[pos]);
  }
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

/// Bin index of a raw value (count of edges strictly below it).
std::uint8_t bin_of(const Vector& edges, double v) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  std::size_t idx = static_cast<std::size_t>(it - edges.begin());
  // Values equal to an edge fall in the lower bin (edge is inclusive).
  if (it != edges.end() && v == *it) {
    // keep idx (v <= edges[idx] -> bin idx)
  }
  return static_cast<std::uint8_t>(std::min<std::size_t>(idx, 255));
}

struct SplitChoice {
  double gain = -std::numeric_limits<double>::infinity();
  std::size_t feature = 0;
  unsigned bin = 0;
};

}  // namespace

double HistGradientBoostingRegressor::Tree::predict_one(
    const double* row) const {
  std::size_t cur = 0;
  while (nodes[cur].feature != TreeNode::kLeaf) {
    cur = row[nodes[cur].feature] <= nodes[cur].threshold_value
              ? nodes[cur].left
              : nodes[cur].right;
  }
  return nodes[cur].value;
}

HistGradientBoostingRegressor::Tree HistGradientBoostingRegressor::grow_tree(
    const std::vector<std::vector<std::uint8_t>>& binned,
    const Vector& gradients) const {
  const std::size_t n = gradients.size();
  const double lambda = params_.l2_regularization;

  Tree tree;
  struct OpenLeaf {
    std::size_t node;                 // index into tree.nodes
    std::vector<std::uint32_t> rows;  // samples in this leaf
    double grad_sum;
    SplitChoice best;
  };

  auto leaf_value = [&](double grad_sum, std::size_t count) {
    return -grad_sum / (static_cast<double>(count) + lambda);
  };

  auto find_best_split = [&](const OpenLeaf& leaf) {
    SplitChoice best;
    const double parent =
        leaf.grad_sum * leaf.grad_sum /
        (static_cast<double>(leaf.rows.size()) + lambda);
    for (std::size_t f = 0; f < n_features_; ++f) {
      const std::size_t n_bins = bin_edges_[f].size() + 1;
      if (n_bins < 2) continue;
      // Per-bin histogram of gradient sums and counts.
      std::vector<double> hist_grad(n_bins, 0.0);
      std::vector<std::size_t> hist_count(n_bins, 0);
      for (const std::uint32_t i : leaf.rows) {
        const std::uint8_t b = binned[f][i];
        hist_grad[b] += gradients[i];
        ++hist_count[b];
      }
      double left_grad = 0.0;
      std::size_t left_count = 0;
      for (std::size_t b = 0; b + 1 < n_bins; ++b) {
        left_grad += hist_grad[b];
        left_count += hist_count[b];
        const std::size_t right_count = leaf.rows.size() - left_count;
        if (left_count < params_.min_samples_leaf ||
            right_count < params_.min_samples_leaf) {
          continue;
        }
        const double right_grad = leaf.grad_sum - left_grad;
        const double gain =
            left_grad * left_grad / (static_cast<double>(left_count) + lambda) +
            right_grad * right_grad /
                (static_cast<double>(right_count) + lambda) -
            parent;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.bin = static_cast<unsigned>(b);
        }
      }
    }
    return best;
  };

  // Root.
  OpenLeaf root;
  root.node = 0;
  root.rows.resize(n);
  std::iota(root.rows.begin(), root.rows.end(), 0);
  root.grad_sum = std::accumulate(gradients.begin(), gradients.end(), 0.0);
  tree.nodes.emplace_back();
  tree.nodes[0].value = leaf_value(root.grad_sum, n);
  root.best = find_best_split(root);

  std::vector<OpenLeaf> open;
  open.push_back(std::move(root));
  std::size_t leaf_count = 1;

  while (leaf_count < params_.max_leaf_nodes) {
    // Pick the open leaf with the highest positive gain.
    std::size_t best_idx = open.size();
    double best_gain = 1e-12;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i].best.gain > best_gain) {
        best_gain = open[i].best.gain;
        best_idx = i;
      }
    }
    if (best_idx == open.size()) break;  // nothing worth splitting

    OpenLeaf leaf = std::move(open[best_idx]);
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(best_idx));

    const std::size_t f = leaf.best.feature;
    const unsigned split_bin = leaf.best.bin;

    OpenLeaf left, right;
    left.grad_sum = right.grad_sum = 0.0;
    for (const std::uint32_t i : leaf.rows) {
      if (binned[f][i] <= split_bin) {
        left.rows.push_back(i);
        left.grad_sum += gradients[i];
      } else {
        right.rows.push_back(i);
        right.grad_sum += gradients[i];
      }
    }

    // Materialize the split.
    TreeNode& me = tree.nodes[leaf.node];
    me.feature = f;
    me.bin_threshold = split_bin;
    me.threshold_value = bin_edges_[f][split_bin];
    left.node = tree.nodes.size();
    tree.nodes.emplace_back();
    right.node = tree.nodes.size();
    tree.nodes.emplace_back();
    tree.nodes[left.node].value = leaf_value(left.grad_sum, left.rows.size());
    tree.nodes[right.node].value =
        leaf_value(right.grad_sum, right.rows.size());
    tree.nodes[leaf.node].left = left.node;
    tree.nodes[leaf.node].right = right.node;

    left.best = find_best_split(left);
    right.best = find_best_split(right);
    open.push_back(std::move(left));
    open.push_back(std::move(right));
    ++leaf_count;
  }
  return tree;
}

void HistGradientBoostingRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  n_features_ = x.cols();
  trees_.clear();

  // Bin features once.
  bin_edges_.assign(n_features_, {});
  std::vector<std::vector<std::uint8_t>> binned(
      n_features_, std::vector<std::uint8_t>(n));
  for (std::size_t f = 0; f < n_features_; ++f) {
    bin_edges_[f] = make_bin_edges(x.col(f), params_.max_bins);
    for (std::size_t i = 0; i < n; ++i) {
      binned[f][i] = bin_of(bin_edges_[f], x(i, f));
    }
  }

  init_ = mean(y);
  Vector current(n, init_);
  Vector gradients(n);
  for (unsigned it = 0; it < params_.max_iter; ++it) {
    for (std::size_t i = 0; i < n; ++i) gradients[i] = current[i] - y[i];
    Tree tree = grow_tree(binned, gradients);
    for (std::size_t i = 0; i < n; ++i) {
      current[i] += params_.learning_rate * tree.predict_one(x.row_data(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

Vector HistGradientBoostingRegressor::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != n_features_) {
    throw std::invalid_argument("HGBR: feature count mismatch");
  }
  Vector out(x.rows(), init_);
  for (const Tree& tree : trees_) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] += params_.learning_rate * tree.predict_one(x.row_data(i));
    }
  }
  return out;
}

std::unique_ptr<Regressor> HistGradientBoostingRegressor::clone() const {
  return std::make_unique<HistGradientBoostingRegressor>(params_);
}

}  // namespace hp::ml
