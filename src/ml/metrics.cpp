#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace hp::ml {

namespace {
void check(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("metric: length mismatch");
  }
  if (a.empty()) throw std::invalid_argument("metric: empty input");
}
}  // namespace

double rmse(const Vector& truth, const Vector& predicted) {
  check(truth, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(const Vector& truth, const Vector& predicted) {
  check(truth, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double r2(const Vector& truth, const Vector& predicted) {
  check(truth, predicted);
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace hp::ml
