#pragma once
// The 18-regressor zoo of the paper's Section V-A2, with the paper's
// labels (R1..R18) attached, in the paper's alphabetical order.

#include <memory>
#include <string>
#include <vector>

#include "ml/regressor.hpp"

namespace hp::ml {

/// One catalogue entry: the paper's short label ("R13:RFR") plus a
/// freshly constructed model with sklearn-default hyperparameters.
struct CatalogEntry {
  std::string label;       ///< e.g. "R13:RFR"
  std::string short_name;  ///< e.g. "RFR"
  std::unique_ptr<Regressor> model;
};

/// Instantiate all eighteen regressors (R1..R18).
[[nodiscard]] std::vector<CatalogEntry> make_regressor_catalog();

/// Instantiate one regressor by its paper short name (e.g. "RFR",
/// "GPR", "SVM_Linear"); throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<Regressor> make_regressor(
    const std::string& short_name);

/// All known short names, in catalogue order.
[[nodiscard]] std::vector<std::string> regressor_short_names();

}  // namespace hp::ml
