#pragma once
// Multi-layer perceptron regressor -- the paper's Section VII next step
// ("we will be building upon this work and experimenting with more
// machine learning models such as neural networks").
//
// Architecture and defaults mirror sklearn.neural_network.MLPRegressor:
// one hidden layer of 100 ReLU units, Adam (lr 1e-3, beta1 0.9,
// beta2 0.999), squared loss, minibatch 200 (or n), L2 alpha 1e-4,
// max_iter 200 with early stopping on training-loss plateau.

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/regressor.hpp"

namespace hp::ml {

class MLPRegressor final : public Regressor {
 public:
  struct Params {
    std::vector<std::size_t> hidden_layers{100};
    double learning_rate = 1e-3;
    double alpha = 1e-4;  ///< L2 penalty
    unsigned max_iter = 200;
    std::size_t batch_size = 200;
    double tol = 1e-4;
    unsigned n_iter_no_change = 10;
    std::uint64_t seed = 42;
  };

  MLPRegressor() = default;
  explicit MLPRegressor(Params params) : params_(std::move(params)) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "MLPRegressor"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// Epochs actually run before convergence/early stop (post-fit).
  [[nodiscard]] unsigned epochs_run() const noexcept { return epochs_run_; }

 private:
  struct Layer {
    Matrix weights;  // (in, out)
    Vector bias;     // (out)
  };

  /// Forward pass for one sample; fills per-layer activations
  /// (activations[0] is the input, back() is the scalar output).
  void forward(const double* row, std::vector<Vector>& activations) const;

  Params params_{};
  std::vector<Layer> layers_;
  std::size_t n_features_ = 0;
  unsigned epochs_run_ = 0;
  bool fitted_ = false;
};

}  // namespace hp::ml
