#pragma once
// Regression quality metrics (the paper evaluates with RMSE; MAE and R^2
// are provided for the extended analyses).

#include "ml/linalg.hpp"

namespace hp::ml {

/// Root mean squared error.  Throws std::invalid_argument on length
/// mismatch or empty input.
[[nodiscard]] double rmse(const Vector& truth, const Vector& predicted);

/// Mean absolute error.
[[nodiscard]] double mae(const Vector& truth, const Vector& predicted);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the
/// mean, negative is worse than the mean.  A constant truth vector with
/// perfect predictions scores 1, otherwise 0 (sklearn convention).
[[nodiscard]] double r2(const Vector& truth, const Vector& predicted);

}  // namespace hp::ml
