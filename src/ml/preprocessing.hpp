#pragma once
// Feature scaling, mirroring sklearn.preprocessing.StandardScaler.
//
// The paper's pipeline fits the scaler on the training split, transforms
// both splits, and inverse-transforms model outputs back to Mbps.

#include "ml/linalg.hpp"

namespace hp::ml {

/// Per-column standardization to zero mean / unit variance.
class StandardScaler {
 public:
  /// Learn column means and standard deviations.  Constant columns get
  /// scale 1 (sklearn behaviour) so transform is a no-op shift.
  void fit(const Matrix& x);

  /// (x - mean) / std per column; throws std::logic_error before fit()
  /// and std::invalid_argument on column-count mismatch.
  [[nodiscard]] Matrix transform(const Matrix& x) const;

  /// fit() then transform().
  [[nodiscard]] Matrix fit_transform(const Matrix& x);

  /// Undo transform().
  [[nodiscard]] Matrix inverse_transform(const Matrix& x) const;

  /// Scalar-column helpers for univariate targets.
  void fit(const Vector& y);
  [[nodiscard]] Vector transform(const Vector& y) const;
  [[nodiscard]] Vector inverse_transform(const Vector& y) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] const Vector& means() const noexcept { return mean_; }
  [[nodiscard]] const Vector& scales() const noexcept { return scale_; }

 private:
  void check(std::size_t cols) const;

  Vector mean_;
  Vector scale_;
  bool fitted_ = false;
};

/// Chronological train/test split (the paper splits the UQ trace 75/25).
struct Split {
  Matrix x_train;
  Vector y_train;
  Matrix x_test;
  Vector y_test;
};

/// Split rows at floor(train_fraction * n); fraction must be in (0, 1).
[[nodiscard]] Split chronological_split(const Matrix& x, const Vector& y,
                                        double train_fraction);

}  // namespace hp::ml
