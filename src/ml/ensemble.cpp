#include "ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace hp::ml {

namespace {

/// Draw a bootstrap sample (with replacement) of row indices.
std::vector<std::size_t> bootstrap_indices(std::size_t n,
                                           std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = pick(rng);
  return idx;
}

/// Gather y at idx.
Vector gather(const Vector& y, const std::vector<std::size_t>& idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = y[idx[i]];
  return out;
}

/// Weighted sampling with replacement proportional to `weights`
/// (AdaBoost.R2 trains base learners on reweighted bootstrap samples).
std::vector<std::size_t> weighted_bootstrap(const Vector& weights,
                                            std::mt19937_64& rng) {
  std::discrete_distribution<std::size_t> pick(weights.begin(),
                                               weights.end());
  std::vector<std::size_t> idx(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) idx[i] = pick(rng);
  return idx;
}

}  // namespace

// --- BaggingRegressor ---------------------------------------------------

void BaggingRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  trees_.clear();
  trees_.reserve(n_estimators_);
  std::mt19937_64 rng(seed_);
  for (unsigned m = 0; m < n_estimators_; ++m) {
    const auto idx = bootstrap_indices(x.rows(), rng);
    TreeParams params = base_;
    params.seed = rng();
    DecisionTreeRegressor tree(params);
    tree.fit(x.rows_subset(idx), gather(y, idx));
    trees_.push_back(std::move(tree));
  }
}

Vector BaggingRegressor::predict(const Matrix& x) const {
  check_is_fitted(!trees_.empty());
  Vector out(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] += tree.predict_one(x.row_data(i));
    }
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

std::unique_ptr<Regressor> BaggingRegressor::clone() const {
  return std::make_unique<BaggingRegressor>(n_estimators_, seed_, base_);
}

// --- RandomForestRegressor ----------------------------------------------

void RandomForestRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  trees_.clear();
  trees_.reserve(n_estimators_);
  std::mt19937_64 rng(seed_);
  for (unsigned m = 0; m < n_estimators_; ++m) {
    const auto idx = bootstrap_indices(x.rows(), rng);
    TreeParams params;
    params.max_features = max_features_;
    params.seed = rng();
    DecisionTreeRegressor tree(params);
    tree.fit(x.rows_subset(idx), gather(y, idx));
    trees_.push_back(std::move(tree));
  }
}

Vector RandomForestRegressor::predict(const Matrix& x) const {
  check_is_fitted(!trees_.empty());
  Vector out(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] += tree.predict_one(x.row_data(i));
    }
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

std::unique_ptr<Regressor> RandomForestRegressor::clone() const {
  return std::make_unique<RandomForestRegressor>(n_estimators_, max_features_,
                                                 seed_);
}

// --- AdaBoostRegressor (AdaBoost.R2) --------------------------------------

void AdaBoostRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  trees_.clear();
  learner_weights_.clear();
  const std::size_t n = x.rows();
  Vector sample_weights(n, 1.0 / static_cast<double>(n));
  std::mt19937_64 rng(seed_);

  for (unsigned m = 0; m < n_estimators_; ++m) {
    const auto idx = weighted_bootstrap(sample_weights, rng);
    TreeParams params;
    params.max_depth = 3;  // sklearn default base estimator
    params.seed = rng();
    DecisionTreeRegressor tree(params);
    tree.fit(x.rows_subset(idx), gather(y, idx));

    // Linear loss normalized by the max absolute error.
    Vector err(n);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err[i] = std::abs(tree.predict_one(x.row_data(i)) - y[i]);
      max_err = std::max(max_err, err[i]);
    }
    if (max_err <= 0.0) {  // perfect learner; keep it and stop
      trees_.push_back(std::move(tree));
      learner_weights_.push_back(1.0);
      break;
    }
    double avg_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err[i] /= max_err;
      avg_loss += err[i] * sample_weights[i];
    }
    if (avg_loss >= 0.5) {
      // Worse than chance: discard and stop (Drucker's rule), unless it
      // is the very first learner (keep something usable).
      if (trees_.empty()) {
        trees_.push_back(std::move(tree));
        learner_weights_.push_back(1e-3);
      }
      break;
    }
    const double beta = avg_loss / (1.0 - avg_loss);
    // Reweight: hard examples gain mass.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sample_weights[i] *= std::pow(beta, learning_rate_ * (1.0 - err[i]));
      total += sample_weights[i];
    }
    for (double& w : sample_weights) w /= total;

    trees_.push_back(std::move(tree));
    learner_weights_.push_back(learning_rate_ * std::log(1.0 / beta));
  }
}

Vector AdaBoostRegressor::predict(const Matrix& x) const {
  check_is_fitted(!trees_.empty());
  Vector out(x.rows());
  // Weighted median of the learners' predictions (AdaBoost.R2 inference).
  std::vector<std::pair<double, double>> scored(trees_.size());
  const double half =
      0.5 * std::accumulate(learner_weights_.begin(), learner_weights_.end(),
                            0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t m = 0; m < trees_.size(); ++m) {
      scored[m] = {trees_[m].predict_one(x.row_data(i)),
                   learner_weights_[m]};
    }
    std::sort(scored.begin(), scored.end());
    double acc = 0.0;
    double value = scored.back().first;
    for (const auto& [pred, w] : scored) {
      acc += w;
      if (acc >= half) {
        value = pred;
        break;
      }
    }
    out[i] = value;
  }
  return out;
}

std::unique_ptr<Regressor> AdaBoostRegressor::clone() const {
  return std::make_unique<AdaBoostRegressor>(n_estimators_, learning_rate_,
                                             seed_);
}

// --- GradientBoostingRegressor --------------------------------------------

void GradientBoostingRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  trees_.clear();
  trees_.reserve(n_estimators_);
  init_ = mean(y);
  Vector residual(y.size());
  Vector current(y.size(), init_);
  std::mt19937_64 rng(seed_);
  for (unsigned m = 0; m < n_estimators_; ++m) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - current[i];
    }
    TreeParams params;
    params.max_depth = max_depth_;
    params.seed = rng();
    DecisionTreeRegressor tree(params);
    tree.fit(x, residual);
    for (std::size_t i = 0; i < y.size(); ++i) {
      current[i] += learning_rate_ * tree.predict_one(x.row_data(i));
    }
    trees_.push_back(std::move(tree));
  }
}

Vector GradientBoostingRegressor::predict(const Matrix& x) const {
  check_is_fitted(!trees_.empty());
  Vector out(x.rows(), init_);
  for (const auto& tree : trees_) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] += learning_rate_ * tree.predict_one(x.row_data(i));
    }
  }
  return out;
}

std::unique_ptr<Regressor> GradientBoostingRegressor::clone() const {
  return std::make_unique<GradientBoostingRegressor>(
      n_estimators_, learning_rate_, max_depth_, seed_);
}

}  // namespace hp::ml
