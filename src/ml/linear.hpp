#pragma once
// Linear-family regressors (9 of the 18 Hecate models):
// LinearRegression, Ridge, Lasso, ElasticNet, SGDRegressor,
// HuberRegressor, RANSACRegressor, TheilSenRegressor, ARDRegression.
//
// Hyperparameter defaults follow scikit-learn so the Fig 6 ranking is
// comparable; each class documents the solver it uses.

#include <cstdint>
#include <memory>
#include <optional>

#include "ml/regressor.hpp"

namespace hp::ml {

/// Shared linear predictor: y = x . w + b.
class LinearModelBase : public Regressor {
 public:
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] const Vector& coefficients() const noexcept { return w_; }
  [[nodiscard]] double intercept() const noexcept { return b_; }

 protected:
  void set_weights(Vector w, double b) {
    w_ = std::move(w);
    b_ = b;
    fitted_ = true;
  }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

 private:
  Vector w_;
  double b_ = 0.0;
  bool fitted_ = false;
};

/// Ordinary least squares via normal equations (R11:LR).
class LinearRegression final : public LinearModelBase {
 public:
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override {
    return "LinearRegression";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;
};

/// L2-regularized least squares (R14:Ridge); sklearn default alpha=1.
class Ridge final : public LinearModelBase {
 public:
  explicit Ridge(double alpha = 1.0) : alpha_(alpha) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "Ridge"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  double alpha_;
};

/// L1-regularized least squares via cyclic coordinate descent
/// (R10:Lasso); sklearn defaults alpha=1, tol=1e-4, max_iter=1000.
class Lasso final : public LinearModelBase {
 public:
  explicit Lasso(double alpha = 1.0, unsigned max_iter = 1000,
                 double tol = 1e-4)
      : alpha_(alpha), max_iter_(max_iter), tol_(tol) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "Lasso"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  double alpha_;
  unsigned max_iter_;
  double tol_;
};

/// Combined L1/L2 penalty via coordinate descent (R5:ElasticNet);
/// sklearn defaults alpha=1, l1_ratio=0.5.
class ElasticNet final : public LinearModelBase {
 public:
  explicit ElasticNet(double alpha = 1.0, double l1_ratio = 0.5,
                      unsigned max_iter = 1000, double tol = 1e-4)
      : alpha_(alpha), l1_ratio_(l1_ratio), max_iter_(max_iter), tol_(tol) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "ElasticNet"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  double alpha_;
  double l1_ratio_;
  unsigned max_iter_;
  double tol_;
};

/// Stochastic gradient descent on squared loss with L2 penalty
/// (R15:SGDR); sklearn defaults: alpha=1e-4, eta0=0.01, inverse-scaling
/// learning rate eta = eta0 / t^0.25, max_iter=1000, tol=1e-3.
class SGDRegressor final : public LinearModelBase {
 public:
  explicit SGDRegressor(double alpha = 1e-4, double eta0 = 0.01,
                        unsigned max_iter = 1000, double tol = 1e-3,
                        std::uint64_t seed = 42)
      : alpha_(alpha), eta0_(eta0), max_iter_(max_iter), tol_(tol),
        seed_(seed) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "SGDRegressor"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  double alpha_;
  double eta0_;
  unsigned max_iter_;
  double tol_;
  std::uint64_t seed_;
};

/// Huber-loss robust regression via iteratively reweighted least
/// squares (R9:HuberR); sklearn defaults epsilon=1.35, alpha=1e-4.
class HuberRegressor final : public LinearModelBase {
 public:
  explicit HuberRegressor(double epsilon = 1.35, double alpha = 1e-4,
                          unsigned max_iter = 100, double tol = 1e-5)
      : epsilon_(epsilon), alpha_(alpha), max_iter_(max_iter), tol_(tol) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "HuberRegressor"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  double epsilon_;
  double alpha_;
  unsigned max_iter_;
  double tol_;
};

/// RANdom SAmple Consensus around an OLS base model (R12:RANSACR);
/// sklearn defaults: min_samples = n_features + 1, residual threshold =
/// MAD of y, max_trials = 100.
class RANSACRegressor final : public LinearModelBase {
 public:
  explicit RANSACRegressor(unsigned max_trials = 100,
                           std::optional<double> residual_threshold = {},
                           std::uint64_t seed = 42)
      : max_trials_(max_trials), residual_threshold_(residual_threshold),
        seed_(seed) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override {
    return "RANSACRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// Number of inliers selected by the winning trial (post-fit).
  [[nodiscard]] std::size_t inlier_count() const noexcept {
    return inlier_count_;
  }

 private:
  unsigned max_trials_;
  std::optional<double> residual_threshold_;
  std::uint64_t seed_;
  std::size_t inlier_count_ = 0;
};

/// Theil-Sen estimator (R18:TheilSenR): coordinate-wise median of OLS
/// solutions over random minimal subsets (sklearn approximates the
/// spatial median; the coordinate median preserves the robustness
/// behaviour for our feature counts).
class TheilSenRegressor final : public LinearModelBase {
 public:
  explicit TheilSenRegressor(unsigned n_subsamples = 300,
                             std::uint64_t seed = 42)
      : n_subsamples_(n_subsamples), seed_(seed) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override {
    return "TheilSenRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  unsigned n_subsamples_;
  std::uint64_t seed_;
};

/// Automatic Relevance Determination Bayesian regression (R2:ARDR):
/// evidence maximization with one precision per weight (MacKay updates);
/// sklearn defaults max_iter=300, tol=1e-3, prune threshold 1e4.
class ARDRegression final : public LinearModelBase {
 public:
  explicit ARDRegression(unsigned max_iter = 300, double tol = 1e-3,
                         double alpha_threshold = 1e4)
      : max_iter_(max_iter), tol_(tol), alpha_threshold_(alpha_threshold) {}
  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] std::string name() const override { return "ARDRegression"; }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

 private:
  unsigned max_iter_;
  double tol_;
  double alpha_threshold_;
};

}  // namespace hp::ml
