#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace hp::ml {

namespace {
double relu(double v) { return v > 0.0 ? v : 0.0; }
}  // namespace

void MLPRegressor::forward(const double* row,
                           std::vector<Vector>& activations) const {
  activations[0].assign(row, row + n_features_);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const Vector& in = activations[li];
    Vector& out = activations[li + 1];
    out.assign(layer.bias.begin(), layer.bias.end());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double v = in[i];
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < out.size(); ++j) {
        out[j] += v * layer.weights(i, j);
      }
    }
    if (li + 1 < layers_.size()) {  // hidden layers are ReLU; output linear
      for (double& v : out) v = relu(v);
    }
  }
}

void MLPRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  n_features_ = x.cols();

  // Layer sizes: input -> hidden... -> 1.
  std::vector<std::size_t> sizes{n_features_};
  sizes.insert(sizes.end(), params_.hidden_layers.begin(),
               params_.hidden_layers.end());
  sizes.push_back(1);

  std::mt19937_64 rng(params_.seed);
  layers_.clear();
  for (std::size_t li = 0; li + 1 < sizes.size(); ++li) {
    Layer layer;
    layer.weights = Matrix(sizes[li], sizes[li + 1]);
    layer.bias.assign(sizes[li + 1], 0.0);
    // Glorot-uniform initialization, as sklearn uses.
    const double bound =
        std::sqrt(6.0 / static_cast<double>(sizes[li] + sizes[li + 1]));
    std::uniform_real_distribution<double> init(-bound, bound);
    for (std::size_t i = 0; i < sizes[li]; ++i) {
      for (std::size_t j = 0; j < sizes[li + 1]; ++j) {
        layer.weights(i, j) = init(rng);
      }
    }
    layers_.push_back(std::move(layer));
  }

  // Adam state mirrors the parameter shapes.
  struct AdamState {
    Matrix mw, vw;
    Vector mb, vb;
  };
  std::vector<AdamState> adam(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    adam[li].mw = Matrix(layers_[li].weights.rows(),
                         layers_[li].weights.cols());
    adam[li].vw = Matrix(layers_[li].weights.rows(),
                         layers_[li].weights.cols());
    adam[li].mb.assign(layers_[li].bias.size(), 0.0);
    adam[li].vb.assign(layers_[li].bias.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;

  const std::size_t batch = std::min(params_.batch_size, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<Vector> activations(layers_.size() + 1);
  std::vector<Vector> deltas(layers_.size());

  // Gradient accumulators per batch.
  std::vector<Layer> grads;
  for (const Layer& layer : layers_) {
    Layer g;
    g.weights = Matrix(layer.weights.rows(), layer.weights.cols());
    g.bias.assign(layer.bias.size(), 0.0);
    grads.push_back(std::move(g));
  }

  double best_loss = std::numeric_limits<double>::infinity();
  unsigned no_improvement = 0;
  std::size_t adam_t = 0;
  epochs_run_ = 0;

  for (unsigned epoch = 0; epoch < params_.max_iter; ++epoch) {
    ++epochs_run_;
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(start + batch, n);
      const double inv = 1.0 / static_cast<double>(end - start);
      for (Layer& g : grads) {
        std::fill(g.bias.begin(), g.bias.end(), 0.0);
        g.weights = Matrix(g.weights.rows(), g.weights.cols());
      }

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t idx = order[k];
        forward(x.row_data(idx), activations);
        const double err = activations.back()[0] - y[idx];
        epoch_loss += 0.5 * err * err;

        // Backprop.
        deltas.back().assign(1, err);
        for (std::size_t li = layers_.size() - 1; li-- > 0;) {
          const Layer& next = layers_[li + 1];
          Vector& delta = deltas[li];
          delta.assign(next.weights.rows(), 0.0);
          const Vector& next_delta = deltas[li + 1];
          for (std::size_t i = 0; i < next.weights.rows(); ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < next.weights.cols(); ++j) {
              acc += next.weights(i, j) * next_delta[j];
            }
            // ReLU derivative on the hidden activation.
            delta[i] = activations[li + 1][i] > 0.0 ? acc : 0.0;
          }
        }
        for (std::size_t li = 0; li < layers_.size(); ++li) {
          const Vector& in = activations[li];
          const Vector& delta = deltas[li];
          for (std::size_t i = 0; i < in.size(); ++i) {
            if (in[i] == 0.0) continue;
            for (std::size_t j = 0; j < delta.size(); ++j) {
              grads[li].weights(i, j) += in[i] * delta[j];
            }
          }
          for (std::size_t j = 0; j < delta.size(); ++j) {
            grads[li].bias[j] += delta[j];
          }
        }
      }

      // Adam step with L2 on weights (not biases), sklearn-style.
      ++adam_t;
      const double correction =
          std::sqrt(1.0 - std::pow(kBeta2, adam_t)) /
          (1.0 - std::pow(kBeta1, adam_t));
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        AdamState& state = adam[li];
        for (std::size_t i = 0; i < layer.weights.rows(); ++i) {
          for (std::size_t j = 0; j < layer.weights.cols(); ++j) {
            const double g = grads[li].weights(i, j) * inv +
                             params_.alpha * layer.weights(i, j);
            state.mw(i, j) = kBeta1 * state.mw(i, j) + (1 - kBeta1) * g;
            state.vw(i, j) = kBeta2 * state.vw(i, j) + (1 - kBeta2) * g * g;
            layer.weights(i, j) -= params_.learning_rate * correction *
                                   state.mw(i, j) /
                                   (std::sqrt(state.vw(i, j)) + kEps);
          }
        }
        for (std::size_t j = 0; j < layer.bias.size(); ++j) {
          const double g = grads[li].bias[j] * inv;
          state.mb[j] = kBeta1 * state.mb[j] + (1 - kBeta1) * g;
          state.vb[j] = kBeta2 * state.vb[j] + (1 - kBeta2) * g * g;
          layer.bias[j] -= params_.learning_rate * correction * state.mb[j] /
                           (std::sqrt(state.vb[j]) + kEps);
        }
      }
    }

    epoch_loss /= static_cast<double>(n);
    if (epoch_loss > best_loss - params_.tol) {
      if (++no_improvement >= params_.n_iter_no_change) break;
    } else {
      no_improvement = 0;
    }
    best_loss = std::min(best_loss, epoch_loss);
  }
  fitted_ = true;
}

Vector MLPRegressor::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != n_features_) {
    throw std::invalid_argument("MLPRegressor: feature count mismatch");
  }
  std::vector<Vector> activations(layers_.size() + 1);
  Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    forward(x.row_data(i), activations);
    out[i] = activations.back()[0];
  }
  return out;
}

std::unique_ptr<Regressor> MLPRegressor::clone() const {
  return std::make_unique<MLPRegressor>(params_);
}

}  // namespace hp::ml
