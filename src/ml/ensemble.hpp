#pragma once
// Tree ensembles (4 of the 18 Hecate models): BaggingRegressor (R3),
// RandomForestRegressor (R13), AdaBoostRegressor (R1, AdaBoost.R2) and
// GradientBoostingRegressor (R6).  HistGradientBoosting lives in
// hist_gbr.hpp.
//
// sklearn defaults are kept: Bagging 10 full trees; RandomForest 100
// full trees on bootstrap samples; AdaBoost.R2 with 50 depth-3 trees and
// linear loss; GradientBoosting with 100 depth-3 trees at lr 0.1.

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/tree.hpp"

namespace hp::ml {

/// Bootstrap-aggregated regression trees (R3:Bagging).
class BaggingRegressor final : public Regressor {
 public:
  explicit BaggingRegressor(unsigned n_estimators = 10,
                            std::uint64_t seed = 42,
                            TreeParams base = TreeParams{})
      : n_estimators_(n_estimators), seed_(seed), base_(base) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "BaggingRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  [[nodiscard]] std::size_t estimator_count() const noexcept {
    return trees_.size();
  }

 private:
  unsigned n_estimators_;
  std::uint64_t seed_;
  TreeParams base_;
  std::vector<DecisionTreeRegressor> trees_;
};

/// Random forest (R13:RFR): bagging + per-split feature subsampling.
/// sklearn's regression default max_features=1.0 is kept, so the
/// decorrelation comes from the bootstrap (matching what the paper ran).
class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(unsigned n_estimators = 100,
                                 double max_features = 1.0,
                                 std::uint64_t seed = 42)
      : n_estimators_(n_estimators), max_features_(max_features),
        seed_(seed) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "RandomForestRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  [[nodiscard]] std::size_t estimator_count() const noexcept {
    return trees_.size();
  }

 private:
  unsigned n_estimators_;
  double max_features_;
  std::uint64_t seed_;
  std::vector<DecisionTreeRegressor> trees_;
};

/// AdaBoost.R2 (R1:AdaBoostR) - Drucker's regression boosting with
/// linear loss; prediction is the weighted *median* of the learners.
class AdaBoostRegressor final : public Regressor {
 public:
  explicit AdaBoostRegressor(unsigned n_estimators = 50,
                             double learning_rate = 1.0,
                             std::uint64_t seed = 42)
      : n_estimators_(n_estimators), learning_rate_(learning_rate),
        seed_(seed) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "AdaBoostRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  [[nodiscard]] std::size_t estimator_count() const noexcept {
    return trees_.size();
  }

 private:
  unsigned n_estimators_;
  double learning_rate_;
  std::uint64_t seed_;
  std::vector<DecisionTreeRegressor> trees_;
  Vector learner_weights_;  // ln(1/beta_m)
};

/// Gradient boosting with squared loss (R6:GBR).
class GradientBoostingRegressor final : public Regressor {
 public:
  explicit GradientBoostingRegressor(unsigned n_estimators = 100,
                                     double learning_rate = 0.1,
                                     unsigned max_depth = 3,
                                     std::uint64_t seed = 42)
      : n_estimators_(n_estimators), learning_rate_(learning_rate),
        max_depth_(max_depth), seed_(seed) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "GradientBoostingRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  [[nodiscard]] std::size_t estimator_count() const noexcept {
    return trees_.size();
  }

 private:
  unsigned n_estimators_;
  double learning_rate_;
  unsigned max_depth_;
  std::uint64_t seed_;
  double init_ = 0.0;  // F_0: the training mean
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace hp::ml
