#include "ml/gpr.hpp"

#include <cmath>
#include <stdexcept>

namespace hp::ml {

double GaussianProcessRegressor::kernel(const double* a, const double* b,
                                        std::size_t p) const {
  double d2 = 0.0;
  for (std::size_t j = 0; j < p; ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-0.5 * d2 / (length_scale_ * length_scale_));
}

void GaussianProcessRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  x_train_ = x;
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row_data(i), x.row_data(j), p);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += alpha_;
  }
  // A touch more jitter if the Gram matrix is numerically indefinite.
  for (double jitter = alpha_;; jitter *= 100.0) {
    try {
      chol_ = cholesky(k);
      break;
    } catch (const std::domain_error&) {
      if (jitter > 1e-2) throw;
      for (std::size_t i = 0; i < n; ++i) k(i, i) += jitter * 99.0;
    }
  }
  weights_ = cholesky_solve(chol_, y);
  fitted_ = true;
}

Vector GaussianProcessRegressor::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR: feature count mismatch");
  }
  const std::size_t p = x.cols();
  Vector out(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < x_train_.rows(); ++t) {
      acc += kernel(x.row_data(i), x_train_.row_data(t), p) * weights_[t];
    }
    out[i] = acc;  // zero prior mean, as in sklearn with normalize_y=False
  }
  return out;
}

Vector GaussianProcessRegressor::predict_std(const Matrix& x) const {
  check_is_fitted(fitted_);
  const std::size_t p = x.cols();
  Vector out(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    Vector kstar(x_train_.rows());
    for (std::size_t t = 0; t < x_train_.rows(); ++t) {
      kstar[t] = kernel(x.row_data(i), x_train_.row_data(t), p);
    }
    const Vector v = cholesky_solve(chol_, kstar);
    double var = kernel(x.row_data(i), x.row_data(i), p) - dot(kstar, v);
    out[i] = std::sqrt(std::max(var, 0.0));
  }
  return out;
}

std::unique_ptr<Regressor> GaussianProcessRegressor::clone() const {
  return std::make_unique<GaussianProcessRegressor>(length_scale_, alpha_);
}

}  // namespace hp::ml
