#pragma once
// Epsilon-insensitive Support Vector Regression (R16:SVM-Linear and
// R17:SVM-RBF), solved in the dual with a pairwise (SMO-style)
// coordinate optimizer.
//
// sklearn defaults are kept: C=1, epsilon=0.1; RBF gamma="scale"
// (1 / (n_features * Var(X))).  The dual variable per sample is
// beta_i = alpha_i - alpha_i^* in [-C, C] with sum(beta) = 0; pair
// updates move (beta_i, beta_j) along the constraint manifold and
// maximize the piecewise-quadratic dual exactly on each sign region.

#include <cstdint>
#include <memory>

#include "ml/regressor.hpp"

namespace hp::ml {

enum class SvrKernel { kLinear, kRbf };

class SVR final : public Regressor {
 public:
  struct Params {
    SvrKernel kernel = SvrKernel::kRbf;
    double c = 1.0;
    double epsilon = 0.1;
    /// Negative means "scale": 1 / (n_features * Var(X)).
    double gamma = -1.0;
    unsigned max_passes = 200;
    double tol = 1e-3;
    std::uint64_t seed = 42;
  };

  SVR() = default;
  explicit SVR(Params params) : params_(params) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return params_.kernel == SvrKernel::kLinear ? "SVR-Linear" : "SVR-RBF";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// Number of samples with nonzero dual coefficient (post-fit).
  [[nodiscard]] std::size_t support_vector_count() const;

 private:
  [[nodiscard]] double kernel(const double* a, const double* b,
                              std::size_t p) const;

  Params params_{};
  double gamma_eff_ = 1.0;
  Matrix x_train_;
  Vector beta_;  // dual coefficients alpha - alpha*
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace hp::ml
