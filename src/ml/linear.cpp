#include "ml/linear.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace hp::ml {

namespace {

/// Split the augmented least-squares solution into (weights, intercept).
std::pair<Vector, double> unpack(Vector solution) {
  const double b = solution.back();
  solution.pop_back();
  return {std::move(solution), b};
}

/// Soft-thresholding operator used by the L1 coordinate-descent solvers.
double soft_threshold(double rho, double lambda) {
  if (rho > lambda) return rho - lambda;
  if (rho < -lambda) return rho + lambda;
  return 0.0;
}

/// Shared cyclic coordinate descent for Lasso / ElasticNet, matching
/// sklearn's objective 1/(2n) ||y - Xw - b||^2 + alpha*l1_ratio*||w||_1
/// + 0.5*alpha*(1-l1_ratio)*||w||^2.  Features are centred so the
/// intercept drops out of the subproblem.
std::pair<Vector, double> coordinate_descent(const Matrix& x, const Vector& y,
                                             double alpha, double l1_ratio,
                                             unsigned max_iter, double tol) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Vector xm = col_means(x);
  const double ym = mean(y);

  // Centred copies.
  Matrix xc(n, p);
  Vector yc(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) xc(i, j) = x(i, j) - xm[j];
    yc[i] = y[i] - ym;
  }
  // Per-feature squared norms.
  Vector z(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) z[j] += xc(i, j) * xc(i, j);
  }
  const double nn = static_cast<double>(n);
  const double l1 = alpha * l1_ratio * nn;
  const double l2 = alpha * (1.0 - l1_ratio) * nn;

  Vector w(p, 0.0);
  Vector residual = yc;  // r = yc - Xc w, with w = 0 initially
  for (unsigned it = 0; it < max_iter; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      if (z[j] == 0.0) continue;
      // rho = x_j . (r + x_j w_j)
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) rho += xc(i, j) * residual[i];
      rho += z[j] * w[j];
      const double w_new = soft_threshold(rho, l1) / (z[j] + l2);
      const double delta = w_new - w[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= xc(i, j) * delta;
        w[j] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol) break;
  }
  double b = ym;
  for (std::size_t j = 0; j < p; ++j) b -= w[j] * xm[j];
  return {std::move(w), b};
}

}  // namespace

Vector LinearModelBase::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != w_.size()) {
    throw std::invalid_argument("predict: feature count mismatch");
  }
  Vector out = matvec(x, w_);
  for (double& v : out) v += b_;
  return out;
}

void LinearRegression::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  auto [w, b] = unpack(least_squares(x, y, 0.0, true));
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> LinearRegression::clone() const {
  return std::make_unique<LinearRegression>();
}

void Ridge::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  auto [w, b] = unpack(least_squares(x, y, alpha_, true));
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> Ridge::clone() const {
  return std::make_unique<Ridge>(alpha_);
}

void Lasso::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  auto [w, b] = coordinate_descent(x, y, alpha_, 1.0, max_iter_, tol_);
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> Lasso::clone() const {
  return std::make_unique<Lasso>(alpha_, max_iter_, tol_);
}

void ElasticNet::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  auto [w, b] = coordinate_descent(x, y, alpha_, l1_ratio_, max_iter_, tol_);
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> ElasticNet::clone() const {
  return std::make_unique<ElasticNet>(alpha_, l1_ratio_, max_iter_, tol_);
}

void SGDRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  Vector w(p, 0.0);
  double b = 0.0;
  std::mt19937_64 rng(seed_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double best_loss = std::numeric_limits<double>::infinity();
  unsigned no_improvement = 0;
  std::size_t t = 1;
  for (unsigned epoch = 0; epoch < max_iter_; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const double* row = x.row_data(idx);
      double pred = b;
      for (std::size_t j = 0; j < p; ++j) pred += w[j] * row[j];
      const double err = pred - y[idx];
      epoch_loss += 0.5 * err * err;
      const double eta =
          eta0_ / std::pow(static_cast<double>(t), 0.25);  // invscaling
      for (std::size_t j = 0; j < p; ++j) {
        w[j] -= eta * (err * row[j] + alpha_ * w[j]);
      }
      b -= eta * err;
      ++t;
    }
    epoch_loss /= static_cast<double>(n);
    // sklearn stopping rule: stop when loss fails to improve by tol for
    // n_iter_no_change (default 5) consecutive epochs.
    if (epoch_loss > best_loss - tol_) {
      if (++no_improvement >= 5) break;
    } else {
      no_improvement = 0;
    }
    best_loss = std::min(best_loss, epoch_loss);
  }
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> SGDRegressor::clone() const {
  return std::make_unique<SGDRegressor>(alpha_, eta0_, max_iter_, tol_, seed_);
}

void HuberRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  // IRLS: weighted ridge where samples beyond epsilon*sigma get
  // down-weighted proportionally to 1/|r|.
  Vector w(p, 0.0);
  double b = mean(y);
  for (unsigned it = 0; it < max_iter_; ++it) {
    // Residuals and robust scale (MAD-based sigma estimate).
    Vector r(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = x.row_data(i);
      double pred = b;
      for (std::size_t j = 0; j < p; ++j) pred += w[j] * row[j];
      r[i] = y[i] - pred;
    }
    Vector abs_r(n);
    for (std::size_t i = 0; i < n; ++i) abs_r[i] = std::abs(r[i]);
    double sigma = median(abs_r) / 0.6745;
    if (sigma < 1e-9) sigma = 1e-9;

    // Weighted normal equations: weight_i = min(1, eps*sigma/|r_i|).
    Matrix g(p + 1, p + 1, 0.0);
    Vector rhs(p + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = x.row_data(i);
      const double cutoff = epsilon_ * sigma;
      const double wi =
          abs_r[i] <= cutoff ? 1.0 : cutoff / abs_r[i];
      auto feat = [&](std::size_t j) { return j < p ? row[j] : 1.0; };
      for (std::size_t a = 0; a <= p; ++a) {
        for (std::size_t c = a; c <= p; ++c) g(a, c) += wi * feat(a) * feat(c);
        rhs[a] += wi * feat(a) * y[i];
      }
    }
    for (std::size_t a = 0; a <= p; ++a) {
      for (std::size_t c = 0; c < a; ++c) g(a, c) = g(c, a);
      if (a < p) g(a, a) += alpha_;
    }
    Vector sol = lu_solve(std::move(g), std::move(rhs));
    double delta = std::abs(sol[p] - b);
    for (std::size_t j = 0; j < p; ++j) {
      delta = std::max(delta, std::abs(sol[j] - w[j]));
    }
    b = sol[p];
    for (std::size_t j = 0; j < p; ++j) w[j] = sol[j];
    if (delta < tol_) break;
  }
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> HuberRegressor::clone() const {
  return std::make_unique<HuberRegressor>(epsilon_, alpha_, max_iter_, tol_);
}

void RANSACRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const std::size_t min_samples = std::min(n, p + 1);

  // sklearn default residual threshold: MAD of y.
  double threshold;
  if (residual_threshold_) {
    threshold = *residual_threshold_;
  } else {
    const double med = median(y);
    Vector dev(n);
    for (std::size_t i = 0; i < n; ++i) dev[i] = std::abs(y[i] - med);
    threshold = median(dev);
    if (threshold <= 0.0) threshold = 1e-9;
  }

  std::mt19937_64 rng(seed_);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);

  std::size_t best_inliers = 0;
  Vector best_w;
  double best_b = 0.0;
  for (unsigned trial = 0; trial < max_trials_; ++trial) {
    std::shuffle(all.begin(), all.end(), rng);
    const std::vector<std::size_t> subset(all.begin(),
                                          all.begin() + static_cast<std::ptrdiff_t>(min_samples));
    const Matrix xs = x.rows_subset(subset);
    Vector ys(min_samples);
    for (std::size_t k = 0; k < min_samples; ++k) ys[k] = y[subset[k]];
    Vector sol;
    try {
      sol = least_squares(xs, ys, 0.0, true);
    } catch (const std::domain_error&) {
      continue;  // degenerate sample
    }
    // Count inliers over the full set.
    std::size_t inliers = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = x.row_data(i);
      double pred = sol[p];
      for (std::size_t j = 0; j < p; ++j) pred += sol[j] * row[j];
      if (std::abs(y[i] - pred) <= threshold) ++inliers;
    }
    if (inliers > best_inliers) {
      best_inliers = inliers;
      best_w.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(p));
      best_b = sol[p];
    }
  }
  if (best_inliers == 0) {
    // No consensus found: fall back to plain OLS on everything.
    auto [w, b] = unpack(least_squares(x, y, 0.0, true));
    set_weights(std::move(w), b);
    inlier_count_ = n;
    return;
  }
  // Refit on the winning consensus set.
  std::vector<std::size_t> inlier_idx;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = x.row_data(i);
    double pred = best_b;
    for (std::size_t j = 0; j < p; ++j) pred += best_w[j] * row[j];
    if (std::abs(y[i] - pred) <= threshold) inlier_idx.push_back(i);
  }
  const Matrix xi = x.rows_subset(inlier_idx);
  Vector yi(inlier_idx.size());
  for (std::size_t k = 0; k < inlier_idx.size(); ++k) yi[k] = y[inlier_idx[k]];
  auto [w, b] = unpack(least_squares(xi, yi, 0.0, true));
  inlier_count_ = inlier_idx.size();
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> RANSACRegressor::clone() const {
  return std::make_unique<RANSACRegressor>(max_trials_, residual_threshold_,
                                           seed_);
}

void TheilSenRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const std::size_t k = std::min(n, p + 1);

  std::mt19937_64 rng(seed_);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);

  std::vector<Vector> solutions;
  solutions.reserve(n_subsamples_);
  for (unsigned s = 0; s < n_subsamples_; ++s) {
    std::shuffle(all.begin(), all.end(), rng);
    const std::vector<std::size_t> subset(
        all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
    const Matrix xs = x.rows_subset(subset);
    Vector ys(k);
    for (std::size_t i = 0; i < k; ++i) ys[i] = y[subset[i]];
    try {
      solutions.push_back(least_squares(xs, ys, 0.0, true));
    } catch (const std::domain_error&) {
      // Degenerate subset; skip.
    }
  }
  if (solutions.empty()) {
    auto [w, b] = unpack(least_squares(x, y, 0.0, true));
    set_weights(std::move(w), b);
    return;
  }
  // Coordinate-wise median across subset solutions.
  Vector w(p, 0.0);
  Vector coord(solutions.size());
  for (std::size_t j = 0; j <= p; ++j) {
    for (std::size_t s = 0; s < solutions.size(); ++s) {
      coord[s] = solutions[s][j];
    }
    if (j < p) {
      w[j] = median(coord);
    } else {
      set_weights(std::move(w), median(coord));
    }
  }
}

std::unique_ptr<Regressor> TheilSenRegressor::clone() const {
  return std::make_unique<TheilSenRegressor>(n_subsamples_, seed_);
}

void ARDRegression::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  // Centre target and features; the intercept is recovered at the end
  // (sklearn fits an intercept by centring as well).
  const Vector xm = col_means(x);
  const double ym = mean(y);
  Matrix xc(n, p);
  Vector yc(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) xc(i, j) = x(i, j) - xm[j];
    yc[i] = y[i] - ym;
  }

  // Precompute Gram and X^T y.
  const Matrix g = gram(xc);
  const Vector xty = At_y(xc, yc);

  double beta = 1.0 / std::max(variance(yc), 1e-12);  // noise precision
  Vector alpha(p, 1.0);                               // weight precisions
  Vector w(p, 0.0);
  std::vector<bool> active(p, true);

  for (unsigned it = 0; it < max_iter_; ++it) {
    // Posterior: Sigma = (beta * G + diag(alpha))^-1 over active dims.
    std::vector<std::size_t> idx;
    for (std::size_t j = 0; j < p; ++j) {
      if (active[j]) idx.push_back(j);
    }
    const std::size_t m = idx.size();
    if (m == 0) break;
    Matrix a(m, m, 0.0);
    Vector rhs(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) a(r, c) = beta * g(idx[r], idx[c]);
      a(r, r) += alpha[idx[r]];
      rhs[r] = beta * xty[idx[r]];
    }
    Matrix l;
    try {
      l = cholesky(a);
    } catch (const std::domain_error&) {
      break;  // numerical trouble: keep previous estimates
    }
    const Vector mu = cholesky_solve(l, rhs);

    // Diagonal of Sigma via solves against unit vectors (m is small:
    // windowed histories have ~10 features).
    Vector sigma_diag(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      Vector e(m, 0.0);
      e[r] = 1.0;
      sigma_diag[r] = cholesky_solve(l, e)[r];
    }

    // MacKay updates.
    Vector w_new(p, 0.0);
    double gamma_sum = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t j = idx[r];
      w_new[j] = mu[r];
      const double gamma = 1.0 - alpha[j] * sigma_diag[r];
      gamma_sum += gamma;
      alpha[j] = std::max(gamma, 1e-12) / std::max(mu[r] * mu[r], 1e-12);
      if (alpha[j] > alpha_threshold_) {
        active[j] = false;  // prune irrelevant feature
        w_new[j] = 0.0;
      }
    }
    // Residual-based noise precision update.
    double rss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double pred = 0.0;
      const double* row = xc.row_data(i);
      for (std::size_t j = 0; j < p; ++j) pred += w_new[j] * row[j];
      rss += (yc[i] - pred) * (yc[i] - pred);
    }
    beta = (static_cast<double>(n) - gamma_sum) / std::max(rss, 1e-12);

    double delta = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      delta = std::max(delta, std::abs(w_new[j] - w[j]));
    }
    w = std::move(w_new);
    if (delta < tol_) break;
  }

  double b = ym;
  for (std::size_t j = 0; j < p; ++j) b -= w[j] * xm[j];
  set_weights(std::move(w), b);
}

std::unique_ptr<Regressor> ARDRegression::clone() const {
  return std::make_unique<ARDRegression>(max_iter_, tol_, alpha_threshold_);
}

}  // namespace hp::ml
