#pragma once
// Dense linear algebra kernels for the ml regressors.
//
// Deliberately small: the regression problems in this framework are
// windowed QoS histories (tens of features, hundreds of rows), so a
// cache-friendly row-major dense matrix with LU / Cholesky solves covers
// everything the 18 regressors need.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hp::ml {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Copy of row i as a vector.
  [[nodiscard]] Vector row(std::size_t i) const;

  /// Pointer to the start of row i (contiguous, cols() doubles).
  [[nodiscard]] const double* row_data(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] double* row_data(std::size_t i) noexcept {
    return data_.data() + i * cols_;
  }

  /// Copy of column j.
  [[nodiscard]] Vector col(std::size_t j) const;

  [[nodiscard]] Matrix transposed() const;

  /// Select a subset of rows (duplicates allowed: bootstrap sampling).
  [[nodiscard]] Matrix rows_subset(const std::vector<std::size_t>& idx) const;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x (dimensions checked, throws std::invalid_argument).
[[nodiscard]] Vector matvec(const Matrix& a, const Vector& x);

/// C = A B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// A^T A (the Gram matrix used by normal-equation solvers).
[[nodiscard]] Matrix gram(const Matrix& a);

/// A^T y.
[[nodiscard]] Vector At_y(const Matrix& a, const Vector& y);

/// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Solve A x = b for square A via LU with partial pivoting.
/// Throws std::domain_error when A is (numerically) singular.
[[nodiscard]] Vector lu_solve(Matrix a, Vector b);

/// Cholesky factorization of SPD matrix A (lower triangular L with
/// A = L L^T), in place.  Throws std::domain_error when not positive
/// definite.  Returns L in the lower triangle.
[[nodiscard]] Matrix cholesky(Matrix a);

/// Solve A x = b with A SPD using a precomputed Cholesky factor L.
[[nodiscard]] Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Ordinary/ridge least squares: argmin ||X w - y||^2 + l2 ||w||^2,
/// solved via the normal equations with a Cholesky factorization (a tiny
/// jitter is added when l2 == 0 to survive rank deficiency).
/// When `fit_intercept` is true the returned vector has size cols+1 with
/// the intercept last.
[[nodiscard]] Vector least_squares(const Matrix& x, const Vector& y,
                                   double l2 = 0.0,
                                   bool fit_intercept = true);

/// Column means of X.
[[nodiscard]] Vector col_means(const Matrix& x);

/// Column (population) variances of X.
[[nodiscard]] Vector col_variances(const Matrix& x);

/// Mean of a vector (0 for empty).
[[nodiscard]] double mean(const Vector& v);

/// Population variance of a vector.
[[nodiscard]] double variance(const Vector& v);

/// Median (copies and partially sorts); throws std::invalid_argument on
/// empty input.
[[nodiscard]] double median(Vector v);

}  // namespace hp::ml
