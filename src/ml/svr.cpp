#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace hp::ml {

double SVR::kernel(const double* a, const double* b, std::size_t p) const {
  if (params_.kernel == SvrKernel::kLinear) {
    double acc = 0.0;
    for (std::size_t j = 0; j < p; ++j) acc += a[j] * b[j];
    return acc;
  }
  double d2 = 0.0;
  for (std::size_t j = 0; j < p; ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-gamma_eff_ * d2);
}

void SVR::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  x_train_ = x;

  if (params_.gamma > 0.0) {
    gamma_eff_ = params_.gamma;
  } else {
    // sklearn "scale": 1 / (p * Var(all entries of X)).
    double total_var = 0.0;
    {
      Vector flat;
      flat.reserve(n * p);
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = x.row_data(i);
        flat.insert(flat.end(), row, row + p);
      }
      total_var = variance(flat);
    }
    gamma_eff_ = 1.0 / (static_cast<double>(p) * std::max(total_var, 1e-12));
  }

  // Precompute the kernel matrix (training sets here are hundreds of
  // rows; O(n^2) memory is the right trade against repeated kernel
  // evaluations inside the pair loop).
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row_data(i), x.row_data(j), p);
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  beta_.assign(n, 0.0);
  Vector f(n, 0.0);  // f_i = (K beta)_i
  const double c = params_.c;
  const double eps = params_.epsilon;

  std::mt19937_64 rng(params_.seed);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);

  // Dual objective restricted to the pair (i, j) moving beta_i += d,
  // beta_j -= d:
  //   g(d) = -0.5*eta*d^2 + (grad_i - grad_j)*d
  //          - eps*(|beta_i + d| - |beta_i| + |beta_j - d| - |beta_j|)
  // with eta = K_ii + K_jj - 2 K_ij and grad_i = y_i - f_i.
  auto optimize_pair = [&](std::size_t i, std::size_t j) -> double {
    const double eta = k(i, i) + k(j, j) - 2.0 * k(i, j);
    if (eta <= 1e-12) return 0.0;
    const double gi = y[i] - f[i];
    const double gj = y[j] - f[j];
    const double bi = beta_[i];
    const double bj = beta_[j];
    // Feasible interval for d from the box constraints.
    const double lo = std::max(-c - bi, bj - c);
    const double hi = std::min(c - bi, bj + c);
    if (lo >= hi) return 0.0;

    // Candidate breakpoints: where beta_i + d or beta_j - d cross zero.
    double candidates[4] = {lo, hi, -bi, bj};
    std::sort(std::begin(candidates), std::end(candidates));
    double best_d = 0.0;
    double best_val = 0.0;  // g(0) == 0 by construction
    auto value_at = [&](double d) {
      return -0.5 * eta * d * d + (gi - gj) * d -
             eps * (std::abs(bi + d) - std::abs(bi) + std::abs(bj - d) -
                    std::abs(bj));
    };
    // Optimize on each sign region.
    for (int seg = 0; seg < 3; ++seg) {
      double a = std::max(lo, candidates[seg]);
      double b = std::min(hi, candidates[seg + 1]);
      if (a >= b) continue;
      const double mid = 0.5 * (a + b);
      const double si = (bi + mid) >= 0.0 ? 1.0 : -1.0;
      const double sj = (bj - mid) >= 0.0 ? 1.0 : -1.0;
      // d/dd g = -eta*d + (gi - gj) - eps*(si + (-1)*sj*(-1)) ...
      // |bi+d|' = si ; |bj-d|' = -sj.  So slope = -eta d + (gi-gj)
      //   - eps*(si - sj).
      double d_star = ((gi - gj) - eps * (si - sj)) / eta;
      d_star = std::clamp(d_star, a, b);
      for (double cand : {d_star, a, b}) {
        const double v = value_at(cand);
        if (v > best_val + 1e-15) {
          best_val = v;
          best_d = cand;
        }
      }
    }
    if (best_d == 0.0) return 0.0;
    beta_[i] += best_d;
    beta_[j] -= best_d;
    for (std::size_t t = 0; t < n; ++t) {
      f[t] += best_d * (k(i, t) - k(j, t));
    }
    return std::abs(best_d);
  };

  for (unsigned pass = 0; pass < params_.max_passes; ++pass) {
    double moved = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t j = pick(rng);
      if (j == i) j = (j + 1) % n;
      moved += optimize_pair(i, j);
    }
    if (moved < params_.tol) break;
  }

  // Bias from unbounded support vectors: y_i - f_i - eps*sign(beta_i).
  double bias_acc = 0.0;
  std::size_t bias_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double abs_b = std::abs(beta_[i]);
    if (abs_b > 1e-8 && abs_b < c - 1e-8) {
      bias_acc += y[i] - f[i] - eps * (beta_[i] > 0 ? 1.0 : -1.0);
      ++bias_count;
    }
  }
  if (bias_count > 0) {
    bias_ = bias_acc / static_cast<double>(bias_count);
  } else {
    // Fallback: average residual.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += y[i] - f[i];
    bias_ = acc / static_cast<double>(n);
  }
  fitted_ = true;
}

Vector SVR::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("SVR: feature count mismatch");
  }
  const std::size_t p = x.cols();
  Vector out(x.rows(), bias_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < x_train_.rows(); ++t) {
      if (beta_[t] == 0.0) continue;
      acc += beta_[t] * kernel(x.row_data(i), x_train_.row_data(t), p);
    }
    out[i] += acc;
  }
  return out;
}

std::size_t SVR::support_vector_count() const {
  std::size_t count = 0;
  for (double b : beta_) {
    if (std::abs(b) > 1e-8) ++count;
  }
  return count;
}

std::unique_ptr<Regressor> SVR::clone() const {
  return std::make_unique<SVR>(params_);
}

}  // namespace hp::ml
