#include "ml/regressor.hpp"

#include <stdexcept>

namespace hp::ml {

void Regressor::check_fit_args(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("fit: empty training matrix");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("fit: X rows and y length differ");
  }
}

void Regressor::check_is_fitted(bool fitted) {
  if (!fitted) throw std::logic_error("predict: model is not fitted");
}

}  // namespace hp::ml
