#pragma once
// Gaussian process regression with an RBF kernel (R7:GPR).
//
// Matches the sklearn configuration the paper ran: kernel RBF(1.0),
// alpha=1e-10 jitter, and *no* target normalization (normalize_y=False)
// -- the zero-mean prior is exactly why GPR is the paper's worst model
// (Fig 8): in the 10-dimensional scaled feature space the default unit
// length scale makes test points nearly orthogonal to the training set,
// so predictions collapse to the prior mean.  We reproduce that
// behaviour rather than fixing it; kernel hyperparameter optimization is
// intentionally not performed (documented substitution in DESIGN.md).

#include <memory>

#include "ml/regressor.hpp"

namespace hp::ml {

class GaussianProcessRegressor final : public Regressor {
 public:
  explicit GaussianProcessRegressor(double length_scale = 1.0,
                                    double alpha = 1e-10)
      : length_scale_(length_scale), alpha_(alpha) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "GaussianProcessRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// Posterior standard deviation at each query row (after fit()).
  [[nodiscard]] Vector predict_std(const Matrix& x) const;

 private:
  [[nodiscard]] double kernel(const double* a, const double* b,
                              std::size_t p) const;

  double length_scale_;
  double alpha_;
  Matrix x_train_;
  Matrix chol_;      // L with K + alpha I = L L^T
  Vector weights_;   // (K + alpha I)^{-1} y
  bool fitted_ = false;
};

}  // namespace hp::ml
