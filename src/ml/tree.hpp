#pragma once
// CART regression tree (R4:DTR) - also the base learner for the
// Bagging / RandomForest / AdaBoost / GradientBoosting ensembles.
//
// Splits minimize child SSE (equivalently maximize variance reduction),
// scanning sorted feature values with prefix sums, as in sklearn's
// exact splitter.  Defaults: unlimited depth, min_samples_split=2,
// min_samples_leaf=1, all features considered.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "ml/regressor.hpp"

namespace hp::ml {

/// Hyperparameters for DecisionTreeRegressor.
struct TreeParams {
  std::optional<unsigned> max_depth{};    ///< unlimited when unset
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Fraction of features examined per split in (0,1]; 1.0 = all.
  double max_features = 1.0;
  std::uint64_t seed = 42;  ///< used only when max_features < 1
};

/// CART regression tree with MSE splitting.
class DecisionTreeRegressor final : public Regressor {
 public:
  DecisionTreeRegressor() = default;
  explicit DecisionTreeRegressor(TreeParams params) : params_(params) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "DecisionTreeRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// Single-row prediction (used heavily by the ensembles).
  [[nodiscard]] double predict_one(const double* row) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }
  [[nodiscard]] const TreeParams& params() const noexcept { return params_; }

 private:
  struct Node {
    // Internal node when feature != kLeaf; leaf stores `value` only.
    static constexpr std::size_t kLeaf = std::numeric_limits<std::size_t>::max();
    std::size_t feature = kLeaf;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;
  };

  std::size_t build(const Matrix& x, const Vector& y,
                    std::vector<std::size_t>& idx, std::size_t lo,
                    std::size_t hi, unsigned depth, std::uint64_t& rng_state);

  TreeParams params_{};
  std::vector<Node> nodes_;
  std::size_t n_features_ = 0;
  unsigned depth_ = 0;
  bool fitted_ = false;
};

}  // namespace hp::ml
