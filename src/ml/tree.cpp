#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hp::ml {

namespace {

/// xorshift64*: cheap deterministic generator for feature subsampling
/// (quality requirements are modest and allocation-free matters here).
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

void DecisionTreeRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  if (params_.max_features <= 0.0 || params_.max_features > 1.0) {
    throw std::invalid_argument("DecisionTree: max_features in (0,1]");
  }
  nodes_.clear();
  depth_ = 0;
  n_features_ = x.cols();
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::uint64_t rng_state = params_.seed | 1;
  (void)build(x, y, idx, 0, idx.size(), 0, rng_state);
  fitted_ = true;
}

std::size_t DecisionTreeRegressor::build(const Matrix& x, const Vector& y,
                                         std::vector<std::size_t>& idx,
                                         std::size_t lo, std::size_t hi,
                                         unsigned depth,
                                         std::uint64_t& rng_state) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = hi - lo;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += y[idx[i]];
  const double node_mean = sum / static_cast<double>(n);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value = node_mean;
    nodes_.push_back(leaf);
    return nodes_.size() - 1;
  };

  if (n < params_.min_samples_split ||
      (params_.max_depth && depth >= *params_.max_depth)) {
    return make_leaf();
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(n_features_);
  std::iota(features.begin(), features.end(), 0);
  std::size_t n_candidates = n_features_;
  if (params_.max_features < 1.0) {
    n_candidates = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(
               params_.max_features * static_cast<double>(n_features_))));
    // Partial Fisher-Yates.
    for (std::size_t i = 0; i < n_candidates; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(next_rand(rng_state) %
                                       (n_features_ - i));
      std::swap(features[i], features[j]);
    }
  }

  // Best split search: sort indices per feature and scan with prefix
  // sums; proxy objective is maximizing sum_L^2/n_L + sum_R^2/n_R.
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best_feature = Node::kLeaf;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                                  idx.begin() + static_cast<std::ptrdiff_t>(hi));
  const double parent_score = sum * sum / static_cast<double>(n);
  for (std::size_t fi = 0; fi < n_candidates; ++fi) {
    const std::size_t f = features[fi];
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x(a, f) < x(b, f); });
    double left_sum = 0.0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      left_sum += y[sorted[k]];
      const std::size_t n_left = k + 1;
      const std::size_t n_right = n - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double v = x(sorted[k], f);
      const double v_next = x(sorted[k + 1], f);
      if (v == v_next) continue;  // cannot split between equal values
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(n_left) +
          right_sum * right_sum / static_cast<double>(n_right);
      if (score > best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature == Node::kLeaf || best_score <= parent_score + 1e-12) {
    return make_leaf();
  }

  // Partition idx[lo,hi) by the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(lo),
      idx.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t i) { return x(i, best_feature) <= best_threshold; });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf();  // numeric ties

  const std::size_t me = nodes_.size();
  nodes_.emplace_back();
  nodes_[me].feature = best_feature;
  nodes_[me].threshold = best_threshold;
  const std::size_t left = build(x, y, idx, lo, mid, depth + 1, rng_state);
  const std::size_t right = build(x, y, idx, mid, hi, depth + 1, rng_state);
  nodes_[me].left = left;
  nodes_[me].right = right;
  return me;
}

double DecisionTreeRegressor::predict_one(const double* row) const {
  std::size_t cur = 0;
  while (nodes_[cur].feature != Node::kLeaf) {
    cur = row[nodes_[cur].feature] <= nodes_[cur].threshold
              ? nodes_[cur].left
              : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

Vector DecisionTreeRegressor::predict(const Matrix& x) const {
  check_is_fitted(fitted_);
  if (x.cols() != n_features_) {
    throw std::invalid_argument("DecisionTree: feature count mismatch");
  }
  Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_one(x.row_data(i));
  }
  return out;
}

std::unique_ptr<Regressor> DecisionTreeRegressor::clone() const {
  return std::make_unique<DecisionTreeRegressor>(params_);
}

}  // namespace hp::ml
