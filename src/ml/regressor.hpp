#pragma once
// Common interface for the 18 Hecate regression models.
//
// Mirrors the scikit-learn estimator contract the paper relies on:
// fit(X, y) then predict(X).  Implementations use scikit-learn-default
// hyperparameters (documented per class) so the Fig 6 model ranking is
// comparable in shape.

#include <memory>
#include <string>

#include "ml/linalg.hpp"

namespace hp::ml {

/// Abstract regression model.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on rows of `x` with targets `y` (same length; implementations
  /// throw std::invalid_argument otherwise, and on empty input).
  virtual void fit(const Matrix& x, const Vector& y) = 0;

  /// Predict one value per row of `x`.  Must be called after fit()
  /// (throws std::logic_error otherwise).
  [[nodiscard]] virtual Vector predict(const Matrix& x) const = 0;

  /// Stable identifier, e.g. "RandomForestRegressor".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh untrained copy with identical hyperparameters (used by the
  /// ensemble meta-estimators and by model selection).
  [[nodiscard]] virtual std::unique_ptr<Regressor> clone() const = 0;

 protected:
  /// Shared argument validation for fit() implementations.
  static void check_fit_args(const Matrix& x, const Vector& y);
  /// Shared state validation for predict() implementations.
  static void check_is_fitted(bool fitted);
};

/// Factory signature used by ensembles to mint base estimators.
using RegressorFactory = std::unique_ptr<Regressor> (*)();

}  // namespace hp::ml
