#pragma once
// Histogram-based gradient boosting (R8:HGBR), modelled on sklearn's
// HistGradientBoostingRegressor: features are quantile-binned once (up
// to 255 bins), trees are grown leaf-wise to at most 31 leaves using
// per-bin gradient histograms, 100 boosting iterations at lr 0.1,
// min 20 samples per leaf.

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/regressor.hpp"

namespace hp::ml {

class HistGradientBoostingRegressor final : public Regressor {
 public:
  struct Params {
    unsigned max_iter = 100;
    double learning_rate = 0.1;
    unsigned max_bins = 255;
    unsigned max_leaf_nodes = 31;
    std::size_t min_samples_leaf = 20;
    double l2_regularization = 0.0;
  };

  HistGradientBoostingRegressor() = default;
  explicit HistGradientBoostingRegressor(Params params) : params_(params) {}

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override {
    return "HistGradientBoostingRegressor";
  }
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }

 private:
  /// One grown tree over binned features.
  struct TreeNode {
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t feature = kLeaf;
    unsigned bin_threshold = 0;   // go left when bin <= threshold
    double threshold_value = 0.0; // raw-value threshold for prediction
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    [[nodiscard]] double predict_one(const double* row) const;
  };

  [[nodiscard]] Tree grow_tree(const std::vector<std::vector<std::uint8_t>>& binned,
                               const Vector& gradients) const;

  Params params_{};
  double init_ = 0.0;
  std::size_t n_features_ = 0;
  // bin_edges_[f][k] = upper edge of bin k (bin index = #edges < value).
  std::vector<Vector> bin_edges_;
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace hp::ml
