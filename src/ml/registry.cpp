#include "ml/registry.hpp"

#include <stdexcept>

#include "ml/ensemble.hpp"
#include "ml/gpr.hpp"
#include "ml/hist_gbr.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"

namespace hp::ml {

namespace {

std::unique_ptr<Regressor> make_by_name(const std::string& name) {
  if (name == "AdaBoostR") return std::make_unique<AdaBoostRegressor>();
  if (name == "ARDR") return std::make_unique<ARDRegression>();
  if (name == "Bagging") return std::make_unique<BaggingRegressor>();
  if (name == "DTR") return std::make_unique<DecisionTreeRegressor>();
  if (name == "ElasticNet") return std::make_unique<ElasticNet>();
  if (name == "GBR") return std::make_unique<GradientBoostingRegressor>();
  if (name == "GPR") return std::make_unique<GaussianProcessRegressor>();
  if (name == "HGBR") {
    return std::make_unique<HistGradientBoostingRegressor>();
  }
  if (name == "HuberR") return std::make_unique<HuberRegressor>();
  if (name == "Lasso") return std::make_unique<Lasso>();
  if (name == "LR") return std::make_unique<LinearRegression>();
  if (name == "RANSACR") return std::make_unique<RANSACRegressor>();
  if (name == "RFR") return std::make_unique<RandomForestRegressor>();
  if (name == "Ridge") return std::make_unique<Ridge>();
  if (name == "SGDR") return std::make_unique<SGDRegressor>();
  if (name == "SVM_Linear") {
    SVR::Params params;
    params.kernel = SvrKernel::kLinear;
    return std::make_unique<SVR>(params);
  }
  if (name == "SVM_RBF") {
    SVR::Params params;
    params.kernel = SvrKernel::kRbf;
    return std::make_unique<SVR>(params);
  }
  if (name == "TheilSenR") return std::make_unique<TheilSenRegressor>();
  // Extension model (paper Section VII future work); not part of the
  // R1..R18 catalogue but constructible by name.
  if (name == "MLP") return std::make_unique<MLPRegressor>();
  throw std::invalid_argument("make_regressor: unknown model " + name);
}

}  // namespace

std::vector<std::string> regressor_short_names() {
  // Paper Section V-A2, alphabetical, labels R1..R18.
  return {"AdaBoostR", "ARDR",   "Bagging",    "DTR",     "ElasticNet",
          "GBR",       "GPR",    "HGBR",       "HuberR",  "Lasso",
          "LR",        "RANSACR", "RFR",       "Ridge",   "SGDR",
          "SVM_Linear", "SVM_RBF", "TheilSenR"};
}

std::vector<CatalogEntry> make_regressor_catalog() {
  std::vector<CatalogEntry> catalog;
  const auto names = regressor_short_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    CatalogEntry entry;
    entry.label = "R" + std::to_string(i + 1) + ":" + names[i];
    entry.short_name = names[i];
    entry.model = make_by_name(names[i]);
    catalog.push_back(std::move(entry));
  }
  return catalog;
}

std::unique_ptr<Regressor> make_regressor(const std::string& short_name) {
  return make_by_name(short_name);
}

}  // namespace hp::ml
