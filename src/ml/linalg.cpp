#include "ml/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hp::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Vector Matrix::row(std::size_t i) const {
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

Vector Matrix::col(std::size_t j) const {
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::rows_subset(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const double* src = row_data(idx[k]);
    std::copy(src, src + cols_, out.row_data(k));
  }
  return out;
}

Vector matvec(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: dimension mismatch");
  }
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_data(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) {
        g(i, j) += ri * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Vector At_y(const Matrix& a, const Vector& y) {
  if (a.rows() != y.size()) {
    throw std::invalid_argument("At_y: dimension mismatch");
  }
  Vector out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_data(i);
    const double yi = y[i];
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += row[j] * yi;
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector lu_solve(Matrix a, Vector b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("lu_solve: need square system");
  }
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        piv = i;
      }
    }
    if (best < 1e-12) throw std::domain_error("lu_solve: singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
    x[i] = acc / a(i, i);
  }
  return x;
}

Matrix cholesky(Matrix a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("cholesky: need square");
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) throw std::domain_error("cholesky: not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
    for (std::size_t k = j + 1; k < n; ++k) a(j, k) = 0.0;  // zero upper
  }
  return a;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: dim");
  // Forward substitution L z = b.
  Vector z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * z[j];
    z[i] = acc / l(i, i);
  }
  // Back substitution L^T x = z.
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = z[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l(j, i) * x[j];
    x[i] = acc / l(i, i);
  }
  return x;
}

Vector least_squares(const Matrix& x, const Vector& y, double l2,
                     bool fit_intercept) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  if (y.size() != n) throw std::invalid_argument("least_squares: dim");
  const std::size_t cols = fit_intercept ? p + 1 : p;
  // Build the (augmented) design matrix implicitly in the Gram system.
  Matrix g(cols, cols, 0.0);
  Vector rhs(cols, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = x.row_data(i);
    auto feature = [&](std::size_t j) -> double {
      return j < p ? row[j] : 1.0;
    };
    for (std::size_t a = 0; a < cols; ++a) {
      const double fa = feature(a);
      if (fa == 0.0) continue;
      for (std::size_t b = a; b < cols; ++b) g(a, b) += fa * feature(b);
      rhs[a] += fa * y[i];
    }
  }
  for (std::size_t a = 0; a < cols; ++a) {
    for (std::size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  }
  // Regularize the weights (not the intercept), plus jitter for rank
  // deficiency when unregularized.
  const double jitter = l2 > 0.0 ? l2 : 1e-10;
  for (std::size_t a = 0; a < p; ++a) g(a, a) += jitter;
  if (fit_intercept) g(p, p) += 1e-12;
  return lu_solve(std::move(g), std::move(rhs));
}

Vector col_means(const Matrix& x) {
  Vector m(x.cols(), 0.0);
  if (x.rows() == 0) return m;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    for (std::size_t j = 0; j < x.cols(); ++j) m[j] += row[j];
  }
  for (double& v : m) v /= static_cast<double>(x.rows());
  return m;
}

Vector col_variances(const Matrix& x) {
  const Vector m = col_means(x);
  Vector var(x.cols(), 0.0);
  if (x.rows() == 0) return var;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = row[j] - m[j];
      var[j] += d * d;
    }
  }
  for (double& v : var) v /= static_cast<double>(x.rows());
  return var;
}

double mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const Vector& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double median(Vector v) {
  if (v.empty()) throw std::invalid_argument("median: empty");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace hp::ml
