#include "freertr/router_service.hpp"

namespace hp::freertr {

std::size_t RouterConfigService::process_pending() {
  std::size_t processed = 0;
  while (auto message = queue_.try_pop()) {
    ConfigAck ack;
    ack.message_id = message->id;
    // Apply atomically: parse into a scratch copy, commit on success.
    RouterConfig scratch = config_;
    try {
      parse_config(message->commands, scratch);
      config_ = std::move(scratch);
      ack.ok = true;
      ack.revision = config_.revision();
    } catch (const std::invalid_argument& e) {
      ack.ok = false;
      ack.revision = config_.revision();
      ack.error = e.what();
    }
    acks_.push_back(std::move(ack));
    ++processed;
  }
  return processed;
}

}  // namespace hp::freertr
