#pragma once
// RARE/freeRtr configuration model (edge-router subset).
//
// The paper configures PolKA on freeRtr edge routers with three object
// kinds (Fig 10): access lists that classify flows (protocol, prefixes,
// ToS), PolKA tunnels whose "domain-name" lists the explicit router
// path (converted internally to a routeID), and policy-based-routing
// entries binding an access list to a tunnel.  Fig 10 is reproduced from
// a screenshot, so the concrete text grammar here is our reconstruction
// of that command subset (documented substitution in DESIGN.md); the
// object model and the reconfiguration semantics follow the paper.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hp::freertr {

/// IPv4 prefix in CIDR form.
struct Prefix {
  std::uint32_t address = 0;
  unsigned length = 0;

  /// Parse "40.40.1.0/24" (or a bare address, treated as /32).
  /// Throws std::invalid_argument on malformed input.
  static Prefix parse(const std::string& text);

  /// Does this prefix contain `addr`?
  [[nodiscard]] bool contains(std::uint32_t addr) const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
};

/// Parse a dotted-quad IPv4 address.
[[nodiscard]] std::uint32_t parse_ipv4(const std::string& text);
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);

/// One access-list entry: "network 40.40.1.0/24 can access machine
/// 40.40.2.2 using protocol 6 (TCP) ... ToS filters only packets with
/// that indication" (paper Section V-C1).
struct AccessList {
  std::string name;
  unsigned protocol = 6;  ///< IP protocol number (6 = TCP)
  Prefix source;
  Prefix destination;
  std::optional<unsigned> tos;  ///< match any ToS when unset

  /// Does a packet 5-tuple+ToS match this entry?
  [[nodiscard]] bool matches(std::uint32_t src, std::uint32_t dst,
                             unsigned proto,
                             std::optional<unsigned> packet_tos) const;
};

/// A PolKA tunnel: explicit router path, converted by the control plane
/// into a routeID at installation time.
struct PolkaTunnel {
  unsigned id = 0;
  std::string destination_ip;            ///< remote edge loopback
  std::vector<std::string> domain_path;  ///< explicit router names
  std::string mode = "polka";
};

/// PBR entry: traffic matching `access_list` uses `tunnel_id` with the
/// given next hop.  The "single modification of a PBR entry in the
/// ingress edge node" is exactly the migration primitive of Figs 11/12.
struct PbrEntry {
  std::string access_list;
  unsigned tunnel_id = 0;
  std::string nexthop_ip;
};

/// The running configuration of one edge router.
class RouterConfig {
 public:
  /// Insert or replace by name / id.
  void upsert_access_list(AccessList acl);
  void upsert_tunnel(PolkaTunnel tunnel);
  /// Bind (or rebind) an access list to a tunnel; the access list and
  /// tunnel must exist (throws std::invalid_argument).
  void set_pbr(PbrEntry entry);
  /// Remove a PBR binding; returns false when absent.
  bool remove_pbr(const std::string& access_list);

  [[nodiscard]] const AccessList* find_access_list(
      const std::string& name) const;
  [[nodiscard]] const PolkaTunnel* find_tunnel(unsigned id) const;
  [[nodiscard]] const PbrEntry* find_pbr(const std::string& acl_name) const;

  [[nodiscard]] const std::map<std::string, AccessList>& access_lists()
      const noexcept {
    return acls_;
  }
  [[nodiscard]] const std::map<unsigned, PolkaTunnel>& tunnels()
      const noexcept {
    return tunnels_;
  }
  [[nodiscard]] const std::map<std::string, PbrEntry>& pbr_entries()
      const noexcept {
    return pbr_;
  }

  /// Which tunnel (if any) a packet should take, after ACL + PBR lookup.
  [[nodiscard]] std::optional<unsigned> route_lookup(
      std::uint32_t src, std::uint32_t dst, unsigned proto,
      std::optional<unsigned> tos) const;

  /// Render as freeRtr-style configuration text.
  [[nodiscard]] std::string to_text() const;

  /// Monotonic revision, bumped by every successful mutation.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

 private:
  std::map<std::string, AccessList> acls_;
  std::map<unsigned, PolkaTunnel> tunnels_;
  std::map<std::string, PbrEntry> pbr_;
  std::uint64_t revision_ = 0;
};

}  // namespace hp::freertr
