#include "freertr/config_model.hpp"

#include <sstream>
#include <stdexcept>

namespace hp::freertr {

std::uint32_t parse_ipv4(const std::string& text) {
  std::uint32_t addr = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size()) {
      throw std::invalid_argument("parse_ipv4: truncated address " + text);
    }
    std::size_t next = text.find('.', pos);
    if (octet == 3) {
      next = text.size();
    } else if (next == std::string::npos) {
      throw std::invalid_argument("parse_ipv4: malformed address " + text);
    }
    const std::string part = text.substr(pos, next - pos);
    if (part.empty() || part.size() > 3) {
      throw std::invalid_argument("parse_ipv4: bad octet in " + text);
    }
    unsigned value = 0;
    for (const char c : part) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("parse_ipv4: bad digit in " + text);
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > 255) {
      throw std::invalid_argument("parse_ipv4: octet out of range in " + text);
    }
    addr = (addr << 8) | value;
    pos = next + 1;
  }
  return addr;
}

std::string ipv4_to_string(std::uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xFF) << '.' << ((addr >> 16) & 0xFF) << '.'
     << ((addr >> 8) & 0xFF) << '.' << (addr & 0xFF);
  return os.str();
}

Prefix Prefix::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  Prefix p;
  if (slash == std::string::npos) {
    p.address = parse_ipv4(text);
    p.length = 32;
    return p;
  }
  p.address = parse_ipv4(text.substr(0, slash));
  const std::string len = text.substr(slash + 1);
  if (len.empty() || len.size() > 2) {
    throw std::invalid_argument("Prefix: bad length in " + text);
  }
  unsigned value = 0;
  for (const char c : len) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("Prefix: bad length in " + text);
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  if (value > 32) throw std::invalid_argument("Prefix: length > 32 in " + text);
  p.length = value;
  return p;
}

bool Prefix::contains(std::uint32_t addr) const noexcept {
  if (length == 0) return true;
  const std::uint32_t mask = length == 32
                                 ? 0xFFFFFFFFu
                                 : ~((std::uint32_t{1} << (32 - length)) - 1);
  return (addr & mask) == (address & mask);
}

std::string Prefix::to_string() const {
  return ipv4_to_string(address) + "/" + std::to_string(length);
}

bool AccessList::matches(std::uint32_t src, std::uint32_t dst, unsigned proto,
                         std::optional<unsigned> packet_tos) const {
  if (proto != protocol) return false;
  if (!source.contains(src) || !destination.contains(dst)) return false;
  if (tos && (!packet_tos || *packet_tos != *tos)) return false;
  return true;
}

void RouterConfig::upsert_access_list(AccessList acl) {
  if (acl.name.empty()) {
    throw std::invalid_argument("RouterConfig: access list needs a name");
  }
  acls_[acl.name] = std::move(acl);
  ++revision_;
}

void RouterConfig::upsert_tunnel(PolkaTunnel tunnel) {
  if (tunnel.domain_path.size() < 2) {
    throw std::invalid_argument(
        "RouterConfig: tunnel domain-name needs >= 2 routers");
  }
  tunnels_[tunnel.id] = std::move(tunnel);
  ++revision_;
}

void RouterConfig::set_pbr(PbrEntry entry) {
  if (!acls_.contains(entry.access_list)) {
    throw std::invalid_argument("RouterConfig: PBR references unknown ACL " +
                                entry.access_list);
  }
  if (!tunnels_.contains(entry.tunnel_id)) {
    throw std::invalid_argument("RouterConfig: PBR references unknown tunnel " +
                                std::to_string(entry.tunnel_id));
  }
  pbr_[entry.access_list] = std::move(entry);
  ++revision_;
}

bool RouterConfig::remove_pbr(const std::string& access_list) {
  const bool removed = pbr_.erase(access_list) > 0;
  if (removed) ++revision_;
  return removed;
}

const AccessList* RouterConfig::find_access_list(
    const std::string& name) const {
  const auto it = acls_.find(name);
  return it == acls_.end() ? nullptr : &it->second;
}

const PolkaTunnel* RouterConfig::find_tunnel(unsigned id) const {
  const auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

const PbrEntry* RouterConfig::find_pbr(const std::string& acl_name) const {
  const auto it = pbr_.find(acl_name);
  return it == pbr_.end() ? nullptr : &it->second;
}

std::optional<unsigned> RouterConfig::route_lookup(
    std::uint32_t src, std::uint32_t dst, unsigned proto,
    std::optional<unsigned> tos) const {
  for (const auto& [acl_name, entry] : pbr_) {
    const AccessList* acl = find_access_list(acl_name);
    if (acl != nullptr && acl->matches(src, dst, proto, tos)) {
      return entry.tunnel_id;
    }
  }
  return std::nullopt;
}

std::string RouterConfig::to_text() const {
  std::ostringstream os;
  for (const auto& [name, acl] : acls_) {
    os << "access-list " << name << " permit " << acl.protocol << ' '
       << acl.source.to_string() << ' ' << acl.destination.to_string();
    if (acl.tos) os << " tos " << *acl.tos;
    os << '\n';
  }
  for (const auto& [id, tunnel] : tunnels_) {
    os << "interface tunnel" << id << '\n';
    os << " tunnel destination " << tunnel.destination_ip << '\n';
    os << " tunnel domain-name";
    for (const std::string& hop : tunnel.domain_path) os << ' ' << hop;
    os << '\n';
    os << " tunnel mode " << tunnel.mode << '\n';
    os << "exit\n";
  }
  for (const auto& [acl, entry] : pbr_) {
    os << "pbr " << acl << " tunnel " << entry.tunnel_id << " nexthop "
       << entry.nexthop_ip << '\n';
  }
  return os.str();
}

}  // namespace hp::freertr
