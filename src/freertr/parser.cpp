#include "freertr/parser.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hp::freertr {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

unsigned parse_uint(const std::string& text, std::size_t line,
                    const std::string& what) {
  if (text.empty()) fail(line, what + " missing");
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') fail(line, what + " is not a number: " + text);
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value;
}

}  // namespace

void parse_config(const std::string& text, RouterConfig& config) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::optional<PolkaTunnel> open_tunnel;

  auto flush_tunnel = [&](std::size_t at_line) {
    if (!open_tunnel) return;
    if (open_tunnel->domain_path.empty()) {
      fail(at_line, "tunnel" + std::to_string(open_tunnel->id) +
                        " has no domain-name");
    }
    config.upsert_tunnel(std::move(*open_tunnel));
    open_tunnel.reset();
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '!') continue;
    const std::string& head = tokens[0];

    if (open_tunnel) {
      // Inside an interface tunnel block.
      if (head == "exit") {
        flush_tunnel(line_no);
        continue;
      }
      if (head == "tunnel" && tokens.size() >= 2) {
        const std::string& sub = tokens[1];
        if (sub == "destination") {
          if (tokens.size() != 3) fail(line_no, "tunnel destination <ip>");
          (void)parse_ipv4(tokens[2]);  // validate
          open_tunnel->destination_ip = tokens[2];
          continue;
        }
        if (sub == "domain-name") {
          if (tokens.size() < 4) {
            fail(line_no, "tunnel domain-name needs >= 2 routers");
          }
          open_tunnel->domain_path.assign(tokens.begin() + 2, tokens.end());
          continue;
        }
        if (sub == "mode") {
          if (tokens.size() != 3) fail(line_no, "tunnel mode <name>");
          open_tunnel->mode = tokens[2];
          continue;
        }
      }
      fail(line_no, "unknown tunnel sub-command: " + line);
    }

    if (head == "access-list") {
      // access-list <name> permit <proto> <src> <dst> [tos <n>]
      if (tokens.size() < 6 || tokens[2] != "permit") {
        fail(line_no, "access-list <name> permit <proto> <src> <dst> [tos n]");
      }
      AccessList acl;
      acl.name = tokens[1];
      acl.protocol = parse_uint(tokens[3], line_no, "protocol");
      try {
        acl.source = Prefix::parse(tokens[4]);
        acl.destination = Prefix::parse(tokens[5]);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      if (tokens.size() == 8 && tokens[6] == "tos") {
        acl.tos = parse_uint(tokens[7], line_no, "tos");
      } else if (tokens.size() != 6) {
        fail(line_no, "trailing tokens on access-list");
      }
      config.upsert_access_list(std::move(acl));
      continue;
    }

    if (head == "interface") {
      if (tokens.size() != 2 || tokens[1].rfind("tunnel", 0) != 0) {
        fail(line_no, "interface tunnel<N>");
      }
      PolkaTunnel tunnel;
      tunnel.id = parse_uint(tokens[1].substr(6), line_no, "tunnel id");
      open_tunnel = std::move(tunnel);
      continue;
    }

    if (head == "pbr") {
      // pbr <acl> tunnel <N> nexthop <ip>
      if (tokens.size() != 6 || tokens[2] != "tunnel" ||
          tokens[4] != "nexthop") {
        fail(line_no, "pbr <acl> tunnel <N> nexthop <ip>");
      }
      PbrEntry entry;
      entry.access_list = tokens[1];
      entry.tunnel_id = parse_uint(tokens[3], line_no, "tunnel id");
      (void)parse_ipv4(tokens[5]);
      entry.nexthop_ip = tokens[5];
      try {
        config.set_pbr(std::move(entry));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      continue;
    }

    if (head == "no") {
      if (tokens.size() == 3 && tokens[1] == "pbr") {
        config.remove_pbr(tokens[2]);
        continue;
      }
      fail(line_no, "only 'no pbr <acl>' is supported");
    }

    if (head == "exit") continue;  // stray exit at top level is harmless

    fail(line_no, "unknown command: " + head);
  }
  flush_tunnel(line_no);
}

RouterConfig parse_config(const std::string& text) {
  RouterConfig config;
  parse_config(text, config);
  return config;
}

}  // namespace hp::freertr
