#pragma once
// Thread-safe message queue.
//
// "The framework uses a message queue system to facilitate communication
// between its components ... We manage FreeRtr configurations by sending
// messages through a Message Queue to reconfigure the router" (paper
// Section V-C1).  This is a minimal MPMC blocking queue with close
// semantics; the RouterConfigService drains it.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hp::freertr {

template <typename T>
class MessageQueue {
 public:
  /// Enqueue a message; returns false when the queue is closed.
  bool push(T message) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means the queue was closed and fully
  /// drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// No further pushes succeed; blocked pops wake and drain.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace hp::freertr
