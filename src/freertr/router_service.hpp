#pragma once
// Router reconfiguration service.
//
// "A service receives these messages, applies the necessary commands to
// reconfigure FreeRtr, and then ensures the router operates with the
// updated configuration" (paper Section V-C1).  ConfigMessages carry
// command text; the service applies them to the router's RouterConfig
// and records an ack (applied revision or error) per message.

#include <cstdint>
#include <string>
#include <vector>

#include "freertr/config_model.hpp"
#include "freertr/message_queue.hpp"
#include "freertr/parser.hpp"

namespace hp::freertr {

/// A reconfiguration request sent through the message queue.
struct ConfigMessage {
  std::uint64_t id = 0;        ///< sender-assigned correlation id
  std::string commands;        ///< freeRtr command text (see parser.hpp)
};

/// Result of applying one ConfigMessage.
struct ConfigAck {
  std::uint64_t message_id = 0;
  bool ok = false;
  std::uint64_t revision = 0;  ///< config revision after applying
  std::string error;           ///< parse/apply error when !ok
};

/// Applies queued configuration messages to a router config.
class RouterConfigService {
 public:
  explicit RouterConfigService(std::string router_name)
      : router_name_(std::move(router_name)) {}

  /// The queue producers push into.
  [[nodiscard]] MessageQueue<ConfigMessage>& queue() noexcept {
    return queue_;
  }

  /// Drain currently queued messages (non-blocking), applying each.
  /// Returns the number of messages processed.  A message that fails to
  /// parse leaves the configuration untouched (atomic apply).
  std::size_t process_pending();

  [[nodiscard]] const RouterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<ConfigAck>& acks() const noexcept {
    return acks_;
  }
  [[nodiscard]] const std::string& router_name() const noexcept {
    return router_name_;
  }

 private:
  std::string router_name_;
  MessageQueue<ConfigMessage> queue_;
  RouterConfig config_;
  std::vector<ConfigAck> acks_;
};

}  // namespace hp::freertr
