#pragma once
// Parser for the freeRtr-style command subset used by the framework.
//
// Grammar (one command per line; blank lines and '!' comments ignored):
//   access-list <name> permit <proto> <src-cidr> <dst-cidr> [tos <n>]
//   interface tunnel<N>
//    tunnel destination <ip>
//    tunnel domain-name <R1> <R2> ...
//    tunnel mode polka
//   exit
//   pbr <acl> tunnel <N> nexthop <ip>
//   no pbr <acl>
//
// parse_config applies commands to a RouterConfig, so round-tripping
// RouterConfig::to_text() through the parser reproduces the config.

#include <string>

#include "freertr/config_model.hpp"

namespace hp::freertr {

/// Error with the offending line number and message.
struct ParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parse `text` and apply every command to `config`.  Throws
/// std::invalid_argument with "line N: ..." on the first error; the
/// config may be partially updated at that point (callers that need
/// atomicity parse into a scratch copy first).
void parse_config(const std::string& text, RouterConfig& config);

/// Parse into a fresh config (atomic convenience).
[[nodiscard]] RouterConfig parse_config(const std::string& text);

}  // namespace hp::freertr
