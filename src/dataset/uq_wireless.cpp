#include "dataset/uq_wireless.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

namespace hp::dataset {

namespace {

/// Regime mean with a smooth (cosine) walking transition between the
/// indoor and outdoor plateaus.
double regime_mean(double t, double indoor_end, double outdoor_start,
                   double indoor_mean, double outdoor_mean) {
  if (t <= indoor_end) return indoor_mean;
  if (t >= outdoor_start) return outdoor_mean;
  const double phase = (t - indoor_end) / (outdoor_start - indoor_end);
  const double blend = 0.5 - 0.5 * std::cos(phase * 3.14159265358979323846);
  return indoor_mean + blend * (outdoor_mean - indoor_mean);
}

}  // namespace

WirelessTrace generate_uq_trace(const UqTraceParams& params) {
  if (params.duration_s == 0) {
    throw std::invalid_argument("generate_uq_trace: zero duration");
  }
  WirelessTrace trace;
  trace.seconds.reserve(params.duration_s);
  trace.wifi.reserve(params.duration_s);
  trace.lte.reserve(params.duration_s);

  std::mt19937_64 rng(params.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  double wifi_ar = 0.0;
  double lte_ar = 0.0;
  const double ar = params.ar_coefficient;
  // Innovation variance scaled so the stationary AR(1) SD matches the
  // requested noise SD: Var = sd^2 * (1 - ar^2).
  const double wifi_innov = params.wifi_noise_sd * std::sqrt(1.0 - ar * ar);
  const double lte_innov = params.lte_noise_sd * std::sqrt(1.0 - ar * ar);

  // WiFi contention state machine: sustained high throughput provokes a
  // multi-second backoff dropout (CSMA contention / rate fallback), and
  // recovery is fast once the channel clears.  The *threshold* dynamics
  // are deliberate: the next sample is a non-monotone function of the
  // recent window, which windowed tree ensembles capture but linear
  // models cannot -- matching the paper's Fig 6 ranking where RFR/GBR
  // lead the field.
  int dropout_remaining = 0;
  double smoothed_wifi = params.wifi_indoor_mean;

  for (std::size_t i = 0; i < params.duration_s; ++i) {
    const double t = static_cast<double>(i);
    wifi_ar = ar * wifi_ar + wifi_innov * gauss(rng);
    lte_ar = ar * lte_ar + lte_innov * gauss(rng);

    const double wifi_level =
        regime_mean(t, params.indoor_end_s, params.outdoor_start_s,
                    params.wifi_indoor_mean, params.wifi_outdoor_mean);
    double wifi = wifi_level + wifi_ar;
    double lte = regime_mean(t, params.indoor_end_s, params.outdoor_start_s,
                             params.lte_indoor_mean, params.lte_outdoor_mean) +
                 lte_ar;

    // Contention: a smoothed level above ~105% of the regime mean arms
    // a 4 s backoff at a quarter of the channel rate.  Near-
    // deterministic on purpose: the resulting relaxation oscillation is
    // predictable from the 10-sample window, but only through a
    // threshold rule.
    if (dropout_remaining > 0) {
      wifi *= 0.25;
      --dropout_remaining;
    } else if (smoothed_wifi > 0.95 * wifi_level) {
      dropout_remaining = 4;
    }

    // Heavy-tailed WiFi spikes (bursts and interference glitches) keep
    // the WiFi column noisier than LTE, as in the measured trace.
    if (uni(rng) < params.spike_probability) {
      wifi += (uni(rng) < 0.5 ? -1.0 : 1.0) * (10.0 + 25.0 * uni(rng));
    }

    wifi = std::max(0.0, wifi);
    smoothed_wifi = 0.6 * smoothed_wifi + 0.4 * wifi;
    // 802.11 rate adaptation snaps the achievable throughput to discrete
    // MCS steps (6.5 Mbps apart for 20 MHz 802.11n) plus a little
    // measurement jitter.  The staircase makes the optimal one-step
    // predictor a *quantized* function of the history -- tree ensembles
    // fit that natively, linear models pay the quantization bias, which
    // is what pushes RFR/GBR to the top of Fig 6.
    constexpr double kMcsStep = 6.5;
    const double wifi_measured =
        std::round(wifi / kMcsStep) * kMcsStep + 0.4 * gauss(rng);
    trace.seconds.push_back(t);
    trace.wifi.push_back(std::max(0.0, wifi_measured));
    trace.lte.push_back(std::max(0.0, lte));
  }
  return trace;
}

void save_csv(const WirelessTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  out << "seconds,wifi_mbps,lte_mbps\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out << trace.seconds[i] << ',' << trace.wifi[i] << ',' << trace.lte[i]
        << '\n';
  }
}

WirelessTrace load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv: cannot open " + path);
  WirelessTrace trace;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_csv: empty file " + path);
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    double values[3];
    for (int k = 0; k < 3; ++k) {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("load_csv: malformed row " +
                                 std::to_string(line_no));
      }
      try {
        values[k] = std::stod(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("load_csv: bad number at row " +
                                 std::to_string(line_no));
      }
    }
    trace.seconds.push_back(values[0]);
    trace.wifi.push_back(values[1]);
    trace.lte.push_back(values[2]);
  }
  return trace;
}

WindowedDataset make_windows(const std::vector<double>& series,
                             std::size_t history, std::size_t horizon) {
  if (history == 0) throw std::invalid_argument("make_windows: history == 0");
  if (horizon == 0) throw std::invalid_argument("make_windows: horizon == 0");
  if (series.size() < history + horizon) {
    throw std::invalid_argument("make_windows: series too short");
  }
  const std::size_t n = series.size() - history - horizon + 1;
  WindowedDataset out;
  out.x = hp::ml::Matrix(n, history);
  out.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < history; ++j) {
      out.x(i, j) = series[i + j];
    }
    out.y[i] = series[i + history + horizon - 1];
  }
  return out;
}

}  // namespace hp::dataset
