#pragma once
// Synthetic stand-in for the UQ wireless dataset (paper Section V-A1).
//
// The real trace -- WiFi and LTE bandwidth sampled at 1 Hz for 500 s
// while walking from building 78 (indoors) to building 50 (outdoors) --
// is not redistributable, so we generate a seeded trace with the
// documented regime structure (Fig 5b):
//   * 0-100 s   (indoors):   WiFi high and bursty, LTE very low;
//   * 100-180 s (walking):   WiFi decays, LTE ramps up;
//   * 180-500 s (outdoors):  WiFi low with dropouts, LTE strong.
// Temporal correlation comes from an AR(1) component so that windowed
// regressors have signal to learn; heavy-tailed spikes keep the WiFi
// column noisier than LTE, matching the paper's per-path RMSE spread.

#include <cstdint>
#include <string>
#include <vector>

#include "ml/linalg.hpp"

namespace hp::dataset {

/// A two-path bandwidth trace sampled at 1 Hz.
struct WirelessTrace {
  std::vector<double> seconds;  ///< timestamps 0..n-1
  std::vector<double> wifi;     ///< Path 1 bandwidth (Mbps)
  std::vector<double> lte;      ///< Path 2 bandwidth (Mbps)

  [[nodiscard]] std::size_t size() const noexcept { return seconds.size(); }
};

/// Generator parameters; defaults mirror the published experiment.
struct UqTraceParams {
  std::size_t duration_s = 500;
  std::uint64_t seed = 2017;       ///< the trace was collected in 2017
  double indoor_end_s = 100.0;     ///< "from time 0 to 100" indoors
  double outdoor_start_s = 180.0;  ///< walking transition ends
  double wifi_indoor_mean = 55.0;  ///< Mbps
  double wifi_outdoor_mean = 14.0;
  double lte_indoor_mean = 3.0;
  double lte_outdoor_mean = 26.0;
  double wifi_noise_sd = 9.0;  ///< WiFi is the noisier path
  double lte_noise_sd = 3.0;
  double ar_coefficient = 0.75;  ///< temporal correlation
  double spike_probability = 0.04;  ///< heavy-tailed WiFi dropouts/bursts
};

/// Generate the synthetic UQ-like trace (deterministic per seed).
[[nodiscard]] WirelessTrace generate_uq_trace(const UqTraceParams& params = {});

/// Save as CSV with header "seconds,wifi_mbps,lte_mbps".
void save_csv(const WirelessTrace& trace, const std::string& path);

/// Load the CSV format written by save_csv (throws std::runtime_error
/// on missing file or malformed rows).
[[nodiscard]] WirelessTrace load_csv(const std::string& path);

/// Supervised sliding-window transform used by the paper: features are
/// the last `history` samples [t-history+1 .. t] of one series and the
/// target is the sample at t+horizon.  Throws std::invalid_argument when
/// the series is too short or history == 0 / horizon == 0.
struct WindowedDataset {
  hp::ml::Matrix x;
  hp::ml::Vector y;
};
[[nodiscard]] WindowedDataset make_windows(const std::vector<double>& series,
                                           std::size_t history,
                                           std::size_t horizon = 1);

}  // namespace hp::dataset
