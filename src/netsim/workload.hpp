#pragma once
// Synthetic traffic workloads.
//
// The Hecate line of work (DeepRoute and the paper's Section II-A)
// targets science-network traffic: a few huge "elephant" transfers over
// a swarm of short "mice".  This generator produces that mix with
// Poisson arrivals, log-normal mice and bounded-Pareto elephants --
// the workload the FCT benches drive through the framework.

#include <cstdint>
#include <vector>

#include "netsim/simulator.hpp"

namespace hp::netsim {

/// One scheduled arrival.
struct ScheduledFlow {
  double at_s = 0.0;
  FlowSpec spec;
};

/// Workload shape parameters.
struct WorkloadParams {
  double duration_s = 300.0;
  double arrival_rate_per_s = 0.5;  ///< Poisson arrival intensity
  double elephant_fraction = 0.1;   ///< share of arrivals that are elephants
  /// Mice: log-normal size (MB); median ~ exp(mu).
  double mice_log_mean = 1.0;   ///< ln MB (median ~2.7 MB)
  double mice_log_sd = 0.8;
  /// Elephants: bounded Pareto size (MB).
  double elephant_min_mb = 100.0;
  double elephant_max_mb = 2000.0;
  double elephant_alpha = 1.3;
  std::uint64_t seed = 42;
};

/// Generate arrivals over `paths` (round-robin across paths by default;
/// the controller usually overrides the path anyway).  Flow names are
/// "mouse<N>" / "elephant<N>"; ToS 1 for mice, 2 for elephants.
/// Throws std::invalid_argument on an empty path list or non-positive
/// rate/duration.
[[nodiscard]] std::vector<ScheduledFlow> generate_workload(
    const std::vector<Path>& paths, const WorkloadParams& params = {});

/// Summary statistics of a finished workload run.
struct FctStats {
  std::size_t completed = 0;
  std::size_t unfinished = 0;
  double mean_fct_s = 0.0;
  double p95_fct_s = 0.0;
  double max_fct_s = 0.0;
};

/// Collect FCT stats for a set of flow ids from a simulator.
[[nodiscard]] FctStats collect_fct(const Simulator& sim,
                                   const std::vector<FlowId>& flows);

/// Number of MTU-sized packets a flow's transfer occupies on the wire
/// (at least 1).  `cap` bounds elephants and long-lived flows so
/// data-plane replay drivers stay finite.
[[nodiscard]] std::size_t packet_count(const FlowSpec& spec,
                                       double mtu_bytes = 1500.0,
                                       std::size_t cap = 1u << 20);

}  // namespace hp::netsim
