#pragma once
// Fluid discrete-event network simulator.
//
// Replaces the paper's VirtualBox/freeRtr testbed: flows are fluid TCP
// streams whose instantaneous rates follow the max-min fair allocation;
// the event queue carries flow arrivals/departures, path migrations
// (the PBR rewrites of Figs 11/12), ICMP-style RTT probes and periodic
// telemetry samples.  All series are recorded for the benches to print.
//
// Scope: this is the *flow-level* rate estimator used by the
// control-plane benches (predictive routing, workload replay) -- no
// packets, no queues, no losses.  For packet-level congestion metrics
// (FCT distributions, tail drops, ECN, queue depths) on generated
// scenarios, use the event-driven simulator in src/sim (sim/runner.hpp),
// which forwards through the same compiled PolKA fast path.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "netsim/fairshare.hpp"
#include "netsim/topology.hpp"

namespace hp::netsim {

using FlowId = std::size_t;

/// Description of a flow entering the network.
struct FlowSpec {
  std::string name;
  Path path;
  /// Demand cap in Mbps; infinity models a greedy TCP transfer.
  double demand_mbps = std::numeric_limits<double>::infinity();
  int tos = 0;  ///< Type of Service tag (the paper steers flows by ToS)
  /// Transfer size in megabytes; infinity = long-lived flow.  Sized
  /// flows stop automatically once the goodput integral reaches the
  /// size, enabling flow-completion-time measurements.
  double size_mb = std::numeric_limits<double>::infinity();
};

/// One point of a recorded time series.
struct Sample {
  double t_s = 0.0;
  double value = 0.0;
};

/// Queueing model parameters for RTT probes (M/M/1-flavoured:
/// queue = base * util / (1 - util), capped).
struct QueueModel {
  double serialization_ms = 0.5;
  double max_queue_ms = 100.0;
};

class Simulator {
 public:
  explicit Simulator(Topology topo, QueueModel queue_model = {});

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] double now() const noexcept { return now_s_; }

  // --- schedule (all times absolute seconds, >= now) -------------------

  /// Flow joins at `at_s`; returns its id immediately.
  FlowId add_flow(double at_s, FlowSpec spec);

  /// Flow leaves at `at_s`.
  void stop_flow(double at_s, FlowId id);

  /// Rewire the flow onto a new path at `at_s` -- the one-PBR-entry
  /// migration that PolKA makes cheap (paper Figs 11/12).  The new path
  /// must be connected (checked at schedule time).
  void migrate_flow(double at_s, FlowId id, Path new_path);

  /// Fire RTT probes along `forward` (and its duplex reverse) every
  /// `interval_s` from `start_s` until the simulation ends, recording
  /// into the series named `name`.
  void schedule_probes(const std::string& name, Path forward, double start_s,
                       double interval_s);

  /// Sample every flow's rate and every link's utilization on this
  /// period (first sample at t = interval).
  void set_sample_interval(double interval_s);

  /// Arbitrary callback event (used by the control-plane layer to hook
  /// telemetry export and optimizer invocations into simulated time).
  void schedule_callback(double at_s, std::function<void(Simulator&)> fn);

  /// Take a *duplex* link down (both directions) at `at_s`: flows
  /// crossing it drop to (near) zero rate and its RTT contribution
  /// saturates at the queue-model cap, emulating a fibre cut.  `link`
  /// may be either direction of the pair.
  void fail_link(double at_s, LinkIndex link);

  /// Restore a previously failed duplex link.
  void restore_link(double at_s, LinkIndex link);

  /// Whether a directed link is currently up.
  [[nodiscard]] bool is_link_up(LinkIndex link) const;

  // --- run --------------------------------------------------------------

  /// Process events up to and including `t_end_s`, then advance the
  /// clock to `t_end_s`.
  void run_until(double t_end_s);

  // --- results ----------------------------------------------------------

  /// Rate series sampled at every recompute and telemetry tick.
  [[nodiscard]] const std::vector<Sample>& flow_rate_series(FlowId id) const;

  /// RTT series of a probe by name (ms).
  [[nodiscard]] const std::vector<Sample>& probe_series(
      const std::string& name) const;

  /// Utilization series (fraction of capacity) per directed link.
  [[nodiscard]] const std::vector<Sample>& link_utilization_series(
      LinkIndex l) const;

  /// Instantaneous current rate of an active flow (Mbps); 0 if stopped.
  [[nodiscard]] double current_rate(FlowId id) const;

  /// Cumulative goodput of the flow so far (megabytes), discounted by
  /// path loss.
  [[nodiscard]] double transferred_mb(FlowId id) const;

  /// Current path of a flow.
  [[nodiscard]] const Path& flow_path(FlowId id) const;

  /// Whether a flow is currently active.
  [[nodiscard]] bool is_active(FlowId id) const;

  /// Completion time of a sized flow (seconds), if it has finished.
  [[nodiscard]] std::optional<double> completion_time(FlowId id) const;

  /// Flow-completion time (completion - start), if finished.
  [[nodiscard]] std::optional<double> fct_s(FlowId id) const;

  /// Immediate RTT estimate over a forward path and its duplex reverse
  /// at the current utilization state (what a ping would report now).
  [[nodiscard]] double path_rtt_ms(const Path& forward) const;

  /// Instantaneous utilization (load / capacity) of one link.
  [[nodiscard]] double link_utilization(LinkIndex l) const;

 private:
  struct FlowState {
    FlowSpec spec;
    bool active = false;
    bool ever_started = false;
    double rate_mbps = 0.0;
    double transferred_mb = 0.0;
    double goodput_factor = 1.0;  ///< prod(1 - loss) along the path
    double start_s = 0.0;
    std::optional<double> completed_s;
    std::vector<Sample> rate_series;
  };

  struct Event {
    double t = 0.0;
    std::uint64_t seq = 0;  // FIFO among same-time events
    std::function<void(Simulator&)> action;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void push_event(double at_s, std::function<void(Simulator&)> action);
  /// Accrue transferred bytes for [last_change_, t] then set clock.
  void advance_to(double t_s);
  /// Recompute the fair-share allocation and record rate samples.
  void reallocate();
  /// Schedule (or reschedule) the earliest sized-flow completion under
  /// the current rates.  Stale completions are skipped via the
  /// allocation generation counter.
  void schedule_next_completion();
  /// Finish a sized flow now: mark complete, deactivate, reallocate.
  void complete_flow(FlowId id);
  [[nodiscard]] double queue_delay_ms(LinkIndex l) const;
  [[nodiscard]] static Path reverse_path(const Path& forward);
  void record_probe(const std::string& name, const Path& forward);

  /// Capacity a failed link is clamped to (fluid model cannot use 0).
  static constexpr double kDownCapacityMbps = 1e-6;

  Topology topo_;
  QueueModel queue_model_;
  std::vector<double> saved_capacity_;  // original capacity of down links
  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<FlowState> flows_;
  std::vector<double> link_load_mbps_;
  std::vector<std::vector<Sample>> link_util_series_;
  std::map<std::string, std::vector<Sample>> probe_series_;
  double sample_interval_s_ = 0.0;
  bool sampler_scheduled_ = false;
  double horizon_s_ = 0.0;  // current run_until target
  std::uint64_t allocation_generation_ = 0;
};

}  // namespace hp::netsim
