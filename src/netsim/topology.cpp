#include "netsim/topology.hpp"

#include <limits>
#include <stdexcept>

namespace hp::netsim {

NodeIndex Topology::add_node(const std::string& name, NodeKind kind) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Topology: duplicate node " + name);
  }
  const NodeIndex idx = nodes_.size();
  nodes_.push_back(Node{name, kind});
  outgoing_.emplace_back();
  by_name_.emplace(name, idx);
  return idx;
}

LinkIndex Topology::add_duplex_link(NodeIndex a, NodeIndex b,
                                    double capacity_mbps, double delay_ms,
                                    double loss_rate) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Topology: bad node index");
  }
  if (a == b) throw std::invalid_argument("Topology: self link");
  if (capacity_mbps <= 0.0) {
    throw std::invalid_argument("Topology: capacity must be positive");
  }
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Topology: loss rate in [0,1)");
  }
  const LinkIndex fwd = links_.size();
  links_.push_back(Link{a, b, capacity_mbps, delay_ms, loss_rate});
  outgoing_[a].push_back(fwd);
  links_.push_back(Link{b, a, capacity_mbps, delay_ms, loss_rate});
  outgoing_[b].push_back(fwd + 1);
  // emplace keeps the first link for parallel duplicates, matching the
  // linear-scan behaviour link_between had before the hash existed.
  adjacency_.emplace(node_pair_key(a, b), fwd);
  adjacency_.emplace(node_pair_key(b, a), fwd + 1);
  return fwd;
}

NodeIndex Topology::index_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("Topology: unknown node " + name);
  }
  return it->second;
}

std::optional<LinkIndex> Topology::link_between(NodeIndex a,
                                                NodeIndex b) const {
  if (a >= nodes_.size()) {
    throw std::out_of_range("Topology: bad node index");
  }
  const auto it = adjacency_.find(node_pair_key(a, b));
  if (it == adjacency_.end()) return std::nullopt;
  return it->second;
}

Path Topology::path_through(const std::vector<std::string>& names) const {
  if (names.size() < 2) {
    throw std::invalid_argument("path_through: need at least two nodes");
  }
  Path path;
  path.reserve(names.size() - 1);
  for (std::size_t i = 0; i + 1 < names.size(); ++i) {
    const NodeIndex a = index_of(names[i]);
    const NodeIndex b = index_of(names[i + 1]);
    const auto l = link_between(a, b);
    if (!l) {
      throw std::invalid_argument("path_through: no link " + names[i] +
                                  " -> " + names[i + 1]);
    }
    path.push_back(*l);
  }
  return path;
}

double Topology::path_delay_ms(const Path& path) const {
  double total = 0.0;
  for (const LinkIndex l : path) total += links_.at(l).delay_ms;
  return total;
}

double Topology::path_bottleneck_mbps(const Path& path) const {
  double bottleneck = std::numeric_limits<double>::infinity();
  for (const LinkIndex l : path) {
    bottleneck = std::min(bottleneck, links_.at(l).capacity_mbps);
  }
  return bottleneck;
}

bool Topology::is_connected_path(const Path& path) const {
  if (path.empty()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (links_.at(path[i]).to != links_.at(path[i + 1]).from) return false;
  }
  return true;
}

Topology make_global_p4_lab() {
  Topology topo;
  const NodeIndex mia = topo.add_node("MIA");
  const NodeIndex chi = topo.add_node("CHI");
  const NodeIndex cal = topo.add_node("CAL");
  const NodeIndex sao = topo.add_node("SAO");
  const NodeIndex ams = topo.add_node("AMS");
  const NodeIndex host1 = topo.add_node("host1", NodeKind::kHost);
  const NodeIndex host2 = topo.add_node("host2", NodeKind::kHost);

  // Experiment-2 capacities; MIA-SAO carries the transatlantic 20 ms
  // delay injected with tc in the paper's setup.
  topo.add_duplex_link(mia, sao, 20.0, 20.0);
  topo.add_duplex_link(sao, ams, 20.0, 2.0);
  topo.add_duplex_link(chi, ams, 20.0, 2.0);
  topo.add_duplex_link(mia, chi, 10.0, 2.0);
  topo.add_duplex_link(mia, cal, 5.0, 2.0);
  topo.add_duplex_link(cal, chi, 5.0, 2.0);
  topo.add_duplex_link(host1, mia, 1000.0, 0.1);
  topo.add_duplex_link(ams, host2, 1000.0, 0.1);
  return topo;
}

}  // namespace hp::netsim
