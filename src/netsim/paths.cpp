#include "netsim/paths.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace hp::netsim {

double link_weight(const Link& link, PathMetric metric) {
  switch (metric) {
    case PathMetric::kDelay:
      return link.delay_ms;
    case PathMetric::kHopCount:
      return 1.0;
    case PathMetric::kInverseCapacity:
      return 1.0 / link.capacity_mbps;
  }
  throw std::logic_error("link_weight: unknown metric");
}

namespace {

/// Dijkstra with per-call banned nodes/links (the Yen spur machinery).
std::optional<Path> dijkstra(const Topology& topo, NodeIndex src,
                             NodeIndex dst, PathMetric metric,
                             const std::set<NodeIndex>& banned_nodes,
                             const std::set<LinkIndex>& banned_links) {
  const std::size_t n = topo.node_count();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<LinkIndex> via(n, kInvalidIndex);
  using QueueEntry = std::pair<double, NodeIndex>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;
  dist[src] = 0.0;
  frontier.emplace(0.0, src);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    // Hosts do not forward: they may start a path but not extend one.
    if (u != src && topo.node(u).kind == NodeKind::kHost) continue;
    for (const LinkIndex l : topo.outgoing(u)) {
      if (banned_links.contains(l)) continue;
      const Link& link = topo.link(l);
      if (banned_nodes.contains(link.to)) continue;
      const double nd = d + link_weight(link, metric);
      if (nd < dist[link.to]) {
        dist[link.to] = nd;
        via[link.to] = l;
        frontier.emplace(nd, link.to);
      }
    }
  }
  if (via[dst] == kInvalidIndex && src != dst) {
    if (!std::isfinite(dist[dst])) return std::nullopt;
  }
  Path path;
  for (NodeIndex cur = dst; cur != src;) {
    const LinkIndex l = via[cur];
    if (l == kInvalidIndex) return std::nullopt;
    path.push_back(l);
    cur = topo.link(l).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

PathTree shortest_path_tree(const Topology& topo, NodeIndex src,
                            PathMetric metric,
                            const std::vector<LinkIndex>& banned) {
  const std::size_t n = topo.node_count();
  if (src >= n) {
    throw std::out_of_range("shortest_path_tree: bad node index");
  }
  std::vector<char> is_banned(topo.link_count(), 0);
  for (const LinkIndex l : banned) {
    if (l < is_banned.size()) is_banned[l] = 1;
  }
  PathTree tree;
  tree.src = src;
  tree.dist.assign(n, std::numeric_limits<double>::infinity());
  tree.via.assign(n, kInvalidIndex);
  using QueueEntry = std::pair<double, NodeIndex>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;
  tree.dist[src] = 0.0;
  frontier.emplace(0.0, src);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > tree.dist[u]) continue;
    if (u != src && topo.node(u).kind == NodeKind::kHost) continue;
    for (const LinkIndex l : topo.outgoing(u)) {
      if (is_banned[l]) continue;
      const Link& link = topo.link(l);
      const double nd = d + link_weight(link, metric);
      if (nd < tree.dist[link.to]) {
        tree.dist[link.to] = nd;
        tree.via[link.to] = l;
        frontier.emplace(nd, link.to);
      }
    }
  }
  return tree;
}

std::optional<Path> tree_path(const PathTree& tree, const Topology& topo,
                              NodeIndex dst) {
  if (dst >= tree.via.size()) {
    throw std::out_of_range("tree_path: bad node index");
  }
  if (dst == tree.src) return Path{};
  if (tree.via[dst] == kInvalidIndex) return std::nullopt;
  Path path;
  for (NodeIndex cur = dst; cur != tree.src;) {
    const LinkIndex l = tree.via[cur];
    if (l == kInvalidIndex) return std::nullopt;
    path.push_back(l);
    cur = topo.link(l).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<NodeIndex>> tree_children(const PathTree& tree,
                                                  const Topology& topo) {
  std::vector<std::vector<NodeIndex>> children(tree.via.size());
  for (NodeIndex c = 0; c < tree.via.size(); ++c) {
    if (c == tree.src || tree.via[c] == kInvalidIndex) continue;
    children[topo.link(tree.via[c]).from].push_back(c);
  }
  return children;
}

std::optional<Path> shortest_path(const Topology& topo, NodeIndex src,
                                  NodeIndex dst, PathMetric metric) {
  if (src >= topo.node_count() || dst >= topo.node_count()) {
    throw std::out_of_range("shortest_path: bad node index");
  }
  if (src == dst) return Path{};
  return dijkstra(topo, src, dst, metric, {}, {});
}

double path_weight(const Topology& topo, const Path& path,
                   PathMetric metric) {
  double total = 0.0;
  for (const LinkIndex l : path) total += link_weight(topo.link(l), metric);
  return total;
}

std::vector<NodeIndex> path_nodes(const Topology& topo, const Path& path) {
  std::vector<NodeIndex> nodes;
  if (path.empty()) return nodes;
  nodes.push_back(topo.link(path.front()).from);
  for (const LinkIndex l : path) nodes.push_back(topo.link(l).to);
  return nodes;
}

std::vector<Path> k_shortest_paths(const Topology& topo, NodeIndex src,
                                   NodeIndex dst, std::size_t k,
                                   PathMetric metric) {
  std::vector<Path> result;
  if (k == 0) return result;
  const auto first = shortest_path(topo, src, dst, metric);
  if (!first) return result;
  result.push_back(*first);

  // Candidate pool ordered by weight (then lexicographic for
  // determinism).
  auto cmp = [&](const Path& a, const Path& b) {
    const double wa = path_weight(topo, a, metric);
    const double wb = path_weight(topo, b, metric);
    if (wa != wb) return wa < wb;
    return a < b;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& previous = result.back();
    const auto prev_nodes = path_nodes(topo, previous);
    // Spur from every node of the previous path (except the last).
    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const NodeIndex spur = prev_nodes[i];
      const Path root(previous.begin(),
                      previous.begin() + static_cast<std::ptrdiff_t>(i));

      // Ban links that would recreate an already-found path with this
      // root, and ban root nodes to keep paths loopless.
      std::set<LinkIndex> banned_links;
      for (const Path& found : result) {
        if (found.size() > i &&
            std::equal(root.begin(), root.end(), found.begin())) {
          banned_links.insert(found[i]);
        }
      }
      std::set<NodeIndex> banned_nodes(prev_nodes.begin(),
                                       prev_nodes.begin() +
                                           static_cast<std::ptrdiff_t>(i));

      const auto spur_path =
          dijkstra(topo, spur, dst, metric, banned_nodes, banned_links);
      if (!spur_path) continue;
      Path total = root;
      total.insert(total.end(), spur_path->begin(), spur_path->end());
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<Path> k_disjoint_paths(const Topology& topo, NodeIndex src,
                                   NodeIndex dst, std::size_t k,
                                   PathMetric metric,
                                   const std::vector<LinkIndex>& banned) {
  if (src >= topo.node_count() || dst >= topo.node_count()) {
    throw std::out_of_range("k_disjoint_paths: bad node index");
  }
  std::vector<Path> result;
  if (k == 0 || src == dst) return result;
  // Iterative Dijkstra with an accumulating ban set: each found path
  // retires its links (both directions) before the next search, so the
  // results are mutually duplex-link-disjoint by construction.
  std::set<LinkIndex> banned_links(banned.begin(), banned.end());
  while (result.size() < k) {
    auto path = dijkstra(topo, src, dst, metric, {}, banned_links);
    if (!path || path->empty()) break;
    for (const LinkIndex l : *path) {
      banned_links.insert(l);
      const Link& link = topo.link(l);
      if (const auto rev = topo.link_between(link.to, link.from)) {
        banned_links.insert(*rev);
      }
    }
    result.push_back(std::move(*path));
  }
  return result;
}

}  // namespace hp::netsim
