#pragma once
// Network topology model for the emulated testbed.
//
// Mirrors what the paper builds in VirtualBox (Fig 9): named routers and
// hosts joined by duplex links with a capacity (the VirtualBox rate
// limit), a propagation delay (the tc-injected 20 ms on MIA-SAO) and an
// optional loss rate.  Directed link objects are the unit the flow model
// and telemetry operate on.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hp::netsim {

using NodeIndex = std::size_t;
using LinkIndex = std::size_t;

inline constexpr std::size_t kInvalidIndex = static_cast<std::size_t>(-1);

/// Pack an ordered node pair into one hash/map key (topologies stay
/// below 2^32 nodes; every layer keying on pairs shares this helper).
[[nodiscard]] inline std::uint64_t node_pair_key(NodeIndex from,
                                                 NodeIndex to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to & 0xFFFFFFFFu);
}

/// Inverse of node_pair_key.
[[nodiscard]] inline std::pair<NodeIndex, NodeIndex> node_pair_from_key(
    std::uint64_t key) noexcept {
  return {static_cast<NodeIndex>(key >> 32),
          static_cast<NodeIndex>(key & 0xFFFFFFFFu)};
}

/// Role of a node (hosts terminate flows; routers forward).
enum class NodeKind { kRouter, kHost };

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kRouter;
};

/// One *directed* link.  Duplex physical links become two of these.
struct Link {
  NodeIndex from = kInvalidIndex;
  NodeIndex to = kInvalidIndex;
  double capacity_mbps = 0.0;
  double delay_ms = 0.0;
  double loss_rate = 0.0;  ///< packet loss probability in [0,1)
};

/// A path is a sequence of directed link indices with matching ends.
using Path = std::vector<LinkIndex>;

/// Named-router topology with duplex link helpers.
class Topology {
 public:
  /// Add a node; names must be unique (throws std::invalid_argument).
  NodeIndex add_node(const std::string& name,
                     NodeKind kind = NodeKind::kRouter);

  /// Add a duplex link (two directed links with the same parameters);
  /// returns the index of the forward direction (the reverse is always
  /// the next index).
  LinkIndex add_duplex_link(NodeIndex a, NodeIndex b, double capacity_mbps,
                            double delay_ms, double loss_rate = 0.0);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] const Node& node(NodeIndex i) const { return nodes_.at(i); }
  [[nodiscard]] const Link& link(LinkIndex i) const { return links_.at(i); }
  [[nodiscard]] Link& mutable_link(LinkIndex i) { return links_.at(i); }

  [[nodiscard]] NodeIndex index_of(const std::string& name) const;
  [[nodiscard]] bool has_node(const std::string& name) const {
    return by_name_.contains(name);
  }

  /// Directed link from `a` to `b`, if one exists.
  [[nodiscard]] std::optional<LinkIndex> link_between(NodeIndex a,
                                                      NodeIndex b) const;

  /// Build a path from a list of node names (throws std::invalid_argument
  /// when consecutive nodes are not linked).
  [[nodiscard]] Path path_through(const std::vector<std::string>& names) const;

  /// Sum of link propagation delays along a path (ms).
  [[nodiscard]] double path_delay_ms(const Path& path) const;

  /// Minimum link capacity along a path (Mbps); infinity for empty path.
  [[nodiscard]] double path_bottleneck_mbps(const Path& path) const;

  /// Validate that `path` is connected (each link starts where the
  /// previous ended).  Returns false for empty paths.
  [[nodiscard]] bool is_connected_path(const Path& path) const;

  /// Outgoing directed links of a node.
  [[nodiscard]] const std::vector<LinkIndex>& outgoing(NodeIndex n) const {
    return outgoing_.at(n);
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkIndex>> outgoing_;
  std::unordered_map<std::string, NodeIndex> by_name_;
  /// (from << 32 | to) -> first directed link, so link_between stays
  /// O(1) on the dense generated topologies (node count < 2^32).
  std::unordered_map<std::uint64_t, LinkIndex> adjacency_;
};

/// The Fig 9 topology: a subset of the Global P4 Lab with routers
/// MIA, CHI, CAL, SAO, AMS plus host1 (at MIA) and host2 (at AMS), with
/// the paper's experiment-2 capacities and the 20 ms MIA-SAO delay.
/// Capacities (Mbps): MIA-SAO 20, SAO-AMS 20, CHI-AMS 20, MIA-CHI 10,
/// MIA-CAL 5, CAL-CHI 5.  Host access links are 1000 Mbps.
[[nodiscard]] Topology make_global_p4_lab();

}  // namespace hp::netsim
