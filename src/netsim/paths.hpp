#pragma once
// Path computation over the topology: Dijkstra shortest path and Yen's
// k-shortest loopless paths.
//
// The paper hand-plans its three tunnels; a Path Computation Element
// (Section I) must derive candidate paths itself, and Section II-A
// worries about topologies growing "from 10s to 100s of routers".
// These routines give the Controller automatic tunnel planning and the
// scale-sweep bench its machinery.

#include <optional>
#include <vector>

#include "netsim/topology.hpp"

namespace hp::netsim {

/// Edge weight used for path computation.
enum class PathMetric {
  kDelay,     ///< sum of link delay_ms (latency-optimal)
  kHopCount,  ///< number of links
  kInverseCapacity,  ///< sum of 1/capacity (prefers fat links)
};

/// Weight of one link under a metric.
[[nodiscard]] double link_weight(const Link& link, PathMetric metric);

/// Shortest path from `src` to `dst` (Dijkstra).  Host nodes are only
/// allowed as endpoints, never as transit (they do not forward).
/// Returns nullopt when unreachable.
[[nodiscard]] std::optional<Path> shortest_path(
    const Topology& topo, NodeIndex src, NodeIndex dst,
    PathMetric metric = PathMetric::kDelay);

/// A full single-source shortest-path tree: one Dijkstra run answering
/// every destination, the shape the scenario engine's all-pairs route
/// compiler needs (per-pair shortest_path calls would be quadratic in
/// Dijkstra runs on dense generated topologies).
struct PathTree {
  NodeIndex src = kInvalidIndex;
  std::vector<double> dist;    ///< total weight; infinity = unreachable
  std::vector<LinkIndex> via;  ///< last link on the path; kInvalidIndex at src
};

/// Dijkstra to every destination.  Host nodes never transit (same rule
/// as shortest_path); links in `banned` are skipped, which is how the
/// scenario engine routes around scheduled link failures.
[[nodiscard]] PathTree shortest_path_tree(
    const Topology& topo, NodeIndex src,
    PathMetric metric = PathMetric::kDelay,
    const std::vector<LinkIndex>& banned = {});

/// Extract the src -> dst path from a tree; nullopt when unreachable,
/// empty path when dst == src.
[[nodiscard]] std::optional<Path> tree_path(const PathTree& tree,
                                            const Topology& topo,
                                            NodeIndex dst);

/// Children lists of a shortest-path tree, indexed by node: children[v]
/// holds every node whose tree parent is v, in ascending node order
/// (unreachable nodes appear in no list).  One pass over `via`, so a
/// full top-down tree walk -- the shape the scenario engine's
/// tree-incremental route compiler descends -- costs O(n) total.
[[nodiscard]] std::vector<std::vector<NodeIndex>> tree_children(
    const PathTree& tree, const Topology& topo);

/// Yen's algorithm: up to `k` loopless shortest paths, best first.
/// Returns fewer when the graph has fewer distinct simple paths.
[[nodiscard]] std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeIndex src, NodeIndex dst, std::size_t k,
    PathMetric metric = PathMetric::kDelay);

/// Disjointness-filtered variant of k_shortest_paths: up to `k`
/// mutually link-disjoint paths, best first (the first is the shortest
/// path itself).  Disjointness is duplex -- once a path uses a link,
/// *both* directions are banned for later paths -- so any returned
/// path survives the duplex failure of every link the paths before it
/// used.  This is the protection-set planner: a primary plus the paths
/// returned with its links in `banned` form a 1:k protected pair.
/// Links in `banned` are excluded from every path.  Returns fewer than
/// `k` paths when the graph runs out of disjoint alternatives.
[[nodiscard]] std::vector<Path> k_disjoint_paths(
    const Topology& topo, NodeIndex src, NodeIndex dst, std::size_t k,
    PathMetric metric = PathMetric::kDelay,
    const std::vector<LinkIndex>& banned = {});

/// Total weight of a path under a metric.
[[nodiscard]] double path_weight(const Topology& topo, const Path& path,
                                 PathMetric metric);

/// The node sequence a path visits (src first).
[[nodiscard]] std::vector<NodeIndex> path_nodes(const Topology& topo,
                                                const Path& path);

}  // namespace hp::netsim
