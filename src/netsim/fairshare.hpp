#pragma once
// Max-min fair bandwidth allocation (progressive filling).
//
// The fluid-flow model of the emulated testbed: steady-state TCP flows
// sharing links converge to the max-min fair allocation, which is what
// the paper's iperf3 measurements report per flow.  Rates are
// recomputed from scratch whenever flow membership or paths change;
// topologies here are small (tens of links), so exactness beats
// incrementality.

#include <vector>

#include "netsim/topology.hpp"

namespace hp::netsim {

/// One flow competing for bandwidth.
struct FairShareFlow {
  Path path;           ///< directed links the flow crosses
  double demand_mbps;  ///< cap; use infinity for greedy TCP
};

/// Max-min fair rates for `flows` over `topo`'s link capacities.
/// Invariants guaranteed (and asserted by the test suite):
///  * no link carries more than its capacity,
///  * no flow exceeds its demand,
///  * every flow is bottlenecked: it either meets its demand or crosses
///    a saturated link where it has a maximal rate.
/// Flows with empty paths get their full demand (no shared resource).
[[nodiscard]] std::vector<double> max_min_fair_rates(
    const Topology& topo, const std::vector<FairShareFlow>& flows);

}  // namespace hp::netsim
