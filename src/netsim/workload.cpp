#include "netsim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace hp::netsim {

std::vector<ScheduledFlow> generate_workload(const std::vector<Path>& paths,
                                             const WorkloadParams& params) {
  if (paths.empty()) {
    throw std::invalid_argument("generate_workload: no paths");
  }
  if (params.duration_s <= 0.0 || params.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument(
        "generate_workload: duration and rate must be positive");
  }
  std::mt19937_64 rng(params.seed);
  std::exponential_distribution<double> gap(params.arrival_rate_per_s);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::lognormal_distribution<double> mice(params.mice_log_mean,
                                           params.mice_log_sd);

  // Bounded Pareto via inverse-CDF sampling.
  auto elephant_size = [&]() {
    const double a = params.elephant_alpha;
    const double lo = std::pow(params.elephant_min_mb, -a);
    const double hi = std::pow(params.elephant_max_mb, -a);
    const double u = uni(rng);
    return std::pow(lo - u * (lo - hi), -1.0 / a);
  };

  std::vector<ScheduledFlow> out;
  double t = 0.0;
  std::size_t n_mice = 0;
  std::size_t n_elephants = 0;
  std::size_t path_index = 0;
  while (true) {
    t += gap(rng);
    if (t >= params.duration_s) break;
    ScheduledFlow flow;
    flow.at_s = t;
    const bool elephant = uni(rng) < params.elephant_fraction;
    if (elephant) {
      flow.spec.name = "elephant" + std::to_string(n_elephants++);
      flow.spec.size_mb = elephant_size();
      flow.spec.tos = 2;
    } else {
      flow.spec.name = "mouse" + std::to_string(n_mice++);
      flow.spec.size_mb = std::max(0.01, mice(rng));
      flow.spec.tos = 1;
    }
    flow.spec.path = paths[path_index];
    path_index = (path_index + 1) % paths.size();
    out.push_back(std::move(flow));
  }
  return out;
}

FctStats collect_fct(const Simulator& sim, const std::vector<FlowId>& flows) {
  FctStats stats;
  std::vector<double> fcts;
  for (const FlowId id : flows) {
    const auto fct = sim.fct_s(id);
    if (fct) {
      fcts.push_back(*fct);
    } else {
      ++stats.unfinished;
    }
  }
  stats.completed = fcts.size();
  if (fcts.empty()) return stats;
  std::sort(fcts.begin(), fcts.end());
  double acc = 0.0;
  for (const double v : fcts) acc += v;
  stats.mean_fct_s = acc / static_cast<double>(fcts.size());
  // Nearest-rank p95: the ceil(0.95 * n)-th order statistic.  (Indexing
  // with floor(0.95 * n) selects one statistic too high -- for n == 20
  // it returned the maximum instead of the 19th value.)
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(fcts.size())));
  stats.p95_fct_s = fcts[std::min(fcts.size(), std::max<std::size_t>(rank, 1)) - 1];
  stats.max_fct_s = fcts.back();
  return stats;
}

std::size_t packet_count(const FlowSpec& spec, double mtu_bytes,
                         std::size_t cap) {
  if (mtu_bytes <= 0.0) {
    throw std::invalid_argument("packet_count: mtu must be positive");
  }
  if (!std::isfinite(spec.size_mb)) return cap;  // long-lived flow
  if (spec.size_mb <= 0.0) return 1;             // degenerate spec
  const double packets = std::ceil(spec.size_mb * 1e6 / mtu_bytes);
  if (packets >= static_cast<double>(cap)) return cap;
  return std::max<std::size_t>(1, static_cast<std::size_t>(packets));
}

}  // namespace hp::netsim
