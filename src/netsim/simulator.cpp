#include "netsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace hp::netsim {

Simulator::Simulator(Topology topo, QueueModel queue_model)
    : topo_(std::move(topo)), queue_model_(queue_model),
      saved_capacity_(topo_.link_count(), 0.0),
      link_load_mbps_(topo_.link_count(), 0.0),
      link_util_series_(topo_.link_count()) {}

void Simulator::push_event(double at_s, std::function<void(Simulator&)> action) {
  if (at_s < now_s_ - 1e-12) {
    throw std::invalid_argument("Simulator: event scheduled in the past");
  }
  events_.push(Event{at_s, next_seq_++, std::move(action)});
}

FlowId Simulator::add_flow(double at_s, FlowSpec spec) {
  if (!spec.path.empty() && !topo_.is_connected_path(spec.path)) {
    throw std::invalid_argument("add_flow: disconnected path for flow " +
                                spec.name);
  }
  const FlowId id = flows_.size();
  FlowState state;
  state.spec = std::move(spec);
  flows_.push_back(std::move(state));
  push_event(at_s, [id](Simulator& sim) {
    FlowState& f = sim.flows_[id];
    f.active = true;
    f.ever_started = true;
    f.start_s = sim.now_s_;
    f.goodput_factor = 1.0;
    for (const LinkIndex l : f.spec.path) {
      f.goodput_factor *= 1.0 - sim.topo_.link(l).loss_rate;
    }
    sim.reallocate();
  });
  return id;
}

void Simulator::stop_flow(double at_s, FlowId id) {
  if (id >= flows_.size()) throw std::out_of_range("stop_flow: bad id");
  push_event(at_s, [id](Simulator& sim) {
    FlowState& f = sim.flows_[id];
    f.active = false;
    f.rate_mbps = 0.0;
    if (f.ever_started) {
      // Close the rate series so byte accounting can integrate it.
      f.rate_series.push_back(Sample{sim.now_s_, 0.0});
    }
    sim.reallocate();
  });
}

void Simulator::migrate_flow(double at_s, FlowId id, Path new_path) {
  if (id >= flows_.size()) throw std::out_of_range("migrate_flow: bad id");
  if (!new_path.empty() && !topo_.is_connected_path(new_path)) {
    throw std::invalid_argument("migrate_flow: disconnected path");
  }
  push_event(at_s, [id, path = std::move(new_path)](Simulator& sim) {
    FlowState& f = sim.flows_[id];
    f.spec.path = path;
    f.goodput_factor = 1.0;
    for (const LinkIndex l : path) {
      f.goodput_factor *= 1.0 - sim.topo_.link(l).loss_rate;
    }
    sim.reallocate();
  });
}

void Simulator::schedule_probes(const std::string& name, Path forward,
                                double start_s, double interval_s) {
  if (interval_s <= 0.0) {
    throw std::invalid_argument("schedule_probes: interval must be > 0");
  }
  if (!topo_.is_connected_path(forward)) {
    throw std::invalid_argument("schedule_probes: disconnected path");
  }
  probe_series_[name];  // materialize the series
  // Self-rescheduling probe event: continues while within the horizon.
  // The recursive closure captures itself weakly -- ownership lives in
  // the queued events only, so the chain is freed with the queue.
  auto fire = std::make_shared<std::function<void(Simulator&, double)>>();
  std::weak_ptr<std::function<void(Simulator&, double)>> weak = fire;
  *fire = [name, path = std::move(forward), interval_s, weak](
              Simulator& sim, double t) {
    sim.record_probe(name, path);
    // Reschedule unconditionally: events beyond the current horizon stay
    // queued and fire if a later run_until extends it.
    const double next = t + interval_s;
    if (auto self = weak.lock()) {
      sim.push_event(next, [self, next](Simulator& s) { (*self)(s, next); });
    }
  };
  push_event(start_s,
             [fire, start_s](Simulator& s) { (*fire)(s, start_s); });
}

void Simulator::set_sample_interval(double interval_s) {
  if (interval_s <= 0.0) {
    throw std::invalid_argument("set_sample_interval: must be > 0");
  }
  sample_interval_s_ = interval_s;
  if (sampler_scheduled_) return;
  sampler_scheduled_ = true;
  // Weak self-capture for the same reason as in schedule_probes.
  auto fire = std::make_shared<std::function<void(Simulator&, double)>>();
  std::weak_ptr<std::function<void(Simulator&, double)>> weak = fire;
  *fire = [weak](Simulator& sim, double t) {
    // Record flows and link utilizations at the tick.
    for (FlowState& f : sim.flows_) {
      if (f.ever_started) {
        f.rate_series.push_back(Sample{t, f.active ? f.rate_mbps : 0.0});
      }
    }
    for (LinkIndex l = 0; l < sim.topo_.link_count(); ++l) {
      sim.link_util_series_[l].push_back(
          Sample{t, sim.link_utilization(l)});
    }
    const double next = t + sim.sample_interval_s_;
    if (auto self = weak.lock()) {
      sim.push_event(next, [self, next](Simulator& s) { (*self)(s, next); });
    }
  };
  const double first = now_s_ + interval_s;
  push_event(first, [fire, first](Simulator& s) { (*fire)(s, first); });
}

void Simulator::schedule_callback(double at_s,
                                  std::function<void(Simulator&)> fn) {
  push_event(at_s, std::move(fn));
}

void Simulator::fail_link(double at_s, LinkIndex link) {
  if (link >= topo_.link_count()) {
    throw std::out_of_range("fail_link: bad link index");
  }
  // Duplex partners are adjacent (add_duplex_link invariant).
  const LinkIndex partner = (link % 2 == 0) ? link + 1 : link - 1;
  push_event(at_s, [link, partner](Simulator& sim) {
    for (const LinkIndex l : {link, partner}) {
      if (sim.saved_capacity_[l] != 0.0) continue;  // already down
      sim.saved_capacity_[l] = sim.topo_.link(l).capacity_mbps;
      sim.topo_.mutable_link(l).capacity_mbps = kDownCapacityMbps;
    }
    sim.reallocate();
  });
}

void Simulator::restore_link(double at_s, LinkIndex link) {
  if (link >= topo_.link_count()) {
    throw std::out_of_range("restore_link: bad link index");
  }
  const LinkIndex partner = (link % 2 == 0) ? link + 1 : link - 1;
  push_event(at_s, [link, partner](Simulator& sim) {
    for (const LinkIndex l : {link, partner}) {
      if (sim.saved_capacity_[l] == 0.0) continue;  // already up
      sim.topo_.mutable_link(l).capacity_mbps = sim.saved_capacity_[l];
      sim.saved_capacity_[l] = 0.0;
    }
    sim.reallocate();
  });
}

bool Simulator::is_link_up(LinkIndex link) const {
  return saved_capacity_.at(link) == 0.0;
}

void Simulator::run_until(double t_end_s) {
  if (t_end_s < now_s_) {
    throw std::invalid_argument("run_until: time goes backwards");
  }
  horizon_s_ = t_end_s;
  while (!events_.empty() && events_.top().t <= t_end_s + 1e-12) {
    Event ev = events_.top();
    events_.pop();
    advance_to(std::max(ev.t, now_s_));
    ev.action(*this);
  }
  advance_to(t_end_s);
}

void Simulator::advance_to(double t_s) {
  const double dt = t_s - now_s_;
  if (dt <= 0.0) {
    now_s_ = std::max(now_s_, t_s);
    return;
  }
  for (FlowState& f : flows_) {
    if (f.active) {
      // Mbps * s = Mbit; /8 = MB, discounted by loss along the path.
      f.transferred_mb += f.rate_mbps * f.goodput_factor * dt / 8.0;
    }
  }
  now_s_ = t_s;
}

void Simulator::reallocate() {
  std::vector<FairShareFlow> shares;
  std::vector<FlowId> ids;
  for (FlowId id = 0; id < flows_.size(); ++id) {
    if (!flows_[id].active) continue;
    shares.push_back(FairShareFlow{flows_[id].spec.path,
                                   flows_[id].spec.demand_mbps});
    ids.push_back(id);
  }
  const std::vector<double> rates = max_min_fair_rates(topo_, shares);
  std::fill(link_load_mbps_.begin(), link_load_mbps_.end(), 0.0);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    FlowState& f = flows_[ids[k]];
    f.rate_mbps = rates[k];
    f.rate_series.push_back(Sample{now_s_, rates[k]});
    for (const LinkIndex l : f.spec.path) link_load_mbps_[l] += rates[k];
  }
  ++allocation_generation_;
  schedule_next_completion();
}

void Simulator::schedule_next_completion() {
  // Earliest completion among active sized flows at current rates.
  double best_t = std::numeric_limits<double>::infinity();
  FlowId best_id = 0;
  for (FlowId id = 0; id < flows_.size(); ++id) {
    const FlowState& f = flows_[id];
    if (!f.active || !std::isfinite(f.spec.size_mb)) continue;
    const double remaining = f.spec.size_mb - f.transferred_mb;
    if (remaining <= 1e-12) {
      best_t = now_s_;
      best_id = id;
      break;
    }
    const double goodput = f.rate_mbps * f.goodput_factor / 8.0;  // MB/s
    if (goodput <= 0.0) continue;  // starved: cannot complete for now
    const double eta = now_s_ + remaining / goodput;
    if (eta < best_t) {
      best_t = eta;
      best_id = id;
    }
  }
  if (!std::isfinite(best_t)) return;
  const std::uint64_t generation = allocation_generation_;
  push_event(best_t, [generation, best_id](Simulator& sim) {
    // Rates changed since this was scheduled: a fresher completion
    // event has already been queued by the reallocation.
    if (generation != sim.allocation_generation_) return;
    sim.complete_flow(best_id);
  });
}

void Simulator::complete_flow(FlowId id) {
  FlowState& f = flows_[id];
  if (!f.active) return;
  f.active = false;
  f.rate_mbps = 0.0;
  f.completed_s = now_s_;
  f.transferred_mb = f.spec.size_mb;  // absorb rounding in the ETA
  f.rate_series.push_back(Sample{now_s_, 0.0});
  reallocate();
}

double Simulator::queue_delay_ms(LinkIndex l) const {
  const double util = link_utilization(l);
  if (util <= 0.0) return 0.0;
  const double bounded = std::min(util, 0.995);
  const double q = queue_model_.serialization_ms * bounded / (1.0 - bounded);
  return std::min(q, queue_model_.max_queue_ms);
}

Path Simulator::reverse_path(const Path& forward) {
  Path rev(forward.rbegin(), forward.rend());
  for (LinkIndex& l : rev) {
    // Duplex partners are allocated adjacently by add_duplex_link.
    l = (l % 2 == 0) ? l + 1 : l - 1;
  }
  return rev;
}

void Simulator::record_probe(const std::string& name, const Path& forward) {
  probe_series_[name].push_back(Sample{now_s_, path_rtt_ms(forward)});
}

double Simulator::path_rtt_ms(const Path& forward) const {
  double rtt = 0.0;
  for (const LinkIndex l : forward) {
    rtt += topo_.link(l).delay_ms + queue_delay_ms(l);
  }
  for (const LinkIndex l : reverse_path(forward)) {
    rtt += topo_.link(l).delay_ms + queue_delay_ms(l);
  }
  return rtt;
}

double Simulator::link_utilization(LinkIndex l) const {
  const Link& link = topo_.link(l);
  return link_load_mbps_.at(l) / link.capacity_mbps;
}

const std::vector<Sample>& Simulator::flow_rate_series(FlowId id) const {
  return flows_.at(id).rate_series;
}

const std::vector<Sample>& Simulator::probe_series(
    const std::string& name) const {
  const auto it = probe_series_.find(name);
  if (it == probe_series_.end()) {
    throw std::out_of_range("probe_series: unknown probe " + name);
  }
  return it->second;
}

const std::vector<Sample>& Simulator::link_utilization_series(
    LinkIndex l) const {
  return link_util_series_.at(l);
}

double Simulator::current_rate(FlowId id) const {
  const FlowState& f = flows_.at(id);
  return f.active ? f.rate_mbps : 0.0;
}

double Simulator::transferred_mb(FlowId id) const {
  return flows_.at(id).transferred_mb;
}

const Path& Simulator::flow_path(FlowId id) const {
  return flows_.at(id).spec.path;
}

bool Simulator::is_active(FlowId id) const { return flows_.at(id).active; }

std::optional<double> Simulator::completion_time(FlowId id) const {
  return flows_.at(id).completed_s;
}

std::optional<double> Simulator::fct_s(FlowId id) const {
  const FlowState& f = flows_.at(id);
  if (!f.completed_s) return std::nullopt;
  return *f.completed_s - f.start_s;
}

}  // namespace hp::netsim
