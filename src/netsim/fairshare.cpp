#include "netsim/fairshare.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hp::netsim {

std::vector<double> max_min_fair_rates(
    const Topology& topo, const std::vector<FairShareFlow>& flows) {
  const std::size_t n_flows = flows.size();
  const std::size_t n_links = topo.link_count();
  std::vector<double> rates(n_flows, 0.0);
  std::vector<bool> frozen(n_flows, false);

  for (std::size_t f = 0; f < n_flows; ++f) {
    if (flows[f].demand_mbps < 0.0) {
      throw std::invalid_argument("max_min_fair_rates: negative demand");
    }
    for (const LinkIndex l : flows[f].path) {
      if (l >= n_links) {
        throw std::out_of_range("max_min_fair_rates: bad link index");
      }
    }
    if (flows[f].path.empty()) {
      // No shared resource: the flow gets its demand outright.
      rates[f] = flows[f].demand_mbps;
      frozen[f] = true;
    }
  }

  // Progressive filling: raise all unfrozen flows' rates together; a
  // flow freezes when it reaches its demand or when a link it crosses
  // saturates.
  constexpr double kEps = 1e-9;
  while (true) {
    // Per-link remaining capacity and unfrozen-flow count.
    std::vector<double> remaining(n_links);
    std::vector<std::size_t> unfrozen_count(n_links, 0);
    for (std::size_t l = 0; l < n_links; ++l) {
      remaining[l] = topo.link(l).capacity_mbps;
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      for (const LinkIndex l : flows[f].path) {
        if (frozen[f]) {
          remaining[l] -= rates[f];
        } else {
          ++unfrozen_count[l];
        }
      }
    }

    // The uniform increment level every unfrozen flow could rise to.
    double level = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < n_links; ++l) {
      if (unfrozen_count[l] > 0) {
        level = std::min(level, std::max(remaining[l], 0.0) /
                                    static_cast<double>(unfrozen_count[l]));
      }
    }
    bool any_unfrozen = false;
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (!frozen[f]) {
        any_unfrozen = true;
        level = std::min(level, flows[f].demand_mbps);
      }
    }
    if (!any_unfrozen) break;

    // Freeze demand-limited flows at their demand...
    bool froze_any = false;
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (!frozen[f] && flows[f].demand_mbps <= level + kEps) {
        rates[f] = flows[f].demand_mbps;
        frozen[f] = true;
        froze_any = true;
      }
    }
    if (froze_any) continue;  // recompute shares with them accounted

    // ...otherwise freeze every flow crossing a bottleneck link.
    for (std::size_t l = 0; l < n_links; ++l) {
      if (unfrozen_count[l] == 0) continue;
      const double share = std::max(remaining[l], 0.0) /
                           static_cast<double>(unfrozen_count[l]);
      if (share <= level + kEps) {
        for (std::size_t f = 0; f < n_flows; ++f) {
          if (frozen[f]) continue;
          for (const LinkIndex pl : flows[f].path) {
            if (pl == l) {
              rates[f] = level;
              frozen[f] = true;
              froze_any = true;
              break;
            }
          }
        }
      }
    }
    if (!froze_any) {
      // Numerical guard: freeze everything at the level to terminate.
      for (std::size_t f = 0; f < n_flows; ++f) {
        if (!frozen[f]) {
          rates[f] = level;
          frozen[f] = true;
        }
      }
    }
  }
  return rates;
}

}  // namespace hp::netsim
