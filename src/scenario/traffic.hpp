#pragma once
// Traffic-matrix generators: per-packet (ingress, label) streams.
//
// A scenario's workload is a flat packet stream over a BuiltFabric:
// contiguous arrays of 64-bit labels and ingress nodes (the exact shape
// CompiledFabric::forward_batch consumes) plus, per packet, the index
// of its (src, dst) pair so expectations can be checked and labels
// rewritten when a link failure forces a recompile mid-run.  Four
// matrix shapes: uniform-random pairs, a router permutation, hotspot
// (a weighted share of traffic converging on one destination) and the
// elephant/mice FCT mix reused from netsim::workload.

#include <cstdint>
#include <vector>

#include "netsim/workload.hpp"
#include "polka/label.hpp"
#include "scenario/fabric_builder.hpp"

namespace hp::scenario {

enum class TrafficPattern {
  kUniformRandom,  ///< random (src, dst) pairs, packets spread evenly
  kPermutation,    ///< each router sends to one fixed partner
  kHotspot,        ///< `hotspot_weight` of traffic targets one router
  kElephantMice,   ///< netsim::workload flow sizes over random pairs
};

[[nodiscard]] const char* to_string(TrafficPattern pattern);

struct TrafficParams {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  std::size_t packets = 1 << 14;  ///< total stream length (exact)
  std::uint64_t seed = 1;
  /// Cap on distinct (src, dst) pairs sampled by the random patterns,
  /// bounding route-compilation work on large topologies.
  std::size_t max_pairs = 2048;
  /// kHotspot: share of packets whose destination is the hot router.
  double hotspot_weight = 0.5;
  /// kElephantMice: flow arrival/size shape and the packetization MTU.
  netsim::WorkloadParams workload;
  double mtu_bytes = 1500.0;
};

/// One traffic endpoint pair and its compiled expectations.
struct TrafficPair {
  netsim::NodeIndex src = 0;  ///< topology index
  netsim::NodeIndex dst = 0;
  polka::PacketResult expected;  ///< egress node/port/hops for the pair
};

/// A replayable packet stream.  labels/ingress/pair are parallel
/// arrays, one entry per packet.  Pairs whose route needs more than one
/// 64-bit label carry their segments in the pooled arrays below (the
/// packet's own label then duplicates the first segment); seg_refs is
/// parallel to `pairs`.
struct PacketStream {
  std::vector<polka::RouteLabel> labels;
  std::vector<std::uint32_t> ingress;  ///< fabric injection node
  std::vector<std::uint32_t> pair;     ///< index into `pairs`
  std::vector<TrafficPair> pairs;
  /// Pooled multi-segment routes: seg_refs[lane] slices seg_labels /
  /// seg_waypoints; label_count == 1 means the pair is single-label.
  std::vector<polka::RouteLabel> seg_labels;
  std::vector<std::uint32_t> seg_waypoints;
  std::vector<polka::SegmentRef> seg_refs;
  /// Pairs skipped at generation time because the route has no
  /// fast-path form at all (kept for reporting; zero since segmented
  /// routes made every compiled route packable).
  std::size_t unpackable_pairs = 0;
  std::size_t unreachable_pairs = 0;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// Pool a route's segment list into the stream's pooled arrays and
/// return the ref describing the slice.  A single-label route pools
/// nothing and returns the default (label_count == 1) ref.  Shared by
/// stream generation and the runner's failure repair so the ref layout
/// has exactly one author.
polka::SegmentRef append_segments(PacketStream& stream,
                                  const polka::SegmentedRoute& route);

/// Generate a packet stream over the fabric's routers.  Compiles every
/// route it uses (single-threaded; do this before sharding a replay).
/// Throws std::invalid_argument when the fabric has < 2 routers or
/// params.packets == 0.
[[nodiscard]] PacketStream generate_traffic(BuiltFabric& fabric,
                                            const TrafficParams& params);

}  // namespace hp::scenario
