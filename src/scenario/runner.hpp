#pragma once
// ScenarioRunner: sharded multi-threaded replay of a packet stream.
//
// The stream's parallel arrays are cut into one contiguous slice per
// worker thread; each worker drives CompiledFabric::forward_batch over
// its slice with private scratch buffers and counters, which are merged
// after join.  The compiled fabric is immutable during a replay, so
// workers share it without synchronization.  An optional link-failure
// schedule splits the stream into epochs: at each failure point the
// affected routes are recompiled against the degraded topology and the
// not-yet-replayed packets of those pairs get their new labels --
// including fresh segment lists when the detour outgrows one 64-bit
// label (only pairs that lose connectivity are dropped and counted).
// Packets a hop cap kills mid-flight are reported as ttl_expired, never
// as deliveries.

#include <cstdint>
#include <span>
#include <vector>

#include "polka/fastpath.hpp"
#include "polka/label.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/traffic.hpp"

namespace hp::obs {
class MetricRegistry;
class TraceSink;
}  // namespace hp::obs

namespace hp::scenario {

/// One scheduled duplex-link event: a failure, or -- when `restore` is
/// set -- the link coming back up (flap schedules alternate the two).
struct LinkFailure {
  double at_fraction = 0.5;   ///< stream position in [0, 1)
  netsim::NodeIndex a = 0;    ///< topology endpoints of the duplex link
  netsim::NodeIndex b = 0;
  bool restore = false;       ///< true: the link comes back up
};

struct RunnerOptions {
  unsigned threads = 1;          ///< worker count (0 behaves as 1)
  std::size_t batch_size = 1024; ///< packets per forward_batch call
  std::size_t max_hops = 64;
  std::vector<LinkFailure> failures;  ///< applied in at_fraction order
  /// Pre-install up to this many link-disjoint backup routes per pair
  /// before the replay starts (BuiltFabric::enable_protection).  With
  /// protection on, a failure swaps affected pairs to their backups in
  /// O(1) label copies instead of recompiling; only pairs whose whole
  /// protection set died recompile lazily.  0 keeps the eager repair.
  unsigned protection_k = 0;
  /// Convergence-loss model: each recompiled (not swapped!) pair costs
  /// this many of its next packets, dropped inside the failure window.
  /// 0 (the default) keeps the historic loss-free instant repair.
  std::size_t loss_window_per_recompile = 0;
  /// Optional observability taps (borrowed).  Workers record replay.*
  /// counters at flush/slice granularity -- never per packet -- so the
  /// enabled hot path stays within the <2% pps budget the overhead
  /// bench pins; the trace sink gets one replay.epoch / replay.repair
  /// event per phase.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

/// Merged counters of one replay.
///
/// Shard-merge schema (merge_from): a full report is the merge of
/// per-shard partial reports, and the rules are part of the type's
/// contract because three layers build on them (replay_shards' worker
/// merge, ScenarioRunner's epoch merge, and sim::SimReport's embedded
/// copy):
///  * every packet/work counter (packets .. segment_swaps) SUMS --
///    shards partition the stream, so counts are disjoint;
///  * `seconds` SUMS, which is correct only for *sequential* partials
///    (epochs).  Parallel shard wall clock is measured around the
///    join by replay_shards itself -- never sum concurrent partials;
///  * `fold_kernel` must MATCH across partials (one compiled fabric
///    per run); merge_from keeps the destination's value;
///  * distribution metrics (e.g. FCT percentiles) are NOT part of this
///    struct precisely because they cannot be merged as counters: a
///    p95 must be recomputed from pooled samples, never averaged --
///    sim::SimReport carries its samples for that reason.
struct ScenarioReport {
  std::size_t packets = 0;         ///< packets actually forwarded
  std::size_t mod_operations = 0;  ///< data-plane work (== total hops)
  std::size_t wrong_egress = 0;    ///< egress diverged from the pair's plan
  std::size_t rerouted_pairs = 0;  ///< pairs recompiled after failures
  std::size_t dropped_packets = 0; ///< pair unroutable after a failure
  std::size_t ttl_expired = 0;     ///< packets killed by the hop cap
  /// Segment-routing instrumentation: packets replayed through the
  /// segmented walk (their pair needed > 1 label) and the label swaps
  /// their routes encode.  Both zero on fully single-label runs.
  std::size_t segmented_packets = 0;
  std::size_t segment_swaps = 0;
  /// Failover accounting (all zero on failure-free runs):
  std::size_t backup_swapped_pairs = 0;   ///< pairs moved via backup swap
  std::size_t failover_packets_lost = 0;  ///< loss-window + severed drops
  std::size_t unroutable_pairs = 0;       ///< pairs severed, no path left
  std::size_t lazy_repaired_pairs = 0;    ///< pairs recompiled lazily
  std::size_t window_recompiles = 0;      ///< recompiles inside fail events
  /// The per-hop reduction kernel the replayed fabric ran (PCLMUL
  /// Barrett vs slice-by-8 table -- see polka/fastpath.hpp), so replay
  /// reports say which data-plane path produced their numbers.
  polka::FoldKernel fold_kernel = polka::FoldKernel::kTable;
  double seconds = 0.0;            ///< wall clock of the forwarding epochs

  [[nodiscard]] double packets_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(packets) / seconds : 0.0;
  }

  [[nodiscard]] const char* fold_kernel_name() const noexcept {
    return polka::to_string(fold_kernel);
  }

  /// Fold a partial report in, per the shard-merge schema above.
  void merge_from(const ScenarioReport& partial) noexcept {
    packets += partial.packets;
    mod_operations += partial.mod_operations;
    wrong_egress += partial.wrong_egress;
    rerouted_pairs += partial.rerouted_pairs;
    dropped_packets += partial.dropped_packets;
    ttl_expired += partial.ttl_expired;
    segmented_packets += partial.segmented_packets;
    segment_swaps += partial.segment_swaps;
    backup_swapped_pairs += partial.backup_swapped_pairs;
    failover_packets_lost += partial.failover_packets_lost;
    unroutable_pairs += partial.unroutable_pairs;
    lazy_repaired_pairs += partial.lazy_repaired_pairs;
    window_recompiles += partial.window_recompiles;
    seconds += partial.seconds;
  }

  friend bool operator==(const ScenarioReport&,
                         const ScenarioReport&) noexcept = default;
};

/// Pooled per-pair segment routes for a replay: refs is indexed by the
/// stream's pair lane; a lane whose ref has label_count > 1 replays via
/// CompiledFabric::forward_segmented over the pooled labels/waypoints,
/// every other lane via the packet's own 64-bit label.  Empty refs
/// (the default) means every lane is single-label.
struct SegmentTable {
  std::span<const polka::RouteLabel> labels;
  std::span<const std::uint32_t> waypoints;
  std::span<const polka::SegmentRef> refs;
};

/// Low-level sharded replay of parallel label/ingress arrays.  Each
/// packet's expectation is expected[index[i]]; `alive`, when nonempty,
/// is indexed the same way and marks packets to skip (counted as
/// dropped); `segments.refs`, when nonempty, must cover every lane
/// value.  This is the primitive both ScenarioRunner and
/// core::PolkaService build on.
/// `metrics`, when set, receives replay.* counters (packets and folds
/// added per batch flush, outcome counters per slice) recorded
/// concurrently by every worker -- the registry's sharded hot path is
/// exactly what absorbs that.
ScenarioReport replay_shards(const polka::CompiledFabric& fabric,
                             std::span<const polka::RouteLabel> labels,
                             std::span<const std::uint32_t> ingress,
                             std::span<const std::uint32_t> index,
                             std::span<const polka::PacketResult> expected,
                             std::span<const std::uint8_t> alive,
                             SegmentTable segments, unsigned threads,
                             std::size_t batch_size, std::size_t max_hops = 64,
                             obs::MetricRegistry* metrics = nullptr);

/// Single-label convenience overload (no segment table).
inline ScenarioReport replay_shards(
    const polka::CompiledFabric& fabric,
    std::span<const polka::RouteLabel> labels,
    std::span<const std::uint32_t> ingress,
    std::span<const std::uint32_t> index,
    std::span<const polka::PacketResult> expected,
    std::span<const std::uint8_t> alive, unsigned threads,
    std::size_t batch_size, std::size_t max_hops = 64,
    obs::MetricRegistry* metrics = nullptr) {
  return replay_shards(fabric, labels, ingress, index, expected, alive,
                       SegmentTable{}, threads, batch_size, max_hops, metrics);
}

/// Replays a stream over its fabric, applying the failure schedule.
/// The stream is mutated in place when failures rewrite labels.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {})
      : options_(std::move(options)) {}

  [[nodiscard]] const RunnerOptions& options() const noexcept {
    return options_;
  }

  ScenarioReport run(BuiltFabric& fabric, PacketStream& stream) const;

 private:
  RunnerOptions options_;
};

}  // namespace hp::scenario
