#pragma once
// FabricBuilder: turn any netsim::Topology into a wired PolkaFabric
// with compiled per-pair routes.
//
// The router subgraph of the topology becomes the PolKA core: each
// router gets one fabric port per distinct router neighbour plus one
// extra, deliberately unwired, egress port (the host-facing side on
// which a packet leaves the fabric).  Routes between router pairs are
// shortest paths (hop count) computed from cached single-source
// Dijkstra trees, CRT-encoded into routeIDs and packed into 64-bit
// labels where they fit.  Scheduled link failures remove links from
// path computation and invalidate exactly the routes that crossed
// them, which is what lets the scenario runner recompile mid-run.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netsim/paths.hpp"
#include "netsim/topology.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"

namespace hp::scenario {

/// A compiled router-to-router route through the fabric.
struct CompiledRoute {
  polka::RouteId id;                        ///< CRT routeID
  std::optional<polka::RouteLabel> label;   ///< 64-bit form, when it fits
  std::uint32_t ingress = 0;                ///< fabric index of the source
  polka::PacketResult expected;             ///< egress node/port and hop count
  netsim::Path path;                        ///< topology links traversed
};

/// A topology wired as a PolKA fabric, with route compilation on top.
class BuiltFabric {
 public:
  explicit BuiltFabric(netsim::Topology topo,
                       polka::ModEngine engine = polka::ModEngine::kTable);

  [[nodiscard]] const netsim::Topology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] const polka::PolkaFabric& fabric() const noexcept {
    return fabric_;
  }
  [[nodiscard]] const polka::CompiledFabric& compiled() const {
    return fabric_.compiled();
  }

  /// Topology indices of the router nodes, in fabric-index order.
  [[nodiscard]] const std::vector<netsim::NodeIndex>& routers() const noexcept {
    return fabric_to_topo_;
  }
  [[nodiscard]] std::size_t router_count() const noexcept {
    return fabric_to_topo_.size();
  }

  /// Fabric index of a router topology node (throws std::invalid_argument
  /// for hosts).
  [[nodiscard]] std::size_t fabric_index(netsim::NodeIndex topo_node) const;
  [[nodiscard]] netsim::NodeIndex topo_index(std::size_t fabric_node) const {
    return fabric_to_topo_.at(fabric_node);
  }

  /// The unwired host-facing port of a fabric node (always the last).
  [[nodiscard]] unsigned egress_port(std::size_t fabric_node) const;

  /// Compile (and cache) the shortest-hop route between two distinct
  /// routers, given as topology indices.  Returns nullptr when `dst` is
  /// unreachable from `src` (possible after link failures).  The
  /// returned pointer stays valid until the route is invalidated by
  /// fail_link.  Not thread-safe: compile every route before sharding
  /// a replay across threads.
  [[nodiscard]] const CompiledRoute* route(netsim::NodeIndex src,
                                           netsim::NodeIndex dst);

  /// Remove the duplex link a<->b from path computation (the fabric
  /// wiring is untouched: ports still exist, packets simply route
  /// around).  Throws std::invalid_argument when no such link exists.
  /// Returns the (src, dst) pairs whose cached route crossed the link;
  /// those cache entries are dropped and recompile on next lookup.
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> fail_link(
      netsim::NodeIndex a, netsim::NodeIndex b);

  /// Directed links currently excluded from path computation.
  [[nodiscard]] const std::vector<netsim::LinkIndex>& failed_links()
      const noexcept {
    return banned_links_;
  }

 private:
  netsim::Topology topo_;
  polka::PolkaFabric fabric_;
  std::vector<std::size_t> topo_to_fabric_;  // kInvalidIndex for hosts
  std::vector<netsim::NodeIndex> fabric_to_topo_;
  std::vector<netsim::LinkIndex> banned_links_;
  std::unordered_map<netsim::NodeIndex, netsim::PathTree> trees_;
  std::unordered_map<std::uint64_t, CompiledRoute> routes_;
};

}  // namespace hp::scenario
