#pragma once
// FabricBuilder: turn any netsim::Topology into a wired PolkaFabric
// with compiled per-pair routes.
//
// The router subgraph of the topology becomes the PolKA core: each
// router gets one fabric port per distinct router neighbour plus one
// extra, deliberately unwired, egress port (the host-facing side on
// which a packet leaves the fabric).  Routes between router pairs are
// shortest paths (hop count) computed from cached single-source
// Dijkstra trees and CRT-encoded into routeIDs.
//
// Two compilation strategies coexist:
//  - route() compiles one pair per call, folding one congruence per hop
//    (the per-path baseline: O(depth) CRT steps per route);
//  - compile_all_pairs() / compile_subtree() walk a source's tree once
//    with a CrtAccumulator carried down the DFS.  Every tree edge v->c
//    serves all destinations in c's subtree with the same port
//    congruence at v, so descending adds exactly one CRT step and each
//    destination needs only its final egress congruence: O(n) steps for
//    a whole source instead of O(n * depth).
//
// Both strategies cut multi-segment routes at the same boundary: while
// descending (or walking a path), the moment the accumulated CRT
// modulus would pass 64 coefficient bits the current segment is closed
// into one <= 64-bit label, the node becomes a re-label waypoint, and a
// fresh accumulator starts -- so deep ring/torus paths never leave the
// uint64 fast path and the compiler never materializes a wide Poly.
//
// Scheduled link failures remove links from path computation; a
// link -> route-keys inverted index names the crossing routes in
// O(affected), only the Dijkstra trees that used the dead link are
// rebuilt, and the severed destinations are recompiled subtree-scoped.

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netsim/paths.hpp"
#include "netsim/topology.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"
#include "scenario/protection.hpp"

namespace hp::obs {
class MetricRegistry;
class TraceSink;
}  // namespace hp::obs

namespace hp::scenario {

/// A compiled router-to-router route through the fabric.
///
/// Every route is carried by `segments`, whose labels each fit 64 bits
/// (one label when the whole path's CRT modulus stays within 64
/// coefficient bits, more with re-label waypoints otherwise), so every
/// compiled route replays on the uint64 fast path.  `id` and `label`
/// are the single-label forms: populated exactly when
/// segments.single_label(), zero/nullopt for multi-segment routes (the
/// full-path polynomial is never materialized for those).
struct CompiledRoute {
  polka::RouteId id;                        ///< CRT routeID (single-label only)
  std::optional<polka::RouteLabel> label;   ///< 64-bit form, when it fits
  polka::SegmentedRoute segments;           ///< fast-path wire form, always set
  std::uint32_t ingress = 0;                ///< fabric index of the source
  polka::PacketResult expected;             ///< egress node/port and hop count
  netsim::Path path;                        ///< topology links traversed
};

/// Counters behind the route compiler, exposed so tests and benches can
/// assert *how much* work a call performed (e.g. that fail_link
/// recompiled only the routes crossing the dead link).
struct CompileStats {
  std::size_t routes_compiled = 0;  ///< CompiledRoute entries written
  std::size_t trees_built = 0;      ///< single-source Dijkstra runs
  std::size_t crt_steps = 0;        ///< congruences folded into solutions
  std::size_t backup_routes = 0;    ///< protection backups precompiled
  /// Hitless primary<->backup label swaps (failures and restore
  /// reverts).  Swaps never count in routes_compiled: the whole point
  /// of protection is that the failure window compiles nothing.
  std::size_t backup_swaps = 0;
};

/// Outcome of one failure or restore event, pair-classified.  Pairs
/// are (src, dst) topology indices; `affected` is every pair whose
/// cached route the event touched, in deterministic (sorted-key)
/// order, and the other lists partition it:
///  * swapped     served hitlessly by a pre-installed backup (or, on
///                restore, reverted to its revived primary);
///                swap_stretch is parallel to it;
///  * repaired    eagerly recompiled inside the event (unprotected
///                fabrics only);
///  * pending     protection set entirely dead; parked for
///                repair_pending() (the lazy window);
///  * unroutable  no path left in the degraded topology (repair_pending
///                moves pending pairs here when Dijkstra agrees).
struct FailoverReport {
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> affected;
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> swapped;
  std::vector<double> swap_stretch;
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> repaired;
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> pending;
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> unroutable;
  std::size_t window_recompiles = 0;  ///< routes compiled inside the event
  bool duplicate = false;  ///< link already in the requested state: no-op
};

/// A topology wired as a PolKA fabric, with route compilation on top.
class BuiltFabric {
 public:
  explicit BuiltFabric(netsim::Topology topo,
                       polka::ModEngine engine = polka::ModEngine::kTable);

  [[nodiscard]] const netsim::Topology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] const polka::PolkaFabric& fabric() const noexcept {
    return fabric_;
  }
  [[nodiscard]] const polka::CompiledFabric& compiled() const {
    return fabric_.compiled();
  }

  /// Topology indices of the router nodes, in fabric-index order.
  [[nodiscard]] const std::vector<netsim::NodeIndex>& routers() const noexcept {
    return fabric_to_topo_;
  }
  [[nodiscard]] std::size_t router_count() const noexcept {
    return fabric_to_topo_.size();
  }

  /// Fabric index of a router topology node (throws std::invalid_argument
  /// for hosts).
  [[nodiscard]] std::size_t fabric_index(netsim::NodeIndex topo_node) const;
  [[nodiscard]] netsim::NodeIndex topo_index(std::size_t fabric_node) const {
    return fabric_to_topo_.at(fabric_node);
  }

  /// The unwired host-facing port of a fabric node (always the last).
  [[nodiscard]] unsigned egress_port(std::size_t fabric_node) const;

  /// Compile (and cache) the shortest-hop route between two distinct
  /// routers, given as topology indices.  Returns nullptr when `dst` is
  /// unreachable from `src` (possible after link failures).  The
  /// returned pointer stays valid until the route is invalidated by
  /// fail_link.  Not thread-safe: compile every route before sharding
  /// a replay across threads.
  [[nodiscard]] const CompiledRoute* route(netsim::NodeIndex src,
                                           netsim::NodeIndex dst);

  /// Tree-incremental all-pairs compilation: one shortest-path-tree
  /// walk per source, sharing CRT prefixes down the DFS -- O(n) CRT
  /// steps per source where per-pair route() calls cost O(n * depth).
  /// `threads` shards sources across workers (0 behaves as 1; the
  /// merge into the route cache stays single-threaded).  Returns the
  /// number of routes written (every ordered reachable router pair).
  std::size_t compile_all_pairs(unsigned threads = 1);

  /// Recompile the routes src -> each of `dsts`, sharing prefix CRT
  /// work along the source's tree and walking only branches that lead
  /// to a requested destination.  Destinations equal to src, not
  /// routers, or currently unreachable are skipped.  Returns the number
  /// of routes written.  This is the primitive fail_link repairs with.
  std::size_t compile_subtree(netsim::NodeIndex src,
                              std::span<const netsim::NodeIndex> dsts);

  /// Pre-plan k mutually link-disjoint backups for every *currently
  /// cached* route (compile or generate traffic first) and arm the
  /// protection layer: subsequent apply_failure calls swap crossing
  /// primaries to backups instead of recompiling.  Pairs with no
  /// disjoint alternative stay unprotected and fall back to the lazy
  /// recompiler.  Idempotent per pair; k = 0 disarms.  Returns the
  /// number of backups installed by this call.
  std::size_t enable_protection(unsigned k);

  [[nodiscard]] unsigned protection_k() const noexcept {
    return protection_k_;
  }
  [[nodiscard]] const BackupTable& backup_table() const noexcept {
    return backups_;
  }

  /// Remove the duplex link a<->b from path computation (the fabric
  /// wiring is untouched: ports still exist, packets simply route
  /// around).  Throws std::invalid_argument when no such link exists;
  /// failing an already-failed link is a graceful no-op (duplicate set
  /// in the report).  Crossing routes are evicted and then, with
  /// protection armed, hitlessly swapped to pre-installed backups --
  /// zero path computation, zero CRT work in the window; pairs whose
  /// whole protection set died are parked in `pending` until
  /// repair_pending().  Without protection they are eagerly recompiled
  /// subtree-scoped, exactly as fail_link always did.  Pairs the
  /// failure disconnected land in `unroutable` and report unreachable
  /// from route().
  FailoverReport apply_failure(netsim::NodeIndex a, netsim::NodeIndex b);

  /// Bring the duplex link a<->b back.  Dirty shortest-path trees are
  /// flushed (rebuilt lazily); with protection armed, every pair whose
  /// saved primary is fully alive again reverts to it -- a hitless
  /// swap back, listed in `swapped` -- including pairs a failure had
  /// severed entirely (their routes revive without a recompile).
  /// Restoring a link that is not failed is a no-op (duplicate set).
  FailoverReport restore_link(netsim::NodeIndex a, netsim::NodeIndex b);

  /// Lazily recompile the pairs apply_failure parked in `pending`
  /// (their protection set was dead).  Pairs that recompile land in
  /// `repaired` and get a fresh protection set planned against the
  /// degraded topology; pairs with no path left land in `unroutable`.
  FailoverReport repair_pending();

  [[nodiscard]] std::size_t pending_repair_count() const noexcept {
    return pending_.size();
  }

  /// Legacy eager entry point, kept for callers that want the
  /// "everything handled before return" contract: apply_failure plus
  /// an immediate repair_pending.  Returns every affected (src, dst)
  /// pair, as before.
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> fail_link(
      netsim::NodeIndex a, netsim::NodeIndex b);

  /// Directed links currently excluded from path computation.
  [[nodiscard]] const std::vector<netsim::LinkIndex>& failed_links()
      const noexcept {
    return banned_links_;
  }

  /// Attach observability taps (borrowed, both optional; nullptr
  /// detaches).  With metrics set, every compile entry point (route,
  /// compile_all_pairs, compile_subtree, fail_link) adds its
  /// CompileStats deltas to the compile.routes/.trees/.crt_steps
  /// counters and records its wall clock in a compile.<phase>_ns
  /// histogram; with trace set, the batch entry points emit one
  /// complete phase event each.
  void set_observability(obs::MetricRegistry* metrics,
                         obs::TraceSink* trace) noexcept {
    metrics_ = metrics;
    trace_ = trace;
  }

  [[nodiscard]] const CompileStats& compile_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t cached_route_count() const noexcept {
    return routes_.size();
  }
  [[nodiscard]] std::size_t cached_tree_count() const noexcept {
    return trees_.size();
  }

 private:
  using RouteKey = std::uint64_t;
  using KeyedRoute = std::pair<RouteKey, CompiledRoute>;

  /// Cached tree for `src`, built on first use (counts in stats_).
  const netsim::PathTree& tree_for(netsim::NodeIndex src);

  /// DFS down `tree` carrying a CrtAccumulator, emitting one route per
  /// visited router destination.  `descend`, when given, prunes the
  /// walk to marked nodes; `emit`, when given, selects which visited
  /// nodes produce a route.  Thread-safe (touches no mutable state).
  void compile_tree_routes(const netsim::PathTree& tree,
                           const std::vector<char>* descend,
                           const std::vector<char>* emit,
                           std::vector<KeyedRoute>& out,
                           std::size_t& crt_steps) const;

  /// Insert or overwrite one cache entry, keeping the link index true;
  /// returns the stored entry.  Hitless backup swaps pass
  /// count_compile = false: installing a pre-compiled label is not a
  /// route compilation.
  CompiledRoute& store_route(RouteKey key, CompiledRoute&& route,
                             bool count_compile = true);
  void unindex_route(RouteKey key, const netsim::Path& path);

  /// Compile one explicit path into a route (segments, expectation,
  /// ingress) without touching the cache or stats; `crt_steps` gets
  /// the fold count.  Shared by route() and the backup planner.
  [[nodiscard]] CompiledRoute compile_path_route(const netsim::Path& path,
                                                 std::size_t& crt_steps) const;

  /// Plan and install `protection_k_` disjoint backups for one pair
  /// against its primary; returns how many were installed.
  std::size_t protect_pair(RouteKey key, const CompiledRoute& primary);

  /// Evict every cached route crossing the two directed links; returns
  /// the affected pairs in sorted-key order.  Protected fabrics save
  /// each pair's pre-failure primary for revert-on-restore.
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>>
  evict_crossing_routes(netsim::LinkIndex fwd, netsim::LinkIndex rev);

  /// Record one compile phase's stats deltas and wall clock into the
  /// attached registry (no-op when detached).
  void note_compile(const char* phase, const CompileStats& before,
                    std::chrono::steady_clock::time_point start) const;

  netsim::Topology topo_;
  polka::PolkaFabric fabric_;
  std::vector<std::size_t> topo_to_fabric_;  // kInvalidIndex for hosts
  std::vector<netsim::NodeIndex> fabric_to_topo_;
  /// Per fabric node: the nodeID's coefficient words when its degree
  /// fits 64 bits (the common case), else 0 -- lets the compiler fold
  /// congruences through the word-form CRT API without building Polys.
  std::vector<std::uint64_t> node_bits_;
  /// Per fabric node: deg(nodeID), driving the segment-cut rule (a
  /// segment closes when its accumulated modulus degree would pass 64).
  std::vector<int> node_degree_;
  std::vector<netsim::LinkIndex> banned_links_;
  /// Per directed link: 1 while failed.  The O(1) form of
  /// banned_links_, sized at construction, consulted by backup
  /// selection and restore reverts.
  std::vector<char> link_down_;
  unsigned protection_k_ = 0;
  BackupTable backups_;
  /// Pre-failure primaries of pairs a failure displaced (or severed),
  /// keyed like routes_; restore_link reverts from here.  The
  /// *original* primary is kept across repeated failures.
  std::unordered_map<RouteKey, CompiledRoute> saved_primary_;
  /// Pairs whose protection set died, awaiting repair_pending().
  std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>> pending_;
  std::unordered_map<netsim::NodeIndex, netsim::PathTree> trees_;
  std::unordered_map<RouteKey, CompiledRoute> routes_;
  /// Inverted index: directed link -> keys of cached routes over it,
  /// so fail_link names the crossing routes in O(affected) instead of
  /// scanning every cached path.  Vector-backed: appends are the hot
  /// path (every compiled hop), removals happen only on recompiles and
  /// failures and swap-erase a linear scan.
  std::unordered_map<netsim::LinkIndex, std::vector<RouteKey>>
      routes_by_link_;
  CompileStats stats_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace hp::scenario
