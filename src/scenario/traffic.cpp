#include "scenario/traffic.hpp"

#include <algorithm>
#include <map>
#include <random>
#include <stdexcept>
#include <unordered_map>

namespace hp::scenario {

namespace {

using netsim::NodeIndex;

constexpr std::uint32_t kSkippedPair = 0xFFFFFFFFu;

/// Pair interning shared by the pattern generators: compiles the route
/// on first sight, records skip reasons once, and keeps the per-pair
/// label/ingress the emission loop reads.
struct PairTable {
  BuiltFabric& fabric;
  PacketStream& stream;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<polka::RouteLabel> label;
  std::vector<std::uint32_t> ingress;
  std::vector<netsim::Path> path;

  /// Index of the usable pair, or nullopt (unreachable / oversized).
  std::optional<std::uint32_t> intern(NodeIndex src, NodeIndex dst) {
    const std::uint64_t key = netsim::node_pair_key(src, dst);
    if (const auto it = index.find(key); it != index.end()) {
      if (it->second == kSkippedPair) return std::nullopt;
      return it->second;
    }
    const CompiledRoute* route = fabric.route(src, dst);
    if (!route) {
      ++stream.unreachable_pairs;
      index.emplace(key, kSkippedPair);
      return std::nullopt;
    }
    if (route->segments.labels.empty()) {
      ++stream.unpackable_pairs;  // no fast-path form; cannot happen today
      index.emplace(key, kSkippedPair);
      return std::nullopt;
    }
    const auto id = static_cast<std::uint32_t>(stream.pairs.size());
    stream.pairs.push_back(TrafficPair{src, dst, route->expected});
    // Multi-segment pairs pool their labels/waypoints; every packet's
    // own label is the first segment's either way.
    stream.seg_refs.push_back(append_segments(stream, route->segments));
    label.push_back(route->segments.labels.front());
    ingress.push_back(route->ingress);
    path.push_back(route->path);
    index.emplace(key, id);
    return id;
  }
};

/// Up to `want` distinct random router pairs that compiled cleanly.
std::vector<std::uint32_t> sample_pairs(PairTable& table,
                                        const std::vector<NodeIndex>& routers,
                                        std::size_t want,
                                        std::mt19937_64& rng) {
  std::vector<std::uint32_t> lanes;
  const std::size_t n = routers.size();
  want = std::min(want, n * (n - 1));
  // Random sampling with a bounded attempt budget: dense streams reuse
  // pairs anyway, so missing a few distinct pairs is harmless.
  for (std::size_t attempt = 0; lanes.size() < want && attempt < 20 * want + 64;
       ++attempt) {
    const NodeIndex src = routers[rng() % n];
    const NodeIndex dst = routers[rng() % n];
    if (src == dst) continue;
    const auto lane = table.intern(src, dst);
    if (lane && std::ranges::find(lanes, *lane) == lanes.end()) {
      lanes.push_back(*lane);
    }
  }
  return lanes;
}

void emit(PacketStream& stream, const PairTable& table, std::uint32_t lane) {
  stream.labels.push_back(table.label[lane]);
  stream.ingress.push_back(table.ingress[lane]);
  stream.pair.push_back(lane);
}

void generate_elephant_mice(PacketStream& stream, PairTable& table,
                            std::vector<std::uint32_t> lanes,
                            const TrafficParams& params) {
  // Map each lane's topology path back to its lane so flows produced by
  // generate_workload (which round-robins over paths) find their pair.
  std::map<netsim::Path, std::uint32_t> lane_of_path;
  std::vector<netsim::Path> paths;
  for (const std::uint32_t lane : lanes) {
    lane_of_path.emplace(table.path[lane], lane);
    paths.push_back(table.path[lane]);
  }
  // One elephant must not monopolize the stream: cap per-flow packets.
  const std::size_t per_flow_cap = std::max<std::size_t>(1, params.packets / 8);
  netsim::WorkloadParams wp = params.workload;
  while (stream.size() < params.packets) {
    const auto flows = netsim::generate_workload(paths, wp);
    for (const auto& flow : flows) {
      const auto it = lane_of_path.find(flow.spec.path);
      if (it == lane_of_path.end()) continue;
      std::size_t count = std::min(
          netsim::packet_count(flow.spec, params.mtu_bytes, per_flow_cap),
          params.packets - stream.size());
      for (std::size_t i = 0; i < count; ++i) emit(stream, table, it->second);
      if (stream.size() == params.packets) break;
    }
    ++wp.seed;  // another arrival process if the budget is not yet full
  }
}

}  // namespace

polka::SegmentRef append_segments(PacketStream& stream,
                                  const polka::SegmentedRoute& route) {
  polka::SegmentRef ref;
  if (route.single_label()) return ref;
  ref.first_label = static_cast<std::uint32_t>(stream.seg_labels.size());
  ref.first_waypoint =
      static_cast<std::uint32_t>(stream.seg_waypoints.size());
  ref.label_count = static_cast<std::uint32_t>(route.labels.size());
  stream.seg_labels.insert(stream.seg_labels.end(), route.labels.begin(),
                           route.labels.end());
  stream.seg_waypoints.insert(stream.seg_waypoints.end(),
                              route.waypoints.begin(), route.waypoints.end());
  return ref;
}

const char* to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniformRandom:
      return "uniform";
    case TrafficPattern::kPermutation:
      return "permutation";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kElephantMice:
      return "elephant_mice";
  }
  return "unknown";
}

PacketStream generate_traffic(BuiltFabric& fabric,
                              const TrafficParams& params) {
  const std::vector<NodeIndex>& routers = fabric.routers();
  if (routers.size() < 2) {
    throw std::invalid_argument("generate_traffic: need >= 2 routers");
  }
  if (params.packets == 0) {
    throw std::invalid_argument("generate_traffic: need >= 1 packet");
  }
  std::mt19937_64 rng(params.seed);
  PacketStream stream;
  PairTable table{fabric, stream, {}, {}, {}, {}};
  stream.labels.reserve(params.packets);
  stream.ingress.reserve(params.packets);
  stream.pair.reserve(params.packets);

  std::vector<std::uint32_t> lanes;
  switch (params.pattern) {
    case TrafficPattern::kUniformRandom:
      lanes = sample_pairs(table, routers, params.max_pairs, rng);
      break;
    case TrafficPattern::kPermutation: {
      // A random cyclic permutation: every router sends to its
      // successor in a shuffled order, so src != dst by construction.
      std::vector<NodeIndex> order = routers;
      std::shuffle(order.begin(), order.end(), rng);
      const std::size_t count = std::min<std::size_t>(order.size(),
                                                      params.max_pairs);
      for (std::size_t i = 0; i < count; ++i) {
        const auto lane =
            table.intern(order[i], order[(i + 1) % order.size()]);
        if (lane) lanes.push_back(*lane);
      }
      break;
    }
    case TrafficPattern::kHotspot:
    case TrafficPattern::kElephantMice:
      lanes = sample_pairs(table, routers, params.max_pairs, rng);
      break;
  }
  if (params.pattern == TrafficPattern::kHotspot) {
    // Hot lanes: every router sends to one hot destination.
    const NodeIndex hot = routers[rng() % routers.size()];
    std::vector<std::uint32_t> hot_lanes;
    for (const NodeIndex src : routers) {
      if (src == hot || hot_lanes.size() >= params.max_pairs) continue;
      const auto lane = table.intern(src, hot);
      if (lane) hot_lanes.push_back(*lane);
    }
    if (hot_lanes.empty() && lanes.empty()) {
      throw std::runtime_error("generate_traffic: no routable pairs");
    }
    std::bernoulli_distribution to_hot(params.hotspot_weight);
    std::size_t next_hot = 0;
    std::size_t next_bg = 0;
    for (std::size_t i = 0; i < params.packets; ++i) {
      const bool hot_packet =
          !hot_lanes.empty() && (lanes.empty() || to_hot(rng));
      if (hot_packet) {
        emit(stream, table, hot_lanes[next_hot++ % hot_lanes.size()]);
      } else {
        emit(stream, table, lanes[next_bg++ % lanes.size()]);
      }
    }
    return stream;
  }
  if (lanes.empty()) {
    throw std::runtime_error("generate_traffic: no routable pairs");
  }
  if (params.pattern == TrafficPattern::kElephantMice) {
    generate_elephant_mice(stream, table, std::move(lanes), params);
    return stream;
  }
  for (std::size_t i = 0; i < params.packets; ++i) {
    emit(stream, table, lanes[i % lanes.size()]);
  }
  return stream;
}

}  // namespace hp::scenario
