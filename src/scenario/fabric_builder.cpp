#include "scenario/fabric_builder.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/contracts.hpp"
#include "gf2/crt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "polka/route.hpp"
#include "scenario/shard.hpp"

namespace hp::scenario {

namespace {

using netsim::kInvalidIndex;
using netsim::NodeIndex;

}  // namespace

void BuiltFabric::note_compile(
    const char* phase, const CompileStats& before,
    std::chrono::steady_clock::time_point start) const {
  if (metrics_ == nullptr) return;
  metrics_->counter("compile.routes")
      .add(stats_.routes_compiled - before.routes_compiled);
  metrics_->counter("compile.trees")
      .add(stats_.trees_built - before.trees_built);
  metrics_->counter("compile.crt_steps")
      .add(stats_.crt_steps - before.crt_steps);
  char name[48];
  std::snprintf(name, sizeof(name), "compile.%s_ns", phase);
  metrics_->histogram(name).record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
}

BuiltFabric::BuiltFabric(netsim::Topology topo, polka::ModEngine engine)
    : topo_(std::move(topo)), fabric_(engine) {
  topo_to_fabric_.assign(topo_.node_count(), kInvalidIndex);
  // First pass: distinct router neighbours of every router, in
  // outgoing-link order, so port numbering is deterministic.  A hash
  // set backs the dedup so high-degree nodes stay O(d), not O(d^2).
  std::vector<std::vector<NodeIndex>> neighbours(topo_.node_count());
  std::unordered_set<NodeIndex> seen;
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_.node(n).kind != netsim::NodeKind::kRouter) continue;
    seen.clear();
    for (const netsim::LinkIndex l : topo_.outgoing(n)) {
      const NodeIndex peer = topo_.link(l).to;
      if (topo_.node(peer).kind != netsim::NodeKind::kRouter) continue;
      if (seen.insert(peer).second) neighbours[n].push_back(peer);
    }
  }
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_.node(n).kind != netsim::NodeKind::kRouter) continue;
    const unsigned ports = static_cast<unsigned>(neighbours[n].size()) + 1;
    topo_to_fabric_[n] = fabric_.add_node(topo_.node(n).name, ports);
    fabric_to_topo_.push_back(n);
  }
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_to_fabric_[n] == kInvalidIndex) continue;
    unsigned port = 0;
    for (const NodeIndex peer : neighbours[n]) {
      fabric_.connect(topo_to_fabric_[n], port++, topo_to_fabric_[peer]);
    }
  }
  link_down_.assign(topo_.link_count(), 0);
  node_bits_.resize(fabric_.node_count());
  node_degree_.resize(fabric_.node_count());
  for (std::size_t f = 0; f < fabric_.node_count(); ++f) {
    const gf2::Poly& id = fabric_.node(f).poly;
    node_bits_[f] = id.degree() <= 63 ? id.to_uint64() : 0;
    node_degree_[f] = id.degree();
  }
}

std::size_t BuiltFabric::fabric_index(NodeIndex topo_node) const {
  if (topo_node >= topo_to_fabric_.size() ||
      topo_to_fabric_[topo_node] == kInvalidIndex) {
    throw std::invalid_argument("BuiltFabric: node is not a router");
  }
  return topo_to_fabric_[topo_node];
}

unsigned BuiltFabric::egress_port(std::size_t fabric_node) const {
  return fabric_.node(fabric_node).port_count - 1;
}

const netsim::PathTree& BuiltFabric::tree_for(NodeIndex src) {
  auto it = trees_.find(src);
  if (it == trees_.end()) {
    it = trees_
             .emplace(src, netsim::shortest_path_tree(
                               topo_, src, netsim::PathMetric::kHopCount,
                               banned_links_))
             .first;
    ++stats_.trees_built;
  }
  return it->second;
}

CompiledRoute& BuiltFabric::store_route(RouteKey key, CompiledRoute&& route,
                                        bool count_compile) {
  const auto [it, inserted] = routes_.try_emplace(key);
  if (!inserted) unindex_route(key, it->second.path);
  it->second = std::move(route);
  for (const netsim::LinkIndex l : it->second.path) {
    routes_by_link_[l].push_back(key);
  }
  if (count_compile) ++stats_.routes_compiled;
  return it->second;
}

void BuiltFabric::unindex_route(RouteKey key, const netsim::Path& path) {
  for (const netsim::LinkIndex l : path) {
    if (const auto it = routes_by_link_.find(l); it != routes_by_link_.end()) {
      auto& keys = it->second;
      if (const auto pos = std::ranges::find(keys, key); pos != keys.end()) {
        *pos = keys.back();
        keys.pop_back();
      }
      if (keys.empty()) routes_by_link_.erase(it);
    }
  }
}

const CompiledRoute* BuiltFabric::route(NodeIndex src, NodeIndex dst) {
  if (src == dst) {
    throw std::invalid_argument("BuiltFabric::route: src == dst");
  }
  const RouteKey key = netsim::node_pair_key(src, dst);
  if (const auto it = routes_.find(key); it != routes_.end()) {
    return &it->second;
  }
  (void)fabric_index(src);  // validates both endpoints are routers
  (void)fabric_index(dst);
  const CompileStats before = stats_;
  const auto t0 = std::chrono::steady_clock::now();
  const auto path = netsim::tree_path(tree_for(src), topo_, dst);
  if (!path) return nullptr;

  std::size_t crt_steps = 0;
  CompiledRoute route = compile_path_route(*path, crt_steps);
  stats_.crt_steps += crt_steps;
  CompiledRoute& stored = store_route(key, std::move(route));
  note_compile("route", before, t0);
  return &stored;
}

CompiledRoute BuiltFabric::compile_path_route(const netsim::Path& path,
                                              std::size_t& crt_steps) const {
  // Per-path baseline: derives the whole congruence system for this
  // one destination (one CRT fold per hop plus the egress fold),
  // cutting segments at the same 64-bit boundary as the tree compiler.
  CompiledRoute route;
  route.path = path;
  std::vector<std::size_t> fabric_path;
  fabric_path.reserve(path.size() + 1);
  for (const NodeIndex n : netsim::path_nodes(topo_, path)) {
    fabric_path.push_back(topo_to_fabric_[n]);
  }
  const std::size_t egress_node = fabric_path.back();
  route.segments =
      fabric_.segmented_route_for_path(fabric_path, egress_port(egress_node));
  if (route.segments.single_label()) {
    // The lone label *is* the full-path CRT solution; no recompute.
    route.label = route.segments.labels.front();
    route.id = polka::unpack_label(*route.label);
  }
  route.ingress = static_cast<std::uint32_t>(fabric_path.front());
  route.expected.egress_node = static_cast<std::uint32_t>(egress_node);
  route.expected.egress_port = egress_port(egress_node);
  route.expected.hops = static_cast<std::uint32_t>(fabric_path.size());
  crt_steps += fabric_path.size();
  return route;
}

void BuiltFabric::compile_tree_routes(const netsim::PathTree& tree,
                                      const std::vector<char>* descend,
                                      const std::vector<char>* emit,
                                      std::vector<KeyedRoute>& out,
                                      std::size_t& crt_steps) const {
  const auto children = netsim::tree_children(tree, topo_);
  const NodeIndex src = tree.src;
  const std::size_t fsrc = topo_to_fabric_[src];

  struct Frame {
    NodeIndex node;
    std::size_t next_child;
    gf2::CrtAccumulator acc;  ///< current segment's congruences so far
    int seg_degree;           ///< accumulated modulus degree of acc (0 = empty)
    polka::SegmentedRoute done;  ///< segments closed above this frame
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{src, 0, {}, 0, {}});
  netsim::Path links;  // tree links from src to the current node

  while (!stack.empty()) {
    // Pick this frame's next compilable child (routers only -- hosts
    // hang off the tree as leaves -- and, when pruning, marked nodes).
    Frame& frame = stack.back();
    const auto& kids = children[frame.node];
    NodeIndex child = kInvalidIndex;
    while (frame.next_child < kids.size()) {
      const NodeIndex c = kids[frame.next_child++];
      if (topo_to_fabric_[c] == kInvalidIndex) continue;
      if (descend != nullptr && !(*descend)[c]) continue;
      child = c;
      break;
    }
    if (child == kInvalidIndex) {
      if (frame.node != src) links.pop_back();
      stack.pop_back();
      continue;
    }

    // Descend: one CRT step covers every destination under `child`.
    const std::size_t fv = topo_to_fabric_[frame.node];
    const std::size_t fc = topo_to_fabric_[child];
    const auto port = fabric_.port_between(fv, fc);
    if (!port) {
      throw std::logic_error(
          "BuiltFabric: tree edge between routers is not wired");
    }
    gf2::CrtAccumulator acc = frame.acc;
    int seg_degree = frame.seg_degree;
    polka::SegmentedRoute done = frame.done;
    if (seg_degree > 0 && seg_degree + node_degree_[fv] > 64) {
      // This node would push the segment's modulus past 64 bits: close
      // the segment (its label packs by construction) and re-label
      // here.  The fresh accumulator keeps every deeper route on the
      // fast path no matter how far the tree goes.
      done.labels.push_back(
          polka::pack_label_checked(polka::RouteId{acc.solution()}));
      done.waypoints.push_back(static_cast<std::uint32_t>(fv));
      acc = {};
      seg_degree = 0;
    }
    if (node_bits_[fv] != 0) {
      acc.add(*port, node_bits_[fv]);
    } else {
      acc.add(gf2::Congruence{polka::port_polynomial(*port),
                              fabric_.node(fv).poly});
    }
    seg_degree += node_degree_[fv];
    // The segment-cut rule above must keep every open segment's CRT
    // modulus packable: one more violation here and pack_label_checked
    // would throw deep inside a worker thread instead.
    HP_CHECK(seg_degree <= 64,
             "compile_tree_routes: open segment modulus exceeds 64 bits");
    ++crt_steps;
    links.push_back(tree.via[child]);

    if (emit == nullptr || (*emit)[child]) {
      CompiledRoute route;
      route.segments = done;
      if (seg_degree + node_degree_[fc] > 64) {
        // The egress congruence does not fit the open segment either:
        // the destination re-labels to a final bare-port label.
        route.segments.labels.push_back(
            polka::pack_label_checked(polka::RouteId{acc.solution()}));
        route.segments.waypoints.push_back(static_cast<std::uint32_t>(fc));
        route.segments.labels.push_back(
            polka::RouteLabel{egress_port(fc)});
      } else {
        // The destination adds only its egress congruence.
        ++crt_steps;
        route.segments.labels.push_back(polka::pack_label_checked(
            polka::RouteId{
                node_bits_[fc] != 0
                    ? acc.solution_with(egress_port(fc), node_bits_[fc])
                    : acc.solution_with(gf2::Congruence{
                          polka::port_polynomial(egress_port(fc)),
                          fabric_.node(fc).poly})}));
      }
      if (route.segments.single_label()) {
        route.label = route.segments.labels.front();
        route.id = polka::unpack_label(*route.label);
      }
      route.ingress = static_cast<std::uint32_t>(fsrc);
      route.expected.egress_node = static_cast<std::uint32_t>(fc);
      route.expected.egress_port = egress_port(fc);
      route.expected.hops = static_cast<std::uint32_t>(links.size() + 1);
      route.path = links;
      out.emplace_back(netsim::node_pair_key(src, child), std::move(route));
    }
    stack.push_back(Frame{child, 0, std::move(acc), seg_degree,
                          std::move(done)});
  }
}

std::size_t BuiltFabric::compile_all_pairs(unsigned threads) {
  obs::TraceScope scope(trace_, "compile.all_pairs", "compile");
  const CompileStats before = stats_;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t sources = fabric_to_topo_.size();
  struct SourceCompile {
    std::optional<netsim::PathTree> fresh;  ///< built when not cached
    std::vector<KeyedRoute> routes;
    std::size_t crt_steps = 0;
  };
  std::vector<SourceCompile> per_source(sources);

  // Workers only read shared state (trees_ is not mutated while they
  // run); new trees and routes are collected per source and merged
  // single-threaded after the join.
  auto compile_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeIndex src = fabric_to_topo_[i];
      SourceCompile& out = per_source[i];
      out.routes.reserve(fabric_to_topo_.size());
      const netsim::PathTree* tree;
      if (const auto it = trees_.find(src); it != trees_.end()) {
        tree = &it->second;
      } else {
        out.fresh = netsim::shortest_path_tree(
            topo_, src, netsim::PathMetric::kHopCount, banned_links_);
        tree = &*out.fresh;
      }
      compile_tree_routes(*tree, nullptr, nullptr, out.routes, out.crt_steps);
    }
  };

  std::size_t workers = std::max(1u, threads);
  workers = std::min<std::size_t>(workers, std::max<std::size_t>(sources, 1));
  if (workers <= 1) {
    compile_range(0, sources);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const auto [begin, end] = shard_bounds(sources, w, workers);
      if (begin == end) continue;
      pool.emplace_back([&compile_range, begin = begin, end = end] {
        compile_range(begin, end);
      });
    }
    for (auto& t : pool) t.join();
  }

  std::size_t written = 0;
  routes_.reserve(sources * (sources - (sources > 0)));
  for (std::size_t i = 0; i < sources; ++i) {
    SourceCompile& out = per_source[i];
    if (out.fresh) {
      trees_.insert_or_assign(fabric_to_topo_[i], std::move(*out.fresh));
      ++stats_.trees_built;
    }
    stats_.crt_steps += out.crt_steps;
    for (auto& [key, route] : out.routes) {
      store_route(key, std::move(route));
      ++written;
    }
  }
  note_compile("all_pairs", before, t0);
  return written;
}

std::size_t BuiltFabric::compile_subtree(NodeIndex src,
                                         std::span<const NodeIndex> dsts) {
  obs::TraceScope scope(trace_, "compile.subtree", "compile");
  const CompileStats before = stats_;
  const auto t0 = std::chrono::steady_clock::now();
  (void)fabric_index(src);  // validates src is a router
  const netsim::PathTree& tree = tree_for(src);

  // Mark the union of tree paths src -> dst; the DFS below descends
  // only into marked branches, so CRT work scales with that union, not
  // with the whole tree.
  std::vector<char> descend(topo_.node_count(), 0);
  std::vector<char> emit(topo_.node_count(), 0);
  bool any = false;
  for (const NodeIndex dst : dsts) {
    if (dst == src || dst >= topo_.node_count()) continue;
    if (topo_to_fabric_[dst] == kInvalidIndex) continue;
    if (tree.via[dst] == kInvalidIndex) continue;  // unreachable now
    emit[dst] = 1;
    any = true;
    for (NodeIndex cur = dst; cur != src && !descend[cur];
         cur = topo_.link(tree.via[cur]).from) {
      descend[cur] = 1;
    }
  }
  if (!any) return 0;

  std::vector<KeyedRoute> out;
  std::size_t crt_steps = 0;
  compile_tree_routes(tree, &descend, &emit, out, crt_steps);
  stats_.crt_steps += crt_steps;
  for (auto& [key, route] : out) store_route(key, std::move(route));
  note_compile("subtree", before, t0);
  return out.size();
}

std::size_t BuiltFabric::enable_protection(unsigned k) {
  obs::TraceScope scope(trace_, "compile.protect", "compile");
  const CompileStats before = stats_;
  const auto t0 = std::chrono::steady_clock::now();
  protection_k_ = k;
  if (k == 0) {
    backups_.clear();
    saved_primary_.clear();
    return 0;
  }
  std::size_t installed = 0;
  // Deterministic planning order (routes_ iteration order is not).
  std::vector<RouteKey> keys;
  keys.reserve(routes_.size());
  for (const auto& [key, route] : routes_) keys.push_back(key);
  std::ranges::sort(keys);
  for (const RouteKey key : keys) {
    if (backups_.protects(key)) continue;
    installed += protect_pair(key, routes_.at(key));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("compile.backup_routes")
        .add(stats_.backup_routes - before.backup_routes);
  }
  note_compile("protect", before, t0);
  return installed;
}

std::size_t BuiltFabric::protect_pair(RouteKey key,
                                      const CompiledRoute& primary) {
  const auto [src, dst] = netsim::node_pair_from_key(key);
  // Disjoint alternates: ban the primary's links (both directions) on
  // top of everything already failed, then peel off k disjoint paths.
  std::vector<netsim::LinkIndex> banned = banned_links_;
  for (const netsim::LinkIndex l : primary.path) {
    banned.push_back(l);
    const netsim::Link& link = topo_.link(l);
    if (const auto rev = topo_.link_between(link.to, link.from)) {
      banned.push_back(*rev);
    }
  }
  const auto paths = netsim::k_disjoint_paths(
      topo_, src, dst, protection_k_, netsim::PathMetric::kHopCount, banned);
  std::vector<BackupRoute> backups;
  backups.reserve(paths.size());
  for (const netsim::Path& path : paths) {
    std::size_t crt_steps = 0;
    CompiledRoute compiled = compile_path_route(path, crt_steps);
    stats_.crt_steps += crt_steps;
    BackupRoute backup;
    backup.segments = std::move(compiled.segments);
    backup.expected = compiled.expected;
    backup.path = std::move(compiled.path);
    backup.ingress = compiled.ingress;
    backup.stretch = primary.path.empty()
                         ? 1.0
                         : static_cast<double>(path.size()) /
                               static_cast<double>(primary.path.size());
    backups.push_back(std::move(backup));
  }
  const std::size_t count = backups.size();
  stats_.backup_routes += count;
  backups_.install(key, std::move(backups));
  return count;
}

std::vector<std::pair<NodeIndex, NodeIndex>>
BuiltFabric::evict_crossing_routes(netsim::LinkIndex fwd,
                                   netsim::LinkIndex rev) {
  // The inverted index names exactly the crossing routes: O(affected),
  // not O(routes * hops).  Sorted for a deterministic return order.
  std::vector<RouteKey> keys;
  for (const netsim::LinkIndex dead : {fwd, rev}) {
    if (const auto it = routes_by_link_.find(dead);
        it != routes_by_link_.end()) {
      keys.insert(keys.end(), it->second.begin(), it->second.end());
    }
  }
  std::ranges::sort(keys);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Batch-evict: filter each touched link's key list once against the
  // evicted set, instead of a per-route linear scan (which would make
  // a mass eviction quadratic in the keys-per-link).
  const std::unordered_set<RouteKey> evicted(keys.begin(), keys.end());
  std::vector<netsim::LinkIndex> touched;
  std::vector<std::pair<NodeIndex, NodeIndex>> affected;
  affected.reserve(keys.size());
  for (const RouteKey key : keys) {
    const auto it = routes_.find(key);
    // Protected fabrics remember the displaced route so restore_link
    // can revert hitlessly; the original primary wins over later
    // backup-on-backup displacements (try_emplace keeps the first).
    if (protection_k_ > 0) saved_primary_.try_emplace(key, it->second);
    touched.insert(touched.end(), it->second.path.begin(),
                   it->second.path.end());
    routes_.erase(it);
    affected.push_back(netsim::node_pair_from_key(key));
  }
  std::ranges::sort(touched);
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const netsim::LinkIndex l : touched) {
    const auto it = routes_by_link_.find(l);
    if (it == routes_by_link_.end()) continue;
    std::erase_if(it->second,
                  [&](RouteKey k) { return evicted.contains(k); });
    if (it->second.empty()) routes_by_link_.erase(it);
  }
  return affected;
}

FailoverReport BuiltFabric::apply_failure(NodeIndex a, NodeIndex b) {
  obs::TraceScope scope(trace_, "compile.fail_link", "compile");
  const auto t0 = std::chrono::steady_clock::now();
  const auto fwd = topo_.link_between(a, b);
  const auto rev = topo_.link_between(b, a);
  if (!fwd || !rev) {
    throw std::invalid_argument("BuiltFabric::apply_failure: no such link");
  }
  FailoverReport report;
  if (link_down_[*fwd] != 0) {
    // Graceful degradation: failing a dead link must not throw, loop
    // or double-ban -- storms and flap schedules hit this constantly.
    report.duplicate = true;
    return report;
  }
  const CompileStats before = stats_;
  banned_links_.push_back(*fwd);
  banned_links_.push_back(*rev);
  link_down_[*fwd] = 1;
  link_down_[*rev] = 1;

  report.affected = evict_crossing_routes(*fwd, *rev);

  // Drop only the trees that routed through the dead link.  Every other
  // cached tree remains a valid shortest-path tree: removing links it
  // never used cannot create a shorter alternative.
  for (auto it = trees_.begin(); it != trees_.end();) {
    const bool uses = std::ranges::any_of(
        it->second.via,
        [&](netsim::LinkIndex l) { return l == *fwd || l == *rev; });
    it = uses ? trees_.erase(it) : ++it;
  }

  if (protection_k_ > 0) {
    // Hitless path: each affected pair swaps to its best live backup.
    // The whole window is table lookups and label copies -- no
    // Dijkstra, no CRT, zero routes_compiled (the acceptance bar).
    for (const auto& pr : report.affected) {
      const RouteKey key = netsim::node_pair_key(pr.first, pr.second);
      const BackupRoute* backup = backups_.activate(key, link_down_);
      if (backup == nullptr) {
        report.pending.push_back(pr);
        pending_.push_back(pr);
        continue;
      }
      // activate() only returns fully-live candidates; a backup that
      // still crosses the link we just banned would re-sever the pair.
      HP_DCHECK(std::ranges::none_of(backup->path,
                                     [&](netsim::LinkIndex l) {
                                       return l < link_down_.size() &&
                                              link_down_[l] != 0;
                                     }),
                "apply_failure: activated backup crosses a dead link");
      CompiledRoute route;
      route.segments = backup->segments;
      if (route.segments.single_label()) {
        route.label = route.segments.labels.front();
        route.id = polka::unpack_label(*route.label);
      }
      route.ingress = backup->ingress;
      route.expected = backup->expected;
      route.path = backup->path;
      store_route(key, std::move(route), /*count_compile=*/false);
      ++stats_.backup_swaps;
      report.swapped.push_back(pr);
      report.swap_stretch.push_back(backup->stretch);
    }
    if (metrics_ != nullptr && !report.swapped.empty()) {
      metrics_->counter("compile.backup_swaps").add(report.swapped.size());
    }
  } else {
    // Eager path (the pre-protection behaviour): subtree-scoped repair
    // of each source's severed destinations inside the event.
    std::unordered_map<NodeIndex, std::vector<NodeIndex>> by_source;
    for (const auto& [src, dst] : report.affected) {
      by_source[src].push_back(dst);
    }
    for (const auto& [src, dsts] : by_source) {
      (void)compile_subtree(src, dsts);
    }
    for (const auto& pr : report.affected) {
      if (routes_.contains(netsim::node_pair_key(pr.first, pr.second))) {
        report.repaired.push_back(pr);
      } else {
        report.unroutable.push_back(pr);
      }
    }
  }
  report.window_recompiles = stats_.routes_compiled - before.routes_compiled;
  // The hitless acceptance bar, now a contract: with protection
  // installed, the failure window is swaps and table lookups only --
  // any recompile inside it means the backup plane silently stopped
  // absorbing failures (PR 8's headline property).
  HP_CHECK(protection_k_ == 0 || report.window_recompiles == 0,
           "apply_failure: protected failover recompiled inside the window");
  // Inner compile_subtree calls recorded their own stats deltas; this
  // notes only the phase's wall clock.
  note_compile("fail_link", stats_, t0);
  return report;
}

FailoverReport BuiltFabric::repair_pending() {
  FailoverReport report;
  if (pending_.empty()) return report;
  obs::TraceScope scope(trace_, "compile.repair_pending", "compile");
  const auto t0 = std::chrono::steady_clock::now();
  const CompileStats before = stats_;
  std::vector<std::pair<NodeIndex, NodeIndex>> work;
  pending_.swap(work);
  std::ranges::sort(work);
  work.erase(std::unique(work.begin(), work.end()), work.end());

  std::unordered_map<NodeIndex, std::vector<NodeIndex>> by_source;
  for (const auto& [src, dst] : work) by_source[src].push_back(dst);
  for (const auto& [src, dsts] : by_source) {
    (void)compile_subtree(src, dsts);
  }
  for (const auto& pr : work) {
    const RouteKey key = netsim::node_pair_key(pr.first, pr.second);
    const auto it = routes_.find(key);
    if (it == routes_.end()) {
      report.unroutable.push_back(pr);
      continue;
    }
    report.repaired.push_back(pr);
    // The pair's old protection set is dead; replan it against the
    // repaired primary and the degraded topology.
    if (protection_k_ > 0) (void)protect_pair(key, it->second);
  }
  report.window_recompiles = stats_.routes_compiled - before.routes_compiled;
  note_compile("repair_pending", stats_, t0);
  return report;
}

FailoverReport BuiltFabric::restore_link(NodeIndex a, NodeIndex b) {
  obs::TraceScope scope(trace_, "compile.restore_link", "compile");
  const auto t0 = std::chrono::steady_clock::now();
  const auto fwd = topo_.link_between(a, b);
  const auto rev = topo_.link_between(b, a);
  if (!fwd || !rev) {
    throw std::invalid_argument("BuiltFabric::restore_link: no such link");
  }
  FailoverReport report;
  if (link_down_[*fwd] == 0) {
    report.duplicate = true;
    return report;
  }
  link_down_[*fwd] = 0;
  link_down_[*rev] = 0;
  std::erase(banned_links_, *fwd);
  std::erase(banned_links_, *rev);
  // Any cached tree may now be improvable by the revived link; flush
  // them all (rebuilt lazily).  Cached routes stay valid -- their
  // paths still exist -- they are just possibly no longer shortest.
  trees_.clear();

  if (protection_k_ > 0) {
    // Revert every displaced pair whose saved primary is fully alive
    // again -- including pairs a failure had severed outright, whose
    // routes revive here without any recompile.
    std::vector<RouteKey> revived;
    for (const auto& [key, primary] : saved_primary_) {
      const bool alive = std::ranges::none_of(
          primary.path,
          [&](netsim::LinkIndex l) { return link_down_[l] != 0; });
      if (alive) revived.push_back(key);
    }
    std::ranges::sort(revived);
    for (const RouteKey key : revived) {
      auto it = saved_primary_.find(key);
      const auto pr = netsim::node_pair_from_key(key);
      store_route(key, std::move(it->second), /*count_compile=*/false);
      saved_primary_.erase(it);
      backups_.release(key);
      ++stats_.backup_swaps;
      report.affected.push_back(pr);
      report.swapped.push_back(pr);
      report.swap_stretch.push_back(1.0);  // back on the primary
      // A revived pair is no longer waiting on the lazy recompiler.
      std::erase(pending_, pr);
    }
    if (metrics_ != nullptr && !report.swapped.empty()) {
      metrics_->counter("compile.backup_swaps").add(report.swapped.size());
    }
  }
  note_compile("restore_link", stats_, t0);
  return report;
}

std::vector<std::pair<NodeIndex, NodeIndex>> BuiltFabric::fail_link(
    NodeIndex a, NodeIndex b) {
  FailoverReport report = apply_failure(a, b);
  if (!report.pending.empty()) (void)repair_pending();
  return std::move(report.affected);
}

}  // namespace hp::scenario
