#include "scenario/fabric_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::scenario {

namespace {

using netsim::kInvalidIndex;
using netsim::NodeIndex;

}  // namespace

BuiltFabric::BuiltFabric(netsim::Topology topo, polka::ModEngine engine)
    : topo_(std::move(topo)), fabric_(engine) {
  topo_to_fabric_.assign(topo_.node_count(), kInvalidIndex);
  // First pass: distinct router neighbours of every router, in
  // outgoing-link order, so port numbering is deterministic.
  std::vector<std::vector<NodeIndex>> neighbours(topo_.node_count());
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_.node(n).kind != netsim::NodeKind::kRouter) continue;
    for (const netsim::LinkIndex l : topo_.outgoing(n)) {
      const NodeIndex peer = topo_.link(l).to;
      if (topo_.node(peer).kind != netsim::NodeKind::kRouter) continue;
      if (std::ranges::find(neighbours[n], peer) == neighbours[n].end()) {
        neighbours[n].push_back(peer);
      }
    }
  }
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_.node(n).kind != netsim::NodeKind::kRouter) continue;
    const unsigned ports = static_cast<unsigned>(neighbours[n].size()) + 1;
    topo_to_fabric_[n] = fabric_.add_node(topo_.node(n).name, ports);
    fabric_to_topo_.push_back(n);
  }
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    if (topo_to_fabric_[n] == kInvalidIndex) continue;
    unsigned port = 0;
    for (const NodeIndex peer : neighbours[n]) {
      fabric_.connect(topo_to_fabric_[n], port++, topo_to_fabric_[peer]);
    }
  }
}

std::size_t BuiltFabric::fabric_index(NodeIndex topo_node) const {
  if (topo_node >= topo_to_fabric_.size() ||
      topo_to_fabric_[topo_node] == kInvalidIndex) {
    throw std::invalid_argument("BuiltFabric: node is not a router");
  }
  return topo_to_fabric_[topo_node];
}

unsigned BuiltFabric::egress_port(std::size_t fabric_node) const {
  return fabric_.node(fabric_node).port_count - 1;
}

const CompiledRoute* BuiltFabric::route(NodeIndex src, NodeIndex dst) {
  if (src == dst) {
    throw std::invalid_argument("BuiltFabric::route: src == dst");
  }
  const std::uint64_t key = netsim::node_pair_key(src, dst);
  if (const auto it = routes_.find(key); it != routes_.end()) {
    return &it->second;
  }
  (void)fabric_index(src);  // validates both endpoints are routers
  (void)fabric_index(dst);
  auto tree_it = trees_.find(src);
  if (tree_it == trees_.end()) {
    tree_it = trees_
                  .emplace(src, netsim::shortest_path_tree(
                                    topo_, src, netsim::PathMetric::kHopCount,
                                    banned_links_))
                  .first;
  }
  const auto path = netsim::tree_path(tree_it->second, topo_, dst);
  if (!path) return nullptr;

  CompiledRoute route;
  route.path = *path;
  std::vector<std::size_t> fabric_path;
  fabric_path.reserve(path->size() + 1);
  for (const NodeIndex n : netsim::path_nodes(topo_, *path)) {
    fabric_path.push_back(topo_to_fabric_[n]);
  }
  const std::size_t egress_node = fabric_path.back();
  route.id = fabric_.route_for_path(fabric_path, egress_port(egress_node));
  route.label = polka::pack_label(route.id);
  route.ingress = static_cast<std::uint32_t>(fabric_path.front());
  route.expected.egress_node = static_cast<std::uint32_t>(egress_node);
  route.expected.egress_port = egress_port(egress_node);
  route.expected.hops = static_cast<std::uint32_t>(fabric_path.size());
  return &routes_.emplace(key, std::move(route)).first->second;
}

std::vector<std::pair<NodeIndex, NodeIndex>> BuiltFabric::fail_link(
    NodeIndex a, NodeIndex b) {
  const auto fwd = topo_.link_between(a, b);
  const auto rev = topo_.link_between(b, a);
  if (!fwd || !rev) {
    throw std::invalid_argument("BuiltFabric::fail_link: no such link");
  }
  banned_links_.push_back(*fwd);
  banned_links_.push_back(*rev);
  trees_.clear();  // every cached tree may now route through a dead link

  std::vector<std::pair<NodeIndex, NodeIndex>> affected;
  for (auto it = routes_.begin(); it != routes_.end();) {
    const bool crosses =
        std::ranges::find(it->second.path, *fwd) != it->second.path.end() ||
        std::ranges::find(it->second.path, *rev) != it->second.path.end();
    if (crosses) {
      affected.push_back(netsim::node_pair_from_key(it->first));
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  return affected;
}

}  // namespace hp::scenario
