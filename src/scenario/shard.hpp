#pragma once
// Contiguous shard arithmetic shared by every parallel stage.
//
// The runner cuts a packet stream into one slice per worker thread; the
// route compiler cuts the per-source work list the same way.  Keeping
// the slicing rule in one place means every subsystem agrees on shard
// boundaries (each item lands in exactly one shard, sizes differ by at
// most one) and the rule is tested once.

#include <cstddef>
#include <utility>

namespace hp::scenario {

/// Half-open [begin, end) bounds of shard `w` of `workers` over `total`
/// items.  `workers` must be >= 1 and `w` < `workers`.  The products
/// run through a 128-bit intermediate: total * (w + 1) overflows size_t
/// for streams within a factor of `workers` of SIZE_MAX.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> shard_bounds(
    std::size_t total, std::size_t w, std::size_t workers) noexcept {
  using Wide = unsigned __int128;
  return {static_cast<std::size_t>(Wide{total} * w / workers),
          static_cast<std::size_t>(Wide{total} * (w + 1) / workers)};
}

}  // namespace hp::scenario
