#pragma once
// Named scenario registry: topology family x traffic pattern specs.
//
// A ScenarioSpec is a declarative recipe -- which generator, which
// size, which traffic matrix -- that benches, examples and fuzz tests
// consume by name.  The built-in registry crosses every topology
// family with every traffic pattern at sizes small enough for CI yet
// large enough to exercise multi-hop routing.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/fabric_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace hp::scenario {

enum class TopologyFamily {
  kFatTree,        ///< a = k, with hosts when c != 0
  kLeafSpine,      ///< a = spines, b = leaves, c = hosts per leaf
  kRing,           ///< a = n
  kTorus,          ///< a = rows, b = cols
  kRandomRegular,  ///< a = n, b = degree
};

[[nodiscard]] const char* to_string(TopologyFamily family);

struct ScenarioSpec {
  std::string name;  ///< "<topology>/<pattern>", e.g. "ring12/hotspot"
  TopologyFamily family = TopologyFamily::kRing;
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  std::uint64_t topo_seed = 7;  ///< kRandomRegular only
  TrafficParams traffic;
};

/// Instantiate the spec's topology.
[[nodiscard]] netsim::Topology build_topology(const ScenarioSpec& spec);

/// Every built-in scenario: 5 topology families x 4 traffic patterns.
[[nodiscard]] const std::vector<ScenarioSpec>& builtin_scenarios();

/// Lookup by exact name; nullptr when absent.
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);

/// Build the topology and fabric, generate the traffic and replay it.
/// The one-call path for benches and CLIs.
[[nodiscard]] ScenarioReport run_scenario(const ScenarioSpec& spec,
                                          const RunnerOptions& options = {});

}  // namespace hp::scenario
