#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/shard.hpp"

namespace hp::scenario {

namespace {

/// Handles resolved once per replay (registration takes a mutex; the
/// workers then only touch their lock-free shards).  Null when metrics
/// are off.
struct ReplayMetrics {
  obs::Counter* packets = nullptr;       ///< added per batch flush
  obs::Counter* folds = nullptr;         ///< added per batch flush
  obs::Counter* wrong_egress = nullptr;  ///< the rest: added per slice
  obs::Counter* ttl_expired = nullptr;
  obs::Counter* dropped_packets = nullptr;
  obs::Counter* segmented_packets = nullptr;
  obs::Counter* segment_swaps = nullptr;
  obs::Counter* slices = nullptr;
  obs::Histogram* slice_ns = nullptr;  ///< wall clock of one worker slice

  static ReplayMetrics resolve(obs::MetricRegistry& reg) {
    ReplayMetrics m;
    m.packets = &reg.counter("replay.packets");
    m.folds = &reg.counter("replay.folds");
    m.wrong_egress = &reg.counter("replay.wrong_egress");
    m.ttl_expired = &reg.counter("replay.ttl_expired");
    m.dropped_packets = &reg.counter("replay.dropped_packets");
    m.segmented_packets = &reg.counter("replay.segmented_packets");
    m.segment_swaps = &reg.counter("replay.segment_swaps");
    m.slices = &reg.counter("replay.slices");
    m.slice_ns = &reg.histogram("replay.slice_ns");
    return m;
  }
};

/// One worker's walk over its slice: fill private batch buffers
/// (skipping dead pairs), stream them through the compiled fabric and
/// check each result against its pair's expectation.  Multi-segment
/// lanes fill their own batch and stream through the pooled
/// forward_batch_segmented -- the same interleaved fold walk as the
/// single-label batch, just carrying each lane's pooled labels.
void replay_slice(const polka::CompiledFabric& fabric,
                  std::span<const polka::RouteLabel> labels,
                  std::span<const std::uint32_t> ingress,
                  std::span<const std::uint32_t> index,
                  std::span<const polka::PacketResult> expected,
                  std::span<const std::uint8_t> alive,
                  const SegmentTable& segments, std::size_t batch_size,
                  std::size_t max_hops, ScenarioReport& out,
                  const ReplayMetrics* rm) {
  const auto slice_start = std::chrono::steady_clock::now();
  std::vector<polka::RouteLabel> batch_labels(batch_size);
  std::vector<std::uint32_t> batch_firsts(batch_size);
  std::vector<std::uint32_t> batch_index(batch_size);
  std::vector<polka::PacketResult> batch_results(batch_size);
  // Segmented-lane buffers exist only when the stream has segments.
  const std::size_t seg_capacity = segments.refs.empty() ? 0 : batch_size;
  std::vector<polka::SegmentRef> seg_refs(seg_capacity);
  std::vector<std::uint32_t> seg_firsts(seg_capacity);
  std::vector<std::uint32_t> seg_index(seg_capacity);
  std::vector<polka::PacketResult> seg_results(seg_capacity);
  std::size_t fill = 0;
  std::size_t seg_fill = 0;
  // HP_HOT_BEGIN(replay_slice)
  // Per-packet lane fill + batch flushes.  The buffers above are the
  // slice's only allocations; from here on the loop must stay
  // growth-free so replay cost is O(packets) folds, not allocator
  // traffic (lint rule hot-path-purity; pinned by alloc_guard_test's
  // packet-count-independent allocation assertion).
  auto score = [&](const polka::PacketResult& result, std::uint32_t lane) {
    if (result.ttl_expired) {
      ++out.ttl_expired;
    } else if (result != expected[lane]) {
      ++out.wrong_egress;
    }
  };
  auto flush = [&] {
    if (fill == 0) return;
    const std::size_t mods = fabric.forward_batch(
        std::span<const polka::RouteLabel>(batch_labels.data(), fill),
        std::span<const std::uint32_t>(batch_firsts.data(), fill),
        std::span<polka::PacketResult>(batch_results.data(), fill), max_hops);
    out.mod_operations += mods;
    for (std::size_t i = 0; i < fill; ++i) {
      score(batch_results[i], batch_index[i]);
    }
    out.packets += fill;
    // Flush-granular, never per-packet: one sharded add per batch.
    if (rm != nullptr) {
      rm->packets->add(fill);
      rm->folds->add(mods);
    }
    fill = 0;
  };
  auto flush_segmented = [&] {
    if (seg_fill == 0) return;
    const std::size_t mods = fabric.forward_batch_segmented(
        segments.labels, segments.waypoints,
        std::span<const polka::SegmentRef>(seg_refs.data(), seg_fill),
        std::span<const std::uint32_t>(seg_firsts.data(), seg_fill),
        std::span<polka::PacketResult>(seg_results.data(), seg_fill),
        max_hops);
    out.mod_operations += mods;
    for (std::size_t i = 0; i < seg_fill; ++i) {
      score(seg_results[i], seg_index[i]);
    }
    out.packets += seg_fill;
    if (rm != nullptr) {
      rm->packets->add(seg_fill);
      rm->folds->add(mods);
    }
    seg_fill = 0;
  };
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::uint32_t lane = index[i];
    if (!alive.empty() && !alive[lane]) {
      ++out.dropped_packets;
      continue;
    }
    if (!segments.refs.empty() && segments.refs[lane].label_count > 1) {
      const polka::SegmentRef& ref = segments.refs[lane];
      seg_refs[seg_fill] = ref;
      seg_firsts[seg_fill] = ingress[i];
      seg_index[seg_fill] = lane;
      ++out.segmented_packets;
      out.segment_swaps += ref.label_count - 1;
      if (++seg_fill == batch_size) flush_segmented();
      continue;
    }
    batch_labels[fill] = labels[i];
    batch_firsts[fill] = ingress[i];
    batch_index[fill] = lane;
    ++fill;
    if (fill == batch_size) flush();
  }
  flush();
  flush_segmented();
  // HP_HOT_END(replay_slice)
  if (rm != nullptr) {
    rm->wrong_egress->add(out.wrong_egress);
    rm->ttl_expired->add(out.ttl_expired);
    rm->dropped_packets->add(out.dropped_packets);
    rm->segmented_packets->add(out.segmented_packets);
    rm->segment_swaps->add(out.segment_swaps);
    rm->slices->add(1);
    rm->slice_ns->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - slice_start)
            .count()));
  }
}

}  // namespace

ScenarioReport replay_shards(const polka::CompiledFabric& fabric,
                             std::span<const polka::RouteLabel> labels,
                             std::span<const std::uint32_t> ingress,
                             std::span<const std::uint32_t> index,
                             std::span<const polka::PacketResult> expected,
                             std::span<const std::uint8_t> alive,
                             SegmentTable segments, unsigned threads,
                             std::size_t batch_size, std::size_t max_hops,
                             obs::MetricRegistry* metrics) {
  if (labels.size() != ingress.size() || labels.size() != index.size()) {
    throw std::invalid_argument("replay_shards: span length mismatch");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("replay_shards: batch_size must be > 0");
  }
  if (!segments.refs.empty() && segments.refs.size() < expected.size()) {
    throw std::invalid_argument(
        "replay_shards: segment refs do not cover every lane");
  }
  const std::size_t total = labels.size();
  std::size_t workers = std::max<unsigned>(threads, 1);
  workers = std::min(workers, std::max<std::size_t>(total, 1));

  // Resolve handles before spawning anyone; workers then record on
  // their lock-free shards only.
  ReplayMetrics rm_storage;
  const ReplayMetrics* rm = nullptr;
  if (metrics != nullptr) {
    rm_storage = ReplayMetrics::resolve(*metrics);
    rm = &rm_storage;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<ScenarioReport> partial(workers);
  if (workers == 1) {
    replay_slice(fabric, labels, ingress, index, expected, alive, segments,
                 batch_size, max_hops, partial[0], rm);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const auto [begin, end] = shard_bounds(total, w, workers);
      pool.emplace_back([&, w, begin = begin, end = end] {
        replay_slice(fabric, labels.subspan(begin, end - begin),
                     ingress.subspan(begin, end - begin),
                     index.subspan(begin, end - begin), expected, alive,
                     segments, batch_size, max_hops, partial[w], rm);
      });
    }
    for (auto& t : pool) t.join();
  }
  ScenarioReport report;
  report.fold_kernel = fabric.kernel();
  // Worker partials follow the documented shard-merge schema: counters
  // sum; their `seconds` are zero (concurrent shard wall clock must be
  // measured around the join, not summed) and are overwritten below.
  for (const ScenarioReport& p : partial) report.merge_from(p);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

ScenarioReport ScenarioRunner::run(BuiltFabric& fabric,
                                   PacketStream& stream) const {
  // Hand the taps to the fabric too, so failure repairs below show up
  // as compile.* metrics/phases (skip when we have none to offer --
  // the caller may have attached its own).
  if (options_.metrics != nullptr || options_.trace != nullptr) {
    fabric.set_observability(options_.metrics, options_.trace);
  }
  const std::size_t total = stream.size();
  // Pre-install the protection plane before any packet moves: failures
  // then swap to backups in O(1) instead of recompiling.
  if (options_.protection_k > 0) {
    obs::TraceScope protect_scope(options_.trace, "replay.protect", "replay");
    (void)fabric.enable_protection(options_.protection_k);
  }
  // Compile the flattened view before any thread is spawned: the lazy
  // compiled() cache is not thread-safe to build concurrently.
  const polka::CompiledFabric& fast = fabric.compiled();

  // Epoch boundaries from the failure schedule.
  std::vector<LinkFailure> failures = options_.failures;
  std::ranges::stable_sort(failures, {}, &LinkFailure::at_fraction);
  std::vector<std::uint8_t> alive(stream.pairs.size(), 1);
  // Streams built before segmentation (or by hand) may lack refs; give
  // every lane a default single-label ref so repair can upgrade it.
  if (stream.seg_refs.size() < stream.pairs.size()) {
    stream.seg_refs.resize(stream.pairs.size());
  }
  // Contiguous copy of the per-pair expectations (TrafficPair embeds
  // them with a stride); refreshed whenever a failure rewrites one.
  std::vector<polka::PacketResult> expected(stream.pairs.size());
  for (std::size_t i = 0; i < stream.pairs.size(); ++i) {
    expected[i] = stream.pairs[i].expected;
  }

  // Streams intern each (src, dst) once; resolve lane by pair key once
  // instead of per failure event (flap schedules fire dozens).
  std::unordered_map<std::uint64_t, std::uint32_t> lane_of;
  for (std::uint32_t lane = 0; lane < stream.pairs.size(); ++lane) {
    lane_of.emplace(
        netsim::node_pair_key(stream.pairs[lane].src, stream.pairs[lane].dst),
        lane);
  }

  ScenarioReport report;
  report.fold_kernel = fast.kernel();
  std::size_t done = 0;
  std::size_t next_failure = 0;

  // Repoint every listed pair's lane at its current cached route (all
  // cache hits: the failover event already stored them) and rewrite the
  // unreplayed tail's labels in one pass.  `revive` resurrects lanes a
  // previous failure severed (link restores bring their routes back);
  // `touched` collects the updated lanes for the caller's loss window.
  auto relabel =
      [&](const std::vector<std::pair<netsim::NodeIndex, netsim::NodeIndex>>&
              pairs,
          bool revive, std::vector<std::uint32_t>* touched) {
        std::unordered_map<std::uint32_t, polka::RouteLabel> new_label;
        for (const auto& [src, dst] : pairs) {
          const auto it = lane_of.find(netsim::node_pair_key(src, dst));
          if (it == lane_of.end()) continue;
          const std::uint32_t lane = it->second;
          if (!alive[lane] && !revive) continue;
          const CompiledRoute* route = fabric.route(src, dst);
          if (route == nullptr || route->segments.labels.empty()) {
            alive[lane] = 0;
            continue;
          }
          alive[lane] = 1;
          ++report.rerouted_pairs;
          stream.pairs[lane].expected = route->expected;
          expected[lane] = route->expected;
          new_label.emplace(lane, route->segments.labels.front());
          // A detour may gain or lose segments; pool the new list and
          // repoint the lane (orphaning its old slice is harmless).
          stream.seg_refs[lane] = append_segments(stream, route->segments);
          if (touched != nullptr) touched->push_back(lane);
        }
        for (std::size_t i = done; i < total && !new_label.empty(); ++i) {
          const auto it = new_label.find(stream.pair[i]);
          if (it != new_label.end()) stream.labels[i] = it->second;
        }
      };

  while (done < total || next_failure < failures.size()) {
    std::size_t end = total;
    if (next_failure < failures.size()) {
      const double f = std::clamp(failures[next_failure].at_fraction, 0.0, 1.0);
      end = std::min<std::size_t>(
          total, static_cast<std::size_t>(std::llround(
                     f * static_cast<double>(total))));
      end = std::max(end, done);
    }
    if (end > done) {
      const std::size_t count = end - done;
      obs::TraceScope epoch_scope(options_.trace, "replay.epoch", "replay");
      // Spans over the stream's pools are rebuilt per epoch: failure
      // repair below may grow them (and reallocate).
      const SegmentTable segments{stream.seg_labels, stream.seg_waypoints,
                                  stream.seg_refs};
      const ScenarioReport epoch = replay_shards(
          fast,
          std::span<const polka::RouteLabel>(stream.labels.data() + done,
                                             count),
          std::span<const std::uint32_t>(stream.ingress.data() + done, count),
          std::span<const std::uint32_t>(stream.pair.data() + done, count),
          expected, alive, segments, options_.threads, options_.batch_size,
          options_.max_hops, options_.metrics);
      // Sequential epoch partials: counters and wall clock both sum.
      report.merge_from(epoch);
      if (options_.metrics != nullptr) {
        options_.metrics->counter("replay.epochs").add(1);
      }
      done = end;
    }
    if (next_failure < failures.size()) {
      const LinkFailure& failure = failures[next_failure++];
      obs::TraceScope repair_scope(
          options_.trace, failure.restore ? "replay.restore" : "replay.repair",
          "replay");
      const auto t0 = std::chrono::steady_clock::now();
      const FailoverReport ev =
          failure.restore ? fabric.restore_link(failure.a, failure.b)
                          : fabric.apply_failure(failure.a, failure.b);
      // Graceful degradation: failing a dead link (or restoring a live
      // one) is a no-op, not an error -- storms hit this constantly.
      if (ev.duplicate) continue;

      // Hitless swaps first (no loss window), then in-event repairs,
      // then the lazy recompiler for pairs whose protection set died.
      std::vector<std::uint32_t> window_lanes;
      relabel(ev.swapped, failure.restore, nullptr);
      relabel(ev.repaired, false, &window_lanes);
      FailoverReport lazy;
      if (fabric.pending_repair_count() > 0) {
        lazy = fabric.repair_pending();
        relabel(lazy.repaired, false, &window_lanes);
      }

      // Severed pairs: mark dead (remaining packets drop) and charge
      // their unreplayed tail to the failover loss account.
      std::vector<std::uint32_t> severed;
      for (const auto* list : {&ev.unroutable, &std::as_const(lazy).unroutable}) {
        for (const auto& [src, dst] : *list) {
          const auto it = lane_of.find(netsim::node_pair_key(src, dst));
          if (it == lane_of.end() || !alive[it->second]) continue;
          alive[it->second] = 0;
          severed.push_back(it->second);
          ++report.unroutable_pairs;
        }
      }
      std::size_t lost = 0;
      if (!severed.empty()) {
        std::vector<char> is_severed(stream.pairs.size(), 0);
        for (const std::uint32_t lane : severed) is_severed[lane] = 1;
        for (std::size_t i = done; i < total; ++i) {
          if (is_severed[stream.pair[i]] != 0) ++lost;
        }
      }
      report.backup_swapped_pairs += ev.swapped.size();
      report.window_recompiles += ev.window_recompiles;
      report.lazy_repaired_pairs += lazy.repaired.size();

      // Convergence-loss model: each *recompiled* pair loses its own
      // next loss_window_per_recompile packets.  The tail is chopped at
      // each lane's window end and replayed with the still-converging
      // lanes masked dead, so drops thread through the normal shard
      // accounting and stay per-pair exact.  Swapped pairs never enter
      // this block: that asymmetry is what "hitless" means.
      if (!window_lanes.empty() && options_.loss_window_per_recompile > 0 &&
          done < total) {
        // Windows never run past the next scheduled event.
        std::size_t bound = total;
        if (next_failure < failures.size()) {
          const double f =
              std::clamp(failures[next_failure].at_fraction, 0.0, 1.0);
          const auto boundary = static_cast<std::size_t>(
              std::llround(f * static_cast<double>(total)));
          bound = std::clamp(boundary, done, total);
        }
        std::unordered_map<std::uint32_t, std::size_t> quota;
        for (const std::uint32_t lane : window_lanes) {
          if (alive[lane] != 0) {
            quota.emplace(lane, options_.loss_window_per_recompile);
          }
        }
        // One forward walk finds each lane's window end (the stream
        // position of its last lost packet) and the loss count.
        std::vector<std::pair<std::size_t, std::uint32_t>> chops;
        std::vector<std::uint32_t> unfinished;
        {
          auto remaining = quota;
          for (std::size_t i = done; i < bound && !remaining.empty(); ++i) {
            const auto it = remaining.find(stream.pair[i]);
            if (it == remaining.end()) continue;
            ++lost;
            if (--it->second == 0) {
              chops.emplace_back(i + 1, it->first);
              remaining.erase(it);
            }
          }
          for (const auto& [lane, left] : remaining) {
            unfinished.push_back(lane);
          }
        }
        for (const auto& [lane, left] : quota) alive[lane] = 0;
        auto replay_to = [&](std::size_t upto) {
          if (upto <= done) return;
          const SegmentTable segments{stream.seg_labels, stream.seg_waypoints,
                                      stream.seg_refs};
          const std::size_t count = upto - done;
          const ScenarioReport window = replay_shards(
              fast,
              std::span<const polka::RouteLabel>(stream.labels.data() + done,
                                                 count),
              std::span<const std::uint32_t>(stream.ingress.data() + done,
                                             count),
              std::span<const std::uint32_t>(stream.pair.data() + done, count),
              expected, alive, segments, options_.threads,
              options_.batch_size, options_.max_hops, options_.metrics);
          report.merge_from(window);
          done = upto;
        };
        for (const auto& [chop_end, lane] : chops) {
          replay_to(chop_end);
          alive[lane] = 1;  // this lane converged; it forwards again
        }
        if (!unfinished.empty()) {
          // Lanes whose window outlives the inter-event gap (or the
          // stream) stay masked to the bound, then resume.
          replay_to(bound);
          for (const std::uint32_t lane : unfinished) alive[lane] = 1;
        }
      }
      report.failover_packets_lost += lost;

      if (options_.metrics != nullptr) {
        obs::MetricRegistry& reg = *options_.metrics;
        reg.counter(failure.restore ? "replay.failover.restores"
                                    : "replay.failover.failures")
            .add(1);
        reg.counter("replay.failover.swaps").add(ev.swapped.size());
        reg.counter("replay.failover.window_recompiles")
            .add(ev.window_recompiles);
        reg.counter("replay.failover.lazy_repairs").add(lazy.repaired.size());
        reg.counter("replay.failover.packets_lost").add(lost);
        reg.counter("replay.failover.unroutable_pairs").add(severed.size());
        // Backup-path stretch in percent: deterministic content (a
        // pure path-length ratio), unlike the wall-clock histogram
        // below whose _ns suffix keeps it out of snapshot diffing.
        for (const double stretch : ev.swap_stretch) {
          reg.histogram("replay.failover.stretch_pct")
              .record(static_cast<std::uint64_t>(
                  std::llround(stretch * 100.0)));
        }
        reg.histogram("replay.failover.switchover_ns")
            .record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
      }
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("replay.rerouted_pairs")
        .add(report.rerouted_pairs);
  }
  return report;
}

}  // namespace hp::scenario
