#pragma once
// Parametric topology generators for the scenario engine.
//
// The repo's seed exercises exactly one topology -- the 7-node Global
// P4 Lab subset of Fig 9.  Scaling the system "from 10s to 100s of
// routers" (Section II-A) needs families of topologies produced on
// demand: the data-centre shapes (fat-tree, leaf-spine), the
// regular-lattice shapes (ring, torus) and seeded random-regular
// graphs.  Every generator emits a plain netsim::Topology, so paths,
// the flow simulator and the PolKA fabric builder all work unchanged.

#include <cstdint>

#include "netsim/topology.hpp"

namespace hp::scenario {

/// Link parameters applied uniformly by the generators.
struct LinkProfile {
  double core_capacity_mbps = 100.0;
  double core_delay_ms = 1.0;
  double host_capacity_mbps = 1000.0;
  double host_delay_ms = 0.1;
};

/// Canonical k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 core switches; every edge switch optionally hangs
/// k/2 hosts.  k must be even and >= 2 (throws std::invalid_argument).
/// Switch count is 5k^2/4; host count k^3/4 when `with_hosts`.
/// Names: "core<i>", "p<p>a<i>", "p<p>e<i>", "p<p>e<i>h<j>".
[[nodiscard]] netsim::Topology make_fat_tree(unsigned k,
                                             bool with_hosts = false,
                                             const LinkProfile& links = {});

/// Two-tier leaf-spine Clos: every leaf connects to every spine;
/// each leaf optionally hangs `hosts_per_leaf` hosts.  Throws
/// std::invalid_argument when spines or leaves is zero.
/// Names: "spine<i>", "leaf<i>", "leaf<i>h<j>".
[[nodiscard]] netsim::Topology make_leaf_spine(unsigned spines,
                                               unsigned leaves,
                                               unsigned hosts_per_leaf = 0,
                                               const LinkProfile& links = {});

/// Ring of n >= 3 routers ("r<i>"), each linked to its two neighbours.
[[nodiscard]] netsim::Topology make_ring(unsigned n,
                                         const LinkProfile& links = {});

/// rows x cols torus ("r<row>c<col>"): grid with wraparound links.  A
/// dimension of size 2 skips its wrap link (it would duplicate the grid
/// link); rows * cols must be >= 3 and both dimensions >= 2.
[[nodiscard]] netsim::Topology make_torus(unsigned rows, unsigned cols,
                                          const LinkProfile& links = {});

/// Connected random d-regular graph on n routers ("r<i>") via the
/// configuration model with rejection, deterministic in `seed`.
/// Requires 3 <= degree < n and n * degree even; throws
/// std::invalid_argument otherwise (degree 2 is make_ring).
[[nodiscard]] netsim::Topology make_random_regular(
    unsigned n, unsigned degree, std::uint64_t seed,
    const LinkProfile& links = {});

}  // namespace hp::scenario
