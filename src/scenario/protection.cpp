#include "scenario/protection.hpp"

#include <algorithm>
#include <utility>

#include "core/contracts.hpp"

namespace hp::scenario {

void BackupTable::install(PairKey pair, std::vector<BackupRoute> backups) {
  if (const auto it = pairs_.find(pair); it != pairs_.end()) {
    backup_count_ -= it->second.backups.size();
    pairs_.erase(it);
  }
  if (backups.empty()) return;
  for (const BackupRoute& b : backups) {
    // A hitless swap copies these fields straight into the live route
    // table; an empty label list would install an unroutable "backup"
    // that only surfaces packets later, so reject it at install time.
    HP_CHECK(!b.segments.labels.empty(),
             "BackupTable::install: backup route without labels");
    HP_CHECK(!b.path.empty(), "BackupTable::install: backup route "
                              "without a link path");
  }
  backup_count_ += backups.size();
  pairs_.emplace(pair, PairProtection{std::move(backups), kNone});
}

void BackupTable::clear() {
  pairs_.clear();
  backup_count_ = 0;
}

const std::vector<BackupRoute>* BackupTable::backups_for(PairKey pair) const {
  const auto it = pairs_.find(pair);
  return it == pairs_.end() ? nullptr : &it->second.backups;
}

const BackupRoute* BackupTable::activate(PairKey pair,
                                         const std::vector<char>& link_down) {
  const auto it = pairs_.find(pair);
  if (it == pairs_.end()) return nullptr;
  PairProtection& p = it->second;
  for (std::size_t i = 0; i < p.backups.size(); ++i) {
    const bool dead = std::ranges::any_of(
        p.backups[i].path, [&](netsim::LinkIndex l) {
          return l < link_down.size() && link_down[l] != 0;
        });
    if (dead) continue;
    p.active = i;
    HP_DCHECK(p.active < p.backups.size(),
              "BackupTable::activate: active index out of range");
    return &p.backups[i];
  }
  return nullptr;
}

void BackupTable::release(PairKey pair) {
  if (const auto it = pairs_.find(pair); it != pairs_.end()) {
    it->second.active = kNone;
  }
}

std::size_t BackupTable::active_index(PairKey pair) const {
  const auto it = pairs_.find(pair);
  return it == pairs_.end() ? kNone : it->second.active;
}

}  // namespace hp::scenario
