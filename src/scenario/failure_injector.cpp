#include "scenario/failure_injector.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace hp::scenario {

const char* to_string(FailurePreset preset) noexcept {
  switch (preset) {
    case FailurePreset::kSingle:
      return "single";
    case FailurePreset::kStorm:
      return "storm";
    case FailurePreset::kFlap:
      return "flap";
    case FailurePreset::kSrlg:
      return "srlg";
  }
  return "unknown";
}

std::optional<FailurePreset> parse_failure_preset(
    std::string_view name) noexcept {
  if (name == "single") return FailurePreset::kSingle;
  if (name == "storm") return FailurePreset::kStorm;
  if (name == "flap") return FailurePreset::kFlap;
  if (name == "srlg") return FailurePreset::kSrlg;
  return std::nullopt;
}

namespace {

/// Uniform [0, 1) from the engine's raw 64-bit output (53-bit mantissa
/// scale).  Hand-rolled: the standard distributions are
/// implementation-defined, and the schedule must be a pure function of
/// the seed on every standard library.
double next_unit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform index in [0, n).  Modulo bias is negligible (n is tiny
/// against 2^64) and the result is deterministic everywhere.
std::size_t next_index(std::mt19937_64& rng, std::size_t n) {
  return static_cast<std::size_t>(rng() % n);
}

/// Unit-mean exponential dwell, for flap MTBF/MTTR cycles.
double next_exponential(std::mt19937_64& rng) {
  return -std::log(1.0 - next_unit(rng));
}

struct DuplexLink {
  netsim::NodeIndex a = 0;
  netsim::NodeIndex b = 0;
};

/// The failure population: duplex router-router adjacencies, one entry
/// per pair, in link-index order (deterministic).
std::vector<DuplexLink> eligible_links(const netsim::Topology& topo) {
  std::vector<DuplexLink> out;
  for (netsim::LinkIndex l = 0; l < topo.link_count(); ++l) {
    const netsim::Link& link = topo.link(l);
    if (link.from >= link.to) continue;  // one direction per duplex pair
    if (topo.node(link.from).kind != netsim::NodeKind::kRouter) continue;
    if (topo.node(link.to).kind != netsim::NodeKind::kRouter) continue;
    if (!topo.link_between(link.to, link.from)) continue;
    out.push_back({link.from, link.to});
  }
  return out;
}

/// First `want` entries of a deterministic partial Fisher-Yates
/// shuffle of [0, n).
std::vector<std::size_t> pick_distinct(std::mt19937_64& rng, std::size_t want,
                                       std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  const std::size_t take = std::min(want, n);
  for (std::size_t i = 0; i < take; ++i) {
    std::swap(idx[i], idx[i + next_index(rng, n - i)]);
  }
  idx.resize(take);
  return idx;
}

LinkFailure make_event(double at, const DuplexLink& link, bool restore) {
  LinkFailure f;
  f.at_fraction = at;
  f.a = link.a;
  f.b = link.b;
  f.restore = restore;
  return f;
}

}  // namespace

std::vector<LinkFailure> make_failure_schedule(
    const netsim::Topology& topo, const FailureInjectorParams& params) {
  if (!(params.start_fraction >= 0.0) || !(params.end_fraction <= 1.0) ||
      !(params.start_fraction < params.end_fraction)) {
    throw std::invalid_argument(
        "make_failure_schedule: fraction window must satisfy "
        "0 <= start < end <= 1");
  }
  const std::vector<DuplexLink> links = eligible_links(topo);
  if (links.empty()) {
    throw std::invalid_argument(
        "make_failure_schedule: topology has no duplex router link");
  }
  // Seed-mix so seed 0/1/2 do not share low-entropy engine states.
  std::mt19937_64 rng(params.seed * 0x9E3779B97F4A7C15ull +
                      0xD1B54A32D192ED03ull);
  const double span = params.end_fraction - params.start_fraction;
  const std::size_t count = std::max<std::size_t>(params.count, 1);
  std::vector<LinkFailure> schedule;

  switch (params.preset) {
    case FailurePreset::kSingle: {
      const auto chosen = pick_distinct(rng, count, links.size());
      std::vector<double> at(chosen.size());
      for (double& f : at) f = params.start_fraction + span * next_unit(rng);
      std::sort(at.begin(), at.end());
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        schedule.push_back(make_event(at[i], links[chosen[i]], false));
      }
      break;
    }
    case FailurePreset::kStorm: {
      // Correlated storms: every duplex link of the epicentre fails at
      // the same instant -- the shape single-failure protection cannot
      // fully absorb, exercising the lazy-recompile path.
      std::vector<netsim::NodeIndex> routers;
      for (const DuplexLink& l : links) {
        routers.push_back(l.a);
        routers.push_back(l.b);
      }
      std::ranges::sort(routers);
      routers.erase(std::unique(routers.begin(), routers.end()),
                    routers.end());
      const auto chosen = pick_distinct(rng, count, routers.size());
      std::vector<double> at(chosen.size());
      for (double& f : at) f = params.start_fraction + span * next_unit(rng);
      std::sort(at.begin(), at.end());
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        const netsim::NodeIndex node = routers[chosen[i]];
        for (const DuplexLink& l : links) {
          if (l.a == node || l.b == node) {
            schedule.push_back(make_event(at[i], l, false));
          }
        }
      }
      break;
    }
    case FailurePreset::kFlap: {
      if (!(params.mean_up_fraction > 0.0) ||
          !(params.mean_down_fraction > 0.0)) {
        throw std::invalid_argument(
            "make_failure_schedule: flap dwell means must be > 0");
      }
      const auto chosen = pick_distinct(rng, count, links.size());
      for (const std::size_t c : chosen) {
        // Alternate down/up with exponential dwells until the window
        // closes; a cycle whose restore would land past the window
        // leaves the link down (the tail of the run sees the outage).
        double t = params.start_fraction +
                   params.mean_up_fraction * next_exponential(rng);
        while (t < params.end_fraction) {
          schedule.push_back(make_event(t, links[c], false));
          const double down = params.mean_down_fraction * next_exponential(rng);
          if (t + down >= params.end_fraction) break;
          t += down;
          schedule.push_back(make_event(t, links[c], true));
          t += params.mean_up_fraction * next_exponential(rng);
        }
      }
      break;
    }
    case FailurePreset::kSrlg: {
      // Shared-risk link groups: a conduit cut takes several distinct
      // links down at one instant.  Unlike kStorm the group need not
      // share an endpoint, so k-disjoint backups that avoid one failed
      // wire can still ride through another group member.
      if (params.srlg_size == 0) {
        throw std::invalid_argument(
            "make_failure_schedule: srlg_size must be >= 1");
      }
      for (std::size_t event = 0; event < count; ++event) {
        const double at = params.start_fraction + span * next_unit(rng);
        for (const std::size_t c :
             pick_distinct(rng, params.srlg_size, links.size())) {
          schedule.push_back(make_event(at, links[c], false));
        }
      }
      break;
    }
  }
  std::ranges::stable_sort(schedule, {}, &LinkFailure::at_fraction);
  return schedule;
}

}  // namespace hp::scenario
