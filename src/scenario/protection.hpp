#pragma once
// BackupTable: pre-installed protection routes for hitless failover.
//
// The paper pitches PolKA source routing as failure-resilient, and the
// fabric's incremental recompiler (fabric_builder.hpp) already repairs
// routes in O(affected) -- but a recompile is still Dijkstra + CRT work
// *inside* the packet-loss window.  The protection layer moves that
// work to compile time: for every primary route, BuiltFabric plans up
// to k mutually link-disjoint alternates (netsim::k_disjoint_paths
// seeded with the primary's links banned), compiles each into segmented
// labels once, and parks them here.  A failure then swaps the pair's
// primary for the first backup that avoids every dead link -- an O(1)
// table lookup plus a label copy, no path computation at all.  Only
// pairs whose entire protection set is dead fall back to the lazy
// recompiler.
//
// The table is pure bookkeeping: it never computes paths or labels
// itself (BuiltFabric owns both), which keeps it trivially reusable by
// the replay runner and the timed simulator alike.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netsim/topology.hpp"
#include "polka/label.hpp"

namespace hp::scenario {

/// One pre-installed backup: a fully compiled alternate route, ready to
/// serve as the pair's primary the moment a failure demands it.
struct BackupRoute {
  polka::SegmentedRoute segments;  ///< fast-path wire form, always set
  polka::PacketResult expected;    ///< egress node/port/hops on the backup
  netsim::Path path;               ///< topology links traversed
  std::uint32_t ingress = 0;       ///< fabric index of the source
  /// Backup hops over primary hops at protection time: the path
  /// stretch a swap pays (1.0 = equal length).
  double stretch = 1.0;
};

/// Per-pair protection state plus the selection logic.  Pair keys are
/// netsim::node_pair_key(src, dst) over topology indices, matching the
/// fabric's route-cache keys.
class BackupTable {
 public:
  using PairKey = std::uint64_t;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Install (or replace) a pair's protection set, best backup first.
  /// An empty set erases the pair.
  void install(PairKey pair, std::vector<BackupRoute> backups);

  void clear();

  [[nodiscard]] std::size_t pair_count() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] std::size_t backup_count() const noexcept {
    return backup_count_;
  }
  [[nodiscard]] bool protects(PairKey pair) const {
    return pairs_.contains(pair);
  }
  /// The pair's protection set (nullptr when unprotected).
  [[nodiscard]] const std::vector<BackupRoute>* backups_for(
      PairKey pair) const;

  /// Select the pair's best live backup: the first (best-ranked) backup
  /// whose path avoids every link marked in `link_down` (indexed by
  /// directed LinkIndex).  Marks it active and returns it; nullptr when
  /// the pair is unprotected or its whole protection set is dead --
  /// the caller then falls back to a lazy recompile.
  const BackupRoute* activate(PairKey pair,
                              const std::vector<char>& link_down);

  /// The pair's primary is back in service: its active backup returns
  /// to standby.
  void release(PairKey pair);

  /// Index of the backup currently serving as the pair's primary
  /// (kNone when the pair rides its real primary).
  [[nodiscard]] std::size_t active_index(PairKey pair) const;

 private:
  struct PairProtection {
    std::vector<BackupRoute> backups;
    std::size_t active = kNone;
  };
  std::unordered_map<PairKey, PairProtection> pairs_;
  std::size_t backup_count_ = 0;
};

}  // namespace hp::scenario
