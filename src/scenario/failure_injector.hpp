#pragma once
// Deterministic failure-schedule generation.
//
// The runners accept a vector<LinkFailure> but nothing in the repo
// could *produce* realistic ones -- every bench hand-picked a link.
// The injector turns (topology, preset, seed) into a reproducible
// schedule over the topology's duplex router-router links:
//
//   kSingle  `count` independent single-link failures at random points
//            of the schedule window;
//   kStorm   `count` correlated node storms -- a router fails, taking
//            every duplex link adjacent to it down at the same instant;
//   kFlap    `count` flapping links, each cycling down/up with
//            exponential dwell times (mean_up_fraction is the MTBF,
//            mean_down_fraction the MTTR, both as stream fractions);
//            down events carry restore = false, up events restore =
//            true;
//   kSrlg    `count` shared-risk link group events -- each fails a
//            correlated group of `srlg_size` distinct links at one
//            instant (a conduit cut / linecard loss: the links share
//            fate without sharing an endpoint, unlike kStorm).
//
// Determinism is a hard contract: the schedule is a pure function of
// (topology, params).  All randomness is hand-rolled over mt19937_64
// raw output -- std::uniform_real_distribution and friends are
// implementation-defined and would break bit-identical reports across
// standard libraries.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "netsim/topology.hpp"
#include "scenario/runner.hpp"

namespace hp::scenario {

enum class FailurePreset {
  kSingle,  ///< independent single-link failures
  kStorm,   ///< node storms: every adjacent link fails at once
  kFlap,    ///< links cycling down/up (MTBF/MTTR)
  kSrlg,    ///< shared-risk groups: srlg_size correlated links at once
};

[[nodiscard]] const char* to_string(FailurePreset preset) noexcept;

/// Parse "single" / "storm" / "flap" / "srlg"; nullopt otherwise.
[[nodiscard]] std::optional<FailurePreset> parse_failure_preset(
    std::string_view name) noexcept;

struct FailureInjectorParams {
  FailurePreset preset = FailurePreset::kSingle;
  std::uint64_t seed = 1;  ///< drives every random choice
  /// Failed links (kSingle), storm epicentre nodes (kStorm) or
  /// flapping links (kFlap); clamped to the eligible population.
  std::size_t count = 1;
  double start_fraction = 0.25;  ///< no event before this stream point
  double end_fraction = 0.90;    ///< no event at/after this stream point
  double mean_up_fraction = 0.20;    ///< kFlap: mean dwell while up
  double mean_down_fraction = 0.05;  ///< kFlap: mean dwell while down
  /// kSrlg: links sharing fate per group event (clamped to the
  /// eligible population; must be >= 1).
  std::size_t srlg_size = 3;
};

/// Build a deterministic schedule over the duplex router-router links
/// of `topo`, sorted by at_fraction (ties keep generation order).
/// Throws std::invalid_argument when the fraction window is empty/out
/// of range or the topology has no eligible duplex router link.
[[nodiscard]] std::vector<LinkFailure> make_failure_schedule(
    const netsim::Topology& topo, const FailureInjectorParams& params);

}  // namespace hp::scenario
