#include "scenario/topologies.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace hp::scenario {

namespace {

using netsim::NodeIndex;
using netsim::Topology;

void core_link(Topology& topo, NodeIndex a, NodeIndex b,
               const LinkProfile& links) {
  topo.add_duplex_link(a, b, links.core_capacity_mbps, links.core_delay_ms);
}

void host_link(Topology& topo, NodeIndex host, NodeIndex router,
               const LinkProfile& links) {
  topo.add_duplex_link(host, router, links.host_capacity_mbps,
                       links.host_delay_ms);
}

/// Union-find connectivity check over an edge list.
bool is_connected(unsigned n, const std::vector<std::pair<unsigned, unsigned>>&
                                  edges) {
  std::vector<unsigned> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  auto find = [&](unsigned x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  unsigned components = n;
  for (const auto& [a, b] : edges) {
    const unsigned ra = find(a);
    const unsigned rb = find(b);
    if (ra != rb) {
      parent[ra] = rb;
      --components;
    }
  }
  return components == 1;
}

}  // namespace

netsim::Topology make_fat_tree(unsigned k, bool with_hosts,
                               const LinkProfile& links) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("make_fat_tree: k must be even and >= 2");
  }
  const unsigned half = k / 2;
  Topology topo;
  std::vector<NodeIndex> core(half * half);
  for (unsigned i = 0; i < core.size(); ++i) {
    core[i] = topo.add_node("core" + std::to_string(i));
  }
  for (unsigned p = 0; p < k; ++p) {
    std::vector<NodeIndex> agg(half);
    std::vector<NodeIndex> edge(half);
    const std::string pod = "p" + std::to_string(p);
    for (unsigned i = 0; i < half; ++i) {
      agg[i] = topo.add_node(pod + "a" + std::to_string(i));
    }
    for (unsigned i = 0; i < half; ++i) {
      edge[i] = topo.add_node(pod + "e" + std::to_string(i));
    }
    // Aggregation switch i serves core group i (core switches are laid
    // out as half groups of half, one group per aggregation position).
    for (unsigned i = 0; i < half; ++i) {
      for (unsigned j = 0; j < half; ++j) {
        core_link(topo, agg[i], core[i * half + j], links);
      }
    }
    for (unsigned i = 0; i < half; ++i) {
      for (unsigned j = 0; j < half; ++j) {
        core_link(topo, edge[i], agg[j], links);
      }
    }
    if (with_hosts) {
      for (unsigned i = 0; i < half; ++i) {
        for (unsigned j = 0; j < half; ++j) {
          const NodeIndex h = topo.add_node(
              pod + "e" + std::to_string(i) + "h" + std::to_string(j),
              netsim::NodeKind::kHost);
          host_link(topo, h, edge[i], links);
        }
      }
    }
  }
  return topo;
}

netsim::Topology make_leaf_spine(unsigned spines, unsigned leaves,
                                 unsigned hosts_per_leaf,
                                 const LinkProfile& links) {
  if (spines == 0 || leaves == 0) {
    throw std::invalid_argument("make_leaf_spine: need >= 1 spine and leaf");
  }
  Topology topo;
  std::vector<NodeIndex> spine(spines);
  for (unsigned i = 0; i < spines; ++i) {
    spine[i] = topo.add_node("spine" + std::to_string(i));
  }
  for (unsigned i = 0; i < leaves; ++i) {
    const NodeIndex leaf = topo.add_node("leaf" + std::to_string(i));
    for (unsigned s = 0; s < spines; ++s) {
      core_link(topo, leaf, spine[s], links);
    }
    for (unsigned h = 0; h < hosts_per_leaf; ++h) {
      const NodeIndex host =
          topo.add_node("leaf" + std::to_string(i) + "h" + std::to_string(h),
                        netsim::NodeKind::kHost);
      host_link(topo, host, leaf, links);
    }
  }
  return topo;
}

netsim::Topology make_ring(unsigned n, const LinkProfile& links) {
  if (n < 3) throw std::invalid_argument("make_ring: need n >= 3");
  Topology topo;
  std::vector<NodeIndex> nodes(n);
  for (unsigned i = 0; i < n; ++i) {
    nodes[i] = topo.add_node("r" + std::to_string(i));
  }
  for (unsigned i = 0; i < n; ++i) {
    core_link(topo, nodes[i], nodes[(i + 1) % n], links);
  }
  return topo;
}

netsim::Topology make_torus(unsigned rows, unsigned cols,
                            const LinkProfile& links) {
  if (rows < 2 || cols < 2 || rows * cols < 3) {
    throw std::invalid_argument("make_torus: need rows, cols >= 2");
  }
  Topology topo;
  std::vector<NodeIndex> nodes(static_cast<std::size_t>(rows) * cols);
  auto at = [&](unsigned r, unsigned c) -> NodeIndex& {
    return nodes[static_cast<std::size_t>(r) * cols + c];
  };
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      at(r, c) =
          topo.add_node("r" + std::to_string(r) + "c" + std::to_string(c));
    }
  }
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      // Right and down neighbours cover every grid link once; the wrap
      // link of a size-2 dimension would duplicate a grid link.
      if (c + 1 < cols) core_link(topo, at(r, c), at(r, c + 1), links);
      if (r + 1 < rows) core_link(topo, at(r, c), at(r + 1, c), links);
      if (c + 1 == cols && cols > 2) core_link(topo, at(r, c), at(r, 0), links);
      if (r + 1 == rows && rows > 2) core_link(topo, at(r, c), at(0, c), links);
    }
  }
  return topo;
}

netsim::Topology make_random_regular(unsigned n, unsigned degree,
                                     std::uint64_t seed,
                                     const LinkProfile& links) {
  if (degree < 3 || degree >= n) {
    throw std::invalid_argument(
        "make_random_regular: need 3 <= degree < n (degree 2 is make_ring)");
  }
  if ((static_cast<std::uint64_t>(n) * degree) % 2 != 0) {
    throw std::invalid_argument("make_random_regular: n * degree must be even");
  }
  std::mt19937_64 rng(seed);
  // Configuration model: shuffle n*degree stubs and pair them off;
  // reject pairings with self-loops or parallel edges, and graphs that
  // come out disconnected.  For degree >= 3 both rejections are rare.
  std::vector<unsigned> stubs(static_cast<std::size_t>(n) * degree);
  for (unsigned v = 0; v < n; ++v) {
    std::fill_n(stubs.begin() + static_cast<std::size_t>(v) * degree, degree,
                v);
  }
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::shuffle(stubs.begin(), stubs.end(), rng);
    std::vector<std::pair<unsigned, unsigned>> edges;
    edges.reserve(stubs.size() / 2);
    std::vector<std::vector<unsigned>> seen(n);
    bool ok = true;
    for (std::size_t i = 0; ok && i + 1 < stubs.size(); i += 2) {
      const unsigned a = stubs[i];
      const unsigned b = stubs[i + 1];
      if (a == b ||
          std::ranges::find(seen[a], b) != seen[a].end()) {
        ok = false;
        break;
      }
      seen[a].push_back(b);
      seen[b].push_back(a);
      edges.emplace_back(a, b);
    }
    if (!ok || !is_connected(n, edges)) continue;
    Topology topo;
    for (unsigned v = 0; v < n; ++v) topo.add_node("r" + std::to_string(v));
    for (const auto& [a, b] : edges) core_link(topo, a, b, links);
    return topo;
  }
  throw std::runtime_error(
      "make_random_regular: no simple connected pairing found");
}

}  // namespace hp::scenario
