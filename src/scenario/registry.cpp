#include "scenario/registry.hpp"

#include <stdexcept>

namespace hp::scenario {

const char* to_string(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kFatTree:
      return "fat_tree";
    case TopologyFamily::kLeafSpine:
      return "leaf_spine";
    case TopologyFamily::kRing:
      return "ring";
    case TopologyFamily::kTorus:
      return "torus";
    case TopologyFamily::kRandomRegular:
      return "random_regular";
  }
  return "unknown";
}

netsim::Topology build_topology(const ScenarioSpec& spec) {
  switch (spec.family) {
    case TopologyFamily::kFatTree:
      return make_fat_tree(spec.a, spec.c != 0);
    case TopologyFamily::kLeafSpine:
      return make_leaf_spine(spec.a, spec.b, spec.c);
    case TopologyFamily::kRing:
      return make_ring(spec.a);
    case TopologyFamily::kTorus:
      return make_torus(spec.a, spec.b);
    case TopologyFamily::kRandomRegular:
      return make_random_regular(spec.a, spec.b, spec.topo_seed);
  }
  throw std::logic_error("build_topology: unknown family");
}

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> scenarios = [] {
    struct TopoEntry {
      std::string name;
      TopologyFamily family;
      unsigned a, b, c;
    };
    // CI-friendly sizes with multi-hop routes.  Since multi-segment
    // routes landed, path length no longer limits a family (deep rings
    // and tori re-label at waypoints and stay on the fast path; see
    // bench_segment_routes) -- these stay small purely for test time.
    const std::vector<TopoEntry> topologies = {
        {"fat_tree_k4", TopologyFamily::kFatTree, 4, 0, 0},
        {"leaf_spine_4x8", TopologyFamily::kLeafSpine, 4, 8, 2},
        {"ring12", TopologyFamily::kRing, 12, 0, 0},
        {"torus4x4", TopologyFamily::kTorus, 4, 4, 0},
        {"rr16d4", TopologyFamily::kRandomRegular, 16, 4, 0},
    };
    const TrafficPattern patterns[] = {
        TrafficPattern::kUniformRandom, TrafficPattern::kPermutation,
        TrafficPattern::kHotspot, TrafficPattern::kElephantMice};
    std::vector<ScenarioSpec> out;
    for (const TopoEntry& topo : topologies) {
      for (const TrafficPattern pattern : patterns) {
        ScenarioSpec spec;
        spec.name = topo.name + "/" + to_string(pattern);
        spec.family = topo.family;
        spec.a = topo.a;
        spec.b = topo.b;
        spec.c = topo.c;
        spec.traffic.pattern = pattern;
        spec.traffic.packets = 1 << 14;
        spec.traffic.seed = 11;
        out.push_back(std::move(spec));
      }
    }
    return out;
  }();
  return scenarios;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  BuiltFabric fabric(build_topology(spec));
  PacketStream stream = generate_traffic(fabric, spec.traffic);
  return ScenarioRunner(options).run(fabric, stream);
}

}  // namespace hp::scenario
