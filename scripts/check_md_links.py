#!/usr/bin/env python3
"""Verify that relative links in the repo's markdown files resolve.

Scans every tracked *.md file, extracts inline links and images
(``[text](target)``), skips absolute URLs and pure in-page anchors, and
checks that each remaining target exists relative to the file that
names it.  Exits 1 and prints ``file: missing target`` lines when any
link is dangling, so CI fails on docs that drift from the tree.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", ".github"}


def md_files(root: Path) -> list[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        files.append(path)
    return files


def check(root: Path) -> int:
    missing = 0
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: link-looking text in examples is not
        # a navigable link.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                rel = md.relative_to(root)
                print(f"{rel}: missing link target {target}")
                missing += 1
    if missing:
        print(f"{missing} dangling markdown link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    repo_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    sys.exit(check(repo_root))
