#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the hp-bench-v1 schema.

Usage: check_bench_json.py PATH [PATH ...]

Each PATH is a BENCH_*.json file or a directory to scan for them.  A
valid document is an object with ``schema`` == "hp-bench-v1", a
non-empty ``bench`` name, and a non-empty ``results`` array whose
entries carry a string ``name``, a finite numeric ``value``, a string
``unit``, an optional string ``label``, and an optional ``counters``
object mapping names to finite numbers.  Exits 1 and prints one line
per violation so CI fails when a bench writes malformed or NaN/Inf
output.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA = "hp-bench-v1"


def is_finite_number(value: object) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_result(entry: object, where: str) -> list[str]:
    errors = []
    if not isinstance(entry, dict):
        return [f"{where}: result is not an object"]
    if not isinstance(entry.get("name"), str) or not entry["name"]:
        errors.append(f"{where}: missing or empty result name")
    if not is_finite_number(entry.get("value")):
        errors.append(f"{where}: value is not a finite number")
    if not isinstance(entry.get("unit"), str):
        errors.append(f"{where}: missing unit")
    if "label" in entry and not isinstance(entry["label"], str):
        errors.append(f"{where}: label is not a string")
    counters = entry.get("counters", {})
    if not isinstance(counters, dict):
        errors.append(f"{where}: counters is not an object")
    else:
        for key, value in counters.items():
            if not is_finite_number(value):
                errors.append(f"{where}: counter {key!r} is not finite")
    return errors


def check_file(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable or invalid JSON ({exc})"]
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        errors.append(f"{path}: missing or empty bench name")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append(f"{path}: results must be a non-empty array")
        return errors
    for i, entry in enumerate(results):
        errors.extend(check_result(entry, f"{path}: results[{i}]"))
    return errors


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
        else:
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_bench_json.py PATH [PATH ...]", file=sys.stderr)
        return 2
    files = collect(argv)
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for line in errors:
        print(line)
    if errors:
        print(f"{len(errors)} bench JSON violation(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} bench JSON file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
