#!/usr/bin/env python3
"""hp-lint: project-invariant static analysis for the hecate-polka tree.

The repo rests on conventions no general-purpose linter knows about:

* **determinism** -- fixed-seed runs must produce bit-identical reports
  at any thread count, so wall-clock and ambient-randomness APIs
  (std::chrono, rand, std::random_device, time(), ...) are banned
  outside an explicit allowlist of phase timers (src/obs/, the
  compile/replay wall-clock histograms) and benchmark mains.
* **metric-names** -- every MetricRegistry registration literal must
  follow the lowercase `layer.section[.sub[.name]]` grammar documented
  in docs/OBSERVABILITY.md, never re-register one name as two kinds,
  and fall under a prefix the docs table declares.
* **header-hygiene** -- every public header under src/ must compile as
  its own translation unit (no hidden include-order dependencies).
* **hot-path-purity** -- regions bracketed by `// HP_HOT_BEGIN(name)`
  ... `// HP_HOT_END(name)` (the fold kernels, the batch forwarding
  entry points, replay_slice, the PacketSim event loop) must not
  allocate: no new/malloc, no container growth calls.  The dynamic
  twin of this rule is tests/alloc_guard_test.cpp.

Rules are classes registered in RULES; each carries its own file scope
and a per-file allowlist whose entries MUST have a written reason and
MUST still suppress at least one finding (stale entries are errors --
the grandfather list stays empty by construction).

Usage:
  hp_lint.py --all              run every rule over the repo tree
  hp_lint.py --rule NAME ...    run selected rules
  hp_lint.py --list             list rules
  hp_lint.py --self-test        run every rule against its golden
                                fixtures under tests/lint_fixtures/

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = REPO / "tests" / "lint_fixtures"

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


# ---------------------------------------------------------------------------
# Source model


def mask_comments_and_strings(text: str) -> str:
    """Return `text` with comment and string/char-literal *contents*
    blanked (newlines kept), so token scans cannot match inside them.
    Comment markers themselves are blanked too -- rules that need
    comment text (the HP_HOT markers) read the raw text instead."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STR
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = CHR
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # STR / CHR
            quote = '"' if state == STR else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root: Path, path: Path):
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self._masked: str | None = None

    @property
    def masked(self) -> str:
        if self._masked is None:
            self._masked = mask_comments_and_strings(self.text)
        return self._masked

    @property
    def masked_lines(self) -> list[str]:
        return self.masked.splitlines()


class SourceTree:
    """A lazily-loaded view of the files a rule may scan.

    `fixture_mode` relaxes the repo-shaped checks (required hot regions,
    allowlist staleness) so golden fixtures can be linted in isolation.
    """

    def __init__(self, root: Path, fixture_mode: bool = False):
        self.root = root
        self.fixture_mode = fixture_mode
        self._cache: dict[str, SourceFile] = {}

    def files(self, globs: list[str]) -> list[SourceFile]:
        seen: dict[Path, None] = {}
        for pattern in globs:
            for path in sorted(self.root.glob(pattern)):
                if path.is_file() and path.suffix in CXX_SUFFIXES:
                    seen[path] = None
        return [self.file(p) for p in seen]

    def file(self, path: Path) -> SourceFile:
        key = str(path)
        if key not in self._cache:
            self._cache[key] = SourceFile(self.root, path)
        return self._cache[key]


@dataclass
class Finding:
    rule: str
    rel: str  # path relative to the scanned tree root
    line: int  # 1-based; 0 = whole file
    message: str

    def render(self) -> str:
        loc = f"{self.rel}:{self.line}" if self.line else self.rel
        return f"{loc}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rule framework


class Rule:
    name = ""
    description = ""
    #: glob patterns (relative to the tree root) this rule scans
    scope = ["src/**/*"]
    #: {path glob: reason} -- files whose findings are intentionally
    #: waived.  Every entry needs a human-written reason; entries that
    #: suppress nothing are reported as stale.
    allowlist: dict[str, str] = {}

    def check(self, tree: SourceTree) -> list[Finding]:
        raise NotImplementedError

    # -- allowlist plumbing -------------------------------------------------

    def allowlist_reason(self, rel: str) -> str | None:
        for pattern, reason in self.allowlist.items():
            if fnmatch.fnmatch(rel, pattern):
                return reason
        return None

    def run(self, tree: SourceTree,
            extra_allowlist: dict[str, str] | None = None) -> list[Finding]:
        saved = self.allowlist
        if extra_allowlist:
            self.allowlist = {**self.allowlist, **extra_allowlist}
        try:
            raw = self.check(tree)
            suppressed_by: dict[str, int] = {p: 0 for p in self.allowlist}
            kept: list[Finding] = []
            for f in raw:
                waived = False
                for pattern in self.allowlist:
                    if fnmatch.fnmatch(f.rel, pattern):
                        suppressed_by[pattern] += 1
                        waived = True
                        break
                if not waived:
                    kept.append(f)
            if not tree.fixture_mode:
                for pattern, reason in self.allowlist.items():
                    if not reason.strip():
                        kept.append(Finding(
                            self.name, pattern, 0,
                            "allowlist entry has no justification -- every "
                            "exemption must say why"))
                    if suppressed_by.get(pattern, 0) == 0:
                        kept.append(Finding(
                            self.name, pattern, 0,
                            "stale allowlist entry: it no longer suppresses "
                            "any finding; delete it"))
            return kept
        finally:
            self.allowlist = saved

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def scan(src: SourceFile, patterns: list[tuple[re.Pattern, str]],
             rule: str) -> list[Finding]:
        findings = []
        for lineno, line in enumerate(src.masked_lines, start=1):
            for pat, why in patterns:
                if pat.search(line):
                    findings.append(Finding(
                        rule, src.rel, lineno,
                        f"{why}: `{src.lines[lineno - 1].strip()}`"))
        return findings


# ---------------------------------------------------------------------------
# Rule: determinism


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "bans wall-clock and ambient-randomness APIs outside the phase-"
        "timer allowlist, protecting the fixed-seed bit-identical "
        "report contract")
    scope = ["src/**/*", "bench/*", "examples/*"]
    allowlist = {
        "src/obs/trace.hpp":
            "TraceScope IS the wall-clock phase timer; its output is a "
            "timeline, never part of a deterministic report",
        "src/obs/trace.cpp":
            "TraceSink implementation of the wall-clock phase timers",
        "src/scenario/fabric_builder.hpp":
            "note_compile() carries steady_clock points for the "
            "compile.<phase>_ns histograms, documented wall-clock-only "
            "in docs/OBSERVABILITY.md",
        "src/scenario/fabric_builder.cpp":
            "compile.<phase>_ns wall-clock phase histograms (documented "
            "non-deterministic; every replayed value stays seeded)",
        "src/scenario/runner.cpp":
            "replay.slice_ns / replay.failover.switchover_ns wall-clock "
            "histograms and the report's seconds field; packet outcomes "
            "stay deterministic",
        "bench/*":
            "benchmark mains measure wall clock by definition",
    }

    PATTERNS = [
        (re.compile(r"std\s*::\s*chrono\b"), "std::chrono wall clock"),
        (re.compile(r"<chrono>"), "<chrono> include"),
        (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w.:>])\b(rand|srand)\s*\("),
         "C PRNG seeded from ambient state"),
        (re.compile(r"\brandom_device\b"),
         "std::random_device (non-deterministic entropy source)"),
        (re.compile(r"(?<![\w.:>])\btime\s*\("), "time() wall clock"),
        (re.compile(r"(?<![\w.:>_])\bclock\s*\("), "clock() wall clock"),
        (re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
         "POSIX wall clock"),
    ]

    def check(self, tree: SourceTree) -> list[Finding]:
        findings = []
        for src in tree.files(self.scope):
            findings += self.scan(src, self.PATTERNS, self.name)
        return findings


# ---------------------------------------------------------------------------
# Rule: metric-names


class MetricNamesRule(Rule):
    name = "metric-names"
    description = (
        "enforces the lowercase layer.section.name grammar on every "
        "MetricRegistry registration literal, rejects one name used as "
        "two kinds, and cross-checks prefixes against the "
        "docs/OBSERVABILITY.md table")
    scope = ["src/**/*"]
    allowlist = {}

    #: 2..4 dot segments, lowercase alnum/underscore, alpha-leading root.
    GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+){1,3}$")
    LITERAL_CALL = re.compile(
        r"\b(counter|gauge|histogram)\s*\(\s*(?:failure\.\w+\s*\?\s*)?"
        r'"([^"]*)"')
    #: second literal of a `cond ? "a" : "b"` registration argument
    TERNARY_ALT = re.compile(
        r'\b(counter|gauge|histogram)\s*\(\s*[^"()]*\?\s*"[^"]*"\s*:\s*'
        r'"([^"]*)"')
    VARIABLE_CALL = re.compile(
        r"\b(counter|gauge|histogram)\s*\(\s*([A-Za-z_]\w*)\s*\)")
    #: snprintf formats that *look like* metric names: alpha-leading
    #: with a dot ("%.17g"-style numeric formatting never matches).
    SNPRINTF_FMT = re.compile(r'snprintf\s*\([^;]*?"([a-z][^"]*\.[^"]*)"')
    FORMAT_SPEC = re.compile(r"%0?\d*(?:z|l|ll|h)?[duxs]")
    #: docs table row whose first cell is a backticked prefix
    DOC_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")

    # Registration sites excluded because they *define* the API.
    SELF = {"src/obs/metrics.hpp", "src/obs/metrics.cpp"}

    def doc_path(self, tree: SourceTree) -> Path:
        if tree.fixture_mode:
            return tree.root / "OBSERVABILITY.md"
        return tree.root / "docs" / "OBSERVABILITY.md"

    def documented_prefixes(self, tree: SourceTree) -> list[re.Pattern]:
        path = self.doc_path(tree)
        prefixes = []
        if path.is_file():
            for line in path.read_text(encoding="utf-8").splitlines():
                m = self.DOC_ROW.match(line.strip())
                if not m or "." not in m.group(1):
                    continue
                pat = re.escape(m.group(1))
                pat = pat.replace(re.escape("NNNNN"), r"\d+")
                pat = pat.replace(re.escape("*"), r"[a-z0-9_.]+")
                prefixes.append(re.compile(f"^{pat}$"))
        return prefixes

    def normalize_format(self, fmt: str) -> str:
        """Map printf specifiers onto grammar-shaped stand-ins: numeric
        specifiers become a digit segment, %s a lowercase one."""
        fmt = self.FORMAT_SPEC.sub(
            lambda m: "0" if m.group(0).endswith(("d", "u", "x")) else "x",
            fmt)
        return fmt

    def check(self, tree: SourceTree) -> list[Finding]:
        findings = []
        prefixes = self.documented_prefixes(tree)
        doc_rel = self.doc_path(tree).name
        if not prefixes:
            findings.append(Finding(
                self.name, doc_rel, 0,
                "no metric-prefix table found -- the docs cross-check "
                "needs the `| `prefix` | ... |` table"))
        kinds: dict[str, tuple[str, str, int]] = {}  # name -> (kind, rel, ln)

        def check_name(name: str, kind: str, src: SourceFile, lineno: int,
                       dynamic: bool):
            where = "dynamic format " if dynamic else ""
            if not self.GRAMMAR.match(name):
                findings.append(Finding(
                    self.name, src.rel, lineno,
                    f"metric {where}name '{name}' violates the lowercase "
                    "layer.section.name grammar (2-4 dot segments, "
                    "[a-z0-9_] each)"))
                return
            if prefixes and not any(p.match(name) for p in prefixes):
                findings.append(Finding(
                    self.name, src.rel, lineno,
                    f"metric {where}name '{name}' matches no prefix "
                    f"documented in the {doc_rel} table -- document the "
                    "family or fix the name"))
            if not dynamic:
                prev = kinds.get(name)
                if prev is None:
                    kinds[name] = (kind, src.rel, lineno)
                elif prev[0] != kind:
                    findings.append(Finding(
                        self.name, src.rel, lineno,
                        f"metric '{name}' registered as {kind} here but as "
                        f"{prev[0]} at {prev[1]}:{prev[2]} -- one name, "
                        "one kind"))

        for src in tree.files(self.scope):
            if src.rel in self.SELF:
                continue
            has_dynamic_format = False
            for lineno, line in enumerate(src.lines, start=1):
                for m in self.SNPRINTF_FMT.finditer(line):
                    has_dynamic_format = True
                    check_name(self.normalize_format(m.group(1)),
                               "format", src, lineno, dynamic=True)
            # Join continuation lines so a call split across lines still
            # matches; record the line of the call token.
            joined = "\n".join(src.lines)
            for m in self.LITERAL_CALL.finditer(joined):
                lineno = joined.count("\n", 0, m.start()) + 1
                check_name(m.group(2), m.group(1), src, lineno, dynamic=False)
            for m in self.TERNARY_ALT.finditer(joined):
                lineno = joined.count("\n", 0, m.start()) + 1
                check_name(m.group(2), m.group(1), src, lineno, dynamic=False)
            for m in self.VARIABLE_CALL.finditer(joined):
                arg = m.group(2)
                if arg in {"name", "fmt", "buf"} and has_dynamic_format:
                    continue  # covered by the snprintf format check above
                lineno = joined.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    self.name, src.rel, lineno,
                    f"metric registered through variable '{arg}' with no "
                    "snprintf format literal in the file -- the name "
                    "cannot be statically checked"))
        return findings


# ---------------------------------------------------------------------------
# Rule: header-hygiene


class HeaderHygieneRule(Rule):
    name = "header-hygiene"
    description = (
        "compiles every public header under src/ as a standalone "
        "translation unit, catching headers that lean on their "
        "includers' includes")
    scope = ["src/**/*.hpp"]
    allowlist = {}

    def compiler(self) -> str | None:
        for cand in (os.environ.get("CXX"), "c++", "g++", "clang++"):
            if cand and shutil.which(cand):
                return cand
        return None

    def include_dir(self, tree: SourceTree) -> Path:
        return tree.root if tree.fixture_mode else tree.root / "src"

    def check(self, tree: SourceTree) -> list[Finding]:
        cxx = self.compiler()
        if cxx is None:
            return [Finding(self.name, "<toolchain>", 0,
                            "no C++ compiler found (set CXX)")]
        findings = []
        include_dir = self.include_dir(tree)
        with tempfile.TemporaryDirectory(prefix="hp_lint_hdr_") as tmp:
            tu = Path(tmp) / "standalone.cpp"
            for src in tree.files(self.scope):
                rel_to_inc = src.path.relative_to(include_dir).as_posix()
                tu.write_text(f'#include "{rel_to_inc}"\n')
                proc = subprocess.run(
                    [cxx, "-std=c++20", "-fsyntax-only",
                     f"-I{include_dir}", str(tu)],
                    capture_output=True, text=True)
                if proc.returncode != 0:
                    first_error = next(
                        (l for l in proc.stderr.splitlines()
                         if "error" in l), proc.stderr.strip())
                    findings.append(Finding(
                        self.name, src.rel, 1,
                        "header does not compile standalone: "
                        f"{first_error.strip()}"))
        return findings


# ---------------------------------------------------------------------------
# Rule: hot-path-purity


class HotPathPurityRule(Rule):
    name = "hot-path-purity"
    description = (
        "rejects allocation and container growth inside "
        "// HP_HOT_BEGIN(x) ... // HP_HOT_END(x) regions (fold "
        "kernels, batch forwarding, replay_slice, the sim event loop)")
    scope = ["src/**/*"]
    allowlist = {}

    BEGIN = re.compile(r"//\s*HP_HOT_BEGIN\((\w+)\)")
    END = re.compile(r"//\s*HP_HOT_END\((\w+)\)")

    BANNED = [
        (re.compile(r"(?<![\w:])\bnew\b(?!\s*\()"), "operator new"),
        (re.compile(r"(?<![\w:])\bnew\s*\("), "placement/operator new"),
        (re.compile(r"\b(malloc|calloc|realloc|aligned_alloc|strdup)\s*\("),
         "C allocation"),
        (re.compile(r"\bstd\s*::\s*make_(unique|shared)\b"),
         "heap-owning smart-pointer construction"),
        (re.compile(
            r"(?:\.|->)\s*(push_back|emplace_back|push_front|emplace_front|"
            r"resize|reserve|insert|emplace|append|assign|shrink_to_fit)"
            r"\s*\("),
         "container growth"),
    ]

    #: Regions the tree must carry: deleting a marker (or the file's
    #: hot section) is itself a finding.  rel path -> region names.
    REQUIRED = {
        "src/polka/fold_kernels.hpp": ["run_batch"],
        "src/polka/fastpath.cpp": ["forward_batch"],
        "src/scenario/runner.cpp": ["replay_slice"],
        "src/sim/packet_sim.cpp": ["event_loop"],
    }

    def regions(self, src: SourceFile) -> tuple[list, list[Finding]]:
        """Parse marker pairs from the raw text.  Returns
        ([(name, begin_line, end_line)], structural findings)."""
        findings = []
        regions = []
        open_name, open_line = None, 0
        for lineno, line in enumerate(src.lines, start=1):
            b = self.BEGIN.search(line)
            e = self.END.search(line)
            if b:
                if open_name is not None:
                    findings.append(Finding(
                        self.name, src.rel, lineno,
                        f"HP_HOT_BEGIN({b.group(1)}) inside still-open "
                        f"region '{open_name}' (no nesting)"))
                open_name, open_line = b.group(1), lineno
            elif e:
                if open_name is None:
                    findings.append(Finding(
                        self.name, src.rel, lineno,
                        f"HP_HOT_END({e.group(1)}) without a matching "
                        "HP_HOT_BEGIN"))
                elif e.group(1) != open_name:
                    findings.append(Finding(
                        self.name, src.rel, lineno,
                        f"HP_HOT_END({e.group(1)}) closes region "
                        f"'{open_name}'"))
                    open_name = None
                else:
                    regions.append((open_name, open_line, lineno))
                    open_name = None
        if open_name is not None:
            findings.append(Finding(
                self.name, src.rel, open_line,
                f"HP_HOT_BEGIN({open_name}) never closed"))
        return regions, findings

    def check(self, tree: SourceTree) -> list[Finding]:
        findings = []
        seen: dict[str, set[str]] = {}
        for src in tree.files(self.scope):
            regions, structural = self.regions(src)
            findings += structural
            if regions:
                seen.setdefault(src.rel, set()).update(r[0] for r in regions)
            masked = src.masked_lines
            for region, begin, end in regions:
                for lineno in range(begin + 1, end):
                    line = masked[lineno - 1]
                    for pat, why in self.BANNED:
                        if pat.search(line):
                            findings.append(Finding(
                                self.name, src.rel, lineno,
                                f"{why} inside hot region '{region}': "
                                f"`{src.lines[lineno - 1].strip()}` -- hot "
                                "paths run on storage sized before the "
                                "walk starts"))
        if not tree.fixture_mode:
            for rel, names in self.REQUIRED.items():
                for name in names:
                    if name not in seen.get(rel, set()):
                        findings.append(Finding(
                            self.name, rel, 0,
                            f"required hot region '{name}' is missing -- "
                            "restore the HP_HOT markers (the allocation "
                            "contract is part of the file's API)"))
        return findings


RULES: list[Rule] = [
    DeterminismRule(),
    MetricNamesRule(),
    HeaderHygieneRule(),
    HotPathPurityRule(),
]


# ---------------------------------------------------------------------------
# Self-test over golden fixtures


FIXTURE_EXPECT = re.compile(r"hp-lint-fixture:\s*expect=(\d+)")


def self_test() -> int:
    """Run each rule against tests/lint_fixtures/<rule>/: every fixture
    file declares `// hp-lint-fixture: expect=N` (findings with an empty
    allowlist); files named allowlisted_* are additionally re-run with
    themselves allowlisted and must then report zero."""
    failures = 0
    checked = 0
    for rule in RULES:
        fixture_dir = FIXTURES / rule.name.replace("-", "_")
        if not fixture_dir.is_dir():
            print(f"FAIL [{rule.name}] no fixture dir {fixture_dir}")
            failures += 1
            continue
        tree = SourceTree(fixture_dir, fixture_mode=True)
        saved_scope = rule.scope
        rule.scope = ["**/*"]
        try:
            rule.allowlist, saved_allow = {}, rule.allowlist
            try:
                findings = rule.run(tree)
            finally:
                rule.allowlist = saved_allow
            by_file: dict[str, int] = {}
            for f in findings:
                by_file[f.rel] = by_file.get(f.rel, 0) + 1
            for path in sorted(fixture_dir.rglob("*")):
                if not (path.is_file() and path.suffix in CXX_SUFFIXES):
                    continue
                rel = path.relative_to(fixture_dir).as_posix()
                m = FIXTURE_EXPECT.search(
                    path.read_text(encoding="utf-8", errors="replace"))
                if not m:
                    print(f"FAIL [{rule.name}] {rel}: missing "
                          "`hp-lint-fixture: expect=N` annotation")
                    failures += 1
                    continue
                expect = int(m.group(1))
                got = by_file.get(rel, 0)
                checked += 1
                if got != expect:
                    failures += 1
                    print(f"FAIL [{rule.name}] {rel}: expected {expect} "
                          f"finding(s), got {got}")
                    for f in findings:
                        if f.rel == rel:
                            print(f"       {f.render()}")
                elif path.name.startswith("allowlisted_"):
                    # The same violations must vanish under an allowlist
                    # entry -- proves the rule honors its allowlist.
                    rule.allowlist, saved_allow = {}, rule.allowlist
                    try:
                        waived = rule.run(
                            tree, extra_allowlist={
                                rel: "fixture: exercises the allowlist"})
                    finally:
                        rule.allowlist = saved_allow
                    leaked = [f for f in waived if f.rel == rel]
                    if leaked:
                        failures += 1
                        print(f"FAIL [{rule.name}] {rel}: allowlisted file "
                              f"still produced {len(leaked)} finding(s)")
                    else:
                        checked += 1
        finally:
            rule.scope = saved_scope
    if failures == 0:
        print(f"hp-lint self-test: {checked} fixture expectation(s) "
              f"across {len(RULES)} rules, all green")
        return 0
    print(f"hp-lint self-test: {failures} failure(s)")
    return 1


# ---------------------------------------------------------------------------
# CLI


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="hp_lint.py",
        description="project-invariant static analysis for hecate-polka")
    parser.add_argument("--all", action="store_true",
                        help="run every registered rule")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="NAME", help="run one rule (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list registered rules")
    parser.add_argument("--self-test", action="store_true",
                        help="check every rule against its golden fixtures")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to scan (default: the repo)")
    args = parser.parse_args(argv)

    if args.list:
        for rule in RULES:
            print(f"{rule.name:18} {rule.description}")
        return 0
    if args.self_test:
        return self_test()

    names = {r.name: r for r in RULES}
    if args.all:
        selected = list(RULES)
    elif args.rule:
        try:
            selected = [names[n] for n in args.rule]
        except KeyError as e:
            print(f"unknown rule {e}; --list shows the registry",
                  file=sys.stderr)
            return 2
    else:
        parser.print_usage(file=sys.stderr)
        return 2

    tree = SourceTree(args.root)
    findings: list[Finding] = []
    for rule in selected:
        findings += rule.run(tree)
    for f in findings:
        print(f.render())
    if findings:
        print(f"hp-lint: {len(findings)} finding(s) across "
              f"{len(selected)} rule(s)", file=sys.stderr)
        return 1
    print(f"hp-lint: clean ({len(selected)} rule(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
