// Tests for the freeRtr config model, parser and reconfiguration service.

#include <gtest/gtest.h>

#include "freertr/config_model.hpp"
#include "freertr/message_queue.hpp"
#include "freertr/parser.hpp"
#include "freertr/router_service.hpp"

namespace hp::freertr {
namespace {

TEST(Ipv4, ParseAndFormat) {
  EXPECT_EQ(parse_ipv4("40.40.1.0"), 0x28280100u);
  EXPECT_EQ(ipv4_to_string(0x28280100u), "40.40.1.0");
  EXPECT_THROW((void)parse_ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("a.b.c.d"), std::invalid_argument);
}

TEST(Prefix, ParseAndContain) {
  const Prefix p = Prefix::parse("40.40.1.0/24");
  EXPECT_EQ(p.length, 24U);
  EXPECT_TRUE(p.contains(parse_ipv4("40.40.1.77")));
  EXPECT_FALSE(p.contains(parse_ipv4("40.40.2.77")));
  // Bare address becomes /32.
  const Prefix host = Prefix::parse("40.40.2.2");
  EXPECT_EQ(host.length, 32U);
  EXPECT_TRUE(host.contains(parse_ipv4("40.40.2.2")));
  EXPECT_FALSE(host.contains(parse_ipv4("40.40.2.3")));
  // /0 matches everything.
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0").contains(parse_ipv4("9.9.9.9")));
  EXPECT_THROW((void)Prefix::parse("1.2.3.4/33"), std::invalid_argument);
}

TEST(AccessList, PaperFlow3Semantics) {
  // "network 40.40.1.0/24 can access machine 40.40.2.2 using protocol 6
  // (TCP); the ToS ... filters only packets with that indication".
  AccessList acl;
  acl.name = "flow3";
  acl.protocol = 6;
  acl.source = Prefix::parse("40.40.1.0/24");
  acl.destination = Prefix::parse("40.40.2.2/32");
  acl.tos = 3;
  EXPECT_TRUE(acl.matches(parse_ipv4("40.40.1.5"), parse_ipv4("40.40.2.2"), 6,
                          3));
  EXPECT_FALSE(acl.matches(parse_ipv4("40.40.1.5"), parse_ipv4("40.40.2.2"),
                           17, 3));  // UDP
  EXPECT_FALSE(acl.matches(parse_ipv4("40.40.1.5"), parse_ipv4("40.40.2.2"), 6,
                           1));  // wrong ToS
  EXPECT_FALSE(acl.matches(parse_ipv4("40.40.1.5"), parse_ipv4("40.40.2.2"), 6,
                           std::nullopt));  // no ToS marking
  acl.tos.reset();
  EXPECT_TRUE(acl.matches(parse_ipv4("40.40.1.5"), parse_ipv4("40.40.2.2"), 6,
                          std::nullopt));
}

RouterConfig example_config() {
  RouterConfig config;
  AccessList acl;
  acl.name = "flow3";
  acl.protocol = 6;
  acl.source = Prefix::parse("40.40.1.0/24");
  acl.destination = Prefix::parse("40.40.2.2/32");
  acl.tos = 3;
  config.upsert_access_list(acl);
  PolkaTunnel tunnel;
  tunnel.id = 3;
  tunnel.destination_ip = "20.20.0.7";
  tunnel.domain_path = {"MIA", "SAO", "AMS"};
  config.upsert_tunnel(tunnel);
  config.set_pbr(PbrEntry{"flow3", 3, "30.30.3.2"});
  return config;
}

TEST(RouterConfig, RouteLookup) {
  const RouterConfig config = example_config();
  EXPECT_EQ(config.route_lookup(parse_ipv4("40.40.1.9"),
                                parse_ipv4("40.40.2.2"), 6, 3),
            std::optional<unsigned>{3});
  EXPECT_EQ(config.route_lookup(parse_ipv4("40.40.1.9"),
                                parse_ipv4("40.40.2.2"), 6, 7),
            std::nullopt);
}

TEST(RouterConfig, PbrValidation) {
  RouterConfig config;
  EXPECT_THROW(config.set_pbr(PbrEntry{"missing", 1, "1.1.1.1"}),
               std::invalid_argument);
  EXPECT_FALSE(config.remove_pbr("missing"));
}

TEST(RouterConfig, RevisionBumpsOnMutation) {
  RouterConfig config = example_config();
  const auto rev = config.revision();
  config.set_pbr(PbrEntry{"flow3", 3, "30.30.3.9"});
  EXPECT_EQ(config.revision(), rev + 1);
}

TEST(Parser, Figure10Style) {
  const std::string text =
      "access-list flow3 permit 6 40.40.1.0/24 40.40.2.2/32 tos 3\n"
      "interface tunnel3\n"
      " tunnel destination 20.20.0.7\n"
      " tunnel domain-name MIA SAO AMS\n"
      " tunnel mode polka\n"
      "exit\n"
      "pbr flow3 tunnel 3 nexthop 30.30.3.2\n";
  const RouterConfig config = parse_config(text);
  ASSERT_NE(config.find_access_list("flow3"), nullptr);
  EXPECT_EQ(config.find_access_list("flow3")->tos, std::optional<unsigned>{3});
  ASSERT_NE(config.find_tunnel(3), nullptr);
  EXPECT_EQ(config.find_tunnel(3)->domain_path,
            (std::vector<std::string>{"MIA", "SAO", "AMS"}));
  EXPECT_EQ(config.find_tunnel(3)->mode, "polka");
  ASSERT_NE(config.find_pbr("flow3"), nullptr);
  EXPECT_EQ(config.find_pbr("flow3")->nexthop_ip, "30.30.3.2");
}

TEST(Parser, RoundTripThroughToText) {
  const RouterConfig original = example_config();
  const RouterConfig reparsed = parse_config(original.to_text());
  EXPECT_EQ(reparsed.to_text(), original.to_text());
}

TEST(Parser, CommentsAndBlanksIgnored) {
  const RouterConfig config = parse_config(
      "! freeRtr fragment\n\n"
      "access-list f permit 6 1.0.0.0/8 2.0.0.0/8\n");
  EXPECT_NE(config.find_access_list("f"), nullptr);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_config("access-list broken permit\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW((void)parse_config("pbr f tunnel 1 nexthop 1.1.1.1\n"),
               std::invalid_argument);  // references unknown ACL
  EXPECT_THROW((void)parse_config("interface tunnel1\nexit\n"),
               std::invalid_argument);  // no domain-name
  EXPECT_THROW((void)parse_config("frobnicate\n"), std::invalid_argument);
}

TEST(MessageQueue, PushPopOrder) {
  MessageQueue<int> queue;
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2U);
  EXPECT_EQ(queue.try_pop(), std::optional<int>{1});
  EXPECT_EQ(queue.try_pop(), std::optional<int>{2});
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(MessageQueue, CloseSemantics) {
  MessageQueue<int> queue;
  queue.push(1);
  queue.close();
  EXPECT_FALSE(queue.push(2));
  EXPECT_EQ(queue.pop(), std::optional<int>{1});  // drains
  EXPECT_EQ(queue.pop(), std::nullopt);           // then closed
}

TEST(RouterConfigService, AppliesQueuedMessages) {
  RouterConfigService service("MIA");
  service.queue().push(ConfigMessage{
      1, "access-list f1 permit 6 40.40.1.0/24 40.40.2.2/32 tos 1\n"});
  service.queue().push(ConfigMessage{
      2, "interface tunnel1\n tunnel destination 20.20.0.7\n"
         " tunnel domain-name MIA SAO AMS\nexit\n"
         "pbr f1 tunnel 1 nexthop 30.30.3.2\n"});
  EXPECT_EQ(service.process_pending(), 2U);
  EXPECT_TRUE(service.acks()[0].ok);
  EXPECT_TRUE(service.acks()[1].ok);
  EXPECT_NE(service.config().find_pbr("f1"), nullptr);
}

TEST(RouterConfigService, BadMessageIsAtomicallyRejected) {
  RouterConfigService service("MIA");
  // One message with a valid line then an invalid one: nothing applies.
  service.queue().push(ConfigMessage{
      7, "access-list ok permit 6 1.0.0.0/8 2.0.0.0/8\nbogus-command\n"});
  EXPECT_EQ(service.process_pending(), 1U);
  ASSERT_EQ(service.acks().size(), 1U);
  EXPECT_FALSE(service.acks()[0].ok);
  EXPECT_EQ(service.acks()[0].message_id, 7U);
  EXPECT_EQ(service.config().find_access_list("ok"), nullptr);  // rolled back
}

TEST(RouterConfigService, PbrRebindIsOneMessage) {
  // The paper's migration: "a single modification of a PBR entry".
  RouterConfigService service("MIA");
  service.queue().push(ConfigMessage{
      1, "access-list f permit 6 40.40.1.0/24 40.40.2.2/32\n"
         "interface tunnel1\n tunnel destination 20.20.0.7\n"
         " tunnel domain-name MIA SAO AMS\nexit\n"
         "interface tunnel2\n tunnel destination 20.20.0.7\n"
         " tunnel domain-name MIA CHI AMS\nexit\n"
         "pbr f tunnel 1 nexthop 30.30.3.2\n"});
  service.process_pending();
  ASSERT_EQ(service.config().find_pbr("f")->tunnel_id, 1U);
  service.queue().push(
      ConfigMessage{2, "pbr f tunnel 2 nexthop 30.30.3.2\n"});
  service.process_pending();
  EXPECT_EQ(service.config().find_pbr("f")->tunnel_id, 2U);
  EXPECT_TRUE(service.acks().back().ok);
}

}  // namespace
}  // namespace hp::freertr
