// Structural checks of the parametric topology generators: node/link
// counts, degree regularity, connectivity and parameter validation.

#include "scenario/topologies.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netsim/paths.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;
using netsim::NodeKind;
using netsim::Topology;

/// Routers reachable from router 0 (hosts never transit).
std::size_t reachable_routers(const Topology& topo) {
  const auto tree =
      netsim::shortest_path_tree(topo, 0, netsim::PathMetric::kHopCount);
  std::size_t count = 0;
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind == NodeKind::kRouter &&
        std::isfinite(tree.dist[n])) {
      ++count;
    }
  }
  return count;
}

std::size_t router_count(const Topology& topo) {
  std::size_t count = 0;
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind == NodeKind::kRouter) ++count;
  }
  return count;
}

TEST(FatTree, CanonicalCounts) {
  for (const unsigned k : {2u, 4u, 8u}) {
    const Topology topo = make_fat_tree(k);
    // 5k^2/4 switches: (k/2)^2 core + k pods x (k/2 agg + k/2 edge).
    EXPECT_EQ(topo.node_count(), 5u * k * k / 4u) << k;
    // Links: core-agg k^2/2 x k/2... each pod wires (k/2)^2 agg-core +
    // (k/2)^2 edge-agg duplex pairs.
    EXPECT_EQ(topo.link_count(), 2u * (2u * k * (k / 2u) * (k / 2u))) << k;
    EXPECT_EQ(reachable_routers(topo), topo.node_count()) << k;
  }
}

TEST(FatTree, HostsHangOffEdgeSwitches) {
  const unsigned k = 4;
  const Topology topo = make_fat_tree(k, /*with_hosts=*/true);
  EXPECT_EQ(topo.node_count(), 5u * k * k / 4u + k * k * k / 4u);
  EXPECT_EQ(router_count(topo), 5u * k * k / 4u);
  EXPECT_TRUE(topo.has_node("p0e0h0"));
  EXPECT_EQ(topo.node(topo.index_of("p0e0h0")).kind, NodeKind::kHost);
  // A host's single link reaches its edge switch.
  EXPECT_TRUE(topo.link_between(topo.index_of("p0e0h0"), topo.index_of("p0e0"))
                  .has_value());
}

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW((void)make_fat_tree(0), std::invalid_argument);
  EXPECT_THROW((void)make_fat_tree(3), std::invalid_argument);
}

TEST(LeafSpine, FullBipartiteCore) {
  const Topology topo = make_leaf_spine(4, 8, 2);
  EXPECT_EQ(topo.node_count(), 4u + 8u + 16u);
  EXPECT_EQ(router_count(topo), 12u);
  EXPECT_EQ(topo.link_count(), 2u * (4u * 8u + 16u));
  for (unsigned l = 0; l < 8; ++l) {
    for (unsigned s = 0; s < 4; ++s) {
      EXPECT_TRUE(topo.link_between(topo.index_of("leaf" + std::to_string(l)),
                                    topo.index_of("spine" + std::to_string(s)))
                      .has_value());
    }
  }
  EXPECT_THROW((void)make_leaf_spine(0, 3), std::invalid_argument);
}

TEST(Ring, EveryNodeHasTwoNeighbours) {
  const Topology topo = make_ring(12);
  EXPECT_EQ(topo.node_count(), 12u);
  EXPECT_EQ(topo.link_count(), 24u);
  for (NodeIndex n = 0; n < 12; ++n) {
    EXPECT_EQ(topo.outgoing(n).size(), 2u) << n;
  }
  EXPECT_EQ(reachable_routers(topo), 12u);
  EXPECT_THROW((void)make_ring(2), std::invalid_argument);
}

TEST(Torus, WraparoundDegreeFour) {
  const Topology topo = make_torus(4, 5);
  EXPECT_EQ(topo.node_count(), 20u);
  EXPECT_EQ(topo.link_count(), 2u * 2u * 20u);  // 2 duplex links per node
  for (NodeIndex n = 0; n < 20; ++n) {
    EXPECT_EQ(topo.outgoing(n).size(), 4u) << n;
  }
  EXPECT_EQ(reachable_routers(topo), 20u);
}

TEST(Torus, SizeTwoDimensionSkipsWrapDuplicates) {
  const Topology topo = make_torus(2, 3);
  // Rows of size 2: vertical wrap would duplicate the grid link.
  for (NodeIndex n = 0; n < 6; ++n) {
    EXPECT_EQ(topo.outgoing(n).size(), 3u) << n;
  }
  EXPECT_THROW((void)make_torus(1, 5), std::invalid_argument);
}

TEST(RandomRegular, SimpleConnectedAndRegular) {
  for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const Topology topo = make_random_regular(16, 4, seed);
    EXPECT_EQ(topo.node_count(), 16u);
    EXPECT_EQ(topo.link_count(), 2u * (16u * 4u / 2u));
    for (NodeIndex n = 0; n < 16; ++n) {
      EXPECT_EQ(topo.outgoing(n).size(), 4u) << "seed=" << seed;
      EXPECT_FALSE(topo.link_between(n, n).has_value());
    }
    EXPECT_EQ(reachable_routers(topo), 16u) << "seed=" << seed;
  }
  // Determinism in the seed.
  const Topology a = make_random_regular(12, 3, 7);
  const Topology b = make_random_regular(12, 3, 7);
  for (NodeIndex n = 0; n < 12; ++n) {
    ASSERT_EQ(a.outgoing(n).size(), b.outgoing(n).size());
    for (std::size_t i = 0; i < a.outgoing(n).size(); ++i) {
      EXPECT_EQ(a.link(a.outgoing(n)[i]).to, b.link(b.outgoing(n)[i]).to);
    }
  }
}

TEST(RandomRegular, ParameterValidation) {
  EXPECT_THROW((void)make_random_regular(8, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)make_random_regular(4, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make_random_regular(5, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hp::scenario
