// Randomized invariant testing of the simulator: arbitrary interleaved
// sequences of flow arrivals/stops/migrations and link failures must
// never violate the conservation and capacity invariants, and byte
// accounting must match the integral of the recorded rate series.

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "netsim/simulator.hpp"

namespace hp::netsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// All simple host1->host2 paths of the Fig 9 topology.
std::vector<Path> all_paths(const Topology& topo) {
  return {
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"}),
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"}),
      topo.path_through({"host1", "MIA", "CAL", "CHI", "AMS", "host2"}),
  };
}

class SimulatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorFuzz, InvariantsUnderRandomEventSequences) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  Topology topo = make_global_p4_lab();
  const auto paths = all_paths(topo);
  Simulator sim(std::move(topo));
  sim.set_sample_interval(1.0);

  std::vector<FlowId> flows;
  std::vector<LinkIndex> down_links;
  double t = 0.0;
  for (int step = 0; step < 60; ++step) {
    t += 1.0 + static_cast<double>(rng() % 5);
    switch (rng() % 5) {
      case 0: {  // new flow (greedy or capped)
        FlowSpec spec;
        spec.name = "f" + std::to_string(step);
        spec.path = paths[rng() % paths.size()];
        spec.demand_mbps = (rng() % 2) ? kInf : 1.0 + rng() % 20;
        flows.push_back(sim.add_flow(t, std::move(spec)));
        break;
      }
      case 1: {  // stop one
        if (!flows.empty()) sim.stop_flow(t, flows[rng() % flows.size()]);
        break;
      }
      case 2: {  // migrate one
        if (!flows.empty()) {
          sim.migrate_flow(t, flows[rng() % flows.size()],
                           paths[rng() % paths.size()]);
        }
        break;
      }
      case 3: {  // fail a random core duplex link
        const LinkIndex l = (rng() % 6) * 2;  // core links come first
        sim.fail_link(t, l);
        down_links.push_back(l);
        break;
      }
      case 4: {  // restore one
        if (!down_links.empty()) {
          const std::size_t k = rng() % down_links.size();
          sim.restore_link(t, down_links[k]);
          down_links.erase(down_links.begin() +
                           static_cast<std::ptrdiff_t>(k));
        }
        break;
      }
    }
  }
  sim.run_until(t + 10.0);

  // Invariant 1: utilization never exceeds 1 (+eps) on any link.
  for (LinkIndex l = 0; l < sim.topology().link_count(); ++l) {
    EXPECT_LE(sim.link_utilization(l), 1.0 + 1e-6) << "link " << l;
    for (const auto& sample : sim.link_utilization_series(l)) {
      EXPECT_LE(sample.value, 1.0 + 1e-6) << "link " << l;
    }
  }

  // Invariant 2: every flow's rate is non-negative and demand-bounded.
  for (const FlowId f : flows) {
    for (const auto& sample : sim.flow_rate_series(f)) {
      EXPECT_GE(sample.value, -1e-9);
    }
  }

  // Invariant 3: byte accounting equals the integral of the rate
  // series (piecewise-constant between recorded change points).  Only
  // flows never crossing a lossy link are checked exactly; the Fig 9
  // topology is loss-free, so all qualify.
  for (const FlowId f : flows) {
    const auto& series = sim.flow_rate_series(f);
    if (series.empty()) continue;
    double integral_mb = 0.0;
    for (std::size_t i = 0; i + 1 < series.size(); ++i) {
      integral_mb +=
          series[i].value * (series[i + 1].t_s - series[i].t_s) / 8.0;
    }
    integral_mb += series.back().value * (sim.now() - series.back().t_s) / 8.0;
    EXPECT_NEAR(sim.transferred_mb(f), integral_mb,
                0.01 * std::max(1.0, integral_mb))
        << "flow " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace hp::netsim
