// Tests for the MLP regressor (paper Section VII future-work model).

#include "ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ml/metrics.hpp"
#include "ml/registry.hpp"

namespace hp::ml {
namespace {

TEST(MLP, FitsLinearFunction) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> u(0.0, 1.0);
  Matrix x(200, 2);
  Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = u(rng);
    x(i, 1) = u(rng);
    y[i] = 2.0 * x(i, 0) - x(i, 1) + 0.5;
  }
  MLPRegressor mlp;
  mlp.fit(x, y);
  EXPECT_LT(rmse(y, mlp.predict(x)), 0.25);
}

TEST(MLP, FitsNonlinearSurfaceBetterThanChance) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  Matrix x(400, 2);
  Vector y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x(i, 0) = u(rng);
    x(i, 1) = u(rng);
    y[i] = std::sin(x(i, 0)) + x(i, 1) * x(i, 1);
  }
  MLPRegressor mlp;
  mlp.fit(x, y);
  const double model_rmse = rmse(y, mlp.predict(x));
  Vector mean_pred(y.size(), mean(y));
  EXPECT_LT(model_rmse, 0.5 * rmse(y, mean_pred));  // ReLU units bend
}

TEST(MLP, EarlyStoppingCapsEpochs) {
  // A constant target converges immediately; the plateau rule stops
  // well before max_iter.
  Matrix x(50, 1);
  Vector y(50, 3.0);
  for (std::size_t i = 0; i < 50; ++i) x(i, 0) = static_cast<double>(i);
  MLPRegressor::Params params;
  params.max_iter = 200;
  MLPRegressor mlp(params);
  mlp.fit(x, y);
  EXPECT_LT(mlp.epochs_run(), 200U);
}

TEST(MLP, DeterministicPerSeed) {
  Matrix x(60, 1);
  Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i) / 10.0;
    y[i] = std::sin(x(i, 0));
  }
  MLPRegressor a, b;
  a.fit(x, y);
  b.fit(x, y);
  const Vector pa = a.predict(x);
  const Vector pb = b.predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(MLP, TwoHiddenLayers) {
  MLPRegressor::Params params;
  params.hidden_layers = {32, 16};
  MLPRegressor mlp(params);
  Matrix x(100, 1);
  Vector y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 25.0 - 2.0;
    y[i] = std::abs(x(i, 0));  // kink: needs at least one hidden layer
  }
  mlp.fit(x, y);
  EXPECT_LT(rmse(y, mlp.predict(x)), 0.2);
}

TEST(MLP, Validation) {
  MLPRegressor mlp;
  EXPECT_THROW((void)mlp.predict(Matrix{{1.0}}), std::logic_error);
  EXPECT_THROW(mlp.fit(Matrix{}, {}), std::invalid_argument);
  mlp.fit(Matrix{{1.0}, {2.0}, {3.0}}, {1.0, 2.0, 3.0});
  EXPECT_THROW((void)mlp.predict(Matrix{{1.0, 2.0}}), std::invalid_argument);
}

TEST(MLP, AvailableFromRegistryAsExtension) {
  auto model = make_regressor("MLP");
  EXPECT_EQ(model->name(), "MLPRegressor");
  // Not part of the paper's R1..R18 catalogue.
  const auto names = regressor_short_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "MLP"), 0);
  EXPECT_EQ(make_regressor_catalog().size(), 18U);
}

TEST(MLP, CloneIsEquivalent) {
  Matrix x(80, 1);
  Vector y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = 0.5 * static_cast<double>(i);
  }
  MLPRegressor original;
  auto clone = original.clone();
  original.fit(x, y);
  clone->fit(x, y);
  EXPECT_DOUBLE_EQ(original.predict(x)[7], clone->predict(x)[7]);
}

}  // namespace
}  // namespace hp::ml
