// TraceSink / TraceScope tests: RAII complete events, null-sink
// no-ops, and the chrome://tracing JSON shape.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace hp::obs {
namespace {

TEST(TraceScope, RecordsOneCompleteEvent) {
  TraceSink sink;
  {
    TraceScope scope(&sink, "compile.all_pairs", "compile");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "compile.all_pairs");
  EXPECT_EQ(events[0].category, "compile");
}

TEST(TraceScope, NullSinkIsNoOp) {
  TraceScope scope(nullptr, "ignored");
  SUCCEED();
}

TEST(TraceScope, SequentialScopesPreserveOrder) {
  TraceSink sink;
  {
    TraceScope a(&sink, "first");
  }
  {
    TraceScope b(&sink, "second");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST(TraceSink, ThreadsRecordConcurrently) {
  TraceSink sink;
  constexpr int kThreads = 4;
  constexpr int kScopes = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink] {
      for (int i = 0; i < kScopes; ++i) {
        TraceScope scope(&sink, "work", "test");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kThreads * kScopes));
}

TEST(TraceSink, EmitsTraceEventFormat) {
  TraceSink sink;
  {
    TraceScope scope(&sink, "sim.simulate", "sim");
  }
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  EXPECT_NE(json.find("\"X\""), std::string::npos);
  EXPECT_NE(json.find("sim.simulate"), std::string::npos);
  EXPECT_NE(json.find("\"cat\""), std::string::npos);
}

TEST(TraceSink, EmptySinkStillValidJson) {
  TraceSink sink;
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace hp::obs
