// FabricBuilder: router-subgraph wiring, route compilation against the
// topology's shortest paths, and link-failure invalidation.

#include "scenario/fabric_builder.hpp"

#include <gtest/gtest.h>

#include "netsim/paths.hpp"
#include "scenario/topologies.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;

TEST(BuiltFabric, WiringMirrorsRouterSubgraph) {
  const auto topo = make_leaf_spine(2, 3, 2);  // hosts must not get ports
  BuiltFabric built(topo);
  EXPECT_EQ(built.router_count(), 5u);
  EXPECT_EQ(built.fabric().node_count(), 5u);

  for (const NodeIndex r : built.routers()) {
    const std::size_t f = built.fabric_index(r);
    EXPECT_EQ(built.topo_index(f), r);
    EXPECT_EQ(built.fabric().node(f).name, built.topology().node(r).name);
    // One port per distinct router neighbour plus the egress port.
    std::size_t router_neighbours = 0;
    for (const auto l : topo.outgoing(r)) {
      if (topo.node(topo.link(l).to).kind == netsim::NodeKind::kRouter) {
        ++router_neighbours;
      }
    }
    EXPECT_EQ(built.fabric().node(f).port_count, router_neighbours + 1);
    EXPECT_EQ(built.egress_port(f), router_neighbours);
    // The egress port is unwired; the rest reach the right neighbours.
    EXPECT_FALSE(
        built.fabric().neighbour(f, built.egress_port(f)).has_value());
  }
  // Leaf0 <-> spine1 wired both ways through some port.
  const std::size_t leaf0 = built.fabric_index(topo.index_of("leaf0"));
  const std::size_t spine1 = built.fabric_index(topo.index_of("spine1"));
  EXPECT_TRUE(built.fabric().port_between(leaf0, spine1).has_value());
  EXPECT_TRUE(built.fabric().port_between(spine1, leaf0).has_value());

  EXPECT_THROW((void)built.fabric_index(topo.index_of("leaf0h0")),
               std::invalid_argument);
}

TEST(BuiltFabric, RoutesFollowShortestPathsAndAreCached) {
  const auto topo = make_ring(8);
  BuiltFabric built(topo);
  const NodeIndex src = topo.index_of("r0");
  const NodeIndex dst = topo.index_of("r3");
  const CompiledRoute* route = built.route(src, dst);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route, built.route(src, dst));  // cached pointer
  EXPECT_EQ(route->path.size(), 3u);        // r0-r1-r2-r3
  EXPECT_EQ(route->expected.hops, 4u);
  EXPECT_EQ(route->expected.egress_node, built.fabric_index(dst));
  ASSERT_TRUE(route->label.has_value());
  EXPECT_THROW((void)built.route(src, src), std::invalid_argument);
}

TEST(BuiltFabric, FailLinkInvalidatesExactlyTheCrossingRoutes) {
  const auto topo = make_ring(6);
  BuiltFabric built(topo);
  const NodeIndex r0 = topo.index_of("r0");
  const NodeIndex r1 = topo.index_of("r1");
  const NodeIndex r2 = topo.index_of("r2");
  const NodeIndex r5 = topo.index_of("r5");

  const CompiledRoute* forward = built.route(r0, r2);  // via r1
  const CompiledRoute* backward = built.route(r0, r5); // the other way
  ASSERT_NE(forward, nullptr);
  ASSERT_NE(backward, nullptr);
  const auto backward_hops = backward->expected.hops;

  const auto affected = built.fail_link(r0, r1);
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0].first, r0);
  EXPECT_EQ(affected[0].second, r2);
  EXPECT_EQ(built.failed_links().size(), 2u);  // both directions

  // The surviving route recompiles identically; the severed pair now
  // detours the long way round (4 links instead of 2).
  EXPECT_EQ(built.route(r0, r5)->expected.hops, backward_hops);
  const CompiledRoute* detour = built.route(r0, r2);
  ASSERT_NE(detour, nullptr);
  EXPECT_EQ(detour->path.size(), 4u);
  EXPECT_EQ(detour->expected.egress_node, built.fabric_index(r2));

  EXPECT_THROW((void)built.fail_link(r0, r2), std::invalid_argument);
}

TEST(BuiltFabric, DisconnectionYieldsNullRoute) {
  const auto topo = make_ring(4);
  BuiltFabric built(topo);
  const NodeIndex r0 = topo.index_of("r0");
  const NodeIndex r1 = topo.index_of("r1");
  const NodeIndex r2 = topo.index_of("r2");
  const NodeIndex r3 = topo.index_of("r3");
  (void)built.fail_link(r0, r1);
  (void)built.fail_link(r2, r3);  // ring cut twice: {r0, r3} vs {r1, r2}
  EXPECT_EQ(built.route(r0, r1), nullptr);
  EXPECT_EQ(built.route(r0, r2), nullptr);
  ASSERT_NE(built.route(r0, r3), nullptr);
  ASSERT_NE(built.route(r1, r2), nullptr);
}

}  // namespace
}  // namespace hp::scenario
