// Tests for the fluid discrete-event simulator.

#include "netsim/simulator.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hp::netsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Topology two_path_topology() {
  // s - a - d (10 Mbps, 5 ms per link) and s - b - d (4 Mbps, 1 ms).
  Topology topo;
  topo.add_node("s");
  topo.add_node("a");
  topo.add_node("b");
  topo.add_node("d");
  topo.add_duplex_link(0, 1, 10.0, 5.0);  // links 0,1
  topo.add_duplex_link(1, 3, 10.0, 5.0);  // links 2,3
  topo.add_duplex_link(0, 2, 4.0, 1.0);   // links 4,5
  topo.add_duplex_link(2, 3, 4.0, 1.0);   // links 6,7
  return topo;
}

TEST(Simulator, FlowRateFollowsBottleneck) {
  Simulator sim(two_path_topology());
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0, 2}, kInf, 0});
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.current_rate(f), 10.0);
  EXPECT_TRUE(sim.is_active(f));
}

TEST(Simulator, TransferAccountsBytes) {
  Simulator sim(two_path_topology());
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {4, 6}, kInf, 0});
  sim.run_until(8.0);
  // 4 Mbps for 8 s = 32 Mbit = 4 MB.
  EXPECT_NEAR(sim.transferred_mb(f), 4.0, 1e-9);
}

TEST(Simulator, StopFreezesTransfer) {
  Simulator sim(two_path_topology());
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {4, 6}, kInf, 0});
  sim.stop_flow(4.0, f);
  sim.run_until(10.0);
  EXPECT_NEAR(sim.transferred_mb(f), 2.0, 1e-9);  // only 4 s of 4 Mbps
  EXPECT_FALSE(sim.is_active(f));
  EXPECT_DOUBLE_EQ(sim.current_rate(f), 0.0);
}

TEST(Simulator, LateFlowSharesFairly) {
  Simulator sim(two_path_topology());
  const FlowId f1 = sim.add_flow(0.0, FlowSpec{"f1", {0, 2}, kInf, 0});
  const FlowId f2 = sim.add_flow(5.0, FlowSpec{"f2", {0, 2}, kInf, 0});
  sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(sim.current_rate(f1), 10.0);
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.current_rate(f1), 5.0);
  EXPECT_DOUBLE_EQ(sim.current_rate(f2), 5.0);
  // f1: 5 s at 10 + 5 s at 5 = 75 Mbit = 9.375 MB.
  EXPECT_NEAR(sim.transferred_mb(f1), 75.0 / 8.0, 1e-9);
}

TEST(Simulator, MigrationChangesRateAndPath) {
  Simulator sim(two_path_topology());
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {4, 6}, kInf, 0});
  sim.migrate_flow(5.0, f, {0, 2});
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.current_rate(f), 10.0);
  EXPECT_EQ(sim.flow_path(f), (Path{0, 2}));
  // 5 s at 4 + 5 s at 10 = 70 Mbit = 8.75 MB.
  EXPECT_NEAR(sim.transferred_mb(f), 70.0 / 8.0, 1e-9);
}

TEST(Simulator, RttReflectsPropagationAndLoad) {
  Simulator sim(two_path_topology());
  // Idle RTT on s-a-d: 2 * (5 + 5) = 20 ms.
  EXPECT_NEAR(sim.path_rtt_ms({0, 2}), 20.0, 1e-9);
  // Idle RTT on s-b-d: 2 * (1 + 1) = 4 ms.
  EXPECT_NEAR(sim.path_rtt_ms({4, 6}), 4.0, 1e-9);
  // Saturating the path adds queueing delay.
  sim.add_flow(0.0, FlowSpec{"f", {0, 2}, kInf, 0});
  sim.run_until(1.0);
  EXPECT_GT(sim.path_rtt_ms({0, 2}), 20.0 + 1.0);
}

TEST(Simulator, ProbesRecordSeries) {
  Simulator sim(two_path_topology());
  sim.schedule_probes("ping", {0, 2}, 0.0, 1.0);
  sim.run_until(10.0);
  const auto& series = sim.probe_series("ping");
  ASSERT_GE(series.size(), 10U);
  EXPECT_NEAR(series.front().value, 20.0, 1e-9);
  EXPECT_THROW((void)sim.probe_series("nope"), std::out_of_range);
}

TEST(Simulator, SamplerRecordsUtilization) {
  Simulator sim(two_path_topology());
  sim.set_sample_interval(1.0);
  sim.add_flow(0.0, FlowSpec{"f", {4, 6}, kInf, 0});
  sim.run_until(5.0);
  const auto& util = sim.link_utilization_series(4);
  ASSERT_GE(util.size(), 4U);
  EXPECT_NEAR(util.back().value, 1.0, 1e-9);  // 4/4 Mbps
}

TEST(Simulator, LossDiscountsGoodput) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_duplex_link(0, 1, 8.0, 1.0, 0.25);  // 25% loss
  Simulator sim(std::move(topo));
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0}, kInf, 0});
  sim.run_until(8.0);
  // 8 Mbps * 8 s * 0.75 / 8 = 6 MB goodput.
  EXPECT_NEAR(sim.transferred_mb(f), 6.0, 1e-9);
}

TEST(Simulator, Validation) {
  Simulator sim(two_path_topology());
  EXPECT_THROW((void)sim.add_flow(0.0, FlowSpec{"bad", {0, 3}, kInf, 0}),
               std::invalid_argument);  // disconnected
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0, 2}, kInf, 0});
  EXPECT_THROW(sim.stop_flow(0.0, 99), std::out_of_range);
  EXPECT_THROW(sim.migrate_flow(0.0, f, {0, 3}), std::invalid_argument);
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
  EXPECT_THROW(sim.add_flow(1.0, FlowSpec{"late", {0, 2}, kInf, 0}),
               std::invalid_argument);  // in the past
}

TEST(Simulator, EventOrderingIsFifoAtSameTimestamp) {
  Simulator sim(two_path_topology());
  std::vector<int> order;
  sim.schedule_callback(1.0, [&](Simulator&) { order.push_back(1); });
  sim.schedule_callback(1.0, [&](Simulator&) { order.push_back(2); });
  sim.schedule_callback(0.5, [&](Simulator&) { order.push_back(0); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, Figure11LatencyMigrationShape) {
  // Experiment 1 end-to-end at the simulator level: ping host1->host2
  // over MIA-SAO-AMS for 60 s, migrate to MIA-CHI-AMS, RTT steps down.
  Topology topo = make_global_p4_lab();
  const Path slow =
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  const Path fast =
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"});
  Simulator sim(std::move(topo));
  const FlowId f = sim.add_flow(0.0, FlowSpec{"icmp", slow, 0.5, 0});
  sim.schedule_probes("ping", slow, 0.0, 1.0);
  sim.run_until(60.0);
  const double rtt_before = sim.path_rtt_ms(slow);
  sim.migrate_flow(60.0, f, fast);
  sim.run_until(120.0);
  const double rtt_after = sim.path_rtt_ms(fast);
  EXPECT_GT(rtt_before, 44.0);  // 2*(0.1+20+2+0.1) plus queueing
  EXPECT_LT(rtt_after, 15.0);
  EXPECT_GT(rtt_before - rtt_after, 30.0);
}

}  // namespace
}  // namespace hp::netsim
