// Tests for Dijkstra and Yen's k-shortest paths over the topology.

#include "netsim/paths.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hp::netsim {
namespace {

TEST(ShortestPath, PicksLowDelayRoute) {
  const Topology topo = make_global_p4_lab();
  const auto path = shortest_path(topo, topo.index_of("MIA"),
                                  topo.index_of("AMS"), PathMetric::kDelay);
  ASSERT_TRUE(path.has_value());
  // MIA-CHI-AMS (4 ms) beats MIA-SAO-AMS (22 ms).
  const auto nodes = path_nodes(topo, *path);
  ASSERT_EQ(nodes.size(), 3U);
  EXPECT_EQ(topo.node(nodes[1]).name, "CHI");
  EXPECT_DOUBLE_EQ(path_weight(topo, *path, PathMetric::kDelay), 4.0);
}

TEST(ShortestPath, MetricChangesTheWinner) {
  const Topology topo = make_global_p4_lab();
  const auto by_capacity =
      shortest_path(topo, topo.index_of("MIA"), topo.index_of("AMS"),
                    PathMetric::kInverseCapacity);
  ASSERT_TRUE(by_capacity.has_value());
  // Inverse capacity prefers the fat 20 Mbps MIA-SAO-AMS pair
  // (1/20 + 1/20) over MIA-CHI-AMS (1/10 + 1/20).
  EXPECT_EQ(topo.node(path_nodes(topo, *by_capacity)[1]).name, "SAO");
}

TEST(ShortestPath, HostsDoNotTransit) {
  // host1 connects only to MIA; a path MIA -> host1 -> ... must never
  // appear.  Build a topology where transiting a host would be the
  // geometric shortcut.
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto h = topo.add_node("h", NodeKind::kHost);
  topo.add_duplex_link(a, h, 100.0, 0.1);
  topo.add_duplex_link(h, b, 100.0, 0.1);
  topo.add_duplex_link(a, b, 100.0, 50.0);  // slow direct link
  const auto path = shortest_path(topo, a, b);
  ASSERT_TRUE(path.has_value());
  // Must take the slow direct link, not the 0.2 ms host shortcut.
  EXPECT_EQ(path->size(), 1U);
  EXPECT_DOUBLE_EQ(path_weight(topo, *path, PathMetric::kDelay), 50.0);
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  EXPECT_EQ(shortest_path(topo, 0, 1), std::nullopt);
  EXPECT_THROW((void)shortest_path(topo, 0, 9), std::out_of_range);
}

TEST(KShortest, FindsTheThreePaperTunnels) {
  const Topology topo = make_global_p4_lab();
  const auto paths = k_shortest_paths(topo, topo.index_of("MIA"),
                                      topo.index_of("AMS"), 3,
                                      PathMetric::kDelay);
  ASSERT_EQ(paths.size(), 3U);
  // Delay order: MIA-CHI-AMS (4), MIA-CAL-CHI-AMS (6), MIA-SAO-AMS (22).
  EXPECT_EQ(topo.node(path_nodes(topo, paths[0])[1]).name, "CHI");
  EXPECT_EQ(topo.node(path_nodes(topo, paths[1])[1]).name, "CAL");
  EXPECT_EQ(topo.node(path_nodes(topo, paths[2])[1]).name, "SAO");
  // Weights are non-decreasing.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(path_weight(topo, paths[i], PathMetric::kDelay),
              path_weight(topo, paths[i - 1], PathMetric::kDelay));
  }
}

TEST(KShortest, PathsAreLooplessAndDistinct) {
  const Topology topo = make_global_p4_lab();
  const auto paths = k_shortest_paths(topo, topo.index_of("host1"),
                                      topo.index_of("host2"), 5);
  EXPECT_GE(paths.size(), 3U);
  std::set<Path> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
  for (const Path& path : paths) {
    const auto nodes = path_nodes(topo, path);
    std::set<NodeIndex> seen(nodes.begin(), nodes.end());
    EXPECT_EQ(seen.size(), nodes.size()) << "loop in path";
    EXPECT_TRUE(topo.is_connected_path(path));
  }
}

// Undirected identity of a directed link, for disjointness checks.
std::pair<NodeIndex, NodeIndex> undirected(const Topology& topo,
                                           LinkIndex idx) {
  const Link& link = topo.link(idx);
  return {std::min(link.from, link.to), std::max(link.from, link.to)};
}

TEST(KDisjoint, FirstPathIsTheShortest) {
  const Topology topo = make_global_p4_lab();
  const auto src = topo.index_of("MIA");
  const auto dst = topo.index_of("AMS");
  const auto paths = k_disjoint_paths(topo, src, dst, 3, PathMetric::kDelay);
  ASSERT_FALSE(paths.empty());
  const auto shortest = shortest_path(topo, src, dst, PathMetric::kDelay);
  ASSERT_TRUE(shortest.has_value());
  EXPECT_EQ(paths.front(), *shortest);
}

TEST(KDisjoint, PathsShareNoDuplexLink) {
  const Topology topo = make_global_p4_lab();
  const auto paths = k_disjoint_paths(topo, topo.index_of("MIA"),
                                      topo.index_of("AMS"), 4);
  ASSERT_GE(paths.size(), 2U);
  std::set<std::pair<NodeIndex, NodeIndex>> used;
  for (const Path& path : paths) {
    EXPECT_TRUE(topo.is_connected_path(path));
    for (const LinkIndex idx : path) {
      // Duplex disjointness: neither direction of a link may recur.
      EXPECT_TRUE(used.insert(undirected(topo, idx)).second)
          << "link reused across supposedly disjoint paths";
    }
  }
}

TEST(KDisjoint, RingYieldsExactlyTheTwoArcs) {
  // A 6-ring has exactly two link-disjoint routes between any pair:
  // clockwise and anticlockwise.  Asking for more must not invent a
  // third.
  Topology topo;
  for (int i = 0; i < 6; ++i) topo.add_node("r" + std::to_string(i));
  for (NodeIndex i = 0; i < 6; ++i) {
    topo.add_duplex_link(i, (i + 1) % 6, 100.0, 1.0);
  }
  const auto paths = k_disjoint_paths(topo, 0, 3, 5, PathMetric::kHopCount);
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(paths[0].size(), 3U);
  EXPECT_EQ(paths[1].size(), 3U);
}

TEST(KDisjoint, BannedLinksExcludedFromEveryPath) {
  // Ban one arc of a 4-ring: only the other arc remains, and it must be
  // the single path returned.
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node("r" + std::to_string(i));
  std::vector<LinkIndex> ring_links;
  for (NodeIndex i = 0; i < 4; ++i) {
    ring_links.push_back(topo.add_duplex_link(i, (i + 1) % 4, 100.0, 1.0));
  }
  // Kill r0->r1 in both directions; the 0 -> 2 route must go via r3.
  const std::vector<LinkIndex> banned{ring_links[0], ring_links[0] + 1};
  const auto paths =
      k_disjoint_paths(topo, 0, 2, 3, PathMetric::kHopCount, banned);
  ASSERT_EQ(paths.size(), 1U);
  for (const LinkIndex idx : paths[0]) {
    EXPECT_NE(undirected(topo, idx), undirected(topo, ring_links[0]));
  }
  EXPECT_TRUE(k_disjoint_paths(topo, 0, 2, 0).empty());
}

TEST(KShortest, ExhaustsFiniteGraphs) {
  // A triangle a-b, b-c, a-c has exactly two simple a->c paths.
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_node("c");
  topo.add_duplex_link(0, 1, 1.0, 1.0);
  topo.add_duplex_link(1, 2, 1.0, 1.0);
  topo.add_duplex_link(0, 2, 1.0, 5.0);
  const auto paths = k_shortest_paths(topo, 0, 2, 10);
  EXPECT_EQ(paths.size(), 2U);
  EXPECT_TRUE(k_shortest_paths(topo, 0, 2, 0).empty());
}

}  // namespace
}  // namespace hp::netsim
