// Tests for StandardScaler, chronological splitting and metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "ml/preprocessing.hpp"

namespace hp::ml {
namespace {

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Matrix x{{1}, {2}, {3}, {4}, {5}};
  StandardScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    sum += t(i, 0);
    sq += t(i, 0) * t(i, 0);
  }
  EXPECT_NEAR(sum / 5.0, 0.0, 1e-12);
  EXPECT_NEAR(sq / 5.0, 1.0, 1e-12);
}

TEST(StandardScaler, InverseTransformRoundTrip) {
  Matrix x{{10, -3}, {20, 7}, {35, 1}};
  StandardScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  const Matrix back = scaler.inverse_transform(t);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      EXPECT_NEAR(back(i, j), x(i, j), 1e-10);
    }
  }
}

TEST(StandardScaler, ConstantColumnShiftOnly) {
  Matrix x{{7}, {7}, {7}};
  StandardScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(t(i, 0), 0.0);
  // Round trip still exact.
  EXPECT_DOUBLE_EQ(scaler.inverse_transform(t)(0, 0), 7.0);
}

TEST(StandardScaler, TrainTestSemantics) {
  // Fit on train only; transform of unseen data uses train statistics.
  Matrix train{{0}, {10}};
  StandardScaler scaler;
  scaler.fit(train);
  Matrix test{{5}};
  EXPECT_NEAR(scaler.transform(test)(0, 0), 0.0, 1e-12);  // (5-5)/5
}

TEST(StandardScaler, VectorOverloads) {
  StandardScaler scaler;
  scaler.fit(Vector{2, 4, 6});
  const Vector t = scaler.transform(Vector{4});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(scaler.inverse_transform(Vector{1.0})[0],
              4.0 + std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(StandardScaler, ErrorsBeforeFitAndOnMismatch) {
  StandardScaler scaler;
  EXPECT_THROW((void)scaler.transform(Matrix{{1.0}}), std::logic_error);
  scaler.fit(Matrix{{1.0, 2.0}});
  EXPECT_THROW((void)scaler.transform(Matrix{{1.0}}), std::invalid_argument);
}

TEST(ChronologicalSplit, PaperSeventyFiveTwentyFive) {
  Matrix x(100, 1);
  Vector y(100);
  for (int i = 0; i < 100; ++i) {
    x(static_cast<std::size_t>(i), 0) = i;
    y[static_cast<std::size_t>(i)] = i;
  }
  const Split s = chronological_split(x, y, 0.75);
  EXPECT_EQ(s.x_train.rows(), 75U);
  EXPECT_EQ(s.x_test.rows(), 25U);
  // Order preserved: the test set is the *later* quarter.
  EXPECT_DOUBLE_EQ(s.x_test(0, 0), 75.0);
  EXPECT_DOUBLE_EQ(s.y_test[24], 99.0);
}

TEST(ChronologicalSplit, RejectsDegenerate) {
  Matrix x(4, 1);
  Vector y(4);
  EXPECT_THROW(chronological_split(x, y, 0.0), std::invalid_argument);
  EXPECT_THROW(chronological_split(x, y, 1.0), std::invalid_argument);
  EXPECT_THROW(chronological_split(x, y, 0.1), std::invalid_argument);
}

TEST(Metrics, RmseKnownValues) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(Metrics, MaeKnownValues) {
  EXPECT_DOUBLE_EQ(mae({1, 2}, {2, 4}), 1.5);
}

TEST(Metrics, R2Conventions) {
  EXPECT_DOUBLE_EQ(r2({1, 2, 3}, {1, 2, 3}), 1.0);
  // Predicting the mean scores exactly zero.
  EXPECT_NEAR(r2({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
  // Worse than the mean is negative.
  EXPECT_LT(r2({1, 2, 3}, {3, 2, 1}), 0.0);
  // Constant truth: 1 iff perfect.
  EXPECT_DOUBLE_EQ(r2({5, 5}, {5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(r2({5, 5}, {5, 6}), 0.0);
}

TEST(Metrics, ErrorsOnBadInput) {
  EXPECT_THROW((void)rmse({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)mae({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace hp::ml
