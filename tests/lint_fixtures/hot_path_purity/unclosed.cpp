// hp-lint-fixture: expect=1
// Golden fixture: a region that is opened and never closed.
inline void dangling() {
  // HP_HOT_BEGIN(orphan)
}
