// hp-lint-fixture: expect=3
// Golden fixture: every class of allocation the hot-path-purity rule
// bans, inside a marked region.  Identical calls *outside* the region
// must stay silent.
#include <cstdlib>
#include <vector>

inline int hot_walk(std::vector<int>& v) {
  v.push_back(0);  // outside the region: allowed
  // HP_HOT_BEGIN(walk)
  v.push_back(1);
  int* p = new int[4];
  void* q = std::malloc(8);
  // HP_HOT_END(walk)
  std::free(q);
  delete[] p;
  return v.back();
}
