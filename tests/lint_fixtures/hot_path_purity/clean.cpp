// hp-lint-fixture: expect=0
// Golden fixture: a well-formed hot region doing only the things hot
// paths are allowed to do -- indexed writes into pre-sized storage,
// plus banned tokens hidden in comments and strings that the code
// mask must keep the scan away from.
#include <vector>

inline void hot_fill(std::vector<int>& out) {
  out.resize(64);  // growth outside the region: allowed
  // HP_HOT_BEGIN(fill)
  // push_back and new are fine to *mention* in a comment.
  const char* note = "malloc( in a string is not a finding";
  for (int i = 0; i < 64; ++i) out[static_cast<unsigned>(i)] = i;
  static_cast<void>(note);
  // HP_HOT_END(fill)
}
