// hp-lint-fixture: expect=1
// Golden fixture: an allocation inside a marked region that a
// justified allowlist entry would waive (e.g. a one-time lazy init
// guarded off the steady-state path).  The self-test re-runs the rule
// with this file allowlisted and asserts the finding is waived.
#include <vector>

inline void lazy_hot(std::vector<int>& v, bool first_call) {
  // HP_HOT_BEGIN(lazy)
  if (first_call) v.reserve(1024);
  v[0] = 1;
  // HP_HOT_END(lazy)
}
