// hp-lint-fixture: expect=2
// Golden fixture: malformed marker structure -- a nested
// HP_HOT_BEGIN and a dangling HP_HOT_END are each a finding (markers
// are flat, one region at a time).
inline void malformed() {
  // HP_HOT_BEGIN(outer)
  // HP_HOT_BEGIN(inner)
  // HP_HOT_END(inner)
  // HP_HOT_END(outer)
}
