// hp-lint-fixture: expect=1
// Golden fixture: dynamically-built metric names.  The rule validates
// the snprintf *format* (with %-specifiers normalized into grammar
// stand-ins) instead of flagging the variable registration, so the
// documented per-link pattern passes and the undocumented one is the
// single expected finding.
#include <cstdio>

struct Registry {
  void gauge(const char* n);
};

inline void register_dynamic(Registry& m, unsigned long link) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "demo.link.%05lu.queue_depth", link);
  m.gauge(buf);
  std::snprintf(buf, sizeof buf, "rogue.link.%05lu.queue_depth", link);
  m.gauge(buf);
}
