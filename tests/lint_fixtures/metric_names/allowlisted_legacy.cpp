// hp-lint-fixture: expect=2
// Golden fixture: a "legacy" registration site with names outside the
// documented families -- the situation an allowlist entry (with a
// written reason) exists for.  The self-test re-runs the rule with
// this file allowlisted and asserts both findings are waived.
struct Registry {
  void counter(const char* n);
};

inline void register_legacy(Registry& m) {
  m.counter("legacy.import.rows");
  m.counter("legacy.import.errors");
}
