// hp-lint-fixture: expect=5
// Golden fixture: one of each metric-names failure mode --
//   1. grammar: uppercase segment
//   2. grammar: too few dot segments
//   3. documented-prefix miss
//   4. one name registered as two kinds
//   5. registration through a variable the rule cannot resolve
struct Registry {
  void counter(const char* n);
  void gauge(const char* n);
  void histogram(const char* n);
};

inline void register_bad(Registry& m, const char* computed_name) {
  m.counter("Bad.Name");
  m.counter("demo");
  m.gauge("other.family.depth");
  m.counter("demo.requests");
  m.gauge("demo.requests");
  m.histogram(computed_name);
}
