// hp-lint-fixture: expect=0
// Golden fixture: deterministic code the rule must NOT flag, including
// near-miss identifiers (chronological_split, strand, runtime) and
// banned tokens inside strings and comments, which the code mask must
// hide from the token scan.
#include <cstdint>
#include <string>

// std::chrono in a comment is fine; so is rand() and time().
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline int chronological_split(int strand, int runtime) {
  const std::string note = "std::chrono and rand() inside a string";
  return strand + runtime + static_cast<int>(note.size());
}
