// hp-lint-fixture: expect=3
// Golden fixture: a legitimate wall-clock phase timer, the kind of
// file src/obs/trace.cpp is.  With no allowlist it must produce the
// three findings below; the self-test then re-runs the rule with this
// file allowlisted and asserts every one of them is waived.
#include <chrono>

struct PhaseTimer {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};
