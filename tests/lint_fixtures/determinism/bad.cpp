// hp-lint-fixture: expect=6
// Golden fixture: every wall-clock / ambient-randomness API the
// determinism rule bans, one finding per line below.
#include <chrono>
#include <cstdlib>
#include <ctime>

long bad_timing() {
  const auto t0 = std::chrono::steady_clock::now();
  srand(42);
  const int r = rand();
  const long t = time(nullptr);
  const long c = clock();
  return t0.time_since_epoch().count() + r + t + c;
}
