// hp-lint-fixture: expect=1
// Golden fixture: uses std::string without including <string>, so it
// only compiles when an includer happens to pull the include in first.
#pragma once

inline std::string leaky_name() { return "leaky"; }
