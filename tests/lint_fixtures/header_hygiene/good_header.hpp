// hp-lint-fixture: expect=0
// Golden fixture: self-sufficient header; compiles as its own TU.
#pragma once

#include <string>

inline std::string fine_name() { return "fine"; }
