// hp-lint-fixture: expect=1
// Golden fixture: a knowingly non-standalone header (e.g. an x-macro
// include stub) -- the case a justified allowlist entry covers.  The
// self-test re-runs the rule with this file allowlisted and asserts
// the finding is waived.
#pragma once

inline std::size_t stub_size() { return sizeof(int); }
