// Unit tests for the batched uint64 fast path: label packing, the
// slice-by-8 fold engine against the polynomial reference engines, the
// compiled fabric walks, the oversized-route fallback, and the
// PolkaService batch/replay wiring.

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "core/polka_service.hpp"
#include "freertr/router_service.hpp"
#include "gf2/irreducible.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "polka/crc.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"

namespace hp::polka {
namespace {

using hp::gf2::Poly;

TEST(RouteLabel, PackUnpackRoundTrip) {
  const RouteId route{Poly(0xDEADBEEFCAFE1234ull)};
  const auto label = pack_label(route);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->bits, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(unpack_label(*label).value, route.value);
  EXPECT_EQ(pack_label_checked(route), *label);
}

TEST(RouteLabel, OversizedRouteDoesNotPack) {
  const RouteId route{Poly::monomial(64)};
  EXPECT_FALSE(pack_label(route).has_value());
  EXPECT_THROW((void)pack_label_checked(route), std::domain_error);
}

TEST(LabelFoldEngine, MatchesPolynomialEnginesOnRandomInputs) {
  std::mt19937_64 rng(2024);
  // The first irreducible generator of each degree 2..12 against random
  // labels.
  for (unsigned d = 2; d <= 12; ++d) {
    const Poly g = hp::gf2::irreducible_of_degree(d).front();
    const LabelFoldEngine fold(g);
    const BitSerialCrc bit_serial(g);
    const TableCrc table(g);
    EXPECT_EQ(fold.degree(), d);
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t bits = rng();
      const Poly dividend(bits);
      const std::uint64_t want = (dividend % g).to_uint64();
      EXPECT_EQ(fold.remainder(bits), want) << "d=" << d;
      EXPECT_EQ(bit_serial.remainder(dividend).to_uint64(), want) << "d=" << d;
      EXPECT_EQ(table.remainder_bits(dividend), want) << "d=" << d;
    }
  }
}

TEST(LabelFoldEngine, RejectsUnusableDegrees) {
  EXPECT_THROW(LabelFoldEngine(Poly(1)), std::invalid_argument);  // degree 0
  EXPECT_THROW(LabelFoldEngine(Poly::monomial(33)), std::invalid_argument);
}

TEST(LabelFoldEngine, Degree32BoundaryMatchesExactDivision) {
  // Degree 32 is the largest allowed generator (remainders and port
  // indices must fit 32 bits).  Check the fold against exact Euclidean
  // division right at that boundary, including labels whose top byte
  // lane is saturated, and one step past it.
  // The enumerator caps at degree 24, so scan for the first degree-32
  // irreducible directly (density ~1/32; a handful of Rabin tests).
  Poly g;
  for (std::uint64_t bits = 1;; bits += 2) {
    g = Poly::monomial(32) + Poly(bits);
    if (hp::gf2::is_irreducible(g)) break;
  }
  ASSERT_EQ(g.degree(), 32);
  const LabelFoldEngine fold(g);
  EXPECT_EQ(fold.degree(), 32u);

  std::mt19937_64 rng(32);
  const std::uint64_t fixed[] = {0ull, 1ull, g.to_uint64(),
                                 0xFFFFFFFFFFFFFFFFull, 0xFF00000000000000ull};
  for (const std::uint64_t bits : fixed) {
    EXPECT_EQ(fold.remainder(bits), (Poly(bits) % g).to_uint64()) << bits;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t bits = rng();
    const std::uint64_t want = (Poly(bits) % g).to_uint64();
    EXPECT_EQ(fold.remainder(bits), want);
    EXPECT_LE(want, 0xFFFFFFFFull);  // remainder degree < 32
  }

  // build_fold_table itself: accepts 32, rejects 33, and its lane-0
  // entries are plain remainders of the byte value.
  std::vector<std::uint64_t> table(kFoldTableSize);
  build_fold_table(g, table.data());
  for (unsigned b = 0; b < 256; ++b) {
    EXPECT_EQ(table[b], b);  // deg(b) < 32 => b mod g == b
  }
  EXPECT_THROW(build_fold_table(Poly::monomial(33), table.data()),
               std::invalid_argument);
}

/// Chain fabric r0 -> r1 -> ... -> r{n-1}, egress on port 0 of the last.
PolkaFabric make_chain(std::size_t n) {
  PolkaFabric fabric(ModEngine::kTable);
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  return fabric;
}

TEST(CompiledFabric, WalkMatchesScalarForward) {
  const PolkaFabric fabric = make_chain(8);
  std::vector<std::size_t> path(8);
  for (std::size_t i = 0; i < 8; ++i) path[i] = i;
  const RouteId route = fabric.route_for_path(path, 0U);

  const auto trace = fabric.forward(route, 0);
  ASSERT_EQ(trace.nodes.size(), 8u);

  const CompiledFabric& fast = fabric.compiled();
  EXPECT_EQ(fast.node_count(), 8u);
  const auto result = fast.forward_one(pack_label_checked(route), 0);
  EXPECT_EQ(result.egress_node, trace.nodes.back());
  EXPECT_EQ(result.egress_port, trace.ports.back());
  EXPECT_EQ(result.hops, trace.nodes.size());
}

TEST(CompiledFabric, CompiledViewIsCachedAndInvalidated) {
  PolkaFabric fabric = make_chain(3);
  const CompiledFabric* before = &fabric.compiled();
  EXPECT_EQ(before, &fabric.compiled());  // cached
  fabric.add_node("extra", 2);
  const CompiledFabric& after = fabric.compiled();
  EXPECT_EQ(after.node_count(), 4u);  // rebuilt with the new node
}

TEST(CompiledFabric, BatchMatchesPerPacketWalks) {
  const PolkaFabric fabric = make_chain(6);
  std::vector<std::size_t> path(6);
  for (std::size_t i = 0; i < 6; ++i) path[i] = i;

  std::vector<RouteLabel> labels;
  std::vector<PacketResult> expected;
  const CompiledFabric& fast = fabric.compiled();
  for (unsigned egress = 0; egress < 4; ++egress) {
    const RouteId route = fabric.route_for_path(path, egress);
    const RouteLabel label = pack_label_checked(route);
    labels.push_back(label);
    expected.push_back(fast.forward_one(label, 0));
  }
  std::vector<PacketResult> got(labels.size());
  const std::size_t mods =
      fast.forward_batch(labels, 0, std::span<PacketResult>(got));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(mods, 4u * 6u);

  // Mixed-ingress overload.
  std::vector<std::uint32_t> firsts(labels.size(), 0);
  firsts.back() = 2;
  expected.back() = fast.forward_one(labels.back(), 2);
  const std::size_t mods2 = fast.forward_batch(
      labels, std::span<const std::uint32_t>(firsts),
      std::span<PacketResult>(got));
  EXPECT_EQ(got, expected);
  EXPECT_LT(mods2, mods);  // the re-injected packet walks fewer hops
}

TEST(CompiledFabric, BatchValidatesArguments) {
  const PolkaFabric fabric = make_chain(3);
  const CompiledFabric& fast = fabric.compiled();
  std::vector<RouteLabel> labels(2);
  std::vector<PacketResult> results(3);
  EXPECT_THROW((void)fast.forward_batch(labels, 0,
                                        std::span<PacketResult>(results)),
               std::invalid_argument);
  results.resize(2);
  EXPECT_THROW((void)fast.forward_batch(labels, 99,
                                        std::span<PacketResult>(results)),
               std::out_of_range);
}

TEST(PolkaFabricBatch, OversizedRoutesFallBackToScalar) {
  // 24 nodes of 8 ports: nodeID degrees sum far past 64, so a full-path
  // routeID cannot pack into a label.
  PolkaFabric fabric(ModEngine::kTable);
  const std::size_t n = 24;
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 8);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  std::vector<std::size_t> path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;
  const RouteId long_route = fabric.route_for_path(path, 0U);
  EXPECT_FALSE(pack_label(long_route).has_value());

  // Short route that does pack, to exercise the mixed-chunk repack.
  std::vector<std::size_t> short_path{0, 1, 2};
  const RouteId short_route = fabric.route_for_path(short_path, 0U);
  ASSERT_TRUE(pack_label(short_route).has_value());

  const std::vector<RouteId> routes{short_route, long_route, short_route};
  std::vector<PacketResult> got(routes.size());
  const std::size_t mods =
      fabric.forward_batch(routes, 0, std::span<PacketResult>(got));

  std::size_t want_mods = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const auto trace = fabric.forward(routes[i], 0);
    EXPECT_EQ(got[i].egress_node, trace.nodes.back()) << i;
    EXPECT_EQ(got[i].egress_port, trace.ports.back()) << i;
    EXPECT_EQ(got[i].hops, trace.nodes.size()) << i;
    want_mods += trace.mod_operations;
  }
  EXPECT_EQ(mods, want_mods);
}

TEST(WorkloadPackets, PacketCountShapes) {
  hp::netsim::FlowSpec spec;
  spec.size_mb = 1.5;  // 1.5e6 bytes / 1500 = 1000 packets
  EXPECT_EQ(hp::netsim::packet_count(spec), 1000u);
  spec.size_mb = 1e-9;
  EXPECT_EQ(hp::netsim::packet_count(spec), 1u);  // at least one packet
  spec.size_mb = -1.0;
  EXPECT_EQ(hp::netsim::packet_count(spec), 1u);  // degenerate spec
  spec.size_mb = std::numeric_limits<double>::infinity();
  EXPECT_EQ(hp::netsim::packet_count(spec, 1500.0, 4096), 4096u);  // capped
  spec.size_mb = 1e9;
  EXPECT_EQ(hp::netsim::packet_count(spec, 1500.0, 4096), 4096u);
  EXPECT_THROW((void)hp::netsim::packet_count(spec, 0.0),
               std::invalid_argument);
}

/// PolkaService over the paper's Fig 9 topology with two tunnels.
struct ServiceHarness {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  hp::freertr::RouterConfigService edge{"MIA"};
  hp::core::PolkaService service{topo, edge};

  ServiceHarness() {
    service.define_tunnel(1, {"MIA", "SAO", "AMS"}, "host2", "10.0.0.2");
    service.define_tunnel(2, {"MIA", "CHI", "AMS"}, "host2", "10.0.0.2");
  }
};

TEST(PolkaServiceBatch, ForwardBatchMatchesScalarReference) {
  ServiceHarness h;
  const auto report = h.service.forward_batch(1000);
  EXPECT_EQ(report.packets, 2000u);  // 1000 per tunnel
  EXPECT_EQ(report.mismatches, 0u);
  // Both tunnels are 3 routers long => 3 mods per packet.
  EXPECT_EQ(report.mod_operations, 2000u * 3u);
}

TEST(PolkaServiceBatch, ReplayWorkloadStreamsEveryFlowPacket) {
  ServiceHarness h;
  const auto path = h.topo.path_through({"host1", "MIA", "SAO", "AMS"});
  hp::netsim::WorkloadParams params;
  params.duration_s = 30.0;
  params.arrival_rate_per_s = 1.0;
  const auto flows = hp::netsim::generate_workload({path}, params);
  ASSERT_FALSE(flows.empty());

  std::size_t want_packets = 0;
  for (const auto& f : flows) {
    want_packets += hp::netsim::packet_count(f.spec);
  }
  const auto report = h.service.replay_workload(flows, 64);
  EXPECT_EQ(report.packets, want_packets);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.mod_operations, want_packets * 3u);

  EXPECT_THROW((void)h.service.replay_workload(flows, 0),
               std::invalid_argument);
}

TEST(PolkaServiceBatch, ThreadedReplayMatchesSingleThreaded) {
  ServiceHarness h;
  const auto path = h.topo.path_through({"host1", "MIA", "SAO", "AMS"});
  hp::netsim::WorkloadParams params;
  params.duration_s = 30.0;
  params.arrival_rate_per_s = 1.0;
  const auto flows = hp::netsim::generate_workload({path}, params);
  ASSERT_FALSE(flows.empty());

  const auto single = h.service.replay_workload(flows, 64);
  const auto sharded = h.service.replay_workload(flows, 64, 1500.0, 4);
  EXPECT_EQ(sharded.packets, single.packets);
  EXPECT_EQ(sharded.mod_operations, single.mod_operations);
  EXPECT_EQ(sharded.mismatches, 0u);
}

}  // namespace
}  // namespace hp::polka
