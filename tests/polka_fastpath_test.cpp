// Unit tests for the batched uint64 fast path: label packing, the
// slice-by-8 fold engine against the polynomial reference engines, the
// compiled fabric walks, the oversized-route fallback, and the
// PolkaService batch/replay wiring.

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "core/polka_service.hpp"
#include "freertr/router_service.hpp"
#include "gf2/irreducible.hpp"
#include "netsim/topology.hpp"
#include "netsim/workload.hpp"
#include "polka/crc.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"

namespace hp::polka {
namespace {

using hp::gf2::Poly;

TEST(RouteLabel, PackUnpackRoundTrip) {
  const RouteId route{Poly(0xDEADBEEFCAFE1234ull)};
  const auto label = pack_label(route);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->bits, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(unpack_label(*label).value, route.value);
  EXPECT_EQ(pack_label_checked(route), *label);
}

TEST(RouteLabel, OversizedRouteDoesNotPack) {
  const RouteId route{Poly::monomial(64)};
  EXPECT_FALSE(pack_label(route).has_value());
  EXPECT_THROW((void)pack_label_checked(route), std::domain_error);
}

TEST(LabelFoldEngine, MatchesPolynomialEnginesOnRandomInputs) {
  std::mt19937_64 rng(2024);
  // The first irreducible generator of each degree 2..12 against random
  // labels.
  for (unsigned d = 2; d <= 12; ++d) {
    const Poly g = hp::gf2::irreducible_of_degree(d).front();
    const LabelFoldEngine fold(g);
    const BitSerialCrc bit_serial(g);
    const TableCrc table(g);
    EXPECT_EQ(fold.degree(), d);
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t bits = rng();
      const Poly dividend(bits);
      const std::uint64_t want = (dividend % g).to_uint64();
      EXPECT_EQ(fold.remainder(bits), want) << "d=" << d;
      EXPECT_EQ(bit_serial.remainder(dividend).to_uint64(), want) << "d=" << d;
      EXPECT_EQ(table.remainder_bits(dividend), want) << "d=" << d;
    }
  }
}

TEST(LabelFoldEngine, RejectsUnusableDegrees) {
  EXPECT_THROW(LabelFoldEngine(Poly(1)), std::invalid_argument);  // degree 0
  EXPECT_THROW(LabelFoldEngine(Poly::monomial(33)), std::invalid_argument);
}

TEST(LabelFoldEngine, Degree32BoundaryMatchesExactDivision) {
  // Degree 32 is the largest allowed generator (remainders and port
  // indices must fit 32 bits).  Check the fold against exact Euclidean
  // division right at that boundary, including labels whose top byte
  // lane is saturated, and one step past it.
  // The enumerator caps at degree 24, so scan for the first degree-32
  // irreducible directly (density ~1/32; a handful of Rabin tests).
  Poly g;
  for (std::uint64_t bits = 1;; bits += 2) {
    g = Poly::monomial(32) + Poly(bits);
    if (hp::gf2::is_irreducible(g)) break;
  }
  ASSERT_EQ(g.degree(), 32);
  const LabelFoldEngine fold(g);
  EXPECT_EQ(fold.degree(), 32u);

  std::mt19937_64 rng(32);
  const std::uint64_t fixed[] = {0ull, 1ull, g.to_uint64(),
                                 0xFFFFFFFFFFFFFFFFull, 0xFF00000000000000ull};
  for (const std::uint64_t bits : fixed) {
    EXPECT_EQ(fold.remainder(bits), (Poly(bits) % g).to_uint64()) << bits;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t bits = rng();
    const std::uint64_t want = (Poly(bits) % g).to_uint64();
    EXPECT_EQ(fold.remainder(bits), want);
    EXPECT_LE(want, 0xFFFFFFFFull);  // remainder degree < 32
  }

  // build_fold_table itself: accepts 32, rejects 33, and its lane-0
  // entries are plain remainders of the byte value.
  std::vector<std::uint64_t> table(kFoldTableSize);
  build_fold_table(g, table.data());
  for (unsigned b = 0; b < 256; ++b) {
    EXPECT_EQ(table[b], b);  // deg(b) < 32 => b mod g == b
  }
  EXPECT_THROW(build_fold_table(Poly::monomial(33), table.data()),
               std::invalid_argument);
}

/// Chain fabric r0 -> r1 -> ... -> r{n-1}, egress on port 0 of the last.
PolkaFabric make_chain(std::size_t n) {
  PolkaFabric fabric(ModEngine::kTable);
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  return fabric;
}

TEST(CompiledFabric, WalkMatchesScalarForward) {
  const PolkaFabric fabric = make_chain(8);
  std::vector<std::size_t> path(8);
  for (std::size_t i = 0; i < 8; ++i) path[i] = i;
  const RouteId route = fabric.route_for_path(path, 0U);

  const auto trace = fabric.forward(route, 0);
  ASSERT_EQ(trace.nodes.size(), 8u);

  const CompiledFabric& fast = fabric.compiled();
  EXPECT_EQ(fast.node_count(), 8u);
  const auto result = fast.forward_one(pack_label_checked(route), 0);
  EXPECT_EQ(result.egress_node, trace.nodes.back());
  EXPECT_EQ(result.egress_port, trace.ports.back());
  EXPECT_EQ(result.hops, trace.nodes.size());
}

TEST(CompiledFabric, CompiledViewIsCachedAndInvalidated) {
  PolkaFabric fabric = make_chain(3);
  const CompiledFabric* before = &fabric.compiled();
  EXPECT_EQ(before, &fabric.compiled());  // cached
  fabric.add_node("extra", 2);
  const CompiledFabric& after = fabric.compiled();
  EXPECT_EQ(after.node_count(), 4u);  // rebuilt with the new node
}

TEST(CompiledFabric, BatchMatchesPerPacketWalks) {
  const PolkaFabric fabric = make_chain(6);
  std::vector<std::size_t> path(6);
  for (std::size_t i = 0; i < 6; ++i) path[i] = i;

  std::vector<RouteLabel> labels;
  std::vector<PacketResult> expected;
  const CompiledFabric& fast = fabric.compiled();
  for (unsigned egress = 0; egress < 4; ++egress) {
    const RouteId route = fabric.route_for_path(path, egress);
    const RouteLabel label = pack_label_checked(route);
    labels.push_back(label);
    expected.push_back(fast.forward_one(label, 0));
  }
  std::vector<PacketResult> got(labels.size());
  const std::size_t mods =
      fast.forward_batch(labels, 0, std::span<PacketResult>(got));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(mods, 4u * 6u);

  // Mixed-ingress overload.
  std::vector<std::uint32_t> firsts(labels.size(), 0);
  firsts.back() = 2;
  expected.back() = fast.forward_one(labels.back(), 2);
  const std::size_t mods2 = fast.forward_batch(
      labels, std::span<const std::uint32_t>(firsts),
      std::span<PacketResult>(got));
  EXPECT_EQ(got, expected);
  EXPECT_LT(mods2, mods);  // the re-injected packet walks fewer hops
}

TEST(CompiledFabric, InterleavedBatchRefillsMatchScalarWalks) {
  // Far more packets than the kernel keeps in flight, with wildly
  // uneven walk lengths (different ingress depths and a few hop-capped
  // loopers), so lane refill and compaction both trigger.  Every result
  // must equal the scalar walk's, under both fold kernels.
  const PolkaFabric fabric = make_chain(12);
  std::vector<std::size_t> path(12);
  for (std::size_t i = 0; i < 12; ++i) path[i] = i;

  std::vector<RouteLabel> labels;
  std::vector<std::uint32_t> firsts;
  for (unsigned egress = 0; egress < 4; ++egress) {
    const RouteLabel label =
        pack_label_checked(fabric.route_for_path(path, egress));
    for (std::uint32_t first = 0; first < 12; first += 3) {
      labels.push_back(label);
      firsts.push_back(first);
    }
    labels.push_back(RouteLabel{0});  // orbits ports 0/1; dies on the cap
    firsts.push_back(egress % 12);
  }
  ASSERT_GT(labels.size(), 2 * 8u);  // > 2x the in-flight lane count

  const std::size_t max_hops = 16;
  for (const FoldKernel kernel :
       {FoldKernel::kTable, FoldKernel::kClmulBarrett}) {
    if (kernel == FoldKernel::kClmulBarrett && !clmul_fold_supported()) {
      continue;
    }
    const CompiledFabric fast(fabric, kernel);
    std::vector<PacketResult> expected;
    std::size_t want_mods = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      expected.push_back(fast.forward_one(labels[i], firsts[i], max_hops));
      want_mods += expected.back().hops;
    }
    std::vector<PacketResult> got(labels.size());
    const std::size_t mods = fast.forward_batch(
        labels, firsts, std::span<PacketResult>(got), max_hops);
    EXPECT_EQ(got, expected) << to_string(kernel);
    EXPECT_EQ(mods, want_mods) << to_string(kernel);
  }
}

TEST(CompiledFabric, ZeroHopBudgetKillsEveryPacketWithoutFolding) {
  const PolkaFabric fabric = make_chain(3);
  const CompiledFabric& fast = fabric.compiled();
  const PacketResult killed = fast.forward_one(RouteLabel{1}, 1, 0);
  EXPECT_TRUE(killed.ttl_expired);
  EXPECT_EQ(killed.hops, 0u);
  std::vector<RouteLabel> labels(3, RouteLabel{1});
  std::vector<PacketResult> results(3);
  EXPECT_EQ(fast.forward_batch(labels, 1, std::span<PacketResult>(results), 0),
            0u);
  for (const PacketResult& r : results) EXPECT_EQ(r, killed);
}

TEST(CompiledFabric, BatchValidatesArguments) {
  const PolkaFabric fabric = make_chain(3);
  const CompiledFabric& fast = fabric.compiled();
  std::vector<RouteLabel> labels(2);
  std::vector<PacketResult> results(3);
  EXPECT_THROW((void)fast.forward_batch(labels, 0,
                                        std::span<PacketResult>(results)),
               std::invalid_argument);
  results.resize(2);
  EXPECT_THROW((void)fast.forward_batch(labels, 99,
                                        std::span<PacketResult>(results)),
               std::out_of_range);
}

TEST(CompiledFabric, TtlExpiredFlagOnLoopingLabel) {
  // Two nodes wired into a cycle on port 0; the all-zero label computes
  // port 0 everywhere, so the packet orbits until the hop cap kills it.
  PolkaFabric fabric(ModEngine::kTable);
  fabric.add_node("a", 2);
  fabric.add_node("b", 2);
  fabric.connect(0, 0, 1);
  fabric.connect(1, 0, 0);

  const CompiledFabric& fast = fabric.compiled();
  const PacketResult looped = fast.forward_one(RouteLabel{0}, 0, 8);
  EXPECT_TRUE(looped.ttl_expired);
  EXPECT_EQ(looped.hops, 8u);

  const auto trace = fabric.forward(RouteId{Poly(0)}, 0, 8);
  EXPECT_TRUE(trace.ttl_expired);
  EXPECT_EQ(trace.nodes.size(), 8u);

  // A delivered packet never carries the flag -- and the flag makes a
  // kill comparable-distinct from a delivery with the same tail.
  const PolkaFabric chain = make_chain(4);
  std::vector<std::size_t> path{0, 1, 2, 3};
  const RouteId route = chain.route_for_path(path, 0U);
  const PacketResult delivered =
      chain.compiled().forward_one(pack_label_checked(route), 0);
  EXPECT_FALSE(delivered.ttl_expired);
  PacketResult killed = delivered;
  killed.ttl_expired = true;
  EXPECT_NE(delivered, killed);
}

TEST(SegmentedRoute, SingleSegmentMatchesRouteForPath) {
  const PolkaFabric fabric = make_chain(8);
  std::vector<std::size_t> path(8);
  for (std::size_t i = 0; i < 8; ++i) path[i] = i;

  // 8 nodes of degree 2: the whole path fits one label, and that label
  // is bit-identical to the packed full-path routeID.
  const SegmentedRoute segs = fabric.segmented_route_for_path(path, 0U);
  ASSERT_TRUE(segs.single_label());
  EXPECT_TRUE(segs.waypoints.empty());
  EXPECT_EQ(segs.labels.front(),
            pack_label_checked(fabric.route_for_path(path, 0U)));

  const CompiledFabric& fast = fabric.compiled();
  EXPECT_EQ(fast.forward_segmented(segs.labels, segs.waypoints, 0),
            fast.forward_one(segs.labels.front(), 0));
}

TEST(SegmentedRoute, CrossesThe64BitCliffOnTheFastPath) {
  // The exact fabric of OversizedRoutesFallBackToScalar: 24 nodes of 8
  // ports (degree 3 each), full-chain routeID degree ~72 -- no single
  // label exists.  The segmented route re-labels mid-chain and the
  // compiled fast path delivers it with the same hop sequence as the
  // polynomial slow path.
  PolkaFabric fabric(ModEngine::kTable);
  const std::size_t n = 24;
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 8);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  std::vector<std::size_t> path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;

  const RouteId long_route = fabric.route_for_path(path, 0U);
  ASSERT_FALSE(pack_label(long_route).has_value());

  const SegmentedRoute segs = fabric.segmented_route_for_path(path, 0U);
  ASSERT_GE(segs.labels.size(), 2u);
  EXPECT_EQ(segs.waypoints.size(), segs.labels.size() - 1);

  const CompiledFabric& fast = fabric.compiled();
  const PacketResult got = fast.forward_segmented(segs.labels, segs.waypoints, 0);
  const auto trace = fabric.forward(long_route, 0);
  EXPECT_FALSE(got.ttl_expired);
  EXPECT_EQ(got.egress_node, trace.nodes.back());
  EXPECT_EQ(got.egress_port, trace.ports.back());
  EXPECT_EQ(got.hops, trace.nodes.size());

  // Hop-sequence parity: stepping the fold engine by hand (with the
  // waypoint swap) visits exactly the nodes the slow path visited.
  std::size_t seg = 0;
  std::size_t current = 0;
  for (std::size_t hop = 0; hop < trace.nodes.size(); ++hop) {
    if (seg < segs.waypoints.size() && current == segs.waypoints[seg]) ++seg;
    ASSERT_EQ(current, trace.nodes[hop]) << "hop " << hop;
    const std::uint32_t port = fast.port_of(segs.labels[seg], current);
    ASSERT_EQ(port, trace.ports[hop]) << "hop " << hop;
    const auto peer = fabric.neighbour(current, port);
    if (!peer) break;
    current = *peer;
  }

  // Batched segmented entry point, mixing a single-label packet in.
  std::vector<std::size_t> short_path{0, 1, 2};
  const SegmentedRoute short_segs =
      fabric.segmented_route_for_path(short_path, 0U);
  ASSERT_TRUE(short_segs.single_label());
  std::vector<RouteLabel> pool = segs.labels;
  pool.insert(pool.end(), short_segs.labels.begin(), short_segs.labels.end());
  const std::vector<std::uint32_t> waypoints = segs.waypoints;
  const std::vector<SegmentRef> refs{
      {0, 0, static_cast<std::uint32_t>(segs.labels.size())},
      {static_cast<std::uint32_t>(segs.labels.size()),
       static_cast<std::uint32_t>(waypoints.size()), 1}};
  const std::vector<std::uint32_t> firsts{0, 0};
  std::vector<PacketResult> results(2);
  const std::size_t mods = fast.forward_batch_segmented(
      pool, waypoints, refs, firsts, results);
  EXPECT_EQ(results[0], got);
  EXPECT_EQ(results[1], fast.forward_one(short_segs.labels.front(), 0));
  EXPECT_EQ(mods, results[0].hops + results[1].hops);
}

TEST(SegmentedRoute, ValidatesInputs) {
  const PolkaFabric fabric = make_chain(4);
  EXPECT_THROW((void)fabric.segmented_route_for_path({}, 0U),
               std::invalid_argument);
  EXPECT_THROW((void)fabric.segmented_route_for_path({0, 2}, 0U),
               std::invalid_argument);  // 0 and 2 are not wired
  // Egress port polynomial must fit the last node's degree (4 ports =>
  // degree 2 => ports 0..3 only).
  EXPECT_THROW((void)fabric.segmented_route_for_path({0, 1}, 200U),
               std::domain_error);

  // Degenerate single-node path: the label is the bare egress bits.
  const SegmentedRoute solo = fabric.segmented_route_for_path({1}, 3U);
  ASSERT_TRUE(solo.single_label());
  EXPECT_EQ(solo.labels.front().bits, 3u);
  const PacketResult r = fabric.compiled().forward_segmented(
      solo.labels, solo.waypoints, 1);
  EXPECT_EQ(r.egress_node, 1u);
  EXPECT_EQ(r.egress_port, 3u);
  EXPECT_EQ(r.hops, 1u);

  const CompiledFabric& fast = fabric.compiled();
  std::vector<SegmentRef> bad_refs{{5, 0, 3}};  // slice past the pool
  std::vector<std::uint32_t> firsts{0};
  std::vector<PacketResult> results(1);
  EXPECT_THROW((void)fast.forward_batch_segmented(solo.labels, solo.waypoints,
                                                  bad_refs, firsts, results),
               std::out_of_range);
}

TEST(PolkaFabricBatch, OversizedRoutesFallBackToScalar) {
  // 24 nodes of 8 ports: nodeID degrees sum far past 64, so a full-path
  // routeID cannot pack into a label.
  PolkaFabric fabric(ModEngine::kTable);
  const std::size_t n = 24;
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 8);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  std::vector<std::size_t> path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;
  const RouteId long_route = fabric.route_for_path(path, 0U);
  EXPECT_FALSE(pack_label(long_route).has_value());

  // Short route that does pack, to exercise the mixed-chunk repack.
  std::vector<std::size_t> short_path{0, 1, 2};
  const RouteId short_route = fabric.route_for_path(short_path, 0U);
  ASSERT_TRUE(pack_label(short_route).has_value());

  const std::vector<RouteId> routes{short_route, long_route, short_route};
  std::vector<PacketResult> got(routes.size());
  const std::size_t mods =
      fabric.forward_batch(routes, 0, std::span<PacketResult>(got));

  std::size_t want_mods = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const auto trace = fabric.forward(routes[i], 0);
    EXPECT_EQ(got[i].egress_node, trace.nodes.back()) << i;
    EXPECT_EQ(got[i].egress_port, trace.ports.back()) << i;
    EXPECT_EQ(got[i].hops, trace.nodes.size()) << i;
    want_mods += trace.mod_operations;
  }
  EXPECT_EQ(mods, want_mods);
}

TEST(WorkloadPackets, PacketCountShapes) {
  hp::netsim::FlowSpec spec;
  spec.size_mb = 1.5;  // 1.5e6 bytes / 1500 = 1000 packets
  EXPECT_EQ(hp::netsim::packet_count(spec), 1000u);
  spec.size_mb = 1e-9;
  EXPECT_EQ(hp::netsim::packet_count(spec), 1u);  // at least one packet
  spec.size_mb = -1.0;
  EXPECT_EQ(hp::netsim::packet_count(spec), 1u);  // degenerate spec
  spec.size_mb = std::numeric_limits<double>::infinity();
  EXPECT_EQ(hp::netsim::packet_count(spec, 1500.0, 4096), 4096u);  // capped
  spec.size_mb = 1e9;
  EXPECT_EQ(hp::netsim::packet_count(spec, 1500.0, 4096), 4096u);
  EXPECT_THROW((void)hp::netsim::packet_count(spec, 0.0),
               std::invalid_argument);
}

/// PolkaService over the paper's Fig 9 topology with two tunnels.
struct ServiceHarness {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  hp::freertr::RouterConfigService edge{"MIA"};
  hp::core::PolkaService service{topo, edge};

  ServiceHarness() {
    service.define_tunnel(1, {"MIA", "SAO", "AMS"}, "host2", "10.0.0.2");
    service.define_tunnel(2, {"MIA", "CHI", "AMS"}, "host2", "10.0.0.2");
  }
};

TEST(PolkaServiceBatch, ForwardBatchMatchesScalarReference) {
  ServiceHarness h;
  const auto report = h.service.forward_batch(1000);
  EXPECT_EQ(report.packets, 2000u);  // 1000 per tunnel
  EXPECT_EQ(report.mismatches, 0u);
  // Both tunnels are 3 routers long => 3 mods per packet.
  EXPECT_EQ(report.mod_operations, 2000u * 3u);
}

TEST(PolkaServiceBatch, ReplayWorkloadStreamsEveryFlowPacket) {
  ServiceHarness h;
  const auto path = h.topo.path_through({"host1", "MIA", "SAO", "AMS"});
  hp::netsim::WorkloadParams params;
  params.duration_s = 30.0;
  params.arrival_rate_per_s = 1.0;
  const auto flows = hp::netsim::generate_workload({path}, params);
  ASSERT_FALSE(flows.empty());

  std::size_t want_packets = 0;
  for (const auto& f : flows) {
    want_packets += hp::netsim::packet_count(f.spec);
  }
  const auto report = h.service.replay_workload(flows, 64);
  EXPECT_EQ(report.packets, want_packets);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.mod_operations, want_packets * 3u);

  EXPECT_THROW((void)h.service.replay_workload(flows, 0),
               std::invalid_argument);
}

TEST(PolkaServiceBatch, ThreadedReplayMatchesSingleThreaded) {
  ServiceHarness h;
  const auto path = h.topo.path_through({"host1", "MIA", "SAO", "AMS"});
  hp::netsim::WorkloadParams params;
  params.duration_s = 30.0;
  params.arrival_rate_per_s = 1.0;
  const auto flows = hp::netsim::generate_workload({path}, params);
  ASSERT_FALSE(flows.empty());

  const auto single = h.service.replay_workload(flows, 64);
  const auto sharded = h.service.replay_workload(flows, 64, 1500.0, 4);
  EXPECT_EQ(sharded.packets, single.packets);
  EXPECT_EQ(sharded.mod_operations, single.mod_operations);
  EXPECT_EQ(sharded.mismatches, 0u);
}

}  // namespace
}  // namespace hp::polka
