// Tests for the time-series store and path telemetry agents.

#include <gtest/gtest.h>

#include <limits>

#include "telemetry/agent.hpp"
#include "telemetry/store.hpp"

namespace hp::telemetry {
namespace {

TEST(TimeSeriesStore, AppendAndQuery) {
  TimeSeriesStore store;
  store.append("bw", {0.0, 10.0});
  store.append("bw", {1.0, 12.0});
  store.append("bw", {2.0, 9.0});
  EXPECT_TRUE(store.has_series("bw"));
  EXPECT_EQ(store.size("bw"), 3U);
  EXPECT_DOUBLE_EQ(store.latest("bw")->value, 9.0);
}

TEST(TimeSeriesStore, RangeQuery) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) {
    store.append("s", {static_cast<double>(i), static_cast<double>(i * i)});
  }
  const auto mid = store.range("s", 2.0, 5.0);
  ASSERT_EQ(mid.size(), 4U);
  EXPECT_DOUBLE_EQ(mid.front().t_s, 2.0);
  EXPECT_DOUBLE_EQ(mid.back().t_s, 5.0);
  EXPECT_TRUE(store.range("s", 100.0, 200.0).empty());
  EXPECT_TRUE(store.range("unknown", 0.0, 1.0).empty());
}

TEST(TimeSeriesStore, RangeOnLargeSeriesIsExactAtBoundaries) {
  // Regression pin for the lower_bound-based range(): on a large series
  // the scan must return exactly the [t0, t1] window -- no off-by-one
  // at either boundary, no linear-scan shortcuts that misbehave at
  // scale.
  TimeSeriesStore store;
  constexpr int kPoints = 200'000;
  for (int i = 0; i < kPoints; ++i) {
    store.append("big", {static_cast<double>(i), static_cast<double>(i)});
  }
  // Interior window with exact endpoints.
  const auto mid = store.range("big", 50'000.0, 50'010.0);
  ASSERT_EQ(mid.size(), 11u);
  EXPECT_DOUBLE_EQ(mid.front().t_s, 50'000.0);
  EXPECT_DOUBLE_EQ(mid.back().t_s, 50'010.0);
  // Window straddling a point: only interior samples.
  const auto frac = store.range("big", 99'999.5, 100'001.5);
  ASSERT_EQ(frac.size(), 2u);
  EXPECT_DOUBLE_EQ(frac.front().t_s, 100'000.0);
  EXPECT_DOUBLE_EQ(frac.back().t_s, 100'001.0);
  // Edges of the series.
  EXPECT_EQ(store.range("big", -10.0, 0.0).size(), 1u);
  EXPECT_EQ(store.range("big", kPoints - 1.0, 1e18).size(), 1u);
  // Empty windows between samples and beyond the series.
  EXPECT_TRUE(store.range("big", 10.25, 10.75).empty());
  EXPECT_TRUE(store.range("big", 1e9, 2e9).empty());
  // Inverted window is empty, not a crash or a wraparound.
  EXPECT_TRUE(store.range("big", 500.0, 400.0).empty());
}

TEST(TimeSeriesStore, LastKOldestFirst) {
  TimeSeriesStore store;
  for (int i = 0; i < 5; ++i) {
    store.append("s", {static_cast<double>(i), static_cast<double>(i)});
  }
  const auto values = store.last_values("s", 3);
  EXPECT_EQ(values, (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(store.last_values("s", 99).size(), 5U);
  EXPECT_TRUE(store.last_values("unknown", 3).empty());
}

TEST(TimeSeriesStore, MonotonicityEnforced) {
  TimeSeriesStore store;
  store.append("s", {5.0, 1.0});
  EXPECT_THROW(store.append("s", {4.0, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW(store.append("s", {5.0, 2.0}));  // ties allowed
}

TEST(TimeSeriesStore, RetentionCap) {
  TimeSeriesStore store(3);
  for (int i = 0; i < 10; ++i) {
    store.append("s", {static_cast<double>(i), static_cast<double>(i)});
  }
  EXPECT_EQ(store.size("s"), 3U);
  EXPECT_EQ(store.last_values("s", 3), (std::vector<double>{7, 8, 9}));
}

TEST(TimeSeriesStore, ClearAndNames) {
  TimeSeriesStore store;
  store.append("a", {0.0, 1.0});
  store.append("b", {0.0, 2.0});
  EXPECT_EQ(store.series_names(), (std::vector<std::string>{"a", "b"}));
  store.clear("a");
  EXPECT_FALSE(store.has_series("a"));
  EXPECT_FALSE(store.latest("a").has_value());
}

TEST(PathAgent, SamplesBandwidthAndRtt) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const hp::netsim::Path tunnel1 = topo.path_through({"MIA", "SAO", "AMS"});
  hp::netsim::Simulator sim(std::move(topo));
  TimeSeriesStore store;
  PathAgentConfig config;
  config.path_name = "tunnel1";
  config.path = tunnel1;
  config.interval_s = 1.0;
  PathAgent agent(config, store);
  agent.start(sim, 0.0);
  sim.run_until(10.0);
  EXPECT_GE(store.size("tunnel1.available_mbps"), 10U);
  EXPECT_GE(store.size("tunnel1.rtt_ms"), 10U);
  // Idle path: full bottleneck capacity available, propagation RTT.
  EXPECT_DOUBLE_EQ(store.latest("tunnel1.available_mbps")->value, 20.0);
  EXPECT_NEAR(store.latest("tunnel1.rtt_ms")->value, 44.0, 1e-9);
}

TEST(PathAgent, AvailabilityDropsUnderLoad) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const hp::netsim::Path tunnel1 = topo.path_through({"MIA", "SAO", "AMS"});
  const hp::netsim::Path flow_path =
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  hp::netsim::Simulator sim(std::move(topo));
  TimeSeriesStore store;
  PathAgent agent({"tunnel1", tunnel1, 1.0}, store);
  agent.start(sim, 0.0);
  sim.add_flow(5.0, hp::netsim::FlowSpec{
                        "tcp", flow_path, 12.0, 0});
  sim.run_until(10.0);
  // After the 12 Mbps flow starts, only 8 Mbps of tunnel 1 remains.
  EXPECT_NEAR(store.latest("tunnel1.available_mbps")->value, 8.0, 1e-9);
  const auto early = store.range("tunnel1.available_mbps", 0.0, 4.5);
  ASSERT_FALSE(early.empty());
  EXPECT_DOUBLE_EQ(early.back().value, 20.0);
}

TEST(PathAgent, JitterTracksRttChanges) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const hp::netsim::Path tunnel1 = topo.path_through({"MIA", "SAO", "AMS"});
  const hp::netsim::Path flow_path =
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  hp::netsim::Simulator sim(std::move(topo));
  TimeSeriesStore store;
  PathAgent agent({"tunnel1", tunnel1, 1.0}, store);
  agent.start(sim, 0.0);
  // Idle network first: jitter must be ~0.
  sim.run_until(5.0);
  ASSERT_GE(store.size("tunnel1.jitter_ms"), 3U);
  EXPECT_NEAR(store.latest("tunnel1.jitter_ms")->value, 0.0, 1e-9);
  // A load step changes queueing delay once: a jitter spike appears at
  // the step, then jitter settles back to ~0.
  sim.add_flow(5.5, hp::netsim::FlowSpec{"tcp", flow_path, 18.0, 0});
  sim.run_until(10.0);
  double max_jitter = 0.0;
  for (const auto& p : store.range("tunnel1.jitter_ms", 5.0, 10.0)) {
    max_jitter = std::max(max_jitter, p.value);
  }
  EXPECT_GT(max_jitter, 1.0);
  EXPECT_NEAR(store.latest("tunnel1.jitter_ms")->value, 0.0, 1e-9);
}

TEST(PathAgent, AvailableBandwidthHelper) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const hp::netsim::Path t3 =
      topo.path_through({"MIA", "CAL", "CHI", "AMS"});
  hp::netsim::Simulator sim(std::move(topo));
  // Bottleneck of tunnel 3 is the 5 Mbps MIA-CAL / CAL-CHI pair.
  EXPECT_DOUBLE_EQ(PathAgent::available_mbps(sim, t3), 5.0);
}

}  // namespace
}  // namespace hp::telemetry
