// Hitless failover: pre-installed backup segments on the BuiltFabric
// and the ScenarioRunner's failure handling on top of them.
//
// The protection contract under test:
//  * a failure on a protected fabric swaps crossing pairs to their
//    backups with ZERO route compilations inside the event;
//  * swapped routes deliver to the same egress as an eager recompile
//    would (parity across every topology family);
//  * failing a dead link / restoring a live one is a graceful no-op;
//  * severing the fabric reports unroutable pairs explicitly instead of
//    misdelivering;
//  * restore reverts to the saved primary, again without compiling;
//  * reports are deterministic across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "scenario/fabric_builder.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;

/// Equality modulo wall clock, for determinism assertions.
bool same_counters(ScenarioReport lhs, ScenarioReport rhs) {
  lhs.seconds = 0.0;
  rhs.seconds = 0.0;
  return lhs == rhs;
}

TEST(FailoverProtection, SwapCompilesNothingInTheWindow) {
  BuiltFabric fabric(make_ring(12));
  fabric.compile_all_pairs();
  const std::size_t installed = fabric.enable_protection(1);
  EXPECT_GT(installed, 0U);
  EXPECT_EQ(fabric.compile_stats().backup_routes, installed);

  const std::size_t compiled_before = fabric.compile_stats().routes_compiled;
  const NodeIndex r0 = fabric.topology().index_of("r0");
  const NodeIndex r1 = fabric.topology().index_of("r1");
  const FailoverReport report = fabric.apply_failure(r0, r1);

  EXPECT_FALSE(report.duplicate);
  EXPECT_FALSE(report.affected.empty());
  EXPECT_EQ(report.window_recompiles, 0U);
  EXPECT_EQ(report.affected.size(), report.swapped.size())
      << "a ring pair missed its backup";
  EXPECT_EQ(report.swapped.size(), report.swap_stretch.size());
  EXPECT_TRUE(report.repaired.empty());
  EXPECT_TRUE(report.pending.empty());
  EXPECT_TRUE(report.unroutable.empty());
  // The hard acceptance bar: the failure window compiled no route.
  EXPECT_EQ(fabric.compile_stats().routes_compiled, compiled_before);
  EXPECT_GT(fabric.compile_stats().backup_swaps, 0U);
  // A ring detour is never shorter than the arc it replaces, and at
  // least one non-diametrical pair pays real stretch.
  double max_stretch = 0.0;
  for (const double stretch : report.swap_stretch) {
    EXPECT_GE(stretch, 1.0);
    max_stretch = std::max(max_stretch, stretch);
  }
  EXPECT_GT(max_stretch, 1.0);
}

TEST(FailoverProtection, BackupMatchesRecomputeOnEveryFamily) {
  // Per family: fabric A swaps to pre-installed backups, fabric B
  // eagerly recompiles.  Both must agree on which pairs survive and on
  // every surviving pair's egress node and port.
  for (const char* name : {"fat_tree_k4/uniform", "leaf_spine_4x8/uniform",
                           "ring12/uniform", "torus4x4/uniform",
                           "rr16d4/uniform"}) {
    const ScenarioSpec* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr) << name;

    BuiltFabric protected_fabric(build_topology(*spec));
    BuiltFabric eager_fabric(build_topology(*spec));
    protected_fabric.compile_all_pairs();
    eager_fabric.compile_all_pairs();
    protected_fabric.enable_protection(1);

    FailureInjectorParams inject;
    inject.seed = 4242;
    const auto schedule =
        make_failure_schedule(protected_fabric.topology(), inject);
    ASSERT_EQ(schedule.size(), 1U) << name;

    const FailoverReport event =
        protected_fabric.apply_failure(schedule[0].a, schedule[0].b);
    ASSERT_FALSE(event.affected.empty()) << name;
    (void)protected_fabric.repair_pending();
    (void)eager_fabric.fail_link(schedule[0].a, schedule[0].b);

    const auto& routers = protected_fabric.routers();
    for (const NodeIndex src : routers) {
      for (const NodeIndex dst : routers) {
        if (src == dst) continue;
        const CompiledRoute* via_backup = protected_fabric.route(src, dst);
        const CompiledRoute* via_recompute = eager_fabric.route(src, dst);
        ASSERT_EQ(via_backup == nullptr, via_recompute == nullptr)
            << name << ": routability diverged for " << src << "->" << dst;
        if (via_backup == nullptr) continue;
        EXPECT_EQ(via_backup->expected.egress_node,
                  via_recompute->expected.egress_node)
            << name << ": " << src << "->" << dst;
        EXPECT_EQ(via_backup->expected.egress_port,
                  via_recompute->expected.egress_port)
            << name << ": " << src << "->" << dst;
        EXPECT_FALSE(via_backup->expected.ttl_expired);
      }
    }
  }
}

TEST(FailoverProtection, DoubleFailAndDoubleRestoreAreNoOps) {
  BuiltFabric fabric(make_ring(8));
  fabric.compile_all_pairs();
  fabric.enable_protection(1);
  const NodeIndex r0 = fabric.topology().index_of("r0");
  const NodeIndex r1 = fabric.topology().index_of("r1");

  const FailoverReport first = fabric.apply_failure(r0, r1);
  EXPECT_FALSE(first.duplicate);
  const FailoverReport again = fabric.apply_failure(r0, r1);
  EXPECT_TRUE(again.duplicate);
  EXPECT_TRUE(again.affected.empty());

  const FailoverReport back = fabric.restore_link(r0, r1);
  EXPECT_FALSE(back.duplicate);
  const FailoverReport back_again = fabric.restore_link(r0, r1);
  EXPECT_TRUE(back_again.duplicate);
  EXPECT_TRUE(back_again.affected.empty());

  // Non-existent links still throw: a typo is not a graceful no-op.
  EXPECT_THROW((void)fabric.apply_failure(r0, fabric.topology().index_of("r4")),
               std::invalid_argument);
}

TEST(FailoverProtection, RestoreRevertsToThePrimaryWithoutCompiling) {
  BuiltFabric fabric(make_ring(8));
  fabric.compile_all_pairs();
  fabric.enable_protection(1);
  const NodeIndex r0 = fabric.topology().index_of("r0");
  const NodeIndex r1 = fabric.topology().index_of("r1");
  const unsigned primary_hops = fabric.route(r0, r1)->expected.hops;

  const FailoverReport fail = fabric.apply_failure(r0, r1);
  ASSERT_FALSE(fail.swapped.empty());
  EXPECT_GT(fabric.route(r0, r1)->expected.hops, primary_hops);

  const std::size_t compiled_before = fabric.compile_stats().routes_compiled;
  const FailoverReport restore = fabric.restore_link(r0, r1);
  EXPECT_EQ(restore.window_recompiles, 0U);
  EXPECT_EQ(fabric.compile_stats().routes_compiled, compiled_before);
  // Every pair the failure displaced is back on its original primary.
  EXPECT_EQ(restore.swapped.size(), fail.swapped.size());
  EXPECT_EQ(fabric.route(r0, r1)->expected.hops, primary_hops);
  for (const double stretch : restore.swap_stretch) {
    EXPECT_DOUBLE_EQ(stretch, 1.0);
  }
}

TEST(FailoverProtection, SeveredPairsAreExplicitlyUnroutable) {
  // Cutting a 6-ring twice isolates {r1, r2} from {r3..r0}: protection
  // cannot save pairs with no surviving path -- they must surface in
  // `unroutable`, and route() must say nullptr rather than misroute.
  BuiltFabric fabric(make_ring(6));
  fabric.compile_all_pairs();
  fabric.enable_protection(1);
  const auto r = [&](const char* name) {
    return fabric.topology().index_of(name);
  };
  (void)fabric.apply_failure(r("r0"), r("r1"));
  const FailoverReport second = fabric.apply_failure(r("r2"), r("r3"));
  FailoverReport lazy;
  if (fabric.pending_repair_count() > 0) lazy = fabric.repair_pending();

  std::set<std::pair<NodeIndex, NodeIndex>> unroutable(
      second.unroutable.begin(), second.unroutable.end());
  unroutable.insert(lazy.unroutable.begin(), lazy.unroutable.end());
  EXPECT_FALSE(unroutable.empty());
  for (const auto& [src, dst] : unroutable) {
    EXPECT_EQ(fabric.route(src, dst), nullptr)
        << src << "->" << dst << " reported severed but still routes";
  }
  // Pairs inside each island still route.
  EXPECT_NE(fabric.route(r("r1"), r("r2")), nullptr);
  EXPECT_NE(fabric.route(r("r4"), r("r5")), nullptr);
  EXPECT_EQ(fabric.route(r("r1"), r("r4")), nullptr);
}

TEST(FailoverRunner, ProtectedRingLosesNothingOnSingleFailure) {
  // The headline behaviour: with 1-disjoint protection a single link
  // failure is hitless -- zero window recompiles, zero packets lost --
  // while the unprotected run pays the convergence window.
  BuiltFabric fabric(make_ring(16));
  TrafficParams traffic;
  traffic.pattern = TrafficPattern::kUniformRandom;
  traffic.packets = 8192;
  traffic.seed = 7;
  PacketStream stream = generate_traffic(fabric, traffic);

  RunnerOptions options;
  options.threads = 2;
  options.loss_window_per_recompile = 4;
  options.failures.push_back(LinkFailure{0.5, fabric.topology().index_of("r3"),
                                         fabric.topology().index_of("r4")});

  const ScenarioReport eager = ScenarioRunner(options).run(fabric, stream);
  EXPECT_GT(eager.window_recompiles, 0U);
  EXPECT_GT(eager.failover_packets_lost, 0U);
  EXPECT_EQ(eager.packets + eager.dropped_packets, 8192U);

  BuiltFabric armed(make_ring(16));
  PacketStream same_stream = generate_traffic(armed, traffic);
  options.protection_k = 1;
  const ScenarioReport hitless =
      ScenarioRunner(options).run(armed, same_stream);
  EXPECT_EQ(hitless.window_recompiles, 0U);
  EXPECT_EQ(hitless.failover_packets_lost, 0U);
  EXPECT_EQ(hitless.dropped_packets, 0U);
  EXPECT_GT(hitless.backup_swapped_pairs, 0U);
  EXPECT_EQ(hitless.packets, 8192U);
  EXPECT_EQ(hitless.wrong_egress, 0U);
  EXPECT_LT(hitless.failover_packets_lost, eager.failover_packets_lost);
}

TEST(FailoverRunner, StormWithProtectionKeepsEgressIntent) {
  // A node storm (every link of one router) under 4 replay threads:
  // packets either arrive where their pair intended or are counted
  // dropped -- never misdelivered.
  const ScenarioSpec* spec = find_scenario("torus4x4/uniform");
  ASSERT_NE(spec, nullptr);
  BuiltFabric fabric(build_topology(*spec));
  TrafficParams traffic = spec->traffic;
  traffic.packets = 8192;
  PacketStream stream = generate_traffic(fabric, traffic);

  FailureInjectorParams inject;
  inject.preset = FailurePreset::kStorm;
  inject.seed = 3;

  RunnerOptions options;
  options.threads = 4;
  options.protection_k = 2;
  options.loss_window_per_recompile = 4;
  options.failures = make_failure_schedule(fabric.topology(), inject);
  const ScenarioReport report = ScenarioRunner(options).run(fabric, stream);
  EXPECT_EQ(report.wrong_egress, 0U);
  EXPECT_EQ(report.packets + report.dropped_packets, 8192U);
  EXPECT_GT(report.backup_swapped_pairs, 0U);
}

TEST(FailoverRunner, FlapReportsAreBitIdenticalAcrossRunsAndThreads) {
  // Fixed seed + flap schedule (failures AND restores) must yield the
  // same counters on every run and for every thread count.
  const ScenarioSpec* spec = find_scenario("ring12/uniform");
  ASSERT_NE(spec, nullptr);

  const auto run_once = [&](unsigned threads) {
    BuiltFabric fabric(build_topology(*spec));
    TrafficParams traffic = spec->traffic;
    traffic.packets = 8192;
    PacketStream stream = generate_traffic(fabric, traffic);
    FailureInjectorParams inject;
    inject.preset = FailurePreset::kFlap;
    inject.seed = 99;
    inject.count = 2;
    RunnerOptions options;
    options.threads = threads;
    options.protection_k = 1;
    options.loss_window_per_recompile = 4;
    options.failures = make_failure_schedule(fabric.topology(), inject);
    return ScenarioRunner(options).run(fabric, stream);
  };

  const ScenarioReport reference = run_once(1);
  EXPECT_EQ(reference.wrong_egress, 0U);
  EXPECT_TRUE(same_counters(reference, run_once(1))) << "rerun diverged";
  EXPECT_TRUE(same_counters(reference, run_once(4))) << "threads diverged";
  EXPECT_TRUE(same_counters(reference, run_once(8))) << "threads diverged";
}

}  // namespace
}  // namespace hp::scenario
