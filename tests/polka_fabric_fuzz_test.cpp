// Randomized property testing of PolKA fabric forwarding: on random
// connected fabrics, every simple path's routeID must steer a packet
// exactly along that path with every mod engine, and the label must
// stay within its CRT bit bound.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/registry.hpp"

namespace hp::polka {
namespace {

struct RandomFabric {
  PolkaFabric fabric;
  std::vector<std::vector<std::size_t>> adjacency;  // node -> neighbours
};

/// Ring of n nodes plus random chords; every node gets an extra unwired
/// host port (the last port index).
RandomFabric make_random_fabric(std::size_t n, std::mt19937_64& rng,
                                ModEngine engine) {
  // First decide the neighbour sets, then size the ports.
  std::vector<std::set<std::size_t>> neighbours(n);
  for (std::size_t i = 0; i < n; ++i) {
    neighbours[i].insert((i + 1) % n);
    neighbours[(i + 1) % n].insert(i);
  }
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t a = rng() % n;
    const std::size_t b = rng() % n;
    if (a == b) continue;
    neighbours[a].insert(b);
    neighbours[b].insert(a);
  }
  RandomFabric out{PolkaFabric(engine), {}};
  for (std::size_t i = 0; i < n; ++i) {
    out.fabric.add_node("n" + std::to_string(i),
                        static_cast<unsigned>(neighbours[i].size()) + 1);
  }
  out.adjacency.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    unsigned port = 0;
    for (const std::size_t peer : neighbours[i]) {
      out.fabric.connect(i, port++, peer);
      out.adjacency[i].push_back(peer);
    }
  }
  return out;
}

/// Random simple path by loop-erased random walk.
std::vector<std::size_t> random_simple_path(const RandomFabric& rf,
                                            std::mt19937_64& rng,
                                            std::size_t max_len) {
  const std::size_t n = rf.adjacency.size();
  std::vector<std::size_t> path{rng() % n};
  std::set<std::size_t> seen{path[0]};
  while (path.size() < max_len) {
    const auto& next_options = rf.adjacency[path.back()];
    std::vector<std::size_t> fresh;
    for (const std::size_t peer : next_options) {
      if (!seen.contains(peer)) fresh.push_back(peer);
    }
    if (fresh.empty()) break;
    const std::size_t next = fresh[rng() % fresh.size()];
    path.push_back(next);
    seen.insert(next);
  }
  return path;
}

class FabricFuzz
    : public ::testing::TestWithParam<std::tuple<int, ModEngine>> {};

TEST_P(FabricFuzz, RandomPathsForwardExactly) {
  const auto [seed, engine] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 2654435761u + 1);
  const std::size_t n = 6 + rng() % 20;
  const RandomFabric rf = make_random_fabric(n, rng, engine);

  for (int trial = 0; trial < 15; ++trial) {
    const auto path = random_simple_path(rf, rng, 2 + rng() % 10);
    if (path.size() < 2) continue;
    // Egress on the host port (always the last, unwired port).
    const unsigned egress = static_cast<unsigned>(
        rf.adjacency[path.back()].size());
    const RouteId route = rf.fabric.route_for_path(path, egress);

    // Bit bound: deg(routeID) < sum of nodeID degrees along the path.
    int degree_sum = 0;
    for (const std::size_t node : path) {
      degree_sum += rf.fabric.node(node).poly.degree();
    }
    EXPECT_LT(route.value.degree(), degree_sum);

    const auto trace = rf.fabric.forward(route, path.front());
    ASSERT_EQ(trace.nodes, path) << "seed=" << seed;
    EXPECT_EQ(trace.ports.back(), egress);
    EXPECT_EQ(trace.mod_operations, path.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FabricFuzz,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(ModEngine::kBitSerial,
                                         ModEngine::kTable,
                                         ModEngine::kDirect)));

/// All scalar engines and the batched uint64 fast path must compute
/// identical ports on randomized fabrics.
class EngineParityFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineParityFuzz, ScalarEnginesAndBatchAgree) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull +
                      3);
  const std::size_t n = 6 + rng() % 20;

  // One fabric per scalar engine, built with the same RNG stream so
  // node identifiers and wiring are identical across the three.
  std::mt19937_64 rng_a = rng;
  std::mt19937_64 rng_b = rng;
  std::mt19937_64 rng_c = rng;
  const RandomFabric bit_serial =
      make_random_fabric(n, rng_a, ModEngine::kBitSerial);
  const RandomFabric table = make_random_fabric(n, rng_b, ModEngine::kTable);
  const RandomFabric direct = make_random_fabric(n, rng_c, ModEngine::kDirect);
  rng = rng_a;  // resume the shared stream

  const CompiledFabric& fast = bit_serial.fabric.compiled();

  std::vector<RouteId> routes;
  for (int trial = 0; trial < 15; ++trial) {
    const auto path = random_simple_path(bit_serial, rng, 2 + rng() % 10);
    if (path.size() < 2) continue;
    const unsigned egress =
        static_cast<unsigned>(bit_serial.adjacency[path.back()].size());
    const RouteId route = bit_serial.fabric.route_for_path(path, egress);

    // The three scalar engines agree hop for hop...
    const auto trace_bit = bit_serial.fabric.forward(route, path.front());
    const auto trace_table = table.fabric.forward(route, path.front());
    const auto trace_direct = direct.fabric.forward(route, path.front());
    ASSERT_EQ(trace_bit.nodes, trace_table.nodes) << "seed=" << seed;
    ASSERT_EQ(trace_bit.ports, trace_table.ports) << "seed=" << seed;
    ASSERT_EQ(trace_bit.nodes, trace_direct.nodes) << "seed=" << seed;
    ASSERT_EQ(trace_bit.ports, trace_direct.ports) << "seed=" << seed;

    // ...and the compiled fast path matches them per-port and per-walk.
    const auto label = pack_label(route);
    ASSERT_TRUE(label.has_value()) << "seed=" << seed;
    for (std::size_t i = 0; i < trace_bit.nodes.size(); ++i) {
      EXPECT_EQ(fast.port_of(*label, trace_bit.nodes[i]), trace_bit.ports[i])
          << "seed=" << seed << " hop=" << i;
    }
    PacketResult want;
    want.egress_node = static_cast<std::uint32_t>(trace_bit.nodes.back());
    want.egress_port = trace_bit.ports.back();
    want.hops = static_cast<std::uint32_t>(trace_bit.nodes.size());
    EXPECT_EQ(fast.forward_one(*label, path.front()), want)
        << "seed=" << seed;

    routes.push_back(route);
  }

  // Batch entry point: inject every collected route at node 0 (walks
  // may be "wrong" routes for that ingress -- parity must hold anyway)
  // and compare against the scalar walk packet by packet.
  std::vector<PacketResult> got(routes.size());
  const std::size_t mods = bit_serial.fabric.forward_batch(
      routes, /*first=*/0, std::span<PacketResult>(got));
  std::size_t want_mods = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const auto trace = bit_serial.fabric.forward(routes[i], 0);
    ASSERT_FALSE(trace.nodes.empty());
    EXPECT_EQ(got[i].egress_node, trace.nodes.back()) << "seed=" << seed;
    EXPECT_EQ(got[i].egress_port, trace.ports.back()) << "seed=" << seed;
    EXPECT_EQ(got[i].hops, trace.nodes.size()) << "seed=" << seed;
    want_mods += trace.mod_operations;
  }
  EXPECT_EQ(mods, want_mods) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineParityFuzz, ::testing::Range(0, 10));

/// Scenario-generated topologies: on every family, random router pairs'
/// compiled routes must walk identically through the scalar fabric and
/// the batched fast path, ending at the intended destination's egress
/// port.
class GeneratedTopologyParityFuzz
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratedTopologyParityFuzz, CompiledRoutesAgreeWithScalarWalks) {
  const hp::scenario::ScenarioSpec* spec =
      hp::scenario::find_scenario(GetParam());
  ASSERT_NE(spec, nullptr);
  hp::scenario::BuiltFabric built(hp::scenario::build_topology(*spec));
  const CompiledFabric& fast = built.compiled();
  const auto& routers = built.routers();
  ASSERT_GE(routers.size(), 2u);

  std::mt19937_64 rng(0xC0FFEEull + routers.size());
  std::vector<RouteLabel> labels;
  std::vector<std::uint32_t> firsts;
  std::vector<PacketResult> expected;
  for (int trial = 0; trial < 40; ++trial) {
    const auto src = routers[rng() % routers.size()];
    const auto dst = routers[rng() % routers.size()];
    if (src == dst) continue;
    const hp::scenario::CompiledRoute* route = built.route(src, dst);
    ASSERT_NE(route, nullptr);  // generated families are connected
    ASSERT_TRUE(route->label.has_value());

    // Scalar reference walk agrees with the planned egress...
    const auto trace = built.fabric().forward(route->id, route->ingress);
    ASSERT_FALSE(trace.nodes.empty());
    EXPECT_EQ(trace.nodes.back(), route->expected.egress_node);
    EXPECT_EQ(trace.ports.back(), route->expected.egress_port);
    EXPECT_EQ(trace.nodes.size(), route->expected.hops);
    EXPECT_EQ(trace.nodes.back(), built.fabric_index(dst));
    EXPECT_EQ(trace.ports.back(),
              built.egress_port(built.fabric_index(dst)));

    // ...and so does the compiled walk.
    EXPECT_EQ(fast.forward_one(*route->label, route->ingress),
              route->expected);

    labels.push_back(*route->label);
    firsts.push_back(route->ingress);
    expected.push_back(route->expected);
  }
  ASSERT_FALSE(labels.empty());
  std::vector<PacketResult> got(labels.size());
  (void)fast.forward_batch(labels,
                           std::span<const std::uint32_t>(firsts),
                           std::span<PacketResult>(got));
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratedTopologyParityFuzz,
    ::testing::Values("fat_tree_k4/uniform", "leaf_spine_4x8/uniform",
                      "ring12/uniform", "torus4x4/uniform", "rr16d4/uniform"),
    [](const auto& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hp::polka
